//! Block processing: the execution and committing phases of both flows,
//! staged as a pipeline across blocks.
//!
//! Order of operations per block (§3.3.2–§3.3.4, §3.4.3):
//!
//! 1. verify the block (sequence, hash chain, orderer signature) and
//!    append it to the block store;
//! 2. start any transactions not already executing (all of them in the OE
//!    flow; only *missing* ones in the EO flow) and wait until every
//!    transaction of the block is ready to commit;
//! 3. serially signal each transaction in block order: SSI commit check →
//!    primary-key check → write-set application (or rollback);
//! 4. record every transaction in the ledger table, notify clients,
//!    compute the write-set hash and submit the checkpoint vote;
//! 5. compare checkpoint votes carried in the block's metadata against our
//!    own hashes (tamper/divergence detection, §3.5).
//!
//! ## The commit pipeline (`NodeConfig::pipeline`)
//!
//! The paper splits processing into an execution phase and a *serial*
//! commit phase precisely so that only ordering-dependent work is
//! serialized. With the pipeline enabled (the default), the processor
//! exploits that split across consecutive blocks:
//!
//! * **Stage 1 — admit & pre-execute.** As soon as block N+1 is verified
//!   and appended, its not-yet-executing transactions are dispatched to
//!   the [`crate::exec_pool::ExecPool`] — while block N is still
//!   committing. This is safe because visibility is height-gated, not
//!   thread-gated: OE-flow transactions execute at snapshot height N and
//!   the pool's wait-for-height rule parks them until block N's writes
//!   are fully applied, while EO-flow transactions always race the
//!   commit phase by design and are kept deterministic by strict-mode
//!   phantom/stale detection plus the block-aware commit rules (Table 2).
//! * **Stage 2 — validation gate + apply.** Only the ordering-dependent
//!   core stays on the commit thread: SSI commit check, primary-key
//!   check, conflict resolution and row-id reservation, strictly in
//!   block order (the serial *gate*, [`crate::commit`]). The write-set
//!   *apply* — publishing the gated versions and building the write-set
//!   summaries — is deterministic for any interleaving once the gate has
//!   fixed every decision, so it fans out across
//!   `NodeConfig::apply_workers` threads and barriers before the
//!   committed height advances.
//! * **Stage 3 — post-commit.** Ledger-table records, write-set hashing,
//!   the checkpoint-vote submission, client notifications, embedded-vote
//!   comparison and periodic maintenance move to an ordered post-commit
//!   worker, bounded by `NodeConfig::postcommit_cap`. Block-store
//!   durability is group-fsynced there: appends defer their `sync_data`
//!   and the worker syncs once before notifying, so the durability of
//!   blocks N and N+1 can batch into one sync.
//!
//! Determinism is unaffected: stages 1 and 3 perform no
//! ordering-dependent decisions (stage 3 is pure function of stage 2's
//! output, applied in block order by a single worker), stage 2's gate is
//! byte-for-byte the serial path's decision loop, and the parallel apply
//! produces byte-identical state and hashes for every worker count (see
//! [`crate::commit`] for the argument; `apply_workers = 1` restores the
//! fully serial stage). With `pipeline` off, every block runs all three
//! stages synchronously — the pre-pipeline behavior, kept for the
//! recovery/catch-up replay path as well.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::block::{Block, CheckpointVote};
use bcrdb_chain::checkpoint::WriteSetHasher;
use bcrdb_chain::ledger::{LedgerRecord, TxStatus};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::GlobalTxId;
use bcrdb_storage::snapshot::ScanMode;
use bcrdb_txn::context::WriteRecord;
use bcrdb_txn::ssi::Flow;
use crossbeam_channel::{Receiver, TryRecvError};

use crate::commit::{commit_core, commit_core_serial_exec, effective_snapshot};
use crate::exec_pool::ExecTask;
use crate::node::Node;
use crate::notify::TxNotification;

/// How often the receive loop wakes up with no deliveries, so the gap
/// timer can fire even while the channel is silent.
const GAP_POLL: Duration = Duration::from_millis(50);

/// Slice length for the pipelined head wait: between slices the commit
/// thread admits newly delivered blocks and observes shutdown.
const HEAD_WAIT_SLICE: Duration = Duration::from_millis(2);

/// Blocks of checkpoint history retained by the maintenance pruner; the
/// vacuum tick reclaims row versions deleted at or before this horizon.
const CHECKPOINT_RETENTION: u64 = 64;

/// Record a processor halt: the health flag in [`crate::NodeMetrics`]
/// (exposed through the Metrics RPC) plus the operator log line. A halt
/// is sticky — a byzantine orderer or local corruption means the node
/// must stop rather than diverge (§3.5(4)).
fn halt(node: &Arc<Node>, block: u64, e: &Error) {
    let reason = format!("halted at block {block}: {e}");
    eprintln!("[{}] {reason}", node.config.name);
    node.env.metrics.set_halted(reason);
}

/// Receive-and-process loop (runs on the node's block-processor thread).
/// Dispatches to the pipelined engine or the synchronous per-block loop
/// depending on `NodeConfig::pipeline`. Out-of-order future blocks are
/// held back — in a buffer bounded by `NodeConfig::pending_cap` — and
/// processed once the gap closes. A gap that outlives
/// `NodeConfig::gap_timeout` triggers a peer catch-up round through the
/// `sync_fetch` hook (§3.6).
pub fn run_loop(node: Arc<Node>, rx: Receiver<Arc<Block>>) {
    // The serial-execution baseline (§5.1) is by definition free of any
    // concurrency or overlap — it always takes the synchronous loop, so
    // an eth-style comparison cannot be silently accelerated by the
    // default-on pipeline.
    if node.config.pipeline && !node.config.serial_execution {
        run_pipelined(node, rx);
    } else {
        run_synchronous(node, rx);
    }
}

// ---------------------------------------------------- synchronous loop

/// The pre-pipeline loop: each block runs execution, serial commit and
/// post-commit work to completion before the next is considered.
fn run_synchronous(node: Arc<Node>, rx: Receiver<Arc<Block>>) {
    let mut pending: std::collections::BTreeMap<u64, Arc<Block>> = Default::default();
    let metrics = Arc::clone(&node.env.metrics);
    // When the current delivery gap opened (None = no gap).
    let mut gap_since: Option<Instant> = None;
    loop {
        if node.shutting_down.load(Ordering::Relaxed) {
            return;
        }
        match rx.recv_timeout(GAP_POLL) {
            Ok(block) => {
                let current = node.blockstore.height();
                if block.number > current + 1 {
                    hold_back(&node, &mut pending, block);
                    if gap_since.is_none() {
                        // bcrdb-lint: allow(wall-clock, reason = "local gap-detection timer; never reaches replicated state")
                        gap_since = Some(Instant::now());
                        metrics.on_gap_detected();
                    }
                } else if block.number == current + 1 {
                    if let Err(e) = on_block(&node, &block) {
                        halt(&node, block.number, &e);
                        return;
                    }
                }
            }
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
        }
        // Drain any consecutively buffered blocks — on every wakeup, not
        // just on a delivery, so blocks unblocked by a catch-up round
        // process even while the channel stays silent.
        if drain_pending(&node, &mut pending).is_err() {
            return;
        }
        metrics.set_held_back(pending.len() as u64);
        if pending.is_empty() {
            gap_since = None;
        } else if gap_since.is_none() {
            // bcrdb-lint: allow(wall-clock, reason = "local gap-detection timer; never reaches replicated state")
            gap_since = Some(Instant::now());
        }
        // The gap outlived the delivery-reorder window: the missing
        // blocks are not coming on their own — fetch them from peers.
        if let Some(t0) = gap_since {
            if t0.elapsed() >= node.config.gap_timeout {
                run_gap_catch_up(&node, &mut gap_since);
                if drain_pending(&node, &mut pending).is_err() {
                    return;
                }
                metrics.set_held_back(pending.len() as u64);
            }
        }
    }
}

/// One gap-triggered catch-up attempt, re-arming the gap timer on
/// failure or no progress.
fn run_gap_catch_up(node: &Arc<Node>, gap_since: &mut Option<Instant>) {
    match node.catch_up(false) {
        Ok(stats) if stats.fetched > 0 => {
            *gap_since = None;
        }
        Ok(_) => {
            // No hook installed or nothing fetched; re-arm so the next
            // attempt waits a full timeout again.
            // bcrdb-lint: allow(wall-clock, reason = "local gap-detection timer; never reaches replicated state")
            *gap_since = Some(Instant::now());
        }
        Err(e) => {
            eprintln!(
                "[{}] catch-up after delivery gap failed: {e}",
                node.config.name
            );
            // bcrdb-lint: allow(wall-clock, reason = "local gap-detection timer; never reaches replicated state")
            *gap_since = Some(Instant::now());
        }
    }
}

/// Process every consecutively buffered block, then drop the ones the
/// chain has already passed. An `Err` means a block was rejected and the
/// processor must stop (§3.5(4)).
fn drain_pending(
    node: &Arc<Node>,
    pending: &mut std::collections::BTreeMap<u64, Arc<Block>>,
) -> std::result::Result<(), ()> {
    loop {
        let next = node.blockstore.height() + 1;
        let Some(b) = pending.remove(&next) else {
            break;
        };
        if let Err(e) = on_block(node, &b) {
            halt(node, b.number, &e);
            return Err(());
        }
    }
    pending.retain(|n, _| *n > node.blockstore.height());
    Ok(())
}

/// Buffer a future block, evicting the highest-numbered one when the
/// buffer is full (blocks closest to the gap are the ones that unblock
/// processing; far-future blocks are the cheapest to re-fetch).
fn hold_back(
    node: &Arc<Node>,
    pending: &mut std::collections::BTreeMap<u64, Arc<Block>>,
    block: Arc<Block>,
) {
    let cap = node.config.pending_cap.max(1);
    if pending.len() >= cap && !pending.contains_key(&block.number) {
        let highest = *pending.keys().next_back().expect("non-empty at cap");
        if block.number >= highest {
            node.env.metrics.on_pending_evicted();
            return; // the newcomer is the farthest out: drop it
        }
        pending.remove(&highest);
        node.env.metrics.on_pending_evicted();
    }
    pending.insert(block.number, block);
}

/// Verify and process a newly received block (synchronously, through all
/// three stages).
pub fn on_block(node: &Arc<Node>, block: &Arc<Block>) -> Result<()> {
    node.env.metrics.on_block_received();
    let current = node.blockstore.height();
    if block.number <= current {
        return Ok(()); // duplicate delivery
    }
    if block.number != current + 1 {
        return Err(Error::internal(format!(
            "block gap: have {current}, received {}",
            block.number
        )));
    }
    verify_and_append(node, block, false)?;
    process_block(node, block)
}

/// Verify a block against the local tip and append it to the store.
/// `defer_sync` skips the per-append `sync_data` (pipelined path; the
/// post-commit worker group-syncs before notifying).
fn verify_and_append(node: &Arc<Node>, block: &Arc<Block>, defer_sync: bool) -> Result<()> {
    if node.config.verify_signatures {
        block.verify(&node.blockstore.tip_hash(), &node.env.certs)?;
    } else {
        block.verify_integrity()?;
    }
    if defer_sync {
        node.blockstore.append_deferred((**block).clone())?;
    } else {
        node.blockstore.append((**block).clone())?;
    }
    Ok(())
}

/// Execute and commit one block synchronously (also the §3.6 recovery
/// replay path — blocks from the local store are already verified, and
/// replay must leave ledger records and checkpoint hashes fully applied
/// when it returns, so it never uses the asynchronous pipeline).
pub fn process_block(node: &Arc<Node>, block: &Arc<Block>) -> Result<()> {
    // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
    let t0 = Instant::now();

    if node.config.serial_execution {
        return process_serial(node, block, t0);
    }

    // ---- execution phase (stage 1) --------------------------------------
    let wait_ids = dispatch_execution(node, block);
    node.env
        .slots
        .wait_all_done(&wait_ids, node.config.exec_wait_timeout)?;
    let bet_us = t0.elapsed().as_micros() as u64;

    // ---- committing phase (stage 2) -------------------------------------
    let (records, writes) = commit_core(node, block);

    // ---- post-commit (stage 3), inline ----------------------------------
    finish_block(node, block, records, writes, t0, bet_us)
}

/// The Ethereum-style baseline (§5.1): execute and commit transactions one
/// at a time, in block order, with no concurrency.
fn process_serial(node: &Arc<Node>, block: &Arc<Block>, t0: Instant) -> Result<()> {
    let (records, writes, bet_us) = commit_core_serial_exec(node, block);
    finish_block(node, block, records, writes, t0, bet_us)
}

/// Stage 1: claim and dispatch every transaction of `block` that is not
/// already executing, returning the ids whose execution the commit phase
/// must await. Idempotent — a transaction already claimed (pre-dispatch,
/// peer forwarding, client submission) or already processed is never
/// dispatched twice — so the pipelined path runs it once on admission
/// (the pre-execute optimization) and once more when the block reaches
/// the serial commit point, where the processed-id set is authoritative.
fn dispatch_execution(node: &Arc<Node>, block: &Arc<Block>) -> Vec<GlobalTxId> {
    let flow = node.config.flow;
    let exec_height = block.number - 1;
    let mut wait_ids: Vec<GlobalTxId> = Vec::with_capacity(block.txs.len());
    let mut missing = 0u64;
    for tx in &block.txs {
        if node.is_processed(&tx.id) {
            continue; // duplicate: aborted at the commit phase
        }
        let snap = effective_snapshot(tx, flow, exec_height);
        if snap > exec_height {
            continue; // future snapshot: deterministic abort, never executed
        }
        if node.env.slots.try_claim(tx.id) {
            if flow == Flow::ExecuteOrderParallel {
                // Should have arrived via peer forwarding (§3.4.3: "the
                // committer starts executing all missing transactions").
                missing += 1;
            }
            let mode = match flow {
                Flow::OrderThenExecute => ScanMode::Relaxed,
                Flow::ExecuteOrderParallel => ScanMode::Strict,
            };
            node.pool.submit(ExecTask {
                tx: Arc::new(tx.clone()),
                snapshot_height: snap,
                mode,
            });
        }
        wait_ids.push(tx.id);
    }
    if missing > 0 {
        node.env.metrics.on_missing_txs(missing);
    }
    wait_ids
}

/// Advance the committed height to `block` and release the executions
/// parked on it.
fn advance_committed(node: &Arc<Node>, block: &Arc<Block>) {
    node.env
        .committed_height
        .store(block.number, Ordering::Relaxed);
    node.pool.release_waiting(block.number);
}

/// Shared tail of synchronous block processing (stage 3 inline): ledger,
/// write-set hash, checkpoint vote, metrics, notifications, embedded
/// votes, maintenance.
fn finish_block(
    node: &Arc<Node>,
    block: &Arc<Block>,
    records: Vec<LedgerRecord>,
    writes: Vec<WriteRecord>,
    t0: Instant,
    bet_us: u64,
) -> Result<()> {
    // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
    let t3 = Instant::now();
    node.append_ledger(&records, block.number);
    // Ledger first, then the height advance (the pre-pipeline ordering):
    // a client that polls ChainHeight and sees N must find block N's
    // ledger rows with a query at height N.
    advance_committed(node, block);
    publish_checkpoint(node, block.number, hash_writes(&writes));

    // Record metrics *before* notifying: a client that returns from
    // `wait_committed` and immediately reads this node's metrics must
    // see its own transaction counted.
    for record in &records {
        match record.status {
            TxStatus::Committed => node.env.metrics.on_tx_committed(),
            TxStatus::Aborted(_) => node.env.metrics.on_tx_aborted(),
        }
    }
    let bpt_us = t0.elapsed().as_micros() as u64;
    node.env
        .metrics
        .on_block_processed(bpt_us, bet_us.min(bpt_us));

    // Notify clients only after the committed height advanced, so a
    // "committed" notification guarantees the effects are visible to an
    // immediate follow-up query on this node.
    for record in &records {
        node.notifications.notify(TxNotification {
            id: record.global_id,
            block: block.number,
            status: record.status.clone(),
        });
    }

    record_embedded_votes(node, block);
    maintenance(node, block.number);
    // Group write-back: flush page batches dirtied by this block's spill
    // tick (journaled, so a torn flush is discarded on recovery). An I/O
    // error halts the node like a block-store failure would.
    if let Some(store) = node.paged_store() {
        store.sync()?;
    }
    if node.config.snapshot_interval > 0
        && block.number.is_multiple_of(node.config.snapshot_interval)
    {
        node.write_snapshot()?;
    }
    node.env
        .metrics
        .on_post_stage(t3.elapsed().as_micros() as u64);
    node.note_postcommit(block.number);
    Ok(())
}

/// Hash a block's write-set summary in commit order (§3.3.4).
fn hash_writes(writes: &[WriteRecord]) -> WriteSetHasher {
    let mut hasher = WriteSetHasher::new();
    for w in writes {
        hasher.add(&w.table, w.kind, w.row_id, &w.data);
    }
    hasher
}

/// Process checkpoint votes carried by this block (§3.3.4: hashes of
/// *previous* blocks' write sets arrive in later blocks).
fn record_embedded_votes(node: &Arc<Node>, block: &Arc<Block>) {
    for cv in &block.checkpoints {
        if cv.node == node.config.name {
            continue;
        }
        if let Some(d) = node
            .checkpoints
            .record_vote(&cv.node, cv.block, cv.state_hash)
        {
            node.divergences.lock().push(d);
        }
    }
}

/// Periodic maintenance, run after a block's post-commit work: SSI GC,
/// checkpoint pruning, the spill tick paging out cold heap segments on
/// paged nodes, and the vacuum tick (`NodeConfig::vacuum_interval`)
/// reclaiming row versions deleted at or before the checkpoint-retention
/// horizon. Vacuum is concurrency-safe against readers and appenders —
/// heap positions are stable and reclaimed slots tombstone in place (see
/// `bcrdb_storage::table`).
fn maintenance(node: &Arc<Node>, block_number: u64) {
    if node.config.gc_interval > 0 && block_number.is_multiple_of(node.config.gc_interval) {
        node.env.ssi.gc();
        node.checkpoints
            .prune(block_number.saturating_sub(CHECKPOINT_RETENTION));
        if node.paged_store().is_some() {
            // Spill rides the GC cadence: a segment pages out once every
            // version in it is quiescent at `spill_retention` blocks
            // behind the tip, keeping SSI-relevant recent history
            // resident. The chain is stamped with the block number as
            // its LSN so recovery picks the newest image. No snapshot
            // clamp is needed here — spilling never loses data, and a
            // chain re-spilled past the last snapshot barrier is
            // equivalent under the restore-time anchor filter because
            // vacuum (below) never crosses that barrier.
            let horizon = block_number.saturating_sub(node.config.spill_retention.max(1));
            node.spill(horizon, block_number);
        }
    }
    if node.config.vacuum_interval > 0 && block_number.is_multiple_of(node.config.vacuum_interval) {
        let mut horizon = block_number.saturating_sub(CHECKPOINT_RETENTION);
        if node.config.snapshot_interval > 0 {
            // Never vacuum past the last snapshot barrier: restoring
            // from snapshot N replays blocks > N, and a replayed delete
            // must still find its target version. Versions deleted
            // after the barrier therefore stay (tombstone-able only at
            // the next barrier). Applied on every node — paged or not —
            // because the clamp changes which versions exist, and state
            // hashes must stay byte-identical across configurations.
            // The barrier below the current block is used even when the
            // block is itself one, since its snapshot is written after
            // this maintenance tick.
            let interval = node.config.snapshot_interval;
            let last_barrier = block_number.saturating_sub(1) / interval * interval;
            horizon = horizon.min(last_barrier);
        }
        let reclaimed = node.vacuum(horizon);
        node.env.metrics.on_vacuum(reclaimed as u64);
        // Planner-statistics drift defense: flag every table so the next
        // block's commit-thread fold rebuilds its stats exactly from the
        // heap. The rebuild cannot run here — in pipelined mode this
        // worker races the commit thread's fold for later blocks — and
        // it doesn't need to: rebuilds are semantic no-ops on the sealed
        // values, so when it happens is invisible to planning.
        for name in node.env.catalog.table_names() {
            if let Ok(table) = node.env.catalog.get(&name) {
                table.stats_mark_dirty();
            }
        }
    }
}

/// Compute and publish the checkpoint for a processed block.
pub(crate) fn publish_checkpoint(node: &Arc<Node>, block_number: u64, hasher: WriteSetHasher) {
    let digest = hasher.finish();
    node.checkpoints.record_local(block_number, digest);
    let hooks = node.hooks.read();
    if let Some(submit) = &hooks.submit_checkpoint {
        submit(CheckpointVote {
            node: node.config.name.clone(),
            block: block_number,
            state_hash: digest,
        });
    }
}

// ------------------------------------------------------ pipelined loop

/// A block admitted to the pipeline: verified, appended, pre-dispatched,
/// awaiting its serial commit turn.
struct Inflight {
    block: Arc<Block>,
    /// Authoritative wait list, computed when the block reaches the head
    /// of the pipeline (all earlier blocks committed, so the
    /// processed-id set is final for duplicate detection).
    head_ids: Option<Vec<GlobalTxId>>,
    /// When the block was admitted (bpt measurement origin).
    received: Instant,
    /// Commit-thread stall accumulated waiting for this block's
    /// executions at the head (the pipelined `bet`).
    wait_spent: Duration,
}

/// Stage-2 output handed to the post-commit worker.
struct PostCommitJob {
    block: Arc<Block>,
    records: Vec<LedgerRecord>,
    writes: Vec<WriteRecord>,
    received: Instant,
    bet_us: u64,
}

/// The pipelined engine: admit & pre-dispatch eagerly, commit serially,
/// defer post-commit work to an ordered bounded worker.
fn run_pipelined(node: Arc<Node>, rx: Receiver<Arc<Block>>) {
    let metrics = Arc::clone(&node.env.metrics);
    let (jobs_tx, jobs_rx) = crossbeam_channel::unbounded::<PostCommitJob>();
    {
        let node = Arc::clone(&node);
        std::thread::Builder::new()
            .name(format!("{}-postcommit", node.config.name))
            .spawn(move || post_commit_loop(node, jobs_rx))
            .expect("spawn post-commit worker");
    }

    let depth = node.config.pipeline_depth.max(1);
    let postcommit_cap = node.config.postcommit_cap.max(1) as u64;
    let mut pending: std::collections::BTreeMap<u64, Arc<Block>> = Default::default();
    let mut inflight: VecDeque<Inflight> = VecDeque::with_capacity(depth);
    let mut gap_since: Option<Instant> = None;
    let mut disconnected = false;

    loop {
        if node.shutting_down.load(Ordering::Relaxed) {
            return; // dropping jobs_tx lets the worker drain and exit
        }

        // ---- stage 1: admit deliveries while there is pipeline room ----
        while inflight.len() < depth && !disconnected {
            match rx.try_recv() {
                Ok(block) => {
                    if admit(&node, &mut pending, &mut inflight, &mut gap_since, block).is_err() {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => disconnected = true,
            }
        }
        // Admit buffered blocks whose gap has closed.
        if admit_pending(&node, &mut pending, &mut inflight, depth).is_err() {
            return;
        }
        metrics.set_held_back(pending.len() as u64);
        metrics.set_pipeline_depths(
            inflight.len() as u64,
            node.height().saturating_sub(node.postcommit_height()),
        );

        // ---- stage 2: advance the pipeline head -------------------------
        if let Some(head) = inflight.front_mut() {
            let ids = head
                .head_ids
                .get_or_insert_with(|| dispatch_execution(&node, &head.block));
            if node.env.slots.wait_all_done_for(ids, HEAD_WAIT_SLICE) {
                let infl = inflight.pop_front().expect("head exists");
                let block_number = infl.block.number;
                let bet_us = infl.wait_spent.as_micros() as u64;
                let (records, writes) = commit_core(&node, &infl.block);
                advance_committed(&node, &infl.block);
                let snapshot_due = node.config.snapshot_interval > 0
                    && block_number.is_multiple_of(node.config.snapshot_interval);
                let _ = jobs_tx.send(PostCommitJob {
                    block: infl.block,
                    records,
                    writes,
                    received: infl.received,
                    bet_us,
                });
                // Backpressure: bound the stage-3 queue.
                while node.height().saturating_sub(node.postcommit_height()) > postcommit_cap {
                    if node.shutting_down.load(Ordering::Relaxed) {
                        return;
                    }
                    node.wait_postcommit(node.height().saturating_sub(postcommit_cap), GAP_POLL);
                }
                // Snapshot barrier: a state snapshot must see the block's
                // ledger records and must not race a later block's serial
                // commit — drain the worker, then write on this thread.
                if snapshot_due {
                    while node.postcommit_height() < block_number {
                        if node.shutting_down.load(Ordering::Relaxed) {
                            return;
                        }
                        node.wait_postcommit(block_number, GAP_POLL);
                    }
                    if let Err(e) = node.write_snapshot() {
                        // Same outcome as the synchronous path, where
                        // finish_block propagates this error: a failed
                        // snapshot halts the node rather than leaving a
                        // stale snapshot to be served to fast-sync peers.
                        halt(&node, block_number, &e);
                        return;
                    }
                }
            } else {
                head.wait_spent += HEAD_WAIT_SLICE;
                if head.wait_spent >= node.config.exec_wait_timeout {
                    halt(
                        &node,
                        head.block.number,
                        &Error::internal(format!(
                            "timed out waiting for transaction execution: {:?}",
                            node.env.slots.stuck_ids(ids)
                        )),
                    );
                    return;
                }
            }
        } else {
            if disconnected {
                return;
            }
            // Idle: block for a delivery so the loop does not spin.
            match rx.recv_timeout(GAP_POLL) {
                Ok(block) => {
                    if admit(&node, &mut pending, &mut inflight, &mut gap_since, block).is_err() {
                        return;
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => disconnected = true,
            }
        }

        // ---- gap handling ----------------------------------------------
        if pending.is_empty() {
            gap_since = None;
        } else if gap_since.is_none() {
            // bcrdb-lint: allow(wall-clock, reason = "local gap-detection timer; never reaches replicated state")
            gap_since = Some(Instant::now());
        }
        if let Some(t0) = gap_since {
            if t0.elapsed() >= node.config.gap_timeout && inflight.is_empty() {
                // Catch-up replays synchronously through process_block;
                // the pipeline must be fully drained first so ledger and
                // checkpoint work stays in block order.
                while node.postcommit_height() < node.height() {
                    if node.shutting_down.load(Ordering::Relaxed) {
                        return;
                    }
                    node.wait_postcommit(node.height(), GAP_POLL);
                }
                run_gap_catch_up(&node, &mut gap_since);
                if admit_pending(&node, &mut pending, &mut inflight, depth).is_err() {
                    return;
                }
                metrics.set_held_back(pending.len() as u64);
            }
        }
    }
}

/// Verify, append and pre-dispatch one delivered block, or buffer /
/// discard it (future gap / duplicate). `Err` = the processor halted.
fn admit(
    node: &Arc<Node>,
    pending: &mut std::collections::BTreeMap<u64, Arc<Block>>,
    inflight: &mut VecDeque<Inflight>,
    gap_since: &mut Option<Instant>,
    block: Arc<Block>,
) -> std::result::Result<(), ()> {
    let current = node.blockstore.height();
    if block.number <= current {
        node.env.metrics.on_block_received();
        return Ok(()); // duplicate delivery
    }
    if block.number > current + 1 {
        hold_back(node, pending, block);
        if gap_since.is_none() {
            // bcrdb-lint: allow(wall-clock, reason = "local gap-detection timer; never reaches replicated state")
            *gap_since = Some(Instant::now());
            node.env.metrics.on_gap_detected();
        }
        return Ok(());
    }
    node.env.metrics.on_block_received();
    if let Err(e) = verify_and_append(node, &block, true) {
        halt(node, block.number, &e);
        return Err(());
    }
    // Pre-execute (stage 1): dispatch now, while earlier blocks are
    // still committing. The authoritative wait list is recomputed when
    // the block reaches the pipeline head.
    let _ = dispatch_execution(node, &block);
    inflight.push_back(Inflight {
        block,
        head_ids: None,
        // bcrdb-lint: allow(wall-clock, reason = "local arrival timestamp for gap accounting")
        received: Instant::now(),
        wait_spent: Duration::ZERO,
    });
    Ok(())
}

/// Admit consecutively buffered future blocks while there is room.
fn admit_pending(
    node: &Arc<Node>,
    pending: &mut std::collections::BTreeMap<u64, Arc<Block>>,
    inflight: &mut VecDeque<Inflight>,
    depth: usize,
) -> std::result::Result<(), ()> {
    let mut none = None;
    loop {
        if inflight.len() >= depth {
            break;
        }
        let next = node.blockstore.height() + 1;
        let Some(b) = pending.remove(&next) else {
            break;
        };
        admit(node, pending, inflight, &mut none, b)?;
    }
    pending.retain(|n, _| *n > node.blockstore.height());
    Ok(())
}

/// Stage 3, on the post-commit worker: ledger records, write-set hash +
/// checkpoint vote, group fsync, metrics, client notifications, embedded
/// vote comparison and maintenance — strictly in block order (single
/// worker, FIFO channel). Exits when the commit thread drops the sender.
fn post_commit_loop(node: Arc<Node>, rx: Receiver<PostCommitJob>) {
    for job in rx.iter() {
        // bcrdb-lint: allow(wall-clock, reason = "metrics timing only")
        let t3 = Instant::now();
        node.append_ledger(&job.records, job.block.number);
        publish_checkpoint(&node, job.block.number, hash_writes(&job.writes));
        // Group fsync: one sync_data covers every block appended since
        // the last one — durability must precede client notifications.
        // A sync failure therefore halts the node *before* anyone is
        // told their transaction committed (the synchronous path halts
        // on the same error inside append): acknowledging a commit that
        // a crash could truncate away would break the §3.5 audit story.
        if let Err(e) = node.blockstore.sync() {
            halt(
                &node,
                job.block.number,
                &Error::internal(format!("block store sync failed: {e}")),
            );
            node.shutdown();
            return;
        }
        for record in &job.records {
            match record.status {
                TxStatus::Committed => node.env.metrics.on_tx_committed(),
                TxStatus::Aborted(_) => node.env.metrics.on_tx_aborted(),
            }
        }
        let bpt_us = job.received.elapsed().as_micros() as u64;
        node.env
            .metrics
            .on_block_processed(bpt_us, job.bet_us.min(bpt_us));
        for record in &job.records {
            node.notifications.notify(TxNotification {
                id: record.global_id,
                block: job.block.number,
                status: record.status.clone(),
            });
        }
        record_embedded_votes(&node, &job.block);
        maintenance(&node, job.block.number);
        // Group write-back for the page store, mirroring the block-store
        // sync above: flush the batches dirtied by this block's spill
        // tick, halting on I/O failure. Journaled writes make a torn
        // flush recoverable, so this may trail the client notifications.
        if let Some(store) = node.paged_store() {
            if let Err(e) = store.sync() {
                halt(
                    &node,
                    job.block.number,
                    &Error::internal(format!("page store sync failed: {e}")),
                );
                node.shutdown();
                return;
            }
        }
        node.env
            .metrics
            .on_post_stage(t3.elapsed().as_micros() as u64);
        node.note_postcommit(job.block.number);
    }
}
