//! Execution slots: coordination between the executor pool and the block
//! processor.
//!
//! This is the analogue of the paper's `TxMetadata` shared-memory
//! structure (§4.2): "enables communication and synchronization between
//! block processor and backends executing the transaction. The block
//! processor uses this data structure to check whether all transactions
//! have completed its execution."

use std::collections::HashMap;
use std::time::Duration;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::GlobalTxId;
use bcrdb_engine::exec::CatalogOp;
use bcrdb_txn::context::TxnCtx;
use parking_lot::{Condvar, Mutex};

/// Result of executing one transaction, parked until its commit signal.
pub struct ExecDone {
    /// The transaction context, ready for `apply_commit` or already doomed.
    pub ctx: TxnCtx,
    /// Deferred DDL produced by the contract.
    pub catalog_ops: Vec<CatalogOp>,
    /// Execution-time error (the context is already doomed accordingly).
    pub error: Option<String>,
    /// Execution duration (µs) — the paper's `tet`.
    pub exec_us: u64,
}

enum SlotState {
    /// Claimed: scheduled or running on a worker.
    Pending,
    /// Finished executing, waiting for the commit signal.
    Done(Box<ExecDone>),
}

/// Slot table keyed by global transaction id.
#[derive(Default)]
pub struct SlotTable {
    slots: Mutex<HashMap<GlobalTxId, SlotState>>,
    done_cv: Condvar,
}

impl SlotTable {
    /// Fresh table.
    pub fn new() -> SlotTable {
        SlotTable::default()
    }

    /// Claim a slot for execution. Returns false if the id is already
    /// claimed (duplicate submission / already forwarded).
    pub fn try_claim(&self, id: GlobalTxId) -> bool {
        let mut slots = self.slots.lock();
        if slots.contains_key(&id) {
            return false;
        }
        slots.insert(id, SlotState::Pending);
        true
    }

    /// Is the id present (pending or done)?
    pub fn contains(&self, id: &GlobalTxId) -> bool {
        self.slots.lock().contains_key(id)
    }

    /// Has the id finished executing (result parked, not yet taken)?
    pub fn contains_done(&self, id: &GlobalTxId) -> bool {
        matches!(self.slots.lock().get(id), Some(SlotState::Done(_)))
    }

    /// Mark a claimed slot as executed. Only an existing claim
    /// transitions to `Done`: if the claim was revoked in the meantime
    /// (a duplicate was decided at some commit point and
    /// [`SlotTable::remove`]d while this execution was in flight), the
    /// result is rolled back and discarded instead of re-inserted — an
    /// orphaned `Done` entry would leak the slot and pin the
    /// transaction's SSI record as active forever.
    pub fn complete(&self, id: GlobalTxId, done: ExecDone) {
        let mut slots = self.slots.lock();
        match slots.get_mut(&id) {
            Some(state) => {
                *state = SlotState::Done(Box::new(done));
                drop(slots);
                self.done_cv.notify_all();
            }
            None => {
                drop(slots);
                done.ctx.rollback();
            }
        }
    }

    /// Remove a slot entirely (duplicate aborts, cancelled executions),
    /// returning the parked result if one exists. Removing a still-
    /// pending claim revokes it: the in-flight execution's eventual
    /// [`SlotTable::complete`] rolls its result back (see there).
    pub fn remove(&self, id: &GlobalTxId) -> Option<Box<ExecDone>> {
        match self.slots.lock().remove(id) {
            Some(SlotState::Done(d)) => Some(d),
            _ => None,
        }
    }

    /// Block until every listed id is `Done` (the §3.3.3 pre-condition:
    /// "only when all valid transactions are executed and ready to be
    /// either committed or aborted"). Errors after `timeout`, naming the
    /// stuck ids ([`SlotTable::stuck_ids`]).
    pub fn wait_all_done(&self, ids: &[GlobalTxId], timeout: Duration) -> Result<()> {
        if self.wait_all_done_for(ids, timeout) {
            return Ok(());
        }
        Err(Error::internal(format!(
            "timed out waiting for transaction execution: {:?}",
            self.stuck_ids(ids)
        )))
    }

    /// Bounded wait: block until every listed id is `Done` or `slice`
    /// elapses, returning whether all are done. The pipelined block
    /// processor waits in short slices so it can keep admitting and
    /// pre-dispatching newly delivered blocks (and observe shutdown)
    /// while the head block's transactions execute.
    pub fn wait_all_done_for(&self, ids: &[GlobalTxId], slice: Duration) -> bool {
        let deadline = std::time::Instant::now() + slice;
        let mut slots = self.slots.lock();
        loop {
            let all_done = ids
                .iter()
                .all(|id| matches!(slots.get(id), Some(SlotState::Done(_))));
            if all_done {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.done_cv.wait_for(&mut slots, deadline - now);
        }
    }

    /// Short names of the listed ids that are not `Done` — the payload
    /// of an execution-wait timeout report.
    pub fn stuck_ids(&self, ids: &[GlobalTxId]) -> Vec<String> {
        let slots = self.slots.lock();
        ids.iter()
            .filter(|id| !matches!(slots.get(id), Some(SlotState::Done(_))))
            .map(|id| id.short())
            .collect()
    }

    /// Take the execution result of a done slot.
    pub fn take_done(&self, id: &GlobalTxId) -> Option<Box<ExecDone>> {
        let mut slots = self.slots.lock();
        match slots.get(id) {
            Some(SlotState::Done(_)) => match slots.remove(id) {
                Some(SlotState::Done(d)) => Some(d),
                _ => unreachable!("checked above"),
            },
            _ => None,
        }
    }

    /// Number of tracked slots (diagnostics).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when no slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_storage::snapshot::ScanMode;
    use bcrdb_txn::ssi::SsiManager;
    use std::sync::Arc;

    fn done() -> ExecDone {
        let mgr = Arc::new(SsiManager::new());
        ExecDone {
            ctx: TxnCtx::begin(&mgr, 0, ScanMode::Relaxed),
            catalog_ops: Vec::new(),
            error: None,
            exec_us: 42,
        }
    }

    fn id(n: u8) -> GlobalTxId {
        GlobalTxId([n; 32])
    }

    #[test]
    fn claim_complete_take() {
        let t = SlotTable::new();
        assert!(t.try_claim(id(1)));
        assert!(!t.try_claim(id(1)), "double claim rejected");
        assert!(t.contains(&id(1)));
        assert!(t.take_done(&id(1)).is_none(), "not done yet");
        t.complete(id(1), done());
        let d = t.take_done(&id(1)).unwrap();
        assert_eq!(d.exec_us, 42);
        assert!(t.is_empty());
    }

    #[test]
    fn wait_all_done_blocks_until_completion() {
        let t = Arc::new(SlotTable::new());
        t.try_claim(id(1));
        t.try_claim(id(2));
        let t2 = Arc::clone(&t);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            t2.complete(id(1), done());
            std::thread::sleep(Duration::from_millis(30));
            t2.complete(id(2), done());
        });
        t.wait_all_done(&[id(1), id(2)], Duration::from_secs(5))
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn wait_all_done_times_out() {
        let t = SlotTable::new();
        t.try_claim(id(9));
        let err = t
            .wait_all_done(&[id(9)], Duration::from_millis(30))
            .unwrap_err();
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn remove_discards_pending() {
        let t = SlotTable::new();
        t.try_claim(id(3));
        assert!(t.remove(&id(3)).is_none(), "pending slot has no result");
        assert!(!t.contains(&id(3)));
    }

    #[test]
    fn complete_after_revoked_claim_discards_result() {
        // A duplicate decided at commit revokes the claim while the
        // execution is still in flight; the late completion must not
        // re-insert an orphaned Done entry.
        let t = SlotTable::new();
        t.try_claim(id(4));
        assert!(t.remove(&id(4)).is_none(), "claim revoked");
        t.complete(id(4), done());
        assert!(!t.contains(&id(4)), "late result discarded, not parked");
        assert!(t.take_done(&id(4)).is_none());
    }
}
