//! Node configuration and outbound hooks.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bcrdb_chain::block::CheckpointVote;
use bcrdb_chain::sync::{SyncRequest, SyncResponse};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::Result;
use bcrdb_txn::ssi::Flow;

/// Static configuration of a database peer node.
#[derive(Clone)]
pub struct NodeConfig {
    /// Node name (certificate name, e.g. `org1/peer`).
    pub name: String,
    /// Owning organization.
    pub org: String,
    /// Transaction flow (§3.3 vs §3.4).
    pub flow: Flow,
    /// Data directory for the block store and state snapshots; `None`
    /// keeps everything in memory (tests/benchmarks).
    pub data_dir: Option<PathBuf>,
    /// Write a state snapshot every N blocks (0 = never). Snapshots bound
    /// recovery replay time (§3.6).
    pub snapshot_interval: u64,
    /// Verify client and orderer signatures. Benchmarks measuring the
    /// protocol (not our hash-based crypto) may disable this — see the
    /// substitution table in DESIGN.md.
    pub verify_signatures: bool,
    /// Worker threads executing transactions concurrently.
    pub executor_threads: usize,
    /// Execute transactions one at a time at commit (the Ethereum-style
    /// order-then-serial-execute baseline of §5.1).
    pub serial_execution: bool,
    /// Run the SSI manager's garbage collector every N blocks.
    pub gc_interval: u64,
    /// Minimum simulated execution time per transaction (µs). Models the
    /// per-backend cost of the paper's PostgreSQL substrate (parse, plan,
    /// WAL, IPC — ~0.2 ms for the simple contract on their testbed) that
    /// an in-memory engine lacks; 0 disables. Used by the benchmark
    /// harness only (see DESIGN.md's substitution table).
    pub min_exec_micros: u64,
    /// Bound on the prepared-statement cache (LRU entries, minimum 1). A
    /// client preparing unbounded distinct SQL text evicts old entries
    /// instead of growing node memory without limit.
    pub statement_cache_cap: usize,
    /// `fsync` the block store after every append, making stored blocks
    /// durable across power loss (not just process death). Off by
    /// default: tests and benchmarks measure the protocol, not the disk.
    pub fsync: bool,
    /// How long the block processor waits for a block's transaction
    /// executions before declaring the node stuck (defensive; never hit
    /// in a healthy system).
    pub exec_wait_timeout: Duration,
    /// Bound on the out-of-order `pending` block buffer in the block
    /// processor. When full, the *highest*-numbered buffered block is
    /// evicted (it is the cheapest to re-fetch once the gap closes) and
    /// counted in `NodeMetrics`. Minimum 1.
    pub pending_cap: usize,
    /// How long a delivery gap (a buffered future block that cannot be
    /// processed) may persist before the processor triggers a peer
    /// catch-up round through the `sync_fetch` hook (§3.6).
    pub gap_timeout: Duration,
    /// Maximum blocks requested per sync round ([`SyncRequest`]'s
    /// `max_blocks`).
    pub sync_batch: u64,
    /// Serve a state snapshot instead of blocks when a sync requester
    /// lags this many blocks or more behind our tip (and it signalled
    /// `allow_snapshot`). 0 disables snapshot fast-sync on the serving
    /// side.
    pub snapshot_lag_threshold: u64,
    /// Pipelined block commit (§3.3.2–§3.3.4 staging): overlap the
    /// execution of block N+1 and the post-commit work of block N with
    /// the serial commit phase, which keeps only the ordering-dependent
    /// core (SSI check, PK check, write-set apply, row-id allocation) on
    /// the commit thread. Off = fully synchronous per-block processing
    /// (the pre-pipeline behavior). Ignored when `serial_execution` is
    /// set — the §5.1 baseline is by definition free of any overlap.
    /// Defaults to on, overridable with the `BCRDB_PIPELINE`
    /// environment variable (see [`pipeline_enabled_by_env`]).
    pub pipeline: bool,
    /// Maximum blocks admitted into the pipeline (verified, appended and
    /// execution-dispatched) ahead of the serial commit point. Minimum 1.
    pub pipeline_depth: usize,
    /// Maximum serially-committed blocks whose post-commit work (ledger
    /// records, write-set hashing, checkpoint vote, notifications) may
    /// still be queued on the post-commit worker before the commit
    /// thread blocks — the pipeline's backpressure bound. Minimum 1.
    pub postcommit_cap: usize,
    /// Run the maintenance vacuum every N blocks (0 = never), reclaiming
    /// row versions deleted at or before the checkpoint-retention
    /// horizon. Counted in `NodeMetrics` (`vacuum_runs` /
    /// `versions_reclaimed`).
    pub vacuum_interval: u64,
    /// Worker threads for the parallel write-set apply behind the serial
    /// validation gate (commit stage 2). `1` restores the fully serial
    /// apply path; chains, checkpoints and state are byte-identical
    /// either way. Defaults to the machine's available parallelism,
    /// overridable with the `BCRDB_APPLY` environment variable (see
    /// [`apply_workers_by_env`]).
    pub apply_workers: usize,
    /// Directory for disk-backed paged table storage; `None` keeps every
    /// table fully in memory. When set, cold heap segments spill to 8 KB
    /// slotted-page files through a node-wide buffer pool (see
    /// `docs/ON_DISK_FORMAT.md`), letting committed state exceed RAM.
    /// Chains, checkpoints and state hashes are byte-identical to the
    /// all-in-memory configuration.
    pub page_dir: Option<PathBuf>,
    /// Buffer-pool capacity in 8 KB frames (minimum 1; only meaningful
    /// with `page_dir`). Defaults to 1024 frames (8 MB), overridable
    /// with the `BCRDB_POOL_FRAMES` environment variable (see
    /// [`pool_frames_by_env`]).
    pub buffer_pool_frames: usize,
    /// How many blocks of recent history stay pinned in memory: a
    /// segment only spills once every version in it is quiescent at
    /// `committed height − spill_retention`, which keeps SSI-relevant
    /// recent versions resident. Minimum 1.
    pub spill_retention: u64,
}

/// The default for [`NodeConfig::pipeline`], read from the
/// `BCRDB_PIPELINE` environment variable: `off`, `0` or `false` disable
/// the pipelined commit path (the CI test matrix runs tier-1 both ways);
/// anything else — including unset — enables it.
pub fn pipeline_enabled_by_env() -> bool {
    !matches!(
        std::env::var("BCRDB_PIPELINE").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// The default for [`NodeConfig::apply_workers`], read from the
/// `BCRDB_APPLY` environment variable: `serial`, `off`, `0`, `1` or
/// `false` force the single-threaded apply path (the CI test matrix runs
/// tier-1 both ways); a number sets the worker count; anything else —
/// including unset or `parallel` — uses the machine's available
/// parallelism.
pub fn apply_workers_by_env() -> usize {
    match std::env::var("BCRDB_APPLY").as_deref() {
        Ok("serial") | Ok("off") | Ok("0") | Ok("1") | Ok("false") => 1,
        Ok(s) => s
            .parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .unwrap_or_else(default_apply_workers),
        Err(_) => default_apply_workers(),
    }
}

fn default_apply_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The default for [`NodeConfig::buffer_pool_frames`], read from the
/// `BCRDB_POOL_FRAMES` environment variable (the CI matrix runs the
/// determinism suite with a deliberately tiny pool); unset or
/// unparsable falls back to 1024 frames (8 MB of 8 KB pages).
pub fn pool_frames_by_env() -> usize {
    std::env::var("BCRDB_POOL_FRAMES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(1024)
}

impl NodeConfig {
    /// Reasonable defaults for `name` in `org` under `flow`.
    pub fn new(name: impl Into<String>, org: impl Into<String>, flow: Flow) -> NodeConfig {
        NodeConfig {
            name: name.into(),
            org: org.into(),
            flow,
            data_dir: None,
            snapshot_interval: 0,
            verify_signatures: true,
            executor_threads: 4,
            serial_execution: false,
            gc_interval: 16,
            min_exec_micros: 0,
            statement_cache_cap: 1024,
            fsync: false,
            exec_wait_timeout: Duration::from_secs(120),
            pending_cap: 1024,
            gap_timeout: Duration::from_secs(1),
            sync_batch: 64,
            snapshot_lag_threshold: 512,
            pipeline: pipeline_enabled_by_env(),
            pipeline_depth: 4,
            postcommit_cap: 8,
            vacuum_interval: 0,
            apply_workers: apply_workers_by_env(),
            page_dir: None,
            buffer_pool_frames: pool_frames_by_env(),
            spill_retention: 64,
        }
    }
}

/// Callback forwarding a transaction reference to the peer network.
pub type ForwardTxHook = Arc<dyn Fn(&Transaction) + Send + Sync>;

/// Callback snapshotting the ordering service's counters for the node's
/// Metrics RPC.
pub type OrderingStatsHook = Arc<dyn Fn() -> crate::metrics::OrderingSnapshot + Send + Sync>;

/// Callback performing one synchronous catch-up round trip against some
/// peer: send the request, return that peer's response. The network layer
/// owns peer selection, retries and failover; an `Err` means no peer
/// could serve the request.
pub type SyncFetchHook = Arc<dyn Fn(SyncRequest) -> Result<SyncResponse> + Send + Sync>;

/// Outbound callbacks wiring the node into the network: forwarding
/// transactions to other peers (EO flow), submitting to the ordering
/// service, and submitting checkpoint votes. Installed by the network
/// builder in `bcrdb-core`.
#[derive(Default, Clone)]
pub struct NodeHooks {
    /// EO: forward a locally submitted transaction to the other peers.
    pub forward_tx: Option<ForwardTxHook>,
    /// Forward a locally submitted transaction to the ordering service
    /// (EO middleware; the OE submission proxy). Fallible: an ordering
    /// failure is surfaced to the submitting client.
    pub submit_orderer: Option<Arc<dyn Fn(Transaction) -> Result<()> + Send + Sync>>,
    /// Submit a checkpoint vote after committing a block (§3.3.4).
    pub submit_checkpoint: Option<Arc<dyn Fn(CheckpointVote) + Send + Sync>>,
    /// Fetch missing blocks (or a fast-sync snapshot) from a peer
    /// (§3.6). Consulted by `Node::recover` after local replay and by
    /// the block processor when a delivery gap outlives `gap_timeout`.
    pub sync_fetch: Option<SyncFetchHook>,
    /// Snapshot the ordering service's counters (forwarded, cut,
    /// delivered, current view, view changes) so the node's Metrics RPC
    /// can report the ordering layer alongside its own micro-metrics.
    pub ordering_stats: Option<OrderingStatsHook>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
        assert!(c.verify_signatures);
        assert!(!c.serial_execution);
        assert!(c.executor_threads >= 1);
        assert_eq!(c.flow, Flow::OrderThenExecute);
    }
}
