//! Client notifications (§2(7) of the paper: "clients submit transactions
//! asynchronously and then leverage notification mechanisms to learn
//! whether their transaction was successfully committed" — the LISTEN /
//! NOTIFY analogue).

use std::collections::HashMap;

use bcrdb_chain::ledger::TxStatus;
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Notification delivered when a transaction reaches its final status.
#[derive(Clone, Debug, PartialEq)]
pub struct TxNotification {
    /// The transaction.
    pub id: GlobalTxId,
    /// Block that carried it.
    pub block: BlockHeight,
    /// Final status.
    pub status: TxStatus,
}

/// Fan-out hub: per-transaction waiters plus firehose subscribers.
#[derive(Default)]
pub struct NotificationHub {
    waiters: Mutex<HashMap<GlobalTxId, Vec<Sender<TxNotification>>>>,
    firehose: Mutex<Vec<Sender<TxNotification>>>,
}

impl NotificationHub {
    /// Fresh hub.
    pub fn new() -> NotificationHub {
        NotificationHub::default()
    }

    /// Register interest in one transaction. The channel holds exactly one
    /// notification.
    pub fn wait_for(&self, id: GlobalTxId) -> Receiver<TxNotification> {
        let (tx, rx) = bounded(1);
        self.register(id, tx);
        rx
    }

    /// Register a caller-supplied sender for `id` — the connection-level
    /// primitive behind the RPC frontend: one connection funnels every
    /// registered wait into a single channel whose sender it owns, so a
    /// disconnect can cancel all of them by identity
    /// ([`NotificationHub::cancel_sender`]).
    pub fn register(&self, id: GlobalTxId, tx: Sender<TxNotification>) {
        self.waiters.lock().entry(id).or_default().push(tx);
    }

    /// Subscribe to every notification.
    pub fn subscribe_all(&self) -> Receiver<TxNotification> {
        let (tx, rx) = unbounded();
        self.firehose.lock().push(tx);
        rx
    }

    /// Register interest in a whole batch of transactions, fanned in to a
    /// *single* channel. The channel receives exactly one notification
    /// per listed id (in commit order, not submission order) — the
    /// batch-submission primitive of the session API, replacing one
    /// channel per transaction.
    pub fn wait_for_all(&self, ids: &[GlobalTxId]) -> Receiver<TxNotification> {
        let (tx, rx) = bounded(ids.len());
        let mut waiters = self.waiters.lock();
        for id in ids {
            waiters.entry(*id).or_default().push(tx.clone());
        }
        rx
    }

    /// Drop registrations for `id` whose receiver is gone (a failed
    /// submission abandons its channel without a notification ever
    /// firing). Removes the id entirely when no live waiter remains, so
    /// failed submits cannot grow the waiter map without bound.
    pub fn cancel(&self, id: &GlobalTxId) {
        let mut waiters = self.waiters.lock();
        if let Some(ws) = waiters.get_mut(id) {
            ws.retain(|s| !s.is_disconnected());
            if ws.is_empty() {
                waiters.remove(id);
            }
        }
    }

    /// Drop **one** registration for `id` sending into the same channel
    /// as `sender` (plus any whose receiver is gone). Exactly one,
    /// mirroring one abandoned `WaitFor`: a connection that registered
    /// the same id twice (e.g. a live wait plus a failed resubmission)
    /// keeps its remaining registration, and *other* connections waiting
    /// on the same transaction are never disturbed.
    pub fn cancel_for(&self, id: &GlobalTxId, sender: &Sender<TxNotification>) {
        let mut waiters = self.waiters.lock();
        if let Some(ws) = waiters.get_mut(id) {
            if let Some(i) = ws.iter().position(|s| s.same_channel(sender)) {
                ws.remove(i);
            }
            ws.retain(|s| !s.is_disconnected());
            if ws.is_empty() {
                waiters.remove(id);
            }
        }
    }

    /// Drop every registration sending into the same channel as `sender`
    /// — a client connection disconnected, so none of its waits can ever
    /// be delivered. O(pending waiters); runs once per disconnect.
    pub fn cancel_sender(&self, sender: &Sender<TxNotification>) {
        let mut waiters = self.waiters.lock();
        waiters.retain(|_, ws| {
            ws.retain(|s| !s.same_channel(sender) && !s.is_disconnected());
            !ws.is_empty()
        });
    }

    /// Publish a final status.
    pub fn notify(&self, n: TxNotification) {
        if let Some(waiters) = self.waiters.lock().remove(&n.id) {
            for w in waiters {
                let _ = w.send(n.clone());
            }
        }
        let mut firehose = self.firehose.lock();
        firehose.retain(|s| s.send(n.clone()).is_ok());
    }

    /// Number of distinct transactions with registered waiters.
    pub fn pending_waiters(&self) -> usize {
        self.waiters.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn id(n: u8) -> GlobalTxId {
        GlobalTxId([n; 32])
    }

    #[test]
    fn targeted_waiters_receive_once() {
        let hub = NotificationHub::new();
        let rx = hub.wait_for(id(1));
        let other = hub.wait_for(id(2));
        hub.notify(TxNotification {
            id: id(1),
            block: 3,
            status: TxStatus::Committed,
        });
        let n = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(n.block, 3);
        assert_eq!(n.status, TxStatus::Committed);
        assert!(other.recv_timeout(Duration::from_millis(20)).is_err());
        assert_eq!(hub.pending_waiters(), 1);
    }

    #[test]
    fn cancel_prunes_only_dead_waiters() {
        let hub = NotificationHub::new();
        let dead = hub.wait_for(id(1));
        let live = hub.wait_for(id(1));
        drop(dead);
        hub.cancel(&id(1));
        assert_eq!(hub.pending_waiters(), 1, "live waiter survives cancel");
        hub.notify(TxNotification {
            id: id(1),
            block: 1,
            status: TxStatus::Committed,
        });
        assert!(live.recv_timeout(Duration::from_secs(1)).is_ok());
        // A fully-abandoned id disappears from the map.
        drop(hub.wait_for(id(2)));
        hub.cancel(&id(2));
        assert_eq!(hub.pending_waiters(), 0);
    }

    #[test]
    fn cancel_for_is_identity_scoped() {
        let hub = NotificationHub::new();
        let other = hub.wait_for(id(1));
        let (conn_tx, conn_rx) = crossbeam_channel::unbounded();
        hub.register(id(1), conn_tx.clone());
        hub.register(id(2), conn_tx.clone());
        assert_eq!(hub.pending_waiters(), 2);
        // Cancelling one id removes only this connection's registration.
        hub.cancel_for(&id(1), &conn_tx);
        hub.notify(TxNotification {
            id: id(1),
            block: 1,
            status: TxStatus::Committed,
        });
        assert!(other.recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(conn_rx.try_recv().is_err(), "cancelled wait must not fire");
        // A disconnect sweeps the rest.
        hub.cancel_sender(&conn_tx);
        assert_eq!(hub.pending_waiters(), 0);
    }

    #[test]
    fn batch_fan_in_delivers_every_member_once() {
        let hub = NotificationHub::new();
        let rx = hub.wait_for_all(&[id(1), id(2), id(3)]);
        hub.notify(TxNotification {
            id: id(2),
            block: 1,
            status: TxStatus::Committed,
        });
        hub.notify(TxNotification {
            id: id(9),
            block: 1,
            status: TxStatus::Committed,
        }); // not ours
        hub.notify(TxNotification {
            id: id(1),
            block: 2,
            status: TxStatus::Aborted("ww".into()),
        });
        hub.notify(TxNotification {
            id: id(3),
            block: 2,
            status: TxStatus::Committed,
        });
        let mut got: Vec<GlobalTxId> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap().id)
            .collect();
        got.sort();
        assert_eq!(got, vec![id(1), id(2), id(3)]);
        assert!(rx.recv_timeout(Duration::from_millis(20)).is_err());
    }

    #[test]
    fn firehose_sees_everything() {
        let hub = NotificationHub::new();
        let all = hub.subscribe_all();
        hub.notify(TxNotification {
            id: id(1),
            block: 1,
            status: TxStatus::Committed,
        });
        hub.notify(TxNotification {
            id: id(2),
            block: 1,
            status: TxStatus::Aborted("ssi".into()),
        });
        assert_eq!(all.recv_timeout(Duration::from_secs(1)).unwrap().id, id(1));
        assert_eq!(all.recv_timeout(Duration::from_secs(1)).unwrap().id, id(2));
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let hub = NotificationHub::new();
        drop(hub.subscribe_all());
        hub.notify(TxNotification {
            id: id(1),
            block: 1,
            status: TxStatus::Committed,
        });
        // No panic; dead sender removed.
        hub.notify(TxNotification {
            id: id(2),
            block: 1,
            status: TxStatus::Committed,
        });
    }
}
