#![warn(missing_docs)]
//! # bcrdb-node
//!
//! The database peer node: one organization's replica of the blockchain
//! relational database.
//!
//! A node assembles every lower layer — MVCC storage, SSI, the SQL engine,
//! the block store and checkpoint tracker — into the two transaction flows
//! of the paper:
//!
//! * **order-then-execute** (§3.3): blocks arrive from the ordering
//!   service; all transactions of a block execute concurrently against the
//!   state at `block − 1` on the executor pool; the block processor then
//!   serially signals commits in block order (abort-during-commit SSI);
//! * **execute-order-in-parallel** (§3.4): transactions submitted to the
//!   node start executing immediately at their client-specified snapshot
//!   height (block-height SSI, phantom/stale detection) while ordering
//!   happens in parallel; missing transactions are executed at block
//!   arrival; commits apply the block-aware rules of Table 2.
//!
//! The node also implements the checkpointing phase (write-set hashes
//! compared across nodes, §3.3.4), the ledger table (`pgLedger`, §4.2),
//! client notifications (§2(7)), crash recovery from the block store plus
//! periodic state snapshots (§3.6), peer catch-up — block sync and
//! snapshot fast-sync for crashed, partitioned and late-joining nodes
//! ([`sync`], §3.6) — and the serial-execution mode used for the paper's
//! Ethereum-style comparison (§5.1).
//!
//! Clients never touch a node directly: the [`frontend`] module defines
//! the typed [`ClientRequest`]/[`ClientResponse`] RPC surface — our
//! equivalent of the paper's PostgreSQL wire protocol + libpq extension
//! (§4.3) — dispatched per connection by a [`Frontend`], with prepared
//! statements addressed by server-side [`StatementHandle`]s from a
//! bounded LRU cache ([`statements`]).

pub mod commit;
pub mod config;
pub mod exec_pool;
pub mod frontend;
pub mod metrics;
pub mod node;
pub mod notify;
pub mod processor;
pub mod slots;
pub mod statements;
pub mod sync;
pub mod wire;

pub use config::{
    apply_workers_by_env, pipeline_enabled_by_env, pool_frames_by_env, NodeConfig, NodeHooks,
    OrderingStatsHook, SyncFetchHook,
};
pub use exec_pool::{NativeContract, NativeCtx};
pub use frontend::{ClientRequest, ClientResponse, Frontend};
pub use metrics::{MetricsSnapshot, NodeMetrics, OrderingSnapshot};
pub use node::Node;
pub use notify::TxNotification;
pub use statements::StatementHandle;
pub use sync::SyncStats;
pub use wire::ClientFrame;
