//! The [`Node`]: one organization's database peer.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_chain::blockstore::BlockStore;
use bcrdb_chain::checkpoint::{CheckpointTracker, Divergence};
use bcrdb_chain::ledger::{ledger_schema, LedgerRecord, LEDGER_TABLE_NAME};
use bcrdb_chain::sync::{SyncRequest, SyncResponse};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::codec::{Decoder, Encoder};
use bcrdb_common::error::{AbortReason, Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId, RowId, TxId};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::CertificateRegistry;
use bcrdb_crypto::sha256::{sha256, Digest};
use bcrdb_engine::access::AccessController;
use bcrdb_engine::exec::{Executor, StatementEffect};
use bcrdb_engine::prepared::PreparedQuery;
use bcrdb_engine::procedures::ContractRegistry;
use bcrdb_engine::result::QueryResult;
use bcrdb_sql::ast::Statement;
use bcrdb_sql::display::function_to_sql;
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::pager::PagedStore;
use bcrdb_storage::persist::{self, SnapshotCarry};
use bcrdb_storage::snapshot::ScanMode;
use bcrdb_storage::table::Table;
use bcrdb_storage::version::Version;
use bcrdb_txn::context::TxnCtx;
use bcrdb_txn::ssi::{Flow, SsiManager};
use crossbeam_channel::Receiver;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::commit;
use crate::config::{NodeConfig, NodeHooks};
use crate::exec_pool::{ExecEnv, ExecPool, ExecTask, NativeContract};
use crate::metrics::NodeMetrics;
use crate::notify::{NotificationHub, TxNotification};
use crate::processor;
use crate::slots::SlotTable;
use crate::statements::{StatementCache, StatementHandle};
use crate::sync::{self, SyncStats};

const SNAPSHOT_MAGIC: &[u8; 8] = b"BCRDBNS1";

/// A database peer node.
pub struct Node {
    /// Static configuration.
    pub config: NodeConfig,
    pub(crate) env: Arc<ExecEnv>,
    pub(crate) pool: Arc<ExecPool>,
    /// Write-set apply pool for the commit stage (`apply_workers = 1`
    /// spawns no threads and applies inline).
    pub(crate) apply: commit::ApplyPool,
    /// The append-only block store (`pgBlockstore`).
    pub blockstore: Arc<BlockStore>,
    /// The paged table store (buffer pool + page files) when
    /// `config.page_dir` is set; `None` keeps all state in memory.
    pub(crate) paged: Option<Arc<PagedStore>>,
    /// Checkpoint comparison state (§3.3.4).
    pub checkpoints: Arc<CheckpointTracker>,
    pub(crate) notifications: Arc<NotificationHub>,
    pub(crate) hooks: RwLock<NodeHooks>,
    /// The ledger table. Behind a lock because a snapshot fast-sync
    /// replaces the whole catalog (and with it this table object).
    pub(crate) ledger: RwLock<Arc<Table>>,
    pub(crate) divergences: Mutex<Vec<Divergence>>,
    pub(crate) shutting_down: AtomicBool,
    /// Latest encoded state snapshot `(height, bytes)`, kept in memory so
    /// the sync server can offer fast-sync to badly lagging peers even
    /// on diskless nodes. Refreshed by [`Node::write_snapshot`].
    latest_snapshot: Mutex<Option<(BlockHeight, Arc<Vec<u8>>)>>,
    /// Statistics of the most recent peer catch-up run (observability).
    last_sync: Mutex<Option<SyncStats>>,
    /// Prepared-statement cache keyed by SQL text and addressed by
    /// server-side handles (§4.3: the client interface is libpq-style;
    /// statement reuse amortizes parsing). Bounded LRU, cap from
    /// [`NodeConfig::statement_cache_cap`].
    statements: Mutex<StatementCache>,
    /// Stage-3 watermark: the highest block whose post-commit work
    /// (ledger records, checkpoint hash, notifications) has completed.
    /// Equal to the committed height when the pipeline is off; may lag
    /// it by up to `NodeConfig::postcommit_cap` blocks when on.
    postcommit: PostCommitMark,
}

/// The post-commit watermark plus the condvar the commit thread blocks
/// on for backpressure, snapshot barriers and catch-up drains.
struct PostCommitMark {
    height: Mutex<BlockHeight>,
    cv: Condvar,
}

impl PostCommitMark {
    fn new(height: BlockHeight) -> PostCommitMark {
        PostCommitMark {
            height: Mutex::new(height),
            cv: Condvar::new(),
        }
    }
}

impl Node {
    /// Create (or re-open) a node. When `config.data_dir` is set, the
    /// block store is opened from disk and the latest state snapshot is
    /// loaded; call [`Node::recover`] (after installing any bootstrap
    /// schema/contracts) to replay blocks beyond the snapshot height.
    pub fn new(
        config: NodeConfig,
        certs: Arc<CertificateRegistry>,
        orgs: Vec<String>,
    ) -> Result<Arc<Node>> {
        let paged = match &config.page_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Some(PagedStore::open(
                    dir,
                    config.buffer_pool_frames.max(1),
                    config.fsync,
                )?)
            }
            None => None,
        };
        let (blockstore, snapshot) = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let store = BlockStore::open_with(dir.join("blocks.dat"), config.fsync)?;
                let snap_path = dir.join("state.snapshot");
                let snapshot = if snap_path.exists() {
                    match load_snapshot(&snap_path, paged.as_ref()) {
                        Ok(s) => Some(s),
                        // A paged snapshot can legitimately be unusable —
                        // e.g. the process died between checkpointing the
                        // page files and renaming the snapshot, so the two
                        // are from different barriers. Fall back to full
                        // replay instead of refusing to start.
                        Err(e) if paged.is_some() => {
                            eprintln!(
                                "bcrdb[{}]: state snapshot unusable ({e}); replaying chain from genesis",
                                config.name
                            );
                            None
                        }
                        Err(e) => return Err(e),
                    }
                } else {
                    None
                };
                (Arc::new(store), snapshot)
            }
            None => (Arc::new(BlockStore::in_memory()), None),
        };
        // Replaying from genesis: whatever page files a previous life
        // left behind describe state we are about to regenerate.
        if snapshot.is_none() {
            if let Some(store) = &paged {
                store.wipe()?;
            }
        }
        // Seed the sync server's snapshot cache from disk, so a restarted
        // node can offer fast-sync immediately instead of only after the
        // next snapshot interval. Paged nodes skip this: their disk
        // snapshots reference chains in the local page files (external
        // carry) and are meaningless to a peer — the cache is refreshed
        // with a self-contained (inline) encoding at the next barrier.
        let cached_snapshot = if paged.is_some() {
            None
        } else {
            snapshot
                .as_ref()
                .map(|(snap, bytes)| (snap.height, Arc::clone(bytes)))
        };

        let contracts = Arc::new(ContractRegistry::new());
        let processed: Arc<Mutex<HashSet<GlobalTxId>>> = Arc::new(Mutex::new(HashSet::new()));
        let (catalog, restored_height) = match snapshot.map(|(snap, _)| snap) {
            Some(snap) => {
                for (_, source) in &snap.contracts {
                    if let Statement::CreateFunction(def) = bcrdb_sql::parse_statement(source)? {
                        contracts.install(def)?;
                    }
                }
                *processed.lock() = snap.processed;
                (Arc::new(snap.catalog), snap.height)
            }
            None => {
                let catalog = match &paged {
                    Some(store) => Arc::new(Catalog::with_store(Arc::clone(store))),
                    None => Arc::new(Catalog::new()),
                };
                catalog.create_table(ledger_schema())?;
                (catalog, 0)
            }
        };
        let ledger = catalog.get(LEDGER_TABLE_NAME)?;

        let env = Arc::new(ExecEnv {
            catalog,
            contracts,
            access: Arc::new(AccessController::new()),
            certs,
            ssi: Arc::new(SsiManager::new()),
            slots: Arc::new(SlotTable::new()),
            metrics: Arc::new(NodeMetrics::new()),
            committed_height: Arc::new(AtomicU64::new(restored_height)),
            verify_signatures: config.verify_signatures,
            processed,
            min_exec_micros: config.min_exec_micros,
            natives: Mutex::new(Default::default()),
            orgs,
        });
        let pool = ExecPool::start(Arc::clone(&env), config.executor_threads);
        let apply = commit::ApplyPool::start(config.apply_workers);
        env.metrics.set_apply_workers(apply.workers() as u64);

        let statements = Mutex::new(StatementCache::new(config.statement_cache_cap));
        let node = Arc::new(Node {
            config,
            env,
            pool,
            apply,
            blockstore,
            checkpoints: Arc::new(CheckpointTracker::new()),
            notifications: Arc::new(NotificationHub::new()),
            paged,
            hooks: RwLock::new(NodeHooks::default()),
            ledger: RwLock::new(ledger),
            divergences: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            latest_snapshot: Mutex::new(cached_snapshot),
            last_sync: Mutex::new(None),
            statements,
            postcommit: PostCommitMark::new(restored_height),
        });

        if restored_height > 0 {
            // A restored catalog carries rows but no planner statistics
            // (they are not serialized); rebuild them exactly from the
            // heap so the first query plans from real numbers.
            node.rebuild_all_stats(restored_height);
        }

        Ok(node)
    }

    /// Rebuild planner statistics for every table exactly from the heap,
    /// sealing a summary at `height`. Restore paths (snapshot boot,
    /// fast-sync) bypass the commit-time incremental fold, so the
    /// statistics must be reconstructed before the node serves queries.
    fn rebuild_all_stats(&self, height: BlockHeight) {
        for name in self.env.catalog.table_names() {
            if let Ok(table) = self.env.catalog.get(&name) {
                table.rebuild_stats(height);
                self.env.metrics.on_stats_rebuild();
            }
        }
    }

    /// Recovery (§3.6): replay all stored blocks beyond the current
    /// committed height (the snapshot height, or 0 on a fresh store),
    /// then — when a `sync_fetch` hook is installed — catch up from
    /// peers to the network head before the node starts accepting
    /// traffic ("the node then retrieves any missing blocks, processes
    /// and commits them one by one"). Callers must install bootstrap
    /// schema/contracts *before* recovering, exactly as they did on the
    /// original run — on-chain deployments are replayed automatically.
    /// Returns the recovered height.
    pub fn recover(self: &Arc<Self>) -> Result<BlockHeight> {
        let replay = self.blockstore.blocks_after(self.height());
        for block in replay {
            processor::process_block(self, &block)?;
        }
        if self.hooks.read().sync_fetch.is_some() {
            // Quiescent (not yet serving traffic): snapshot fast-sync is
            // allowed if we lag far enough behind.
            self.catch_up(true)?;
        }
        Ok(self.height())
    }

    /// Run one peer catch-up to the network head (§3.6). No-op without a
    /// `sync_fetch` hook. `allow_snapshot` permits installing a state
    /// snapshot in place of replay and must only be true while the node
    /// is quiescent (recovery/rejoin, before accepting client traffic).
    pub fn catch_up(self: &Arc<Self>, allow_snapshot: bool) -> Result<SyncStats> {
        let stats = sync::catch_up(self, allow_snapshot)?;
        *self.last_sync.lock() = Some(stats.clone());
        Ok(stats)
    }

    /// Statistics of the most recent peer catch-up run, if any.
    pub fn last_sync_stats(&self) -> Option<SyncStats> {
        self.last_sync.lock().clone()
    }

    /// Serve one peer catch-up request from the local block store
    /// (§3.6). Blocks come back verified-by-construction (they extend
    /// our own chain); requesters re-verify against their tip and the
    /// orderer certificates. Above `snapshot_lag_threshold`, a cached
    /// state snapshot is offered instead so the requester can skip
    /// re-executing the bulk of the chain.
    pub fn serve_sync(&self, req: &SyncRequest) -> SyncResponse {
        let tip = self.blockstore.height();
        if req.allow_snapshot && self.config.snapshot_lag_threshold > 0 {
            let lag = tip.saturating_sub(req.from_height);
            if lag >= self.config.snapshot_lag_threshold {
                if let Some((height, bytes)) = self.latest_snapshot.lock().clone() {
                    if height > req.from_height {
                        return SyncResponse::Snapshot {
                            height,
                            state: (*bytes).clone(),
                            tip,
                        };
                    }
                }
            }
        }
        let max = req.max_blocks.max(1);
        let mut blocks = Vec::new();
        let mut n = req.from_height + 1;
        while n <= tip && (blocks.len() as u64) < max {
            let Some(b) = self.blockstore.get(n) else {
                break;
            };
            blocks.push((*b).clone());
            n += 1;
        }
        SyncResponse::Blocks { blocks, tip }
    }

    /// Install a fast-sync state snapshot received from a peer,
    /// replacing the whole committed state. Only call while quiescent
    /// (no in-flight transactions, not serving clients): the catalog,
    /// contract registry, processed-id set and committed height are all
    /// swapped. The block store is *not* touched — the catch-up driver
    /// still fetches the skipped blocks so the local chain stays
    /// complete and auditable.
    pub(crate) fn install_fast_sync(&self, state: &[u8]) -> Result<()> {
        let snap = decode_node_snapshot(state, self.paged.as_ref())?;
        if snap.height <= self.height() {
            return Err(Error::internal(format!(
                "fast-sync snapshot at height {} is not ahead of ours ({})",
                snap.height,
                self.height()
            )));
        }
        let contracts: Vec<_> = snap
            .contracts
            .iter()
            .map(|(_, source)| bcrdb_sql::parse_statement(source))
            .collect::<Result<_>>()?;
        self.env.catalog.replace_with(snap.catalog);
        for name in self.env.contracts.names() {
            let _ = self.env.contracts.remove(&name);
        }
        for stmt in contracts {
            if let Statement::CreateFunction(def) = stmt {
                self.env.contracts.install(def)?;
            }
        }
        *self.env.processed.lock() = snap.processed;
        *self.ledger.write() = self.env.catalog.get(LEDGER_TABLE_NAME)?;
        self.env
            .committed_height
            .store(snap.height, Ordering::Relaxed);
        self.note_postcommit(snap.height);
        self.rebuild_all_stats(snap.height);
        self.env.metrics.on_fast_sync();
        Ok(())
    }

    /// Install outbound hooks (forwarding, ordering, checkpoints).
    pub fn set_hooks(&self, hooks: NodeHooks) {
        *self.hooks.write() = hooks;
    }

    /// Register a native (built-in) contract such as the deploy family of
    /// §3.7.
    pub fn register_native(&self, name: impl Into<String>, contract: NativeContract) {
        self.env.natives.lock().insert(name.into(), contract);
    }

    /// The access controller (the core layer sets per-contract policies).
    pub fn access(&self) -> &Arc<AccessController> {
        &self.env.access
    }

    /// The contract registry.
    pub fn contracts(&self) -> &Arc<ContractRegistry> {
        &self.env.contracts
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.env.catalog
    }

    /// Node metrics.
    pub fn metrics(&self) -> &Arc<NodeMetrics> {
        &self.env.metrics
    }

    /// Snapshot (and reset) the metrics window, overlaying the ordering
    /// service's counters when an `ordering_stats` hook is installed —
    /// what the Metrics RPC serves, so a remote client can observe the
    /// ordering layer (current view, view changes) without direct access
    /// to the service.
    pub fn metrics_report(&self) -> crate::metrics::MetricsSnapshot {
        let mut snap = self.env.metrics.take();
        snap.committed_height = self.height();
        snap.postcommit_height = self.postcommit_height();
        if let Some(store) = &self.paged {
            snap.pages_read = store.pages_read();
            snap.pages_written = store.pages_written();
            snap.pages_evicted = store.pages_evicted();
            snap.pool_hit_rate = store.pool_hit_rate();
        }
        if let Some(hook) = &self.hooks.read().ordering_stats {
            snap.ordering = hook();
        }
        snap.plans_index_intersection = self.env.catalog.plans_multi_index();
        snap.plans_covering = self.env.catalog.plans_covering();
        snap
    }

    /// The paged table store, if this node runs with disk-backed
    /// storage (`NodeConfig::page_dir`).
    pub fn paged_store(&self) -> Option<&Arc<PagedStore>> {
        self.paged.as_ref()
    }

    /// Committed block height.
    pub fn height(&self) -> BlockHeight {
        self.env.committed_height.load(Ordering::Relaxed)
    }

    /// Post-commit (stage 3) watermark: the highest block whose ledger
    /// records, checkpoint hash and client notifications are fully
    /// applied. Trails [`Node::height`] by at most
    /// `NodeConfig::postcommit_cap` blocks while the pipeline is busy.
    pub fn postcommit_height(&self) -> BlockHeight {
        *self.postcommit.height.lock()
    }

    /// Advance the post-commit watermark (stage-3 worker / synchronous
    /// tail) and wake anyone blocked on it.
    pub(crate) fn note_postcommit(&self, height: BlockHeight) {
        let mut h = self.postcommit.height.lock();
        if *h < height {
            *h = height;
        }
        self.postcommit.cv.notify_all();
    }

    /// Block until the post-commit watermark reaches `height` or the
    /// timeout elapses; returns whether the watermark is there. Callers
    /// loop with short timeouts so shutdown is always observed.
    pub(crate) fn wait_postcommit(
        &self,
        height: BlockHeight,
        timeout: std::time::Duration,
    ) -> bool {
        let mut h = self.postcommit.height.lock();
        if *h >= height {
            return true;
        }
        self.postcommit.cv.wait_for(&mut h, timeout);
        *h >= height
    }

    /// Has the block processor halted on a rejected block (§3.5(4))?
    /// Sticky; the reason is in [`NodeMetrics::halt_reason`]. Exposed to
    /// remote clients through the Metrics RPC (`MetricsSnapshot::halted`).
    pub fn is_halted(&self) -> bool {
        self.env.metrics.halted()
    }

    /// Start the block-processing loop on `block_rx` (blocks delivered by
    /// the ordering service, §3.3.2).
    pub fn start(self: &Arc<Self>, block_rx: Receiver<Arc<bcrdb_chain::block::Block>>) {
        let node = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("{}-blockproc", self.config.name))
            .spawn(move || processor::run_loop(node, block_rx))
            .expect("spawn block processor");
    }

    /// Stop processing (threads exit at the next opportunity). Never
    /// blocks — including on a halted processor: the pipelined commit
    /// thread checks this flag between wait slices, and the post-commit
    /// worker exits once its queue drains, so a processor that stopped
    /// on a rejected block leaves nothing for shutdown to wait on. The
    /// watermark waiters are woken so a commit thread blocked on
    /// backpressure or a snapshot barrier re-checks the flag immediately.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        self.postcommit.cv.notify_all();
    }

    // -------------------------------------------------------- submission

    /// EO flow: a client submits a transaction to this node (§3.4.1). The
    /// node authenticates, forwards to the other peers and the ordering
    /// service, and starts executing immediately.
    pub fn submit_local(&self, tx: Transaction) -> Result<()> {
        if self.config.flow != Flow::ExecuteOrderParallel {
            // OE: clients submit to the ordering service; a node may proxy.
            let hooks = self.hooks.read();
            if let Some(submit) = &hooks.submit_orderer {
                return submit(tx);
            }
            return Err(Error::Config(
                "order-then-execute node has no ordering hook installed".into(),
            ));
        }
        if self.env.processed.lock().contains(&tx.id) {
            return Err(Error::Abort(AbortReason::DuplicateTxId));
        }
        if self.config.verify_signatures {
            tx.verify(&self.env.certs)?;
        }
        let tx = Arc::new(tx);
        if self.env.slots.try_claim(tx.id) {
            self.schedule(Arc::clone(&tx));
        }
        // Forward in the background (middleware, §4.2).
        let hooks = self.hooks.read();
        if let Some(forward) = &hooks.forward_tx {
            forward(&tx);
        }
        if let Some(submit) = &hooks.submit_orderer {
            // An ordering failure means the transaction can never commit;
            // surface it to the submitting client.
            submit((*tx).clone())?;
        }
        Ok(())
    }

    /// EO flow: a transaction forwarded by another peer.
    pub fn on_peer_tx(&self, tx: Transaction) {
        if self.config.flow != Flow::ExecuteOrderParallel {
            return;
        }
        if self.env.processed.lock().contains(&tx.id) {
            return;
        }
        let tx = Arc::new(tx);
        if self.env.slots.try_claim(tx.id) {
            self.schedule(tx);
        }
    }

    pub(crate) fn schedule(&self, tx: Arc<Transaction>) {
        let snapshot_height = tx.snapshot_height.unwrap_or_else(|| self.height());
        self.pool.submit(ExecTask {
            tx,
            snapshot_height,
            mode: ScanMode::Strict,
        });
    }

    // ------------------------------------------------------------ queries

    /// Run a read-only query (SELECT, including provenance `HISTORY()`
    /// scans) at the current committed height. Reads execute on this node
    /// only and are not recorded on the blockchain (§3.7).
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.query_at(sql, params, self.height())
    }

    /// Run a read-only query at a specific historical block height.
    /// The height must not exceed the committed tip: a "future" snapshot
    /// cannot be served (its blocks have not committed here yet).
    pub fn query_at(
        &self,
        sql: &str,
        params: &[Value],
        height: BlockHeight,
    ) -> Result<QueryResult> {
        self.check_height(height)?;
        let stmt = bcrdb_sql::parse_statement(sql)?;
        if !matches!(stmt, Statement::Select(_) | Statement::Explain(_)) {
            return Err(Error::Analysis(
                "only SELECT statements may run outside a blockchain transaction (§3.7)".into(),
            ));
        }
        let ctx = TxnCtx::read_only(&self.env.ssi, height);
        let exec = Executor::new(&self.env.catalog, &ctx, params);
        match exec.execute(&stmt)? {
            StatementEffect::Rows(r) => Ok(r),
            _ => Err(Error::internal("SELECT produced a non-row effect")),
        }
    }

    fn check_height(&self, height: BlockHeight) -> Result<()> {
        let tip = self.height();
        if height > tip {
            return Err(Error::Analysis(format!(
                "snapshot height {height} is beyond this node's committed height {tip}"
            )));
        }
        Ok(())
    }

    /// Parse (or fetch from the statement cache) a reusable read-only
    /// statement. Repeated `prepare` calls with the same SQL text share
    /// one parsed AST across all of this node's sessions.
    pub fn prepare(&self, sql: &str) -> Result<Arc<PreparedQuery>> {
        self.prepare_handle(sql).map(|(_, q)| q)
    }

    /// Like [`Node::prepare`], but also returns the statement's
    /// server-side handle — what the RPC frontend hands to clients so
    /// later executions carry an 8-byte id instead of the SQL text.
    pub fn prepare_handle(&self, sql: &str) -> Result<(StatementHandle, Arc<PreparedQuery>)> {
        self.statements.lock().prepare(sql)
    }

    /// Execute a cached statement by handle. An evicted or unknown
    /// handle is [`Error::NotFound`]; drivers re-prepare and retry.
    pub fn query_by_handle(
        &self,
        handle: StatementHandle,
        params: &[Value],
        height: Option<BlockHeight>,
    ) -> Result<QueryResult> {
        let q = self.statements.lock().get(handle)?;
        match height {
            Some(h) => self.query_prepared_at(&q, params, h),
            None => self.query_prepared(&q, params),
        }
    }

    /// One-shot read-only query routed through the statement cache, so
    /// repeated SQL text is parsed once even without an explicit prepare
    /// (the frontend's `Query`/`QueryAt` path).
    pub fn query_cached(
        &self,
        sql: &str,
        params: &[Value],
        height: Option<BlockHeight>,
    ) -> Result<QueryResult> {
        let q = self.prepare(sql)?;
        match height {
            Some(h) => self.query_prepared_at(&q, params, h),
            None => self.query_prepared(&q, params),
        }
    }

    /// Number of cached prepared statements (observability/tests).
    pub fn prepared_statement_count(&self) -> usize {
        self.statements.lock().len()
    }

    /// The notification hub (transports register connection channels).
    pub fn notifications(&self) -> &Arc<NotificationHub> {
        &self.notifications
    }

    /// Execute a prepared statement at the current committed height.
    pub fn query_prepared(&self, q: &PreparedQuery, params: &[Value]) -> Result<QueryResult> {
        self.query_prepared_at(q, params, self.height())
    }

    /// Execute a prepared statement at a historical height.
    pub fn query_prepared_at(
        &self,
        q: &PreparedQuery,
        params: &[Value],
        height: BlockHeight,
    ) -> Result<QueryResult> {
        self.check_height(height)?;
        let ctx = TxnCtx::read_only(&self.env.ssi, height);
        q.execute(&self.env.catalog, &ctx, params)
    }

    /// Register for the final status of a transaction.
    pub fn wait_for(&self, id: GlobalTxId) -> Receiver<TxNotification> {
        self.notifications.wait_for(id)
    }

    /// Register for the final statuses of a batch of transactions on one
    /// fanned-in channel (see `NotificationHub::wait_for_all`).
    pub fn wait_for_batch(&self, ids: &[GlobalTxId]) -> Receiver<TxNotification> {
        self.notifications.wait_for_all(ids)
    }

    /// Drop abandoned waiter registrations for `id` — call after a
    /// failed submission whose receiver was discarded, so the hub's
    /// waiter map cannot grow without bound.
    pub fn cancel_wait(&self, id: &GlobalTxId) {
        self.notifications.cancel(id)
    }

    /// Number of distinct transactions with registered notification
    /// waiters (observability / leak tests).
    pub fn pending_notification_waiters(&self) -> usize {
        self.notifications.pending_waiters()
    }

    /// Subscribe to all transaction notifications.
    pub fn subscribe_notifications(&self) -> Receiver<TxNotification> {
        self.notifications.subscribe_all()
    }

    /// Checkpoint divergences detected so far (§3.5 properties 3/5).
    pub fn divergences(&self) -> Vec<Divergence> {
        self.divergences.lock().clone()
    }

    /// Hash of the full committed state at the current height, excluding
    /// the ledger table (whose commit timestamps are node-local). Two
    /// honest replicas at the same height produce identical hashes.
    pub fn state_hash(&self) -> Digest {
        let mut enc = Encoder::with_capacity(64 * 1024);
        enc.put_u64(self.height());
        for name in self.env.catalog.table_names() {
            if name == LEDGER_TABLE_NAME {
                continue;
            }
            let table = self.env.catalog.get(&name).expect("listed table");
            enc.put_str(&name);
            // Committed versions in (row id, creator block) order.
            let mut versions: Vec<(u64, u64, Vec<Value>, Option<u64>)> = table
                .all_versions()
                .iter()
                .filter_map(|v| {
                    let st = v.state();
                    let creator = st.creator_block?;
                    if st.aborted || creator > self.height() {
                        return None;
                    }
                    let deleter = st.deleter_block.filter(|d| *d <= self.height());
                    Some((st.row_id.0, creator, v.data.clone(), deleter))
                })
                .collect();
            versions.sort_by_key(|(rid, cb, _, _)| (*rid, *cb));
            enc.put_u32(versions.len() as u32);
            for (rid, cb, data, deleter) in versions {
                enc.put_u64(rid);
                enc.put_u64(cb);
                enc.put_u64(deleter.unwrap_or(0));
                enc.put_row(&data);
            }
        }
        sha256(&enc.finish())
    }

    /// Reclaim old row versions across all tables (the enhanced vacuum of
    /// §7). Returns the number of versions removed.
    pub fn vacuum(&self, horizon: BlockHeight) -> usize {
        let mut total = 0;
        for name in self.env.catalog.table_names() {
            if let Ok(table) = self.env.catalog.get(&name) {
                total += table.vacuum(horizon);
            }
        }
        total
    }

    /// Spill quiescent cold heap segments to the page files (paged
    /// nodes only — a no-op otherwise). `horizon` is the height at or
    /// below which versions count as cold; `lsn` stamps the written
    /// chains so crash recovery can pick the newest image of each
    /// segment. Returns the number of segments spilled.
    pub fn spill(&self, horizon: BlockHeight, lsn: u64) -> usize {
        if self.paged.is_none() {
            return 0;
        }
        let mut total = 0;
        for name in self.env.catalog.table_names() {
            if let Ok(table) = self.env.catalog.get(&name) {
                total += table.spill(horizon, lsn);
            }
        }
        total
    }

    // ------------------------------------------------------- persistence

    pub(crate) fn is_processed(&self, id: &GlobalTxId) -> bool {
        self.env.processed.lock().contains(id)
    }

    pub(crate) fn mark_processed(&self, id: GlobalTxId) {
        self.env.processed.lock().insert(id);
    }

    pub(crate) fn append_ledger(&self, records: &[LedgerRecord], block: BlockHeight) {
        if records.is_empty() {
            return;
        }
        let ledger = self.ledger.read();
        // One id reservation and one batched append per block: the
        // ledger grows by whole blocks, so per-record allocation is
        // pure lock traffic.
        let base = ledger.reserve_row_ids(records.len() as u64).0;
        let versions = records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Version::restored(
                    TxId::INVALID,
                    r.to_row(),
                    RowId(base + i as u64),
                    block,
                    None,
                    None,
                )
            })
            .collect();
        ledger.append_restored_batch(versions);
    }

    /// Read back ledger records for a block (recovery checks, tests).
    pub fn ledger_records(&self, block: BlockHeight) -> Vec<LedgerRecord> {
        let mut out = Vec::new();
        let ledger = self.ledger.read();
        for v in ledger.all_versions() {
            if v.state().creator_block == Some(block) {
                if let Ok(r) = LedgerRecord::from_row(&v.data) {
                    out.push(r);
                }
            }
        }
        out.sort_by_key(|r| r.tx_index);
        out
    }

    /// Take a state snapshot: encode, cache in memory for the sync
    /// server, and (when file-backed) persist atomically via tmp +
    /// rename. No transactions may be committing concurrently — called
    /// from the block processor only.
    ///
    /// Paged nodes checkpoint the page store *first*: the on-disk
    /// snapshot references page-file chains by id, so the chains must
    /// be durable and stamped with the barrier height before the
    /// snapshot that points at them exists. A crash between the two
    /// steps leaves a height mismatch, which restore detects (falling
    /// back to a full chain replay). The in-memory copy served to
    /// fast-sync peers instead carries raw page images inline, making
    /// it self-contained.
    pub(crate) fn write_snapshot(&self) -> Result<()> {
        let height = self.height();
        if let Some(store) = &self.paged {
            store.checkpoint(height)?;
            if self.config.snapshot_lag_threshold > 0 {
                let inline = Arc::new(self.encode_node_snapshot(SnapshotCarry::Inline)?);
                *self.latest_snapshot.lock() = Some((height, inline));
            }
            if let Some(dir) = &self.config.data_dir {
                let bytes = self.encode_node_snapshot(SnapshotCarry::External)?;
                let tmp = dir.join("state.snapshot.tmp");
                std::fs::write(&tmp, &bytes)?;
                std::fs::rename(&tmp, dir.join("state.snapshot"))?;
            }
            return Ok(());
        }
        let bytes = Arc::new(self.encode_node_snapshot(SnapshotCarry::External)?);
        *self.latest_snapshot.lock() = Some((height, Arc::clone(&bytes)));
        if let Some(dir) = &self.config.data_dir {
            let tmp = dir.join("state.snapshot.tmp");
            std::fs::write(&tmp, bytes.as_slice())?;
            std::fs::rename(&tmp, dir.join("state.snapshot"))?;
        }
        Ok(())
    }

    /// Encode the node's committed state (catalog, contract sources,
    /// processed-id set) in the snapshot format shared by disk snapshots
    /// and snapshot fast-sync. `carry` selects how paged-out segments
    /// travel (by reference to our page files, or inline); it is
    /// irrelevant on in-memory catalogs.
    fn encode_node_snapshot(&self, carry: SnapshotCarry) -> Result<Vec<u8>> {
        let mut enc = Encoder::with_capacity(256 * 1024);
        enc.put_bytes(SNAPSHOT_MAGIC);
        enc.put_bytes(&persist::encode_catalog_carry(
            &self.env.catalog,
            self.height(),
            carry,
        )?);
        let names = self.env.contracts.names();
        enc.put_u32(names.len() as u32);
        for name in names {
            let def = self.env.contracts.get(&name).expect("listed contract");
            enc.put_str(&name);
            enc.put_str(&function_to_sql(&def));
        }
        let processed = self.env.processed.lock();
        enc.put_u32(processed.len() as u32);
        // Deterministic bytes (not strictly required, but keeps snapshots
        // reproducible for testing and comparable across replicas).
        let mut ids: Vec<&GlobalTxId> = processed.iter().collect();
        ids.sort();
        for id in ids {
            enc.put_digest(&id.0);
        }
        Ok(enc.finish())
    }
}

struct LoadedSnapshot {
    catalog: Catalog,
    height: BlockHeight,
    contracts: Vec<(String, String)>,
    processed: HashSet<GlobalTxId>,
}

fn load_snapshot(
    path: &PathBuf,
    store: Option<&Arc<PagedStore>>,
) -> Result<(LoadedSnapshot, Arc<Vec<u8>>)> {
    let bytes = std::fs::read(path)?;
    let snap = decode_node_snapshot(&bytes, store)?;
    Ok((snap, Arc::new(bytes)))
}

fn decode_node_snapshot(bytes: &[u8], store: Option<&Arc<PagedStore>>) -> Result<LoadedSnapshot> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_bytes()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(Error::Codec("bad node snapshot magic".into()));
    }
    let catalog_bytes = dec.get_bytes()?;
    let (catalog, height) = persist::decode_catalog_with(&catalog_bytes, store)?;
    let n = dec.get_u32()? as usize;
    let mut contracts = Vec::with_capacity(n);
    for _ in 0..n {
        let name = dec.get_str()?;
        let source = dec.get_str()?;
        contracts.push((name, source));
    }
    let n = dec.get_u32()? as usize;
    let mut processed = HashSet::with_capacity(n);
    for _ in 0..n {
        processed.insert(GlobalTxId(dec.get_digest()?));
    }
    Ok(LoadedSnapshot {
        catalog,
        height,
        contracts,
        processed,
    })
}
