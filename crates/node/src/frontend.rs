//! The node's client-facing RPC frontend.
//!
//! The paper's clients speak to database nodes over PostgreSQL's wire
//! protocol plus a libpq extension for snapshot heights (§4.3). This
//! module is our equivalent of that boundary: a typed
//! [`ClientRequest`]/[`ClientResponse`] message pair covering the whole
//! client surface (submission, queries, server-side prepared-statement
//! handles, notification waits, metrics), dispatched per **connection**
//! by a [`Frontend`].
//!
//! The frontend is transport-agnostic: an in-process transport calls
//! [`Frontend::handle`] directly, while a simulated-network transport
//! moves the same messages over a `SimNetwork` using the codec-derived
//! [`ClientRequest::wire_size`]/[`response_wire_size`] byte counts, so
//! latency/bandwidth profiles apply to client traffic exactly as they do
//! to peer and orderer traffic.
//!
//! Notification waits registered through a frontend all funnel into one
//! per-connection channel; [`Frontend::disconnect`] (and `Drop`) cancels
//! every outstanding registration, so an abandoned connection cannot
//! leak waiters in the node's [`crate::notify::NotificationHub`].

use std::sync::Arc;

use bcrdb_chain::tx::Transaction;
use bcrdb_common::codec::Encoder;
use bcrdb_common::error::Result;
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_common::value::Value;
use bcrdb_engine::result::QueryResult;
use crossbeam_channel::{unbounded, Receiver, Sender};

use crate::metrics::MetricsSnapshot;
use crate::node::Node;
use crate::notify::TxNotification;
use crate::statements::StatementHandle;

/// A request from a client to its home node — the complete RPC surface
/// of the client/node boundary.
#[derive(Clone, Debug)]
pub enum ClientRequest {
    /// Submit a signed transaction (EO: execute + forward + order;
    /// OE: proxy to the ordering service).
    Submit(Box<Transaction>),
    /// One-shot read-only query at the current committed height (routed
    /// through the statement cache server-side).
    Query {
        /// SELECT text with `$n` placeholders.
        sql: String,
        /// Positional parameters.
        params: Vec<Value>,
    },
    /// One-shot read-only query at a historical height (time travel;
    /// the §4.3 libpq snapshot extension).
    QueryAt {
        /// SELECT text with `$n` placeholders.
        sql: String,
        /// Positional parameters.
        params: Vec<Value>,
        /// Snapshot height; must not exceed the node's committed tip.
        height: BlockHeight,
    },
    /// Parse a read-only statement into the node's bounded statement
    /// cache; answers with a server-side handle.
    Prepare {
        /// SELECT text with `$n` placeholders.
        sql: String,
    },
    /// Execute a previously prepared statement by handle. An evicted
    /// handle is `Error::NotFound` (drivers re-prepare transparently).
    QueryPrepared {
        /// Handle from a [`ClientRequest::Prepare`] response.
        handle: StatementHandle,
        /// Positional parameters.
        params: Vec<Value>,
        /// Optional historical snapshot height.
        height: Option<BlockHeight>,
    },
    /// Register this connection for the final status of one transaction;
    /// the notification arrives on the connection's notification stream.
    WaitFor {
        /// The awaited transaction.
        id: GlobalTxId,
    },
    /// Register for a whole batch at once (one registration round trip).
    WaitForBatch {
        /// The awaited transactions.
        ids: Vec<GlobalTxId>,
    },
    /// Drop this connection's registration for `id` (e.g. after a failed
    /// submission abandoned the wait).
    CancelWait {
        /// The abandoned transaction.
        id: GlobalTxId,
    },
    /// The node's committed chain height.
    ChainHeight,
    /// Snapshot (and reset) the node's micro-metrics window.
    Metrics,
}

/// A response from the node frontend. Every variant answers exactly one
/// [`ClientRequest`]; transaction notifications travel separately on the
/// connection's notification stream.
// Frames are transient per-RPC values, never stored in bulk; boxing the
// metrics snapshot would complicate the fixed-shape wire codec for no
// resident-memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ClientResponse {
    /// The request was accepted and carries no payload (Submit, waits).
    Ack,
    /// Query rows.
    Rows(QueryResult),
    /// A prepared statement's server-side handle.
    Statement {
        /// Handle to pass in [`ClientRequest::QueryPrepared`].
        handle: StatementHandle,
        /// Number of `$n` parameters the statement expects.
        param_count: usize,
    },
    /// The committed chain height.
    Height(BlockHeight),
    /// A micro-metrics window snapshot.
    Metrics(MetricsSnapshot),
}

/// One client connection's server-side half: dispatches requests against
/// the node and funnels notification waits into a single per-connection
/// stream.
pub struct Frontend {
    node: Arc<Node>,
    notify_tx: Sender<TxNotification>,
}

impl Frontend {
    /// Open a connection to `node`. Returns the frontend and the
    /// connection's notification stream (every `WaitFor`/`WaitForBatch`
    /// delivers there).
    pub fn new(node: Arc<Node>) -> (Frontend, Receiver<TxNotification>) {
        let (notify_tx, notify_rx) = unbounded();
        (Frontend { node, notify_tx }, notify_rx)
    }

    /// The node this connection serves.
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// Dispatch one request.
    pub fn handle(&self, req: ClientRequest) -> Result<ClientResponse> {
        match req {
            ClientRequest::Submit(tx) => {
                self.node.submit_local(*tx)?;
                Ok(ClientResponse::Ack)
            }
            ClientRequest::Query { sql, params } => self
                .node
                .query_cached(&sql, &params, None)
                .map(ClientResponse::Rows),
            ClientRequest::QueryAt {
                sql,
                params,
                height,
            } => self
                .node
                .query_cached(&sql, &params, Some(height))
                .map(ClientResponse::Rows),
            ClientRequest::Prepare { sql } => {
                let (handle, query) = self.node.prepare_handle(&sql)?;
                Ok(ClientResponse::Statement {
                    handle,
                    param_count: query.param_count(),
                })
            }
            ClientRequest::QueryPrepared {
                handle,
                params,
                height,
            } => self
                .node
                .query_by_handle(handle, &params, height)
                .map(ClientResponse::Rows),
            ClientRequest::WaitFor { id } => {
                self.node
                    .notifications()
                    .register(id, self.notify_tx.clone());
                Ok(ClientResponse::Ack)
            }
            ClientRequest::WaitForBatch { ids } => {
                let hub = self.node.notifications();
                for id in ids {
                    hub.register(id, self.notify_tx.clone());
                }
                Ok(ClientResponse::Ack)
            }
            ClientRequest::CancelWait { id } => {
                self.node.notifications().cancel_for(&id, &self.notify_tx);
                Ok(ClientResponse::Ack)
            }
            ClientRequest::ChainHeight => Ok(ClientResponse::Height(self.node.height())),
            ClientRequest::Metrics => Ok(ClientResponse::Metrics(self.node.metrics_report())),
        }
    }

    /// Cancel every notification registration of this connection — the
    /// client went away, so none of its waits can be delivered.
    pub fn disconnect(&self) {
        self.node.notifications().cancel_sender(&self.notify_tx);
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.disconnect();
    }
}

// ------------------------------------------------------------ wire sizes
//
// The simulated transport charges each message its codec-derived size so
// the latency/bandwidth model applies honestly. Requests/responses are
// not re-encoded on the in-process hop — only their size is.

impl ClientRequest {
    /// Encoded size in bytes (1 tag byte + codec-encoded payload).
    pub fn wire_size(&self) -> usize {
        let mut enc = Encoder::new();
        match self {
            ClientRequest::Submit(tx) => return 1 + tx.wire_size(),
            ClientRequest::Query { sql, params } => {
                enc.put_str(sql);
                enc.put_row(params);
            }
            ClientRequest::QueryAt {
                sql,
                params,
                height,
            } => {
                enc.put_str(sql);
                enc.put_row(params);
                enc.put_u64(*height);
            }
            ClientRequest::Prepare { sql } => enc.put_str(sql),
            ClientRequest::QueryPrepared {
                handle,
                params,
                height,
            } => {
                enc.put_u64(*handle);
                enc.put_row(params);
                enc.put_u64(height.unwrap_or(0));
            }
            ClientRequest::WaitFor { id } | ClientRequest::CancelWait { id } => {
                enc.put_digest(&id.0);
            }
            ClientRequest::WaitForBatch { ids } => {
                enc.put_u32(ids.len() as u32);
                for id in ids {
                    enc.put_digest(&id.0);
                }
            }
            ClientRequest::ChainHeight | ClientRequest::Metrics => {}
        }
        1 + enc.len()
    }
}

/// Encoded size of a response (1 tag byte + codec-encoded payload;
/// errors travel as their rendered message).
pub fn response_wire_size(resp: &Result<ClientResponse>) -> usize {
    let mut enc = Encoder::new();
    match resp {
        Ok(ClientResponse::Ack) => {}
        Ok(ClientResponse::Rows(r)) => {
            enc.put_u32(r.columns.len() as u32);
            for c in &r.columns {
                enc.put_str(c);
            }
            enc.put_u32(r.rows.len() as u32);
            for row in &r.rows {
                enc.put_row(row);
            }
        }
        Ok(ClientResponse::Statement {
            handle,
            param_count,
        }) => {
            enc.put_u64(*handle);
            enc.put_u32(*param_count as u32);
        }
        Ok(ClientResponse::Height(h)) => enc.put_u64(*h),
        Ok(ClientResponse::Metrics(_)) => return 1 + MetricsSnapshot::WIRE_SIZE,
        Err(e) => enc.put_str(&e.to_string()),
    }
    1 + enc.len()
}

/// Encoded size of a streamed notification (id + block + status).
pub fn notification_wire_size(n: &TxNotification) -> usize {
    use bcrdb_chain::ledger::TxStatus;
    let status = match &n.status {
        TxStatus::Committed => 1,
        TxStatus::Aborted(reason) => 1 + 4 + reason.len(),
    };
    32 + 8 + status
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::error::Error;

    #[test]
    fn request_sizes_scale_with_payload() {
        let small = ClientRequest::Query {
            sql: "SELECT 1".into(),
            params: vec![],
        };
        let big = ClientRequest::Query {
            sql: format!("SELECT {}", "x".repeat(4000)),
            params: vec![Value::Int(1), Value::Text("abc".into())],
        };
        assert!(small.wire_size() < 40, "{}", small.wire_size());
        assert!(big.wire_size() > 4000);
        assert!(ClientRequest::ChainHeight.wire_size() <= 2);
        let batch = ClientRequest::WaitForBatch {
            ids: vec![GlobalTxId([1; 32]); 10],
        };
        assert!(batch.wire_size() >= 10 * 32);
    }

    #[test]
    fn response_sizes_scale_with_rows() {
        let empty = Ok(ClientResponse::Rows(QueryResult::empty(vec!["a".into()])));
        let mut r = QueryResult::empty(vec!["a".into()]);
        for i in 0..100 {
            r.rows.push(vec![Value::Int(i), Value::Text("row".into())]);
        }
        let full = Ok(ClientResponse::Rows(r));
        assert!(response_wire_size(&full) > response_wire_size(&empty) + 100);
        let err: Result<ClientResponse> = Err(Error::Analysis("nope".into()));
        assert!(response_wire_size(&err) > 4);
    }
}
