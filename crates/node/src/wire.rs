//! Canonical binary codec for the client↔node RPC surface.
//!
//! The simulated transport moves [`ClientRequest`]/[`ClientResponse`]
//! values by reference and only *charges* their codec-derived sizes
//! ([`ClientRequest::wire_size`], [`crate::frontend::response_wire_size`]);
//! the TCP
//! transport actually serializes them with this module. The two views
//! are kept consistent by construction — every encoder here emits
//! exactly the bytes the size functions charge (`1` tag byte plus the
//! same codec payload) — and by the round-trip tests at the bottom.
//!
//! Errors cross the wire **variant-precise** ([`encode_error`] /
//! [`decode_error`]): clients branch on `Error::NotFound` (transparent
//! re-prepare), `Error::Busy` (admission control), retriable
//! [`AbortReason`]s, and `Error::TxAborted`, so flattening errors to
//! rendered strings would break the session layer on TCP.
//!
//! Corrupt input is always [`bcrdb_common::error::Error::Codec`]
//! (mapped to a connection close by the transport), never a panic: all
//! counts are bounds-checked against the remaining input before
//! allocation.

use bcrdb_chain::ledger::TxStatus;
use bcrdb_chain::tx::Transaction;
use bcrdb_common::codec::{Decode, Decoder, Encode, Encoder};
use bcrdb_common::error::{AbortReason, Error, Result};
use bcrdb_common::ids::GlobalTxId;
use bcrdb_engine::result::QueryResult;

use crate::frontend::{ClientRequest, ClientResponse};
use crate::metrics::{MetricsSnapshot, OrderingSnapshot};
use crate::notify::TxNotification;

/// One message on a client↔node TCP connection, either direction.
///
/// Requests and responses are correlated by `seq` (one connection
/// multiplexes many in-flight RPCs); notifications are server-push and
/// carry no sequence number — they belong to the connection itself,
/// exactly like the simulated backend's `ClientWire::Notification`.
// Same rationale as `ClientResponse`: transient per-RPC frames with a
// fixed-shape codec — boxing would add indirection without saving
// resident memory.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ClientFrame {
    /// Client → node: one RPC call.
    Request {
        /// Correlation id chosen by the client.
        seq: u64,
        /// The call.
        req: ClientRequest,
    },
    /// Node → client: the answer to `Request { seq, .. }`.
    Response {
        /// Correlation id of the answered request.
        seq: u64,
        /// The typed outcome.
        resp: Result<ClientResponse>,
    },
    /// Node → client: a transaction notification for this connection's
    /// `WaitFor`/`WaitForBatch` registrations.
    Notification(TxNotification),
}

impl Encode for ClientFrame {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ClientFrame::Request { seq, req } => {
                enc.put_u8(0);
                enc.put_u64(*seq);
                req.encode(enc);
            }
            ClientFrame::Response { seq, resp } => {
                enc.put_u8(1);
                enc.put_u64(*seq);
                encode_result(resp, enc);
            }
            ClientFrame::Notification(n) => {
                enc.put_u8(2);
                n.encode(enc);
            }
        }
    }
}

impl Decode for ClientFrame {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.get_u8()? {
            0 => Ok(ClientFrame::Request {
                seq: dec.get_u64()?,
                req: ClientRequest::decode(dec)?,
            }),
            1 => Ok(ClientFrame::Response {
                seq: dec.get_u64()?,
                resp: decode_result(dec)?,
            }),
            2 => Ok(ClientFrame::Notification(TxNotification::decode(dec)?)),
            t => Err(Error::Codec(format!("unknown client frame tag {t}"))),
        }
    }
}

// --------------------------------------------------------- requests

impl Encode for ClientRequest {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ClientRequest::Submit(tx) => {
                enc.put_u8(0);
                tx.encode(enc);
            }
            ClientRequest::Query { sql, params } => {
                enc.put_u8(1);
                enc.put_str(sql);
                enc.put_row(params);
            }
            ClientRequest::QueryAt {
                sql,
                params,
                height,
            } => {
                enc.put_u8(2);
                enc.put_str(sql);
                enc.put_row(params);
                enc.put_u64(*height);
            }
            ClientRequest::Prepare { sql } => {
                enc.put_u8(3);
                enc.put_str(sql);
            }
            ClientRequest::QueryPrepared {
                handle,
                params,
                height,
            } => {
                enc.put_u8(4);
                enc.put_u64(*handle);
                enc.put_row(params);
                // Height 0 encodes `None` ("current height"), matching
                // the charged size: block heights start at 1, so 0 is
                // never a real snapshot.
                enc.put_u64(height.unwrap_or(0));
            }
            ClientRequest::WaitFor { id } => {
                enc.put_u8(5);
                enc.put_digest(&id.0);
            }
            ClientRequest::WaitForBatch { ids } => {
                enc.put_u8(6);
                enc.put_u32(ids.len() as u32);
                for id in ids {
                    enc.put_digest(&id.0);
                }
            }
            ClientRequest::CancelWait { id } => {
                enc.put_u8(7);
                enc.put_digest(&id.0);
            }
            ClientRequest::ChainHeight => enc.put_u8(8),
            ClientRequest::Metrics => enc.put_u8(9),
        }
    }
}

impl Decode for ClientRequest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.get_u8()? {
            0 => Ok(ClientRequest::Submit(Box::new(Transaction::decode(dec)?))),
            1 => Ok(ClientRequest::Query {
                sql: dec.get_str()?,
                params: dec.get_row()?,
            }),
            2 => Ok(ClientRequest::QueryAt {
                sql: dec.get_str()?,
                params: dec.get_row()?,
                height: dec.get_u64()?,
            }),
            3 => Ok(ClientRequest::Prepare {
                sql: dec.get_str()?,
            }),
            4 => {
                let handle = dec.get_u64()?;
                let params = dec.get_row()?;
                let height = dec.get_u64()?;
                Ok(ClientRequest::QueryPrepared {
                    handle,
                    params,
                    height: (height != 0).then_some(height),
                })
            }
            5 => Ok(ClientRequest::WaitFor {
                id: GlobalTxId(dec.get_digest()?),
            }),
            6 => {
                let n = dec.get_u32()? as usize;
                // Each id is 32 bytes; bound the count by the input so a
                // corrupt prefix cannot force a huge allocation.
                if n * 32 > dec.remaining() {
                    return Err(Error::Codec(format!(
                        "wait batch of {n} ids exceeds remaining input"
                    )));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(GlobalTxId(dec.get_digest()?));
                }
                Ok(ClientRequest::WaitForBatch { ids })
            }
            7 => Ok(ClientRequest::CancelWait {
                id: GlobalTxId(dec.get_digest()?),
            }),
            8 => Ok(ClientRequest::ChainHeight),
            9 => Ok(ClientRequest::Metrics),
            t => Err(Error::Codec(format!("unknown client request tag {t}"))),
        }
    }
}

// -------------------------------------------------------- responses

impl Encode for ClientResponse {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ClientResponse::Ack => enc.put_u8(0),
            ClientResponse::Rows(r) => {
                enc.put_u8(1);
                encode_query_result(r, enc);
            }
            ClientResponse::Statement {
                handle,
                param_count,
            } => {
                enc.put_u8(2);
                enc.put_u64(*handle);
                enc.put_u32(*param_count as u32);
            }
            ClientResponse::Height(h) => {
                enc.put_u8(3);
                enc.put_u64(*h);
            }
            ClientResponse::Metrics(m) => {
                enc.put_u8(4);
                m.encode(enc);
            }
        }
    }
}

impl Decode for ClientResponse {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let tag = dec.get_u8()?;
        decode_response_body(tag, dec)
    }
}

fn decode_response_body(tag: u8, dec: &mut Decoder<'_>) -> Result<ClientResponse> {
    match tag {
        0 => Ok(ClientResponse::Ack),
        1 => Ok(ClientResponse::Rows(decode_query_result(dec)?)),
        2 => Ok(ClientResponse::Statement {
            handle: dec.get_u64()?,
            param_count: dec.get_u32()? as usize,
        }),
        3 => Ok(ClientResponse::Height(dec.get_u64()?)),
        4 => Ok(ClientResponse::Metrics(MetricsSnapshot::decode(dec)?)),
        t => Err(Error::Codec(format!("unknown client response tag {t}"))),
    }
}

/// Tag distinguishing an error payload from the [`ClientResponse`] tags
/// (0–4) in [`encode_result`]'s tag position.
const ERR_TAG: u8 = 0xFF;

/// Encode a typed RPC outcome. `Ok` responses reuse the
/// [`ClientResponse`] tag space so their wire bytes equal
/// [`crate::frontend::response_wire_size`] exactly; errors use the
/// reserved `ERR_TAG` (0xFF) followed by a variant-precise error payload.
pub fn encode_result(resp: &Result<ClientResponse>, enc: &mut Encoder) {
    match resp {
        Ok(r) => r.encode(enc),
        Err(e) => {
            enc.put_u8(ERR_TAG);
            encode_error(e, enc);
        }
    }
}

/// Inverse of [`encode_result`].
pub fn decode_result(dec: &mut Decoder<'_>) -> Result<Result<ClientResponse>> {
    let tag = dec.get_u8()?;
    if tag == ERR_TAG {
        return Ok(Err(decode_error(dec)?));
    }
    decode_response_body(tag, dec).map(Ok)
}

// ----------------------------------------------------- notifications

impl Encode for TxNotification {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.id.0);
        enc.put_u64(self.block);
        match &self.status {
            TxStatus::Committed => enc.put_u8(0),
            TxStatus::Aborted(reason) => {
                enc.put_u8(1);
                enc.put_str(reason);
            }
        }
    }
}

impl Decode for TxNotification {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let id = GlobalTxId(dec.get_digest()?);
        let block = dec.get_u64()?;
        let status = match dec.get_u8()? {
            0 => TxStatus::Committed,
            1 => TxStatus::Aborted(dec.get_str()?),
            t => Err(Error::Codec(format!("unknown tx status tag {t}")))?,
        };
        Ok(TxNotification { id, block, status })
    }
}

// ------------------------------------------------------ query results

/// Encode a [`QueryResult`] (column names, then rows). A free function
/// because `QueryResult` and `Encode` both live in other crates.
pub fn encode_query_result(r: &QueryResult, enc: &mut Encoder) {
    enc.put_u32(r.columns.len() as u32);
    for c in &r.columns {
        enc.put_str(c);
    }
    enc.put_u32(r.rows.len() as u32);
    for row in &r.rows {
        enc.put_row(row);
    }
}

/// Inverse of [`encode_query_result`]. Counts are bounds-checked
/// against the remaining input before any allocation.
pub fn decode_query_result(dec: &mut Decoder<'_>) -> Result<QueryResult> {
    let ncols = dec.get_u32()? as usize;
    // Every column name costs at least its 4-byte length prefix.
    if ncols * 4 > dec.remaining() {
        return Err(Error::Codec(format!(
            "{ncols} columns exceed remaining input"
        )));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(dec.get_str()?);
    }
    let nrows = dec.get_u32()? as usize;
    // Every row costs at least its 4-byte value count.
    if nrows * 4 > dec.remaining() {
        return Err(Error::Codec(format!("{nrows} rows exceed remaining input")));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        rows.push(dec.get_row()?);
    }
    Ok(QueryResult { columns, rows })
}

// ----------------------------------------------------------- metrics

impl Encode for MetricsSnapshot {
    /// Emits exactly [`MetricsSnapshot::WIRE_SIZE`] bytes: one 8-byte
    /// slot per `METRICS_WIRE_SLOTS` entry, in table order (`halted`
    /// widens to a `u64` slot).
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.window_secs);
        enc.put_f64(self.brr);
        enc.put_f64(self.bpr);
        enc.put_f64(self.bpt_ms);
        enc.put_f64(self.bet_ms);
        enc.put_f64(self.bct_ms);
        enc.put_f64(self.tet_ms);
        enc.put_f64(self.mt_per_s);
        enc.put_f64(self.su);
        enc.put_u64(self.committed);
        enc.put_u64(self.aborted);
        enc.put_f64(self.commit_stage_ms);
        enc.put_f64(self.apply_stage_ms);
        enc.put_u64(self.apply_workers);
        enc.put_f64(self.post_stage_ms);
        enc.put_u64(self.pipeline_depth);
        enc.put_u64(self.postcommit_depth);
        enc.put_u64(self.halted as u64);
        enc.put_u64(self.committed_height);
        enc.put_u64(self.postcommit_height);
        enc.put_u64(self.vacuum_runs);
        enc.put_u64(self.versions_reclaimed);
        enc.put_u64(self.held_back);
        enc.put_u64(self.gap_events);
        enc.put_u64(self.pending_evicted);
        enc.put_u64(self.sync_fetched);
        enc.put_u64(self.sync_replayed);
        enc.put_u64(self.sync_fast_syncs);
        enc.put_u64(self.pages_read);
        enc.put_u64(self.pages_written);
        enc.put_u64(self.pages_evicted);
        enc.put_f64(self.pool_hit_rate);
        enc.put_u64(self.plans_index_intersection);
        enc.put_u64(self.plans_covering);
        enc.put_u64(self.stats_rebuilds);
        enc.put_u64(self.ordering.forwarded);
        enc.put_u64(self.ordering.cut);
        enc.put_u64(self.ordering.delivered);
        enc.put_u64(self.ordering.current_view);
        enc.put_u64(self.ordering.view_changes);
    }
}

impl Decode for MetricsSnapshot {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MetricsSnapshot {
            window_secs: dec.get_f64()?,
            brr: dec.get_f64()?,
            bpr: dec.get_f64()?,
            bpt_ms: dec.get_f64()?,
            bet_ms: dec.get_f64()?,
            bct_ms: dec.get_f64()?,
            tet_ms: dec.get_f64()?,
            mt_per_s: dec.get_f64()?,
            su: dec.get_f64()?,
            committed: dec.get_u64()?,
            aborted: dec.get_u64()?,
            commit_stage_ms: dec.get_f64()?,
            apply_stage_ms: dec.get_f64()?,
            apply_workers: dec.get_u64()?,
            post_stage_ms: dec.get_f64()?,
            pipeline_depth: dec.get_u64()?,
            postcommit_depth: dec.get_u64()?,
            halted: dec.get_u64()? != 0,
            committed_height: dec.get_u64()?,
            postcommit_height: dec.get_u64()?,
            vacuum_runs: dec.get_u64()?,
            versions_reclaimed: dec.get_u64()?,
            held_back: dec.get_u64()?,
            gap_events: dec.get_u64()?,
            pending_evicted: dec.get_u64()?,
            sync_fetched: dec.get_u64()?,
            sync_replayed: dec.get_u64()?,
            sync_fast_syncs: dec.get_u64()?,
            pages_read: dec.get_u64()?,
            pages_written: dec.get_u64()?,
            pages_evicted: dec.get_u64()?,
            pool_hit_rate: dec.get_f64()?,
            plans_index_intersection: dec.get_u64()?,
            plans_covering: dec.get_u64()?,
            stats_rebuilds: dec.get_u64()?,
            ordering: OrderingSnapshot {
                forwarded: dec.get_u64()?,
                cut: dec.get_u64()?,
                delivered: dec.get_u64()?,
                current_view: dec.get_u64()?,
                view_changes: dec.get_u64()?,
            },
        })
    }
}

// ------------------------------------------------------------ errors

/// Encode an [`Error`] variant-precisely (one tag byte per variant,
/// nested [`AbortReason`] tags for `Error::Abort`). A free function
/// because `Error` and `Encode` live in `bcrdb-common` (orphan rule).
pub fn encode_error(e: &Error, enc: &mut Encoder) {
    match e {
        Error::Parse(m) => put_str_variant(enc, 0, m),
        Error::Analysis(m) => put_str_variant(enc, 1, m),
        Error::Type(m) => put_str_variant(enc, 2, m),
        Error::Constraint(m) => put_str_variant(enc, 3, m),
        Error::Abort(r) => {
            enc.put_u8(4);
            encode_abort_reason(r, enc);
        }
        Error::Determinism(m) => put_str_variant(enc, 5, m),
        Error::NotFound(m) => put_str_variant(enc, 6, m),
        Error::AlreadyExists(m) => put_str_variant(enc, 7, m),
        Error::Crypto(m) => put_str_variant(enc, 8, m),
        Error::TamperDetected(m) => put_str_variant(enc, 9, m),
        Error::Io(m) => put_str_variant(enc, 10, m),
        Error::Codec(m) => put_str_variant(enc, 11, m),
        Error::Config(m) => put_str_variant(enc, 12, m),
        Error::Shutdown(m) => put_str_variant(enc, 13, m),
        Error::Busy(m) => put_str_variant(enc, 14, m),
        Error::Timeout(m) => put_str_variant(enc, 15, m),
        Error::TxAborted { id, reason } => {
            enc.put_u8(16);
            enc.put_digest(&id.0);
            enc.put_str(reason);
        }
        Error::Decode(m) => put_str_variant(enc, 17, m),
        Error::Internal(m) => put_str_variant(enc, 18, m),
    }
}

fn put_str_variant(enc: &mut Encoder, tag: u8, m: &str) {
    enc.put_u8(tag);
    enc.put_str(m);
}

/// Inverse of [`encode_error`].
pub fn decode_error(dec: &mut Decoder<'_>) -> Result<Error> {
    let tag = dec.get_u8()?;
    Ok(match tag {
        0 => Error::Parse(dec.get_str()?),
        1 => Error::Analysis(dec.get_str()?),
        2 => Error::Type(dec.get_str()?),
        3 => Error::Constraint(dec.get_str()?),
        4 => Error::Abort(decode_abort_reason(dec)?),
        5 => Error::Determinism(dec.get_str()?),
        6 => Error::NotFound(dec.get_str()?),
        7 => Error::AlreadyExists(dec.get_str()?),
        8 => Error::Crypto(dec.get_str()?),
        9 => Error::TamperDetected(dec.get_str()?),
        10 => Error::Io(dec.get_str()?),
        11 => Error::Codec(dec.get_str()?),
        12 => Error::Config(dec.get_str()?),
        13 => Error::Shutdown(dec.get_str()?),
        14 => Error::Busy(dec.get_str()?),
        15 => Error::Timeout(dec.get_str()?),
        16 => Error::TxAborted {
            id: GlobalTxId(dec.get_digest()?),
            reason: dec.get_str()?,
        },
        17 => Error::Decode(dec.get_str()?),
        18 => Error::Internal(dec.get_str()?),
        t => return Err(Error::Codec(format!("unknown error tag {t}"))),
    })
}

fn encode_abort_reason(r: &AbortReason, enc: &mut Encoder) {
    match r {
        AbortReason::SsiDangerousStructure => enc.put_u8(0),
        AbortReason::SsiDoomedByPeer => enc.put_u8(1),
        AbortReason::PhantomRead => enc.put_u8(2),
        AbortReason::StaleRead => enc.put_u8(3),
        AbortReason::WwConflict => enc.put_u8(4),
        AbortReason::DuplicateTxId => enc.put_u8(5),
        AbortReason::ContractError(m) => {
            enc.put_u8(6);
            enc.put_str(m);
        }
        AbortReason::AuthenticationFailed => enc.put_u8(7),
        AbortReason::AccessDenied(m) => {
            enc.put_u8(8);
            enc.put_str(m);
        }
    }
}

fn decode_abort_reason(dec: &mut Decoder<'_>) -> Result<AbortReason> {
    Ok(match dec.get_u8()? {
        0 => AbortReason::SsiDangerousStructure,
        1 => AbortReason::SsiDoomedByPeer,
        2 => AbortReason::PhantomRead,
        3 => AbortReason::StaleRead,
        4 => AbortReason::WwConflict,
        5 => AbortReason::DuplicateTxId,
        6 => AbortReason::ContractError(dec.get_str()?),
        7 => AbortReason::AuthenticationFailed,
        8 => AbortReason::AccessDenied(dec.get_str()?),
        t => return Err(Error::Codec(format!("unknown abort reason tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::response_wire_size;
    use bcrdb_common::value::Value;

    fn roundtrip_frame(f: &ClientFrame) -> ClientFrame {
        ClientFrame::decode_all(&f.encode_to_vec()).unwrap()
    }

    fn sample_metrics() -> MetricsSnapshot {
        MetricsSnapshot {
            window_secs: 1.5,
            brr: 2.0,
            bpr: 3.0,
            bpt_ms: 4.0,
            bet_ms: 5.0,
            bct_ms: 6.0,
            tet_ms: 7.0,
            mt_per_s: 8.0,
            su: 0.9,
            committed: 10,
            aborted: 11,
            commit_stage_ms: 12.0,
            apply_stage_ms: 12.5,
            apply_workers: 4,
            post_stage_ms: 13.0,
            pipeline_depth: 14,
            postcommit_depth: 15,
            halted: true,
            committed_height: 16,
            postcommit_height: 17,
            vacuum_runs: 18,
            versions_reclaimed: 19,
            held_back: 20,
            gap_events: 21,
            pending_evicted: 22,
            sync_fetched: 23,
            sync_replayed: 24,
            sync_fast_syncs: 25,
            pages_read: 31,
            pages_written: 32,
            pages_evicted: 33,
            pool_hit_rate: 0.75,
            plans_index_intersection: 34,
            plans_covering: 35,
            stats_rebuilds: 36,
            ordering: OrderingSnapshot {
                forwarded: 26,
                cut: 27,
                delivered: 28,
                current_view: 29,
                view_changes: 30,
            },
        }
    }

    #[test]
    fn request_encoding_matches_charged_wire_size() {
        let requests = vec![
            ClientRequest::Query {
                sql: "SELECT * FROM t WHERE a = $1".into(),
                params: vec![Value::Int(7), Value::Text("x".into())],
            },
            ClientRequest::QueryAt {
                sql: "SELECT 1".into(),
                params: vec![],
                height: 42,
            },
            ClientRequest::Prepare {
                sql: "SELECT a FROM t".into(),
            },
            ClientRequest::QueryPrepared {
                handle: 9,
                params: vec![Value::Float(1.25)],
                height: Some(3),
            },
            ClientRequest::QueryPrepared {
                handle: 9,
                params: vec![],
                height: None,
            },
            ClientRequest::WaitFor {
                id: GlobalTxId([1; 32]),
            },
            ClientRequest::WaitForBatch {
                ids: vec![GlobalTxId([2; 32]), GlobalTxId([3; 32])],
            },
            ClientRequest::CancelWait {
                id: GlobalTxId([4; 32]),
            },
            ClientRequest::ChainHeight,
            ClientRequest::Metrics,
        ];
        for req in requests {
            let bytes = req.encode_to_vec();
            assert_eq!(
                bytes.len(),
                req.wire_size(),
                "charged size drifted for {req:?}"
            );
            let back = ClientRequest::decode_all(&bytes).unwrap();
            assert_eq!(back.wire_size(), req.wire_size());
            assert_eq!(back.encode_to_vec(), bytes, "round trip for {req:?}");
        }
    }

    #[test]
    fn response_encoding_matches_charged_wire_size() {
        let mut r = QueryResult::empty(vec!["a".into(), "b".into()]);
        r.rows.push(vec![Value::Int(1), Value::Text("x".into())]);
        r.rows.push(vec![Value::Null, Value::Bool(true)]);
        let responses = vec![
            ClientResponse::Ack,
            ClientResponse::Rows(r),
            ClientResponse::Statement {
                handle: 5,
                param_count: 2,
            },
            ClientResponse::Height(77),
            ClientResponse::Metrics(sample_metrics()),
        ];
        for resp in responses {
            let bytes = resp.encode_to_vec();
            assert_eq!(
                bytes.len(),
                response_wire_size(&Ok(resp.clone())),
                "charged size drifted for {resp:?}"
            );
            let back = ClientResponse::decode_all(&bytes).unwrap();
            assert_eq!(back.encode_to_vec(), bytes, "round trip for {resp:?}");
        }
    }

    #[test]
    fn metrics_snapshot_roundtrips_exactly() {
        let m = sample_metrics();
        let bytes = m.encode_to_vec();
        assert_eq!(bytes.len(), MetricsSnapshot::WIRE_SIZE);
        assert_eq!(MetricsSnapshot::decode_all(&bytes).unwrap(), m);
    }

    #[test]
    fn errors_cross_the_wire_variant_precise() {
        let errors = vec![
            Error::Parse("near `FROM`".into()),
            Error::Abort(AbortReason::SsiDangerousStructure),
            Error::Abort(AbortReason::ContractError("div by zero".into())),
            Error::Abort(AbortReason::AccessDenied("not admin".into())),
            Error::NotFound("prepared statement handle 9".into()),
            Error::Busy("window full".into()),
            Error::Timeout("no notification".into()),
            Error::TxAborted {
                id: GlobalTxId([9; 32]),
                reason: "serialization failure: concurrent write-write conflict".into(),
            },
            Error::Internal("bug".into()),
        ];
        for e in errors {
            let mut enc = Encoder::new();
            encode_result(&Err(e.clone()), &mut enc);
            let bytes = enc.finish();
            let back = decode_result(&mut Decoder::new(&bytes))
                .unwrap()
                .unwrap_err();
            // Error is not PartialEq; variant + rendered message must
            // survive, and so must retriability (the session layer's
            // retry loop depends on it).
            assert_eq!(back.to_string(), e.to_string());
            assert_eq!(back.is_retriable(), e.is_retriable());
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&e),
                "variant drifted for {e:?}"
            );
        }
    }

    #[test]
    fn frames_roundtrip() {
        let f = ClientFrame::Request {
            seq: 42,
            req: ClientRequest::ChainHeight,
        };
        match roundtrip_frame(&f) {
            ClientFrame::Request {
                seq: 42,
                req: ClientRequest::ChainHeight,
            } => {}
            other => panic!("{other:?}"),
        }
        let f = ClientFrame::Response {
            seq: 7,
            resp: Ok(ClientResponse::Height(3)),
        };
        match roundtrip_frame(&f) {
            ClientFrame::Response {
                seq: 7,
                resp: Ok(ClientResponse::Height(3)),
            } => {}
            other => panic!("{other:?}"),
        }
        let f = ClientFrame::Notification(TxNotification {
            id: GlobalTxId([8; 32]),
            block: 12,
            status: TxStatus::Aborted("boom".into()),
        });
        match roundtrip_frame(&f) {
            ClientFrame::Notification(n) => {
                assert_eq!(n.id, GlobalTxId([8; 32]));
                assert_eq!(n.block, 12);
                assert_eq!(n.status, TxStatus::Aborted("boom".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn notification_encoding_matches_charged_wire_size() {
        use crate::frontend::notification_wire_size;
        for n in [
            TxNotification {
                id: GlobalTxId([1; 32]),
                block: 5,
                status: TxStatus::Committed,
            },
            TxNotification {
                id: GlobalTxId([2; 32]),
                block: 6,
                status: TxStatus::Aborted("stale read".into()),
            },
        ] {
            assert_eq!(n.encode_to_vec().len(), notification_wire_size(&n));
        }
    }

    #[test]
    fn corrupt_payloads_are_codec_errors() {
        // Unknown tags.
        for bytes in [vec![200u8], vec![0u8]] {
            assert!(ClientRequest::decode_all(&bytes).is_err());
        }
        // Truncated request.
        let good = ClientRequest::Query {
            sql: "SELECT 1".into(),
            params: vec![],
        }
        .encode_to_vec();
        for cut in 1..good.len() {
            let err = ClientRequest::decode_all(&good[..cut]).unwrap_err();
            assert!(matches!(err, Error::Codec(_)), "{err}");
        }
        // Absurd batch count with a short buffer must not allocate.
        let mut enc = Encoder::new();
        enc.put_u8(6);
        enc.put_u32(u32::MAX);
        let err = ClientRequest::decode_all(&enc.finish()).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "{err}");
        // Absurd row/column counts in a Rows response.
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        let err = decode_query_result(&mut Decoder::new(&enc.finish())).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "{err}");
    }
}
