//! The executor pool: concurrent transaction execution.
//!
//! The paper assigns a PostgreSQL backend per transaction; here a fixed
//! pool of worker threads plays that role. A worker authenticates the
//! invoker (signature + access policy), executes the contract inside a
//! fresh [`TxnCtx`] at the transaction's snapshot height, and parks the
//! result in the [`SlotTable`] where the block processor's serial commit
//! phase picks it up.
//!
//! EO-flow transactions whose snapshot height lies above the node's
//! committed height wait (§3.4.1: "the transaction would start executing
//! once the node completes processing all blocks and transactions up to
//! the specified snapshot-height"); the node re-releases them as blocks
//! commit.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{AbortReason, Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::{Certificate, CertificateRegistry, Role};
use bcrdb_engine::access::AccessController;
use bcrdb_engine::exec::{CatalogOp, StatementEffect};
use bcrdb_engine::procedures::{ContractRegistry, Invocation};
use bcrdb_storage::catalog::Catalog;
use bcrdb_storage::snapshot::ScanMode;
use bcrdb_txn::context::TxnCtx;
use bcrdb_txn::ssi::SsiManager;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::metrics::NodeMetrics;
use crate::slots::{ExecDone, SlotTable};

/// Context handed to native (built-in) contracts.
pub struct NativeCtx<'a> {
    /// Table catalog.
    pub catalog: &'a Catalog,
    /// Deployed-contract registry.
    pub contracts: &'a ContractRegistry,
    /// Transaction data-access context.
    pub ctx: &'a TxnCtx,
    /// Invocation arguments.
    pub args: &'a [Value],
    /// The verified invoker certificate.
    pub invoker: &'a Certificate,
    /// Organizations participating in the network (for approval quorums).
    pub orgs: &'a [String],
}

/// A natively implemented contract (the system smart contracts of §3.7
/// need logic — approval counting, DDL staging — beyond the SQL subset).
pub type NativeContract =
    Arc<dyn for<'a> Fn(&NativeCtx<'a>) -> Result<Vec<StatementEffect>> + Send + Sync>;

/// One unit of work for the pool.
pub struct ExecTask {
    /// The transaction to execute.
    pub tx: Arc<Transaction>,
    /// Snapshot height to execute at.
    pub snapshot_height: BlockHeight,
    /// Strict (EO) or relaxed (OE) scanning.
    pub mode: ScanMode,
}

/// Shared environment for workers.
pub struct ExecEnv {
    /// Table catalog.
    pub catalog: Arc<Catalog>,
    /// Deployed contracts.
    pub contracts: Arc<ContractRegistry>,
    /// Access policies.
    pub access: Arc<AccessController>,
    /// Certificate registry (`pgCerts`).
    pub certs: Arc<CertificateRegistry>,
    /// SSI manager.
    pub ssi: Arc<SsiManager>,
    /// Execution slots shared with the block processor.
    pub slots: Arc<SlotTable>,
    /// Node metrics.
    pub metrics: Arc<NodeMetrics>,
    /// Node's committed block height.
    pub committed_height: Arc<AtomicU64>,
    /// Verify signatures before executing?
    pub verify_signatures: bool,
    /// Globally processed transaction ids (shared with the node): tasks
    /// whose id is already processed are dropped instead of executed —
    /// covers duplicates and deterministically aborted future-height
    /// transactions.
    pub processed: Arc<Mutex<HashSet<GlobalTxId>>>,
    /// Minimum simulated execution time per transaction (µs); see
    /// `NodeConfig::min_exec_micros`.
    pub min_exec_micros: u64,
    /// Native contracts by name.
    pub natives: Mutex<BTreeMap<String, NativeContract>>,
    /// Organizations in the network.
    pub orgs: Vec<String>,
}

/// The pool: a task channel plus a parking area for future-height tasks.
pub struct ExecPool {
    sender: Sender<ExecTask>,
    waiting: Mutex<BTreeMap<BlockHeight, Vec<ExecTask>>>,
    env: Arc<ExecEnv>,
}

impl ExecPool {
    /// Spawn `threads` workers over `env`.
    pub fn start(env: Arc<ExecEnv>, threads: usize) -> Arc<ExecPool> {
        let (sender, receiver) = unbounded::<ExecTask>();
        let pool = Arc::new(ExecPool {
            sender,
            waiting: Mutex::new(BTreeMap::new()),
            env: Arc::clone(&env),
        });
        for i in 0..threads.max(1) {
            let rx: Receiver<ExecTask> = receiver.clone();
            let env = Arc::clone(&env);
            let pool_ref = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("exec-worker-{i}"))
                .spawn(move || {
                    for task in rx.iter() {
                        pool_ref.run_task(&env, task);
                    }
                })
                .expect("spawn executor worker");
        }
        pool
    }

    /// Submit a task (the caller has already claimed its slot).
    pub fn submit(&self, task: ExecTask) {
        let _ = self.sender.send(task);
    }

    /// Execute a task synchronously on the calling thread (serial mode and
    /// recovery replay).
    pub fn run_inline(&self, task: ExecTask) {
        self.run_task(&self.env, task);
    }

    /// Release parked tasks whose snapshot height is now committed.
    pub fn release_waiting(&self, committed: BlockHeight) {
        let mut ready = Vec::new();
        {
            let mut waiting = self.waiting.lock();
            let keys: Vec<BlockHeight> = waiting.range(..=committed).map(|(k, _)| *k).collect();
            for k in keys {
                if let Some(tasks) = waiting.remove(&k) {
                    ready.extend(tasks);
                }
            }
        }
        for t in ready {
            let _ = self.sender.send(t);
        }
    }

    fn run_task(&self, env: &Arc<ExecEnv>, task: ExecTask) {
        // Already decided elsewhere (duplicate or deterministic abort):
        // drop the task and free its slot.
        if env.processed.lock().contains(&task.tx.id) {
            env.slots.remove(&task.tx.id);
            return;
        }
        // Wait-for-height rule (§3.4.1): park until the chain catches up.
        // The committed-height check and the parking insert happen under
        // the `waiting` lock, and `release_waiting` (which runs on the
        // commit thread *after* the height store) drains under the same
        // lock — so a task can never slip between "height checked stale"
        // and "parked after the release already swept". With the
        // pipelined commit path pre-dispatching block N+1's transactions
        // while block N commits, a task lost to that race would deadlock
        // the commit thread until `exec_wait_timeout`.
        {
            let mut waiting = self.waiting.lock();
            if task.snapshot_height > env.committed_height.load(Ordering::Relaxed) {
                waiting.entry(task.snapshot_height).or_default().push(task);
                return;
            }
        }
        let started = Instant::now();
        let ctx = TxnCtx::begin(&env.ssi, task.snapshot_height, task.mode);
        let result = execute_in_ctx(env, &ctx, &task.tx);
        if env.min_exec_micros > 0 {
            let spent = started.elapsed().as_micros() as u64;
            if spent < env.min_exec_micros {
                std::thread::sleep(std::time::Duration::from_micros(
                    env.min_exec_micros - spent,
                ));
            }
        }
        let exec_us = started.elapsed().as_micros() as u64;
        env.metrics.on_tx_executed(exec_us);
        let (catalog_ops, error) = match result {
            Ok(ops) => (ops, None),
            Err(e) => {
                // Doom the context with a structured reason so the commit
                // phase records the right abort.
                let reason = match &e {
                    Error::Abort(r) => r.clone(),
                    other => AbortReason::ContractError(other.to_string()),
                };
                ctx.doom(reason);
                (Vec::new(), Some(e.to_string()))
            }
        };
        env.slots.complete(
            task.tx.id,
            ExecDone {
                ctx,
                catalog_ops,
                error,
                exec_us,
            },
        );
    }
}

/// Authenticate and execute a transaction inside `ctx`, returning deferred
/// catalog ops.
fn execute_in_ctx(env: &Arc<ExecEnv>, ctx: &TxnCtx, tx: &Transaction) -> Result<Vec<CatalogOp>> {
    // 1. Authenticate the invoker (§3.3.2 step 2).
    let cert = env
        .certs
        .lookup(&tx.user)
        .ok_or(Error::Abort(AbortReason::AuthenticationFailed))?;
    if env.verify_signatures {
        tx.verify(&env.certs)
            .map_err(|_| Error::Abort(AbortReason::AuthenticationFailed))?;
    }
    if !matches!(cert.role, Role::Admin | Role::Client) {
        return Err(Error::Abort(AbortReason::AccessDenied(format!(
            "role {} may not invoke contracts",
            cert.role
        ))));
    }
    // 2. Access control for the target contract (§3.7).
    env.access.check(&tx.payload.contract, &cert)?;

    // 3. Execute: native system contract or deployed SQL contract.
    let native = env.natives.lock().get(&tx.payload.contract).cloned();
    let effects = match native {
        Some(handler) => handler(&NativeCtx {
            catalog: &env.catalog,
            contracts: &env.contracts,
            ctx,
            args: &tx.payload.args,
            invoker: &cert,
            orgs: &env.orgs,
        })?,
        None => {
            let invocation = Invocation::new(tx.payload.contract.clone(), tx.payload.args.clone());
            env.contracts.invoke(&env.catalog, ctx, &invocation)?
        }
    };
    Ok(effects
        .into_iter()
        .filter_map(|e| match e {
            StatementEffect::Catalog(op) => Some(op),
            _ => None,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_chain::tx::Payload;
    use bcrdb_common::schema::{Column, DataType, TableSchema};
    use bcrdb_crypto::identity::{KeyPair, Scheme};
    use bcrdb_sql::parse_statement;
    use std::time::Duration;

    fn env() -> (Arc<ExecEnv>, KeyPair) {
        let catalog = Arc::new(Catalog::new());
        catalog
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        Column::new("id", DataType::Int),
                        Column::new("v", DataType::Int),
                    ],
                    vec![0],
                )
                .unwrap(),
            )
            .unwrap();
        let contracts = Arc::new(ContractRegistry::new());
        let def = match parse_statement(
            "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO t VALUES ($1, $2) $$",
        )
        .unwrap()
        {
            bcrdb_sql::ast::Statement::CreateFunction(d) => d,
            _ => unreachable!(),
        };
        contracts.install(def).unwrap();

        let key = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: key.public_key(),
        });

        let env = Arc::new(ExecEnv {
            catalog,
            contracts,
            access: Arc::new(AccessController::new()),
            certs,
            ssi: Arc::new(SsiManager::new()),
            slots: Arc::new(SlotTable::new()),
            metrics: Arc::new(NodeMetrics::new()),
            committed_height: Arc::new(AtomicU64::new(0)),
            verify_signatures: true,
            processed: Arc::new(Mutex::new(HashSet::new())),
            min_exec_micros: 0,
            natives: Mutex::new(BTreeMap::new()),
            orgs: vec!["org1".into()],
        });
        (env, key)
    }

    fn tx(key: &KeyPair, nonce: u64) -> Arc<Transaction> {
        Arc::new(
            Transaction::new_order_execute(
                "org1/alice",
                Payload::new("put", vec![Value::Int(nonce as i64), Value::Int(1)]),
                nonce,
                key,
            )
            .unwrap(),
        )
    }

    #[test]
    fn pool_executes_and_parks_result() {
        let (env, key) = env();
        let pool = ExecPool::start(Arc::clone(&env), 2);
        let t = tx(&key, 1);
        assert!(env.slots.try_claim(t.id));
        pool.submit(ExecTask {
            tx: Arc::clone(&t),
            snapshot_height: 0,
            mode: ScanMode::Relaxed,
        });
        env.slots
            .wait_all_done(&[t.id], Duration::from_secs(5))
            .unwrap();
        let done = env.slots.take_done(&t.id).unwrap();
        assert!(done.error.is_none());
        assert!(done.ctx.write_count() == 1);
        done.ctx.rollback();
    }

    #[test]
    fn future_height_tasks_wait_for_release() {
        let (env, key) = env();
        let pool = ExecPool::start(Arc::clone(&env), 1);
        let t = tx(&key, 2);
        env.slots.try_claim(t.id);
        pool.submit(ExecTask {
            tx: Arc::clone(&t),
            snapshot_height: 3,
            mode: ScanMode::Relaxed,
        });
        // Not executed while the chain is behind.
        std::thread::sleep(Duration::from_millis(50));
        assert!(env.slots.take_done(&t.id).is_none());
        // Advance the chain and release.
        env.committed_height.store(3, Ordering::Relaxed);
        pool.release_waiting(3);
        env.slots
            .wait_all_done(&[t.id], Duration::from_secs(5))
            .unwrap();
        env.slots.take_done(&t.id).unwrap().ctx.rollback();
    }

    #[test]
    fn bad_signature_dooms_transaction() {
        let (env, key) = env();
        let pool = ExecPool::start(Arc::clone(&env), 1);
        let mut bad = (*tx(&key, 3)).clone();
        bad.payload.args[1] = Value::Int(999); // invalidates the signature
        let bad = Arc::new(bad);
        env.slots.try_claim(bad.id);
        pool.submit(ExecTask {
            tx: Arc::clone(&bad),
            snapshot_height: 0,
            mode: ScanMode::Relaxed,
        });
        env.slots
            .wait_all_done(&[bad.id], Duration::from_secs(5))
            .unwrap();
        let done = env.slots.take_done(&bad.id).unwrap();
        assert!(done.error.is_some());
        assert!(!done
            .ctx
            .apply_commit(1, 0, bcrdb_txn::ssi::Flow::OrderThenExecute)
            .is_committed());
    }

    #[test]
    fn unknown_contract_dooms_transaction() {
        let (env, key) = env();
        let pool = ExecPool::start(Arc::clone(&env), 1);
        let t = Arc::new(
            Transaction::new_order_execute(
                "org1/alice",
                Payload::new("no_such_contract", vec![]),
                9,
                &key,
            )
            .unwrap(),
        );
        env.slots.try_claim(t.id);
        pool.submit(ExecTask {
            tx: Arc::clone(&t),
            snapshot_height: 0,
            mode: ScanMode::Relaxed,
        });
        env.slots
            .wait_all_done(&[t.id], Duration::from_secs(5))
            .unwrap();
        let done = env.slots.take_done(&t.id).unwrap();
        assert!(done.error.as_deref().unwrap_or("").contains("not found"));
        done.ctx.rollback();
    }

    #[test]
    fn native_contract_execution() {
        let (env, key) = env();
        env.natives.lock().insert(
            "native_put".into(),
            Arc::new(|nc: &NativeCtx<'_>| {
                let table = nc.catalog.get("t")?;
                nc.ctx
                    .insert(&table, vec![nc.args[0].clone(), Value::Int(77)])?;
                Ok(vec![])
            }),
        );
        let pool = ExecPool::start(Arc::clone(&env), 1);
        let t = Arc::new(
            Transaction::new_order_execute(
                "org1/alice",
                Payload::new("native_put", vec![Value::Int(5)]),
                10,
                &key,
            )
            .unwrap(),
        );
        env.slots.try_claim(t.id);
        pool.submit(ExecTask {
            tx: Arc::clone(&t),
            snapshot_height: 0,
            mode: ScanMode::Relaxed,
        });
        env.slots
            .wait_all_done(&[t.id], Duration::from_secs(5))
            .unwrap();
        let done = env.slots.take_done(&t.id).unwrap();
        assert!(done.error.is_none());
        assert_eq!(done.ctx.write_count(), 1);
        done.ctx.rollback();
    }
}
