//! The node's prepared-statement cache: parsed SELECTs keyed by SQL
//! text, addressed by clients through opaque **server-side handles**.
//!
//! The paper's client interface is libpq (§4.3), where `PREPARE` creates
//! a named server-side statement and `EXECUTE` refers to it by name —
//! the client never holds the parse tree. This module is that shape: a
//! client `Prepare` RPC returns a [`StatementHandle`]; later
//! `QueryPrepared` RPCs carry only the handle and fresh parameters.
//!
//! The cache is bounded (LRU, `NodeConfig::statement_cache_cap`): a
//! client preparing unbounded *distinct* SQL text evicts the
//! least-recently-used entry instead of growing node memory without
//! limit. An evicted handle later produces [`Error::NotFound`] naming
//! the handle; the client-side driver re-prepares transparently.

use std::collections::HashMap;
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_engine::prepared::PreparedQuery;

/// Opaque server-side identifier of a cached prepared statement.
pub type StatementHandle = u64;

struct Entry {
    sql: String,
    query: Arc<PreparedQuery>,
    last_used: u64,
}

/// Bounded LRU of parsed statements, shared by every session of a node.
pub struct StatementCache {
    cap: usize,
    entries: HashMap<StatementHandle, Entry>,
    by_sql: HashMap<String, StatementHandle>,
    next_handle: StatementHandle,
    tick: u64,
}

impl StatementCache {
    /// Empty cache holding at most `cap` parsed statements (minimum 1).
    pub fn new(cap: usize) -> StatementCache {
        StatementCache {
            cap: cap.max(1),
            entries: HashMap::new(),
            by_sql: HashMap::new(),
            next_handle: 1,
            tick: 0,
        }
    }

    fn touch(&mut self, handle: StatementHandle) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&handle) {
            e.last_used = self.tick;
        }
    }

    /// Parse `sql` (or find it cached) and return its handle and parsed
    /// form. Repeated calls with the same text share one parse and one
    /// handle; a full cache evicts the least-recently-used entry.
    pub fn prepare(&mut self, sql: &str) -> Result<(StatementHandle, Arc<PreparedQuery>)> {
        if let Some(&handle) = self.by_sql.get(sql) {
            self.touch(handle);
            let q = Arc::clone(&self.entries[&handle].query);
            return Ok((handle, q));
        }
        let query = PreparedQuery::parse(sql)?;
        if self.entries.len() >= self.cap {
            // O(n) scan — eviction only happens once the cache is full,
            // and `cap` is small (config default 1024).
            if let Some(&lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(h, _)| h)
            {
                let evicted = self.entries.remove(&lru).expect("lru entry");
                self.by_sql.remove(&evicted.sql);
            }
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.tick += 1;
        self.entries.insert(
            handle,
            Entry {
                sql: sql.to_string(),
                query: Arc::clone(&query),
                last_used: self.tick,
            },
        );
        self.by_sql.insert(sql.to_string(), handle);
        Ok((handle, query))
    }

    /// Resolve a handle, refreshing its LRU position. An evicted (or
    /// never-issued) handle is [`Error::NotFound`] — the stable signal
    /// drivers use to re-prepare.
    pub fn get(&mut self, handle: StatementHandle) -> Result<Arc<PreparedQuery>> {
        match self.entries.get(&handle) {
            Some(e) => {
                let q = Arc::clone(&e.query);
                self.touch(handle);
                Ok(q)
            }
            None => Err(Error::NotFound(format!(
                "prepared statement handle {handle} (evicted or never prepared)"
            ))),
        }
    }

    /// Number of cached statements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_shares_one_handle() {
        let mut c = StatementCache::new(8);
        let (h1, q1) = c.prepare("SELECT 1").unwrap();
        let (h2, q2) = c.prepare("SELECT 1").unwrap();
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&q1, &q2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        let mut c = StatementCache::new(3);
        let (h1, _) = c.prepare("SELECT 1").unwrap();
        let (h2, _) = c.prepare("SELECT 2").unwrap();
        let (h3, _) = c.prepare("SELECT 3").unwrap();
        // Touch h1 so h2 becomes the LRU victim.
        c.get(h1).unwrap();
        let (h4, _) = c.prepare("SELECT 4").unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.get(h1).is_ok());
        assert!(c.get(h3).is_ok());
        assert!(c.get(h4).is_ok());
        let err = c.get(h2).unwrap_err();
        assert!(matches!(err, Error::NotFound(_)), "{err}");
        assert!(err.to_string().contains("prepared statement handle"));
    }

    #[test]
    fn distinct_text_flood_stays_bounded() {
        let mut c = StatementCache::new(16);
        for i in 0..500 {
            c.prepare(&format!("SELECT {i}")).unwrap();
        }
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn only_selects_enter_the_cache() {
        let mut c = StatementCache::new(4);
        assert!(c.prepare("DELETE FROM t").is_err());
        assert!(c.is_empty());
    }
}
