//! Blocks.
//!
//! Per §3.1 of the paper a block consists of (a) a sequence number, (b) a
//! set of transactions, (c) metadata associated with the consensus
//! protocol, (d) the hash of the previous block, (e) the hash of the
//! current block — `hash(a, b, c, d)` — and (f) orderer signatures on that
//! hash. Transactions are summarized by a Merkle root so light clients can
//! verify membership; the checkpointing phase's state-change hashes from
//! previous blocks ride along in the metadata (§3.3.4: "state change
//! hashes are added in the next block").

use bcrdb_common::codec::Encoder;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::{CertificateRegistry, KeyPair, Signature};
use bcrdb_crypto::merkle::MerkleTree;
use bcrdb_crypto::sha256::{sha256, Digest};

use crate::tx::Transaction;

/// A node's vote on the state produced by a block: the hash of the block's
/// write set (§3.3.4). Collected by the ordering service and embedded in a
/// subsequent block's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointVote {
    /// Voting database node.
    pub node: String,
    /// The block whose write set was hashed.
    pub block: BlockHeight,
    /// Hash of the union of state changes made by that block.
    pub state_hash: Digest,
}

/// Serialized size of one SHA-256 digest on the wire.
pub const DIGEST_WIRE: usize = std::mem::size_of::<Digest>();

impl CheckpointVote {
    /// Charged wire size: a fixed 32-byte budget for the node name, the
    /// 8-byte block height, and the state digest.
    pub const WIRE_SIZE: usize = 32 + 8 + DIGEST_WIRE;
}

/// The hash of the conventional genesis predecessor (block 0's
/// `prev_hash`).
pub fn genesis_prev_hash() -> Digest {
    sha256(b"bcrdb-genesis")
}

/// A block of ordered transactions.
#[derive(Clone, Debug)]
pub struct Block {
    /// Sequence number (height). The bootstrap block is 1; `prev_hash` of
    /// block 1 is [`genesis_prev_hash`].
    pub number: BlockHeight,
    /// Hash of the previous block.
    pub prev_hash: Digest,
    /// Ordered transactions.
    pub txs: Vec<Transaction>,
    /// Consensus metadata: which backend ordered this block.
    pub consensus: String,
    /// Checkpoint votes for earlier blocks, relayed by the orderer.
    pub checkpoints: Vec<CheckpointVote>,
    /// Merkle root over the transactions' canonical bytes.
    pub tx_root: Digest,
    /// `hash(number, tx_root, consensus, checkpoints, prev_hash)`.
    pub hash: Digest,
    /// Orderer signatures over `hash`.
    pub signatures: Vec<(String, Signature)>,
}

impl Block {
    /// Assemble and hash a block (unsigned; orderers then
    /// [`Block::sign`] it).
    pub fn build(
        number: BlockHeight,
        prev_hash: Digest,
        txs: Vec<Transaction>,
        consensus: impl Into<String>,
        checkpoints: Vec<CheckpointVote>,
    ) -> Block {
        let consensus = consensus.into();
        let leaves: Vec<Vec<u8>> = txs.iter().map(Transaction::canonical_bytes).collect();
        let tx_root = MerkleTree::build(&leaves).root();
        let hash = Self::compute_hash(number, &tx_root, &consensus, &checkpoints, &prev_hash);
        Block {
            number,
            prev_hash,
            txs,
            consensus,
            checkpoints,
            tx_root,
            hash,
            signatures: Vec::new(),
        }
    }

    fn compute_hash(
        number: BlockHeight,
        tx_root: &Digest,
        consensus: &str,
        checkpoints: &[CheckpointVote],
        prev_hash: &Digest,
    ) -> Digest {
        let mut enc = Encoder::new();
        enc.put_u64(number);
        enc.put_digest(tx_root);
        enc.put_str(consensus);
        enc.put_u32(checkpoints.len() as u32);
        for cv in checkpoints {
            enc.put_str(&cv.node);
            enc.put_u64(cv.block);
            enc.put_digest(&cv.state_hash);
        }
        enc.put_digest(prev_hash);
        sha256(&enc.finish())
    }

    /// Append an orderer signature.
    pub fn sign(&mut self, orderer: &KeyPair) -> Result<()> {
        let sig = orderer
            .sign_digest(&self.hash)
            .ok_or_else(|| Error::Crypto("orderer signing key exhausted".into()))?;
        self.signatures.push((orderer.name().to_string(), sig));
        Ok(())
    }

    /// Recompute the hash and Merkle root, detecting in-flight tampering.
    pub fn verify_integrity(&self) -> Result<()> {
        let leaves: Vec<Vec<u8>> = self.txs.iter().map(Transaction::canonical_bytes).collect();
        let tx_root = MerkleTree::build(&leaves).root();
        if tx_root != self.tx_root {
            return Err(Error::TamperDetected(format!(
                "block {}: transaction root mismatch",
                self.number
            )));
        }
        let hash = Self::compute_hash(
            self.number,
            &self.tx_root,
            &self.consensus,
            &self.checkpoints,
            &self.prev_hash,
        );
        if hash != self.hash {
            return Err(Error::TamperDetected(format!(
                "block {}: hash mismatch",
                self.number
            )));
        }
        Ok(())
    }

    /// Full verification on receipt (§3.3.2): integrity, chain linkage to
    /// `prev` and at least one valid orderer signature registered in
    /// `certs`.
    pub fn verify(&self, prev_hash_expected: &Digest, certs: &CertificateRegistry) -> Result<()> {
        self.verify_integrity()?;
        if self.prev_hash != *prev_hash_expected {
            return Err(Error::TamperDetected(format!(
                "block {}: previous-hash mismatch (chain broken)",
                self.number
            )));
        }
        let mut any_valid = false;
        for (name, sig) in &self.signatures {
            if let Some(cert) = certs.lookup(name) {
                if bcrdb_crypto::identity::verify_digest(&cert.public_key, &self.hash, sig) {
                    any_valid = true;
                    break;
                }
            }
        }
        if !any_valid {
            return Err(Error::Crypto(format!(
                "block {}: no valid orderer signature",
                self.number
            )));
        }
        Ok(())
    }

    /// Merkle membership proof for the transaction at `index`.
    pub fn prove_tx(&self, index: usize) -> bcrdb_crypto::merkle::MerkleProof {
        let leaves: Vec<Vec<u8>> = self.txs.iter().map(Transaction::canonical_bytes).collect();
        MerkleTree::build(&leaves).prove(index)
    }

    /// Verify a transaction-membership proof against this block's root.
    pub fn verify_tx_proof(
        root: &Digest,
        tx: &Transaction,
        proof: &bcrdb_crypto::merkle::MerkleProof,
    ) -> bool {
        MerkleTree::verify(root, &tx.canonical_bytes(), proof)
    }

    /// Total wire size estimate.
    pub fn wire_size(&self) -> usize {
        let tx_bytes: usize = self.txs.iter().map(Transaction::wire_size).sum();
        let sig_bytes: usize = self.signatures.iter().map(|(_, s)| s.wire_size()).sum();
        // The three digests are `prev_hash`, `tx_root`, and `hash`; the
        // 16 covers the height and the consensus tag.
        tx_bytes
            + sig_bytes
            + DIGEST_WIRE * 3
            + 16
            + self.checkpoints.len() * CheckpointVote::WIRE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Payload;
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{Certificate, Role, Scheme};

    fn tx(key: &KeyPair, nonce: u64) -> Transaction {
        Transaction::new_order_execute(
            "org1/alice",
            Payload::new("f", vec![Value::Int(nonce as i64)]),
            nonce,
            key,
        )
        .unwrap()
    }

    fn setup() -> (KeyPair, KeyPair, std::sync::Arc<CertificateRegistry>) {
        let client = KeyPair::generate("org1/alice", b"alice", Scheme::HashBased { height: 5 });
        let orderer = KeyPair::generate("org1/orderer", b"ord", Scheme::HashBased { height: 5 });
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: client.public_key(),
        });
        certs.register(Certificate {
            name: "org1/orderer".into(),
            org: "org1".into(),
            role: Role::Orderer,
            public_key: orderer.public_key(),
        });
        (client, orderer, certs)
    }

    #[test]
    fn build_sign_verify_chain() {
        let (client, orderer, certs) = setup();
        let mut b1 = Block::build(
            1,
            genesis_prev_hash(),
            vec![tx(&client, 1), tx(&client, 2)],
            "solo",
            vec![],
        );
        b1.sign(&orderer).unwrap();
        b1.verify(&genesis_prev_hash(), &certs).unwrap();

        let mut b2 = Block::build(2, b1.hash, vec![tx(&client, 3)], "solo", vec![]);
        b2.sign(&orderer).unwrap();
        b2.verify(&b1.hash, &certs).unwrap();
        // Wrong predecessor fails.
        assert!(b2.verify(&genesis_prev_hash(), &certs).is_err());
    }

    #[test]
    fn tampered_transaction_detected() {
        let (client, orderer, certs) = setup();
        let mut b = Block::build(1, genesis_prev_hash(), vec![tx(&client, 1)], "solo", vec![]);
        b.sign(&orderer).unwrap();
        // Tamper with a transaction argument after sealing.
        b.txs[0].payload.args[0] = Value::Int(999);
        let err = b.verify(&genesis_prev_hash(), &certs).unwrap_err();
        assert!(matches!(err, Error::TamperDetected(_)));
    }

    #[test]
    fn tampered_header_detected() {
        let (client, orderer, certs) = setup();
        let mut b = Block::build(1, genesis_prev_hash(), vec![tx(&client, 1)], "solo", vec![]);
        b.sign(&orderer).unwrap();
        b.number = 5;
        assert!(b.verify(&genesis_prev_hash(), &certs).is_err());
    }

    #[test]
    fn unsigned_block_rejected() {
        let (client, _, certs) = setup();
        let b = Block::build(1, genesis_prev_hash(), vec![tx(&client, 1)], "solo", vec![]);
        assert!(b.verify(&genesis_prev_hash(), &certs).is_err());
    }

    #[test]
    fn signature_by_unregistered_orderer_rejected() {
        let (client, _, certs) = setup();
        let rogue = KeyPair::generate("evil/orderer", b"rogue", Scheme::HashBased { height: 2 });
        let mut b = Block::build(1, genesis_prev_hash(), vec![tx(&client, 1)], "solo", vec![]);
        b.sign(&rogue).unwrap();
        assert!(b.verify(&genesis_prev_hash(), &certs).is_err());
    }

    #[test]
    fn checkpoint_votes_affect_hash() {
        let (client, _, _) = setup();
        let txs = vec![tx(&client, 1)];
        let a = Block::build(2, genesis_prev_hash(), txs.clone(), "solo", vec![]);
        let b = Block::build(
            2,
            genesis_prev_hash(),
            txs,
            "solo",
            vec![CheckpointVote {
                node: "org1/peer".into(),
                block: 1,
                state_hash: [1u8; 32],
            }],
        );
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn tx_membership_proofs() {
        let (client, _, _) = setup();
        let txs: Vec<Transaction> = (0..5).map(|i| tx(&client, i)).collect();
        let b = Block::build(1, genesis_prev_hash(), txs, "solo", vec![]);
        for i in 0..5 {
            let proof = b.prove_tx(i);
            assert!(Block::verify_tx_proof(&b.tx_root, &b.txs[i], &proof));
            // A proof does not validate a different transaction.
            let other = (i + 1) % 5;
            assert!(!Block::verify_tx_proof(&b.tx_root, &b.txs[other], &proof));
        }
    }

    #[test]
    fn empty_block_is_valid() {
        let (_, orderer, certs) = setup();
        let mut b = Block::build(1, genesis_prev_hash(), vec![], "solo", vec![]);
        b.sign(&orderer).unwrap();
        b.verify(&genesis_prev_hash(), &certs).unwrap();
    }
}
