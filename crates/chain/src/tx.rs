//! Signed transaction envelopes.
//!
//! ### Order-then-execute (§3.3)
//! A transaction comprises (a) a unique identifier, (b) the client's
//! username, (c) the procedure execution command, and (d) a digital
//! signature over `hash(a, b, c)`. The identifier is chosen by the client
//! (here derived from a client nonce so it cannot collide by accident).
//!
//! ### Execute-order-in-parallel (§3.4)
//! A transaction comprises (a) the username, (b) the procedure command,
//! (c) a snapshot block number, (d) a unique identifier **computed as
//! `hash(a, b, c)`** — mandated by §3.4.3 so two different transactions can
//! never share an id — and (e) a signature over `hash(a, b, c, d)`.

use bcrdb_common::codec::Encoder;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::{CertificateRegistry, KeyPair, Signature};
use bcrdb_crypto::sha256::{sha256, Digest};

/// The procedure invocation carried by a transaction ("the PL/SQL
/// procedure execution command with the name of the procedure and
/// arguments").
#[derive(Clone, Debug, PartialEq)]
pub struct Payload {
    /// Contract (procedure) name.
    pub contract: String,
    /// Argument values.
    pub args: Vec<Value>,
}

impl Payload {
    /// Convenience constructor.
    pub fn new(contract: impl Into<String>, args: Vec<Value>) -> Payload {
        Payload {
            contract: contract.into(),
            args,
        }
    }

    /// Canonical encoding (signed content).
    pub fn encode_canonical(&self, enc: &mut Encoder) {
        enc.put_str(&self.contract);
        enc.put_row(&self.args);
    }
}

/// A signed blockchain transaction.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Network-unique identifier.
    pub id: GlobalTxId,
    /// Invoking user (certificate name, `org/user`).
    pub user: String,
    /// Procedure invocation.
    pub payload: Payload,
    /// EO flow: the snapshot height this transaction must execute at
    /// (§3.4.1). `None` in the OE flow, where every transaction executes on
    /// the state left by the previous block.
    pub snapshot_height: Option<BlockHeight>,
    /// Client signature.
    pub signature: Signature,
}

fn hash_user_payload(user: &str, payload: &Payload, extra: Option<u64>) -> Digest {
    let mut enc = Encoder::new();
    enc.put_str(user);
    payload.encode_canonical(&mut enc);
    if let Some(e) = extra {
        enc.put_u64(e);
    }
    sha256(&enc.finish())
}

impl Transaction {
    /// Build an order-then-execute transaction. The unique identifier is
    /// `hash(user, payload, nonce)`; the signature covers
    /// `hash(id, user, payload)` per §3.3.
    pub fn new_order_execute(
        user: &str,
        payload: Payload,
        nonce: u64,
        key: &KeyPair,
    ) -> Result<Transaction> {
        let id = GlobalTxId(hash_user_payload(user, &payload, Some(nonce)));
        let digest = Self::signed_digest_oe(&id, user, &payload);
        let signature = key
            .sign_digest(&digest)
            .ok_or_else(|| Error::Crypto("signing key exhausted".into()))?;
        Ok(Transaction {
            id,
            user: user.to_string(),
            payload,
            snapshot_height: None,
            signature,
        })
    }

    /// Build an execute-order-in-parallel transaction at `snapshot_height`.
    /// The identifier is `hash(user, payload, block#)` (§3.4.3) and the
    /// signature covers `hash(user, payload, block#, id)`.
    pub fn new_execute_order(
        user: &str,
        payload: Payload,
        snapshot_height: BlockHeight,
        key: &KeyPair,
    ) -> Result<Transaction> {
        let id = GlobalTxId(hash_user_payload(user, &payload, Some(snapshot_height)));
        let digest = Self::signed_digest_eo(&id, user, &payload, snapshot_height);
        let signature = key
            .sign_digest(&digest)
            .ok_or_else(|| Error::Crypto("signing key exhausted".into()))?;
        Ok(Transaction {
            id,
            user: user.to_string(),
            payload,
            snapshot_height: Some(snapshot_height),
            signature,
        })
    }

    fn signed_digest_oe(id: &GlobalTxId, user: &str, payload: &Payload) -> Digest {
        let mut enc = Encoder::new();
        enc.put_digest(&id.0);
        enc.put_str(user);
        payload.encode_canonical(&mut enc);
        sha256(&enc.finish())
    }

    fn signed_digest_eo(
        id: &GlobalTxId,
        user: &str,
        payload: &Payload,
        height: BlockHeight,
    ) -> Digest {
        let mut enc = Encoder::new();
        enc.put_str(user);
        payload.encode_canonical(&mut enc);
        enc.put_u64(height);
        enc.put_digest(&id.0);
        sha256(&enc.finish())
    }

    /// The digest the signature covers.
    pub fn signed_digest(&self) -> Digest {
        match self.snapshot_height {
            None => Self::signed_digest_oe(&self.id, &self.user, &self.payload),
            Some(h) => Self::signed_digest_eo(&self.id, &self.user, &self.payload, h),
        }
    }

    /// Verify the envelope: (1) for EO transactions, the id actually equals
    /// `hash(user, payload, block#)` — the §3.4.3 anti-collision rule;
    /// (2) the signature verifies against the registered certificate.
    pub fn verify(&self, certs: &CertificateRegistry) -> Result<()> {
        if let Some(h) = self.snapshot_height {
            let expected = GlobalTxId(hash_user_payload(&self.user, &self.payload, Some(h)));
            if expected != self.id {
                return Err(Error::Crypto(format!(
                    "transaction id {} does not match hash(user, payload, block)",
                    self.id.short()
                )));
            }
        }
        let cert = certs
            .lookup(&self.user)
            .ok_or_else(|| Error::Crypto(format!("unknown user {}", self.user)))?;
        let digest = self.signed_digest();
        if !bcrdb_crypto::identity::verify_digest(&cert.public_key, &digest, &self.signature) {
            return Err(Error::Crypto(format!(
                "signature verification failed for transaction {} by {}",
                self.id.short(),
                self.user
            )));
        }
        Ok(())
    }

    /// Canonical content bytes (identifies the transaction inside blocks;
    /// the Merkle leaf for the block's transaction root).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_digest(&self.id.0);
        enc.put_str(&self.user);
        self.payload.encode_canonical(&mut enc);
        match self.snapshot_height {
            Some(h) => {
                enc.put_bool(true);
                enc.put_u64(h);
            }
            None => enc.put_bool(false),
        }
        enc.finish().to_vec()
    }

    /// Approximate wire size (payload + signature), for the network
    /// simulator's bandwidth model.
    pub fn wire_size(&self) -> usize {
        self.canonical_bytes().len() + self.signature.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_crypto::identity::{Certificate, Role, Scheme};

    fn setup() -> (KeyPair, std::sync::Arc<CertificateRegistry>) {
        let key = KeyPair::generate("org1/alice", b"alice", Scheme::HashBased { height: 4 });
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: key.public_key(),
        });
        (key, certs)
    }

    fn payload() -> Payload {
        Payload::new(
            "transfer",
            vec![Value::Int(1), Value::Int(2), Value::Float(5.0)],
        )
    }

    #[test]
    fn oe_transaction_roundtrip() {
        let (key, certs) = setup();
        let tx = Transaction::new_order_execute("org1/alice", payload(), 42, &key).unwrap();
        assert!(tx.snapshot_height.is_none());
        tx.verify(&certs).unwrap();
        // Distinct nonces → distinct ids.
        let tx2 = Transaction::new_order_execute("org1/alice", payload(), 43, &key).unwrap();
        assert_ne!(tx.id, tx2.id);
    }

    #[test]
    fn eo_transaction_roundtrip_and_id_binding() {
        let (key, certs) = setup();
        let tx = Transaction::new_execute_order("org1/alice", payload(), 7, &key).unwrap();
        assert_eq!(tx.snapshot_height, Some(7));
        tx.verify(&certs).unwrap();
        // Same (user, payload, height) → same id (resubmission dedupes).
        let tx2 = Transaction::new_execute_order("org1/alice", payload(), 7, &key).unwrap();
        assert_eq!(tx.id, tx2.id);
        // Different height → different id.
        let tx3 = Transaction::new_execute_order("org1/alice", payload(), 8, &key).unwrap();
        assert_ne!(tx.id, tx3.id);
    }

    #[test]
    fn forged_id_rejected() {
        let (key, certs) = setup();
        let mut tx = Transaction::new_execute_order("org1/alice", payload(), 7, &key).unwrap();
        tx.id = GlobalTxId([9u8; 32]);
        assert!(tx.verify(&certs).is_err());
    }

    #[test]
    fn tampered_payload_rejected() {
        let (key, certs) = setup();
        let mut tx = Transaction::new_order_execute("org1/alice", payload(), 1, &key).unwrap();
        tx.payload.args[2] = Value::Float(5000.0);
        assert!(tx.verify(&certs).is_err());
    }

    #[test]
    fn unknown_user_rejected() {
        let (key, certs) = setup();
        let mut tx = Transaction::new_order_execute("org1/alice", payload(), 1, &key).unwrap();
        tx.user = "org1/mallory".into();
        assert!(tx.verify(&certs).is_err());
    }

    #[test]
    fn canonical_bytes_differ_per_transaction() {
        let (key, _) = setup();
        let a = Transaction::new_order_execute("org1/alice", payload(), 1, &key).unwrap();
        let b = Transaction::new_order_execute("org1/alice", payload(), 2, &key).unwrap();
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert!(a.wire_size() > 32);
    }
}
