#![warn(missing_docs)]
//! # bcrdb-chain
//!
//! Blockchain structures shared by the ordering service and database peer
//! nodes:
//!
//! * [`tx`] — signed transaction envelopes for both flows (§3.3: unique
//!   id, username, procedure command, signature; §3.4 adds the snapshot
//!   block number and derives the id by hashing);
//! * [`block`] — blocks with a Merkle transaction root, hash chaining and
//!   orderer signatures (§3.1);
//! * [`blockstore`] — the append-only, file-backed block store every node
//!   keeps (`pgBlockstore`, §4.2), with tamper detection on reload;
//! * [`ledger`] — per-transaction ledger records (the `pgLedger` catalog
//!   table, §4.2) used for recovery and provenance;
//! * [`checkpoint`] — write-set hashing and cross-node checkpoint
//!   comparison (§3.3.4, §3.5 security property 3);
//! * [`sync`] — the peer catch-up request/response pair (§3.6) used by
//!   lagging nodes to retrieve missing blocks or a fast-sync snapshot.

pub mod block;
pub mod blockstore;
pub mod checkpoint;
pub mod ledger;
pub mod sync;
pub mod tx;
pub mod wire;

pub use block::{Block, CheckpointVote};
pub use blockstore::BlockStore;
pub use checkpoint::{CheckpointTracker, WriteSetHasher};
pub use ledger::{LedgerRecord, TxStatus};
pub use sync::{SyncRequest, SyncResponse};
pub use tx::{Payload, Transaction};
