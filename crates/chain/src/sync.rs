//! Peer catch-up wire messages (§3.6).
//!
//! A node that crashed, was partitioned away, or joined late "retrieves
//! any missing blocks, processes and commits them one by one" (§3.6). The
//! retrieval protocol is a single request/response pair carried over the
//! peer network:
//!
//! * [`SyncRequest`] — "give me blocks after `from_height`", bounded by
//!   `max_blocks` per round so one response never monopolizes a link;
//! * [`SyncResponse::Blocks`] — the next batch of verified blocks from
//!   the serving peer's block store, plus that peer's tip height so the
//!   requester knows when it has converged;
//! * [`SyncResponse::Snapshot`] — fast-sync: when the requester is more
//!   than a configurable threshold behind *and* signalled that it is
//!   quiescent (`allow_snapshot`), the server ships its latest state
//!   snapshot instead, letting the requester skip re-executing the bulk
//!   of the chain (re-execution, not transfer, dominates replay cost).
//!
//! Both messages have a canonical codec so the simulated network can
//! charge them honest byte sizes, and so a future real transport can
//! carry them unchanged.

use bcrdb_common::codec::{Decode, Decoder, Encode, Encoder};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;

use crate::block::Block;

/// Upper bound on blocks per sync response accepted by the decoder.
const MAX_SYNC_BLOCKS: usize = 100_000;

/// A catch-up request: "send me what comes after `from_height`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncRequest {
    /// The requester's current chain height (it wants `from_height + 1`
    /// onwards).
    pub from_height: BlockHeight,
    /// Maximum blocks the server should return in one response.
    pub max_blocks: u64,
    /// Whether the requester can install a state snapshot. Only true
    /// while the requester is quiescent (recovery, before accepting
    /// traffic); a live node that merely hit a delivery gap must stay on
    /// the block path.
    pub allow_snapshot: bool,
}

/// The server's answer to a [`SyncRequest`].
#[derive(Clone, Debug)]
pub enum SyncResponse {
    /// Blocks `from_height + 1 ..` in order (possibly empty when the
    /// requester is already at `tip`).
    Blocks {
        /// The next consecutive blocks from the server's store.
        blocks: Vec<Block>,
        /// The server's chain height when it answered.
        tip: BlockHeight,
    },
    /// Snapshot fast-sync: opaque node-state snapshot bytes taken at
    /// `height` (the requester still fetches the skipped blocks to keep
    /// its store complete, but does not re-execute them).
    Snapshot {
        /// Height the snapshot captures.
        height: BlockHeight,
        /// Encoded node state (see `bcrdb-node`'s snapshot codec).
        state: Vec<u8>,
        /// The server's chain height when it answered.
        tip: BlockHeight,
    },
}

impl Encode for SyncRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.from_height);
        enc.put_u64(self.max_blocks);
        enc.put_bool(self.allow_snapshot);
    }
}

impl Decode for SyncRequest {
    fn decode(dec: &mut Decoder<'_>) -> Result<SyncRequest> {
        Ok(SyncRequest {
            from_height: dec.get_u64()?,
            max_blocks: dec.get_u64()?,
            allow_snapshot: dec.get_bool()?,
        })
    }
}

impl Encode for SyncResponse {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SyncResponse::Blocks { blocks, tip } => {
                enc.put_u8(0);
                enc.put_u64(*tip);
                enc.put_u32(blocks.len() as u32);
                for b in blocks {
                    b.encode(enc);
                }
            }
            SyncResponse::Snapshot { height, state, tip } => {
                enc.put_u8(1);
                enc.put_u64(*tip);
                enc.put_u64(*height);
                enc.put_bytes(state);
            }
        }
    }
}

impl Decode for SyncResponse {
    fn decode(dec: &mut Decoder<'_>) -> Result<SyncResponse> {
        match dec.get_u8()? {
            0 => {
                let tip = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                if n > MAX_SYNC_BLOCKS {
                    return Err(Error::Codec("implausible sync block count".into()));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(Block::decode(dec)?);
                }
                Ok(SyncResponse::Blocks { blocks, tip })
            }
            1 => {
                let tip = dec.get_u64()?;
                let height = dec.get_u64()?;
                let state = dec.get_bytes()?;
                Ok(SyncResponse::Snapshot { height, state, tip })
            }
            t => Err(Error::Codec(format!("bad sync response tag {t}"))),
        }
    }
}

impl SyncRequest {
    /// Encoded size in bytes (requests are tiny and fixed-shape).
    pub fn wire_size(&self) -> usize {
        8 + 8 + 1
    }
}

impl SyncResponse {
    /// Estimated encoded size in bytes, for the simulated network's
    /// latency/bandwidth model (mirrors [`Block::wire_size`]'s estimate
    /// rather than paying a full encode on the hot path).
    pub fn wire_size(&self) -> usize {
        match self {
            SyncResponse::Blocks { blocks, .. } => {
                13 + blocks.iter().map(Block::wire_size).sum::<usize>()
            }
            SyncResponse::Snapshot { state, .. } => 21 + state.len(),
        }
    }

    /// The serving peer's tip height.
    pub fn tip(&self) -> BlockHeight {
        match self {
            SyncResponse::Blocks { tip, .. } | SyncResponse::Snapshot { tip, .. } => *tip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::genesis_prev_hash;
    use crate::tx::{Payload, Transaction};
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{KeyPair, Scheme};

    fn blocks(n: u64) -> Vec<Block> {
        let key = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let mut prev = genesis_prev_hash();
        (1..=n)
            .map(|i| {
                let tx = Transaction::new_order_execute(
                    "org1/alice",
                    Payload::new("f", vec![Value::Int(i as i64)]),
                    i,
                    &key,
                )
                .unwrap();
                let b = Block::build(i, prev, vec![tx], "solo", vec![]);
                prev = b.hash;
                b
            })
            .collect()
    }

    #[test]
    fn request_roundtrip() {
        let req = SyncRequest {
            from_height: 7,
            max_blocks: 64,
            allow_snapshot: true,
        };
        let bytes = req.encode_to_vec();
        let back = SyncRequest::decode_all(&bytes).unwrap();
        assert_eq!(back, req);
        assert_eq!(req.wire_size(), 17);
    }

    #[test]
    fn blocks_response_roundtrip() {
        let resp = SyncResponse::Blocks {
            blocks: blocks(3),
            tip: 9,
        };
        let bytes = resp.encode_to_vec();
        let back = SyncResponse::decode_all(&bytes).unwrap();
        let SyncResponse::Blocks { blocks, tip } = back else {
            panic!("wrong variant");
        };
        assert_eq!(tip, 9);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1].number, 2);
        blocks[2].verify_integrity().unwrap();
        assert!(resp.wire_size() > 3 * 32);
    }

    #[test]
    fn snapshot_response_roundtrip() {
        let resp = SyncResponse::Snapshot {
            height: 42,
            state: vec![7u8; 1000],
            tip: 50,
        };
        let bytes = resp.encode_to_vec();
        let back = SyncResponse::decode_all(&bytes).unwrap();
        let SyncResponse::Snapshot { height, state, tip } = back else {
            panic!("wrong variant");
        };
        assert_eq!((height, tip), (42, 50));
        assert_eq!(state.len(), 1000);
        assert_eq!(resp.tip(), 50);
        assert!(resp.wire_size() >= 1000);
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let resp = SyncResponse::Blocks {
            blocks: blocks(1),
            tip: 1,
        };
        let bytes = resp.encode_to_vec();
        assert!(SyncResponse::decode_all(&bytes[..bytes.len() - 2]).is_err());
        assert!(SyncResponse::decode_all(&[9]).is_err());
    }
}
