//! Canonical codec for chain structures (signatures, transactions,
//! blocks), used by the file-backed block store and anywhere a block needs
//! a stable byte representation.

use bcrdb_common::codec::{Decode, Decoder, Encode, Encoder};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::GlobalTxId;
use bcrdb_crypto::identity::Signature;
use bcrdb_crypto::merkle::{MerkleProof, ProofStep};
use bcrdb_crypto::mss::MssSignature;
use bcrdb_crypto::wots::WotsSignature;

use crate::block::{Block, CheckpointVote};
use crate::tx::{Payload, Transaction};

/// Encode a signature (free function: `Signature` and `Encode` both live
/// in other crates, so a trait impl would violate the orphan rule).
pub fn encode_signature(sig: &Signature, enc: &mut Encoder) {
    match sig {
        Signature::Sim(d) => {
            enc.put_u8(0);
            enc.put_digest(d);
        }
        Signature::HashBased(sig) => {
            enc.put_u8(1);
            enc.put_u64(sig.leaf_index);
            enc.put_u32(sig.wots.values.len() as u32);
            for v in &sig.wots.values {
                enc.put_digest(v);
            }
            enc.put_u32(sig.auth_path.leaf_index as u32);
            enc.put_u32(sig.auth_path.steps.len() as u32);
            for s in &sig.auth_path.steps {
                enc.put_digest(&s.sibling);
                enc.put_bool(s.sibling_is_left);
            }
        }
    }
}

/// Decode a signature (see [`encode_signature`]).
pub fn decode_signature(dec: &mut Decoder<'_>) -> Result<Signature> {
    match dec.get_u8()? {
        0 => Ok(Signature::Sim(dec.get_digest()?)),
        1 => {
            let leaf_index = dec.get_u64()?;
            let n = dec.get_u32()? as usize;
            if n > 1024 {
                return Err(Error::Codec("oversized WOTS signature".into()));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(dec.get_digest()?);
            }
            let proof_leaf = dec.get_u32()? as usize;
            let steps_len = dec.get_u32()? as usize;
            if steps_len > 64 {
                return Err(Error::Codec("oversized Merkle auth path".into()));
            }
            let mut steps = Vec::with_capacity(steps_len);
            for _ in 0..steps_len {
                steps.push(ProofStep {
                    sibling: dec.get_digest()?,
                    sibling_is_left: dec.get_bool()?,
                });
            }
            Ok(Signature::HashBased(Box::new(MssSignature {
                leaf_index,
                wots: WotsSignature { values },
                auth_path: MerkleProof {
                    leaf_index: proof_leaf,
                    steps,
                },
            })))
        }
        t => Err(Error::Codec(format!("bad signature tag {t}"))),
    }
}

impl Encode for Transaction {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.id.0);
        enc.put_str(&self.user);
        enc.put_str(&self.payload.contract);
        enc.put_row(&self.payload.args);
        match self.snapshot_height {
            Some(h) => {
                enc.put_bool(true);
                enc.put_u64(h);
            }
            None => enc.put_bool(false),
        }
        encode_signature(&self.signature, enc);
    }
}

impl Decode for Transaction {
    fn decode(dec: &mut Decoder<'_>) -> Result<Transaction> {
        let id = GlobalTxId(dec.get_digest()?);
        let user = dec.get_str()?;
        let contract = dec.get_str()?;
        let args = dec.get_row()?;
        let snapshot_height = if dec.get_bool()? {
            Some(dec.get_u64()?)
        } else {
            None
        };
        let signature = decode_signature(dec)?;
        Ok(Transaction {
            id,
            user,
            payload: Payload { contract, args },
            snapshot_height,
            signature,
        })
    }
}

impl Encode for Block {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.number);
        enc.put_digest(&self.prev_hash);
        enc.put_u32(self.txs.len() as u32);
        for tx in &self.txs {
            tx.encode(enc);
        }
        enc.put_str(&self.consensus);
        enc.put_u32(self.checkpoints.len() as u32);
        for cv in &self.checkpoints {
            enc.put_str(&cv.node);
            enc.put_u64(cv.block);
            enc.put_digest(&cv.state_hash);
        }
        enc.put_digest(&self.tx_root);
        enc.put_digest(&self.hash);
        enc.put_u32(self.signatures.len() as u32);
        for (name, sig) in &self.signatures {
            enc.put_str(name);
            encode_signature(sig, enc);
        }
    }
}

impl Decode for Block {
    fn decode(dec: &mut Decoder<'_>) -> Result<Block> {
        let number = dec.get_u64()?;
        let prev_hash = dec.get_digest()?;
        let tx_count = dec.get_u32()? as usize;
        if tx_count > 1_000_000 {
            return Err(Error::Codec("implausible transaction count".into()));
        }
        let mut txs = Vec::with_capacity(tx_count);
        for _ in 0..tx_count {
            txs.push(Transaction::decode(dec)?);
        }
        let consensus = dec.get_str()?;
        let cv_count = dec.get_u32()? as usize;
        if cv_count > 1_000_000 {
            return Err(Error::Codec("implausible checkpoint count".into()));
        }
        let mut checkpoints = Vec::with_capacity(cv_count);
        for _ in 0..cv_count {
            checkpoints.push(CheckpointVote {
                node: dec.get_str()?,
                block: dec.get_u64()?,
                state_hash: dec.get_digest()?,
            });
        }
        let tx_root = dec.get_digest()?;
        let hash = dec.get_digest()?;
        let sig_count = dec.get_u32()? as usize;
        if sig_count > 100_000 {
            return Err(Error::Codec("implausible signature count".into()));
        }
        let mut signatures = Vec::with_capacity(sig_count);
        for _ in 0..sig_count {
            let name = dec.get_str()?;
            signatures.push((name, decode_signature(dec)?));
        }
        Ok(Block {
            number,
            prev_hash,
            txs,
            consensus,
            checkpoints,
            tx_root,
            hash,
            signatures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::genesis_prev_hash;
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{KeyPair, Scheme};

    fn sample_block(scheme: Scheme) -> Block {
        let client = KeyPair::generate("org1/alice", b"alice", scheme);
        let orderer = KeyPair::generate("org1/ord", b"ord", scheme);
        let txs = vec![
            Transaction::new_order_execute(
                "org1/alice",
                Payload::new(
                    "f",
                    vec![Value::Int(1), Value::Text("x".into()), Value::Null],
                ),
                1,
                &client,
            )
            .unwrap(),
            Transaction::new_execute_order(
                "org1/alice",
                Payload::new("g", vec![Value::Float(2.5)]),
                4,
                &client,
            )
            .unwrap(),
        ];
        let mut b = Block::build(
            1,
            genesis_prev_hash(),
            txs,
            "kafka",
            vec![CheckpointVote {
                node: "n1".into(),
                block: 0,
                state_hash: [3u8; 32],
            }],
        );
        b.sign(&orderer).unwrap();
        b
    }

    #[test]
    fn block_roundtrip_sim_signatures() {
        let b = sample_block(Scheme::Sim);
        let bytes = b.encode_to_vec();
        let back = Block::decode_all(&bytes).unwrap();
        assert_eq!(back.number, b.number);
        assert_eq!(back.hash, b.hash);
        assert_eq!(back.txs.len(), 2);
        assert_eq!(back.txs[0].payload, b.txs[0].payload);
        assert_eq!(back.txs[1].snapshot_height, Some(4));
        assert_eq!(back.checkpoints, b.checkpoints);
        assert_eq!(back.signatures.len(), 1);
        back.verify_integrity().unwrap();
    }

    #[test]
    fn block_roundtrip_hashbased_signatures() {
        let b = sample_block(Scheme::HashBased { height: 3 });
        let bytes = b.encode_to_vec();
        let back = Block::decode_all(&bytes).unwrap();
        assert_eq!(back.txs[0].signature, b.txs[0].signature);
        back.verify_integrity().unwrap();
    }

    #[test]
    fn truncation_is_an_error() {
        let b = sample_block(Scheme::Sim);
        let bytes = b.encode_to_vec();
        for cut in [1usize, 10, 50, bytes.len() - 1] {
            assert!(Block::decode_all(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_tags_are_errors() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        let bytes = enc.finish();
        assert!(decode_signature(&mut Decoder::new(&bytes)).is_err());
    }
}
