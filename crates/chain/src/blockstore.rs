//! The append-only block store (`pgBlockstore`, §4.2).
//!
//! Every database node persists each verified block to a length-prefixed
//! file and keeps an in-memory index. On reload the full hash chain is
//! re-verified, so offline tampering with the file is detected (§3.5
//! security property 6: a node would need the orderer's *and* clients'
//! private keys to forge a consistent chain).

use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bcrdb_common::codec::{Decode, Encode};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use parking_lot::Mutex;

use crate::block::{genesis_prev_hash, Block};

/// File-backed, append-only block store with an in-memory index.
pub struct BlockStore {
    path: Option<PathBuf>,
    /// Issue `sync_data` after every append so a committed block survives
    /// power loss, not just process death (see [`BlockStore::open_with`]).
    fsync: bool,
    inner: Mutex<Inner>,
}

struct Inner {
    blocks: Vec<Arc<Block>>,
    file: Option<File>,
    /// Bytes written since the last `sync_data` (deferred appends).
    unsynced: bool,
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("path", &self.path)
            .field("height", &self.height())
            .finish()
    }
}

impl BlockStore {
    /// In-memory store (tests, benchmarks).
    pub fn in_memory() -> BlockStore {
        BlockStore {
            path: None,
            fsync: false,
            inner: Mutex::new(Inner {
                blocks: Vec::new(),
                file: None,
                unsynced: false,
            }),
        }
    }

    /// Open (or create) a store at `path`, verifying the persisted chain.
    /// Appends are flushed but not fsynced; see [`BlockStore::open_with`].
    pub fn open(path: impl AsRef<Path>) -> Result<BlockStore> {
        Self::open_with(path, false)
    }

    /// Open (or create) a store at `path`, verifying the persisted chain.
    ///
    /// With `fsync`, every append issues `sync_data` before returning, so
    /// a block acknowledged as stored survives power loss. A *torn tail*
    /// — an incomplete final record left by a crash mid-append — is
    /// truncated away on open (the chain simply resumes one block
    /// earlier and recovery re-fetches it from peers); anything that
    /// decodes fully but fails hash-chain verification is still reported
    /// as tampering.
    pub fn open_with(path: impl AsRef<Path>, fsync: bool) -> Result<BlockStore> {
        let path = path.as_ref().to_path_buf();
        let mut blocks = Vec::new();
        if path.exists() {
            let mut reader = BufReader::new(File::open(&path)?);
            let mut prev = genesis_prev_hash();
            // Byte offset of the end of the last *complete* record, used
            // to truncate a torn tail.
            let mut good_len: u64 = 0;
            let torn: bool;
            loop {
                let mut len_buf = [0u8; 4];
                match reader.read_exact(&mut len_buf) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        // Either a clean end (zero extra bytes) or a torn
                        // length prefix; `stream_position` distinguishes.
                        torn = reader.stream_position()? != good_len;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
                let len = u32::from_be_bytes(len_buf) as usize;
                let mut buf = vec![0u8; len];
                if reader.read_exact(&mut buf).is_err() {
                    // Torn payload: the record's length prefix made it to
                    // disk but (part of) the body did not.
                    torn = true;
                    break;
                }
                let block = match Block::decode_all(&buf) {
                    Ok(b) => b,
                    Err(e) => {
                        // A record that fails to parse *and* ends the
                        // file is a torn tail (the crash left garbage
                        // where a record should be). The same failure
                        // mid-file — with more data after it — cannot
                        // come from a torn append and stays fatal, as
                        // does any record that parses but fails hash
                        // verification (tampering).
                        let mut probe = [0u8; 1];
                        if reader.read(&mut probe)? == 0 {
                            torn = true;
                            break;
                        }
                        return Err(e);
                    }
                };
                block.verify_integrity()?;
                if block.prev_hash != prev {
                    return Err(Error::TamperDetected(format!(
                        "block store chain broken at block {}",
                        block.number
                    )));
                }
                if block.number != blocks.len() as u64 + 1 {
                    return Err(Error::TamperDetected(format!(
                        "block store sequence broken at block {}",
                        block.number
                    )));
                }
                prev = block.hash;
                blocks.push(Arc::new(block));
                good_len += 4 + len as u64;
            }
            drop(reader);
            if torn {
                // Drop the torn bytes so future appends extend a clean
                // record boundary.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(good_len)?;
                f.sync_data()?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(BlockStore {
            path: Some(path),
            fsync,
            inner: Mutex::new(Inner {
                blocks,
                file: Some(file),
                unsynced: false,
            }),
        })
    }

    /// Store file path, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Current chain height (0 = empty).
    pub fn height(&self) -> BlockHeight {
        self.inner.lock().blocks.len() as u64
    }

    /// Hash of the latest block (or the genesis predecessor hash).
    pub fn tip_hash(&self) -> [u8; 32] {
        let inner = self.inner.lock();
        inner
            .blocks
            .last()
            .map_or_else(genesis_prev_hash, |b| b.hash)
    }

    /// Append a block. It must extend the chain (`number == height + 1`,
    /// `prev_hash == tip`). With `fsync` configured, the append is made
    /// durable (`sync_data`) before returning.
    pub fn append(&self, block: Block) -> Result<Arc<Block>> {
        self.append_inner(block, false)
    }

    /// Append a block *without* syncing it, even when the store is
    /// configured with `fsync` — the group-fsync half of the pipelined
    /// commit path: the block processor appends blocks as they arrive
    /// and the post-commit worker later calls [`BlockStore::sync`] once
    /// per batch (before client notifications go out), so the durability
    /// of blocks N and N+1 costs one `sync_data` instead of two.
    pub fn append_deferred(&self, block: Block) -> Result<Arc<Block>> {
        self.append_inner(block, true)
    }

    fn append_inner(&self, block: Block, defer_sync: bool) -> Result<Arc<Block>> {
        let mut inner = self.inner.lock();
        let expected_number = inner.blocks.len() as u64 + 1;
        if block.number != expected_number {
            return Err(Error::internal(format!(
                "block {} appended out of order (expected {expected_number})",
                block.number
            )));
        }
        let expected_prev = inner
            .blocks
            .last()
            .map_or_else(genesis_prev_hash, |b| b.hash);
        if block.prev_hash != expected_prev {
            return Err(Error::TamperDetected(format!(
                "block {} does not link to the current tip",
                block.number
            )));
        }
        if let Some(file) = inner.file.as_mut() {
            let bytes = block.encode_to_vec();
            file.write_all(&(bytes.len() as u32).to_be_bytes())?;
            file.write_all(&bytes)?;
            file.flush()?;
            if self.fsync {
                if defer_sync {
                    inner.unsynced = true;
                } else {
                    file.sync_data()?;
                    // This sync covered any earlier deferred appends too.
                    inner.unsynced = false;
                }
            }
        }
        let arc = Arc::new(block);
        inner.blocks.push(Arc::clone(&arc));
        Ok(arc)
    }

    /// Make every deferred append durable. Returns `true` when a
    /// `sync_data` was actually issued (`false`: nothing was pending, or
    /// the store is in-memory / not configured for fsync).
    pub fn sync(&self) -> Result<bool> {
        let mut inner = self.inner.lock();
        if !self.fsync || !inner.unsynced {
            return Ok(false);
        }
        if let Some(file) = inner.file.as_mut() {
            file.sync_data()?;
        }
        inner.unsynced = false;
        Ok(true)
    }

    /// Fetch a block by height (1-based).
    pub fn get(&self, number: BlockHeight) -> Option<Arc<Block>> {
        if number == 0 {
            return None;
        }
        self.inner.lock().blocks.get(number as usize - 1).cloned()
    }

    /// All blocks strictly after `after`, in order.
    pub fn blocks_after(&self, after: BlockHeight) -> Vec<Arc<Block>> {
        let inner = self.inner.lock();
        inner.blocks.iter().skip(after as usize).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{Payload, Transaction};
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{KeyPair, Scheme};

    fn block(number: u64, prev: [u8; 32]) -> Block {
        let key = KeyPair::generate("c", b"c", Scheme::Sim);
        let tx = Transaction::new_order_execute(
            "c",
            Payload::new("f", vec![Value::Int(number as i64)]),
            number,
            &key,
        )
        .unwrap();
        Block::build(number, prev, vec![tx], "solo", vec![])
    }

    #[test]
    fn append_get_and_ordering() {
        let store = BlockStore::in_memory();
        assert_eq!(store.height(), 0);
        let b1 = block(1, genesis_prev_hash());
        let h1 = b1.hash;
        store.append(b1).unwrap();
        let b2 = block(2, h1);
        store.append(b2).unwrap();
        assert_eq!(store.height(), 2);
        assert_eq!(store.get(1).unwrap().number, 1);
        assert!(store.get(0).is_none());
        assert!(store.get(3).is_none());
        assert_eq!(store.blocks_after(1).len(), 1);
        // Gap and wrong-prev appends rejected.
        assert!(store.append(block(4, store.tip_hash())).is_err());
        assert!(store.append(block(3, genesis_prev_hash())).is_err());
    }

    #[test]
    fn deferred_appends_batch_into_one_sync() {
        let dir = std::env::temp_dir().join(format!("bcrdb-bs-group-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.dat");
        let _ = std::fs::remove_file(&path);
        {
            let store = BlockStore::open_with(&path, true).unwrap();
            assert!(!store.sync().unwrap(), "nothing pending on a fresh store");
            let b1 = block(1, genesis_prev_hash());
            let h1 = b1.hash;
            store.append_deferred(b1).unwrap();
            store.append_deferred(block(2, h1)).unwrap();
            // One sync covers both deferred appends; a second is a no-op.
            assert!(store.sync().unwrap());
            assert!(!store.sync().unwrap());
            // A durable append does not leave the store dirty.
            store.append(block(3, store.tip_hash())).unwrap();
            assert!(!store.sync().unwrap());
        }
        let store = BlockStore::open_with(&path, true).unwrap();
        assert_eq!(store.height(), 3);
        // Without fsync configured, sync never reports work.
        let mem = BlockStore::in_memory();
        mem.append_deferred(block(1, genesis_prev_hash())).unwrap();
        assert!(!mem.sync().unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bcrdb-bs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.dat");
        let _ = std::fs::remove_file(&path);
        {
            let store = BlockStore::open(&path).unwrap();
            let b1 = block(1, genesis_prev_hash());
            let h1 = b1.hash;
            store.append(b1).unwrap();
            store.append(block(2, h1)).unwrap();
        }
        let store = BlockStore::open(&path).unwrap();
        assert_eq!(store.height(), 2);
        assert_eq!(store.get(2).unwrap().txs.len(), 1);
        // Appending after reload continues the chain.
        store.append(block(3, store.tip_hash())).unwrap();
        assert_eq!(store.height(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn on_disk_tampering_detected() {
        let dir = std::env::temp_dir().join(format!("bcrdb-bs-tamper-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.dat");
        let _ = std::fs::remove_file(&path);
        {
            let store = BlockStore::open(&path).unwrap();
            store.append(block(1, genesis_prev_hash())).unwrap();
        }
        // Flip one byte inside the first transaction's id (record layout:
        // 4B length prefix, 8B number, 32B prev hash, 4B tx count, then the
        // transaction id) — content covered by the Merkle root.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[50] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = BlockStore::open(&path).unwrap_err();
        assert!(
            matches!(
                err,
                Error::TamperDetected(_) | Error::Codec(_) | Error::Crypto(_)
            ),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        // A crash mid-append leaves an incomplete final record; opening
        // must recover to the last complete block (§3.6: the missing
        // block is re-fetched from peers), not refuse to start.
        let dir = std::env::temp_dir().join(format!("bcrdb-bs-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.dat");
        let _ = std::fs::remove_file(&path);
        let h1 = {
            let store = BlockStore::open_with(&path, true).unwrap();
            let b1 = block(1, genesis_prev_hash());
            let h1 = b1.hash;
            store.append(b1).unwrap();
            store.append(block(2, h1)).unwrap();
            h1
        };
        let full = std::fs::read(&path).unwrap();
        // Tear the tail mid-way through block 2's payload.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        {
            let store = BlockStore::open_with(&path, true).unwrap();
            assert_eq!(store.height(), 1, "torn block dropped");
            // Appends continue from a clean record boundary.
            store.append(block(2, h1)).unwrap();
        }
        let store = BlockStore::open_with(&path, true).unwrap();
        assert_eq!(store.height(), 2);

        // A torn *length prefix* (fewer than 4 trailing bytes) recovers
        // the same way.
        let full = std::fs::read(&path).unwrap();
        let mut with_partial_len = full.clone();
        with_partial_len.extend_from_slice(&[0, 0, 1]);
        std::fs::write(&path, &with_partial_len).unwrap();
        let store = BlockStore::open_with(&path, true).unwrap();
        assert_eq!(store.height(), 2);
        drop(store);
        assert_eq!(std::fs::read(&path).unwrap(), full, "tail bytes removed");

        // A complete-looking final record whose bytes are garbage (e.g.
        // a zero-extended page) is also a torn tail — but only at EOF.
        let mut with_garbage_tail = full.clone();
        with_garbage_tail.extend_from_slice(&[0, 0, 0, 2, 0xde, 0xad]);
        std::fs::write(&path, &with_garbage_tail).unwrap();
        let store = BlockStore::open_with(&path, true).unwrap();
        assert_eq!(store.height(), 2);
        drop(store);
        assert_eq!(std::fs::read(&path).unwrap(), full, "garbage removed");
        std::fs::remove_file(&path).unwrap();
    }
}
