//! Ledger records — the `pgLedger` catalog table of §4.2.
//!
//! Every node records, for each transaction in each block: the block
//! number, the position within the block, the global transaction id, the
//! invoking user, the procedure call, the locally assigned transaction id
//! and the final commit/abort status. The ledger drives crash recovery
//! (§3.6) and, joined with `HISTORY(t)` scans, the provenance queries of
//! Table 3.
//!
//! The ledger is materialized as a *real SQL table* named
//! [`LEDGER_TABLE_NAME`] so contracts-adjacent tooling and provenance
//! queries can join against it with ordinary SQL.

use bcrdb_common::error::Result;
use bcrdb_common::ids::{BlockHeight, GlobalTxId, TxId};
use bcrdb_common::schema::{Column, DataType, TableSchema};
use bcrdb_common::value::Value;

/// Name of the ledger table in every node's catalog.
pub const LEDGER_TABLE_NAME: &str = "ledger";

/// Final status of a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxStatus {
    /// Committed successfully.
    Committed,
    /// Aborted; carries the reason string.
    Aborted(String),
}

impl TxStatus {
    /// Short status code stored in the ledger.
    pub fn code(&self) -> &'static str {
        match self {
            TxStatus::Committed => "committed",
            TxStatus::Aborted(_) => "aborted",
        }
    }
}

/// One ledger row.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerRecord {
    /// Block height.
    pub block: BlockHeight,
    /// Position of the transaction within the block.
    pub tx_index: u32,
    /// Network-unique transaction id.
    pub global_id: GlobalTxId,
    /// Invoking user.
    pub user: String,
    /// Invoked contract.
    pub contract: String,
    /// Locally assigned transaction id (joins against `HISTORY(t)` xmin /
    /// xmax columns).
    pub txid: TxId,
    /// Outcome.
    pub status: TxStatus,
    /// Node-local commit wall-clock (milliseconds). Not part of any
    /// cross-node hash — wall clocks differ between nodes.
    pub commit_time_ms: i64,
}

/// Schema of the ledger table.
pub fn ledger_schema() -> TableSchema {
    let mut schema = TableSchema::new(
        LEDGER_TABLE_NAME,
        vec![
            Column::new("block", DataType::Int),
            Column::new("tx_index", DataType::Int),
            Column::new("global_id", DataType::Text),
            Column::new("username", DataType::Text),
            Column::new("contract", DataType::Text),
            Column::new("txid", DataType::Int),
            Column::new("status", DataType::Text),
            Column::nullable("reason", DataType::Text),
            Column::new("commit_time", DataType::Timestamp),
        ],
        vec![],
    )
    .expect("static schema is valid");
    // Joins in provenance queries hit `txid`; recovery scans hit `block`.
    schema
        .add_index("ledger_txid_idx", "txid")
        .expect("column exists");
    schema
        .add_index("ledger_block_idx", "block")
        .expect("column exists");
    schema
}

impl LedgerRecord {
    /// Render as a row of the ledger table (schema order).
    pub fn to_row(&self) -> Vec<Value> {
        vec![
            Value::Int(self.block as i64),
            Value::Int(self.tx_index as i64),
            Value::Text(self.global_id.to_hex()),
            Value::Text(self.user.clone()),
            Value::Text(self.contract.clone()),
            Value::Int(self.txid.0 as i64),
            Value::Text(self.status.code().to_string()),
            match &self.status {
                TxStatus::Committed => Value::Null,
                TxStatus::Aborted(reason) => Value::Text(reason.clone()),
            },
            Value::Timestamp(self.commit_time_ms),
        ]
    }

    /// Parse back from a ledger-table row.
    pub fn from_row(row: &[Value]) -> Result<LedgerRecord> {
        use bcrdb_common::error::Error;
        let get_int = |i: usize| -> Result<i64> { row[i].as_i64() };
        let get_text = |i: usize| -> Result<String> { Ok(row[i].as_str()?.to_string()) };
        let hex = get_text(2)?;
        let mut id = [0u8; 32];
        if hex.len() != 64 {
            return Err(Error::Codec("bad global id hex".into()));
        }
        for (i, byte) in id.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16)
                .map_err(|_| Error::Codec("bad global id hex".into()))?;
        }
        let status = match row[6].as_str()? {
            "committed" => TxStatus::Committed,
            "aborted" => TxStatus::Aborted(match &row[7] {
                Value::Text(r) => r.clone(),
                _ => String::new(),
            }),
            other => return Err(Error::Codec(format!("bad status {other}"))),
        };
        Ok(LedgerRecord {
            block: get_int(0)? as u64,
            tx_index: get_int(1)? as u32,
            global_id: GlobalTxId(id),
            user: get_text(3)?,
            contract: get_text(4)?,
            txid: TxId(get_int(5)? as u64),
            status,
            commit_time_ms: get_int(8)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(status: TxStatus) -> LedgerRecord {
        LedgerRecord {
            block: 7,
            tx_index: 3,
            global_id: GlobalTxId([0xab; 32]),
            user: "org1/alice".into(),
            contract: "transfer".into(),
            txid: TxId(42),
            status,
            commit_time_ms: 1_700_000_000_123,
        }
    }

    #[test]
    fn row_roundtrip_committed() {
        let r = record(TxStatus::Committed);
        let row = r.to_row();
        let schema = ledger_schema();
        let row = schema.check_row(row).unwrap();
        let back = LedgerRecord::from_row(&row).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn row_roundtrip_aborted() {
        let r = record(TxStatus::Aborted("serialization failure".into()));
        let back = LedgerRecord::from_row(&r.to_row()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.status.code(), "aborted");
    }

    #[test]
    fn schema_has_indexes_for_provenance_and_recovery() {
        let s = ledger_schema();
        let txid_col = s.column_index("txid").unwrap();
        let block_col = s.column_index("block").unwrap();
        assert!(s.index_on(txid_col).is_some());
        assert!(s.index_on(block_col).is_some());
    }

    #[test]
    fn malformed_rows_rejected() {
        let r = record(TxStatus::Committed);
        let mut row = r.to_row();
        row[2] = Value::Text("nothex".into());
        assert!(LedgerRecord::from_row(&row).is_err());
        let mut row = r.to_row();
        row[6] = Value::Text("limbo".into());
        assert!(LedgerRecord::from_row(&row).is_err());
    }
}
