//! Checkpointing (§3.3.4): write-set hashing and cross-node comparison.
//!
//! After committing a block, each node hashes the union of state changes
//! the block made and submits it to the ordering service as a
//! [`crate::block::CheckpointVote`]. Votes come back embedded in later
//! blocks; the [`CheckpointTracker`] compares every node's hash for a given
//! block and flags divergent nodes — the detection mechanism behind
//! security properties 3 and 5 of §3.5 (withholding commits, tampering
//! with state).

use std::collections::{BTreeMap, HashMap};

use bcrdb_common::codec::Encoder;
use bcrdb_common::ids::{BlockHeight, RowId};
use bcrdb_common::value::Value;
use bcrdb_crypto::sha256::{sha256, Digest};
use parking_lot::Mutex;

/// Incrementally hashes a block's write set. Entries must be fed in
/// commit order (transaction position within the block, then operation
/// order within the transaction) — that order is deterministic across
/// nodes, so honest replicas produce identical digests.
pub struct WriteSetHasher {
    enc: Encoder,
    entries: usize,
}

impl Default for WriteSetHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteSetHasher {
    /// Fresh hasher.
    pub fn new() -> WriteSetHasher {
        let mut enc = Encoder::with_capacity(4096);
        enc.put_str("bcrdb-writeset-v1");
        WriteSetHasher { enc, entries: 0 }
    }

    /// Add one state change: `kind` is 0=insert, 1=update, 2=delete.
    pub fn add(&mut self, table: &str, kind: u8, row_id: RowId, data: &[Value]) {
        self.enc.put_str(table);
        self.enc.put_u8(kind);
        self.enc.put_u64(row_id.0);
        self.enc.put_row(data);
        self.entries += 1;
    }

    /// Number of entries fed so far.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Final digest.
    pub fn finish(self) -> Digest {
        sha256(&self.enc.finish())
    }
}

/// A detected divergence: some node reported a different state hash than
/// the local node for a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// The block whose checkpoints disagree.
    pub block: BlockHeight,
    /// Nodes whose hash differs from ours.
    pub divergent_nodes: Vec<String>,
}

/// Tracks local write-set hashes and peers' votes; reports divergences.
#[derive(Default)]
pub struct CheckpointTracker {
    inner: Mutex<TrackerInner>,
}

#[derive(Default)]
struct TrackerInner {
    /// Our own hash per block.
    local: BTreeMap<BlockHeight, Digest>,
    /// Peer votes per block.
    votes: BTreeMap<BlockHeight, HashMap<String, Digest>>,
    /// Blocks already flagged (avoid duplicate reports).
    flagged: Vec<BlockHeight>,
}

impl CheckpointTracker {
    /// Fresh tracker.
    pub fn new() -> CheckpointTracker {
        CheckpointTracker::default()
    }

    /// Record the locally computed hash for `block`.
    pub fn record_local(&self, block: BlockHeight, hash: Digest) {
        self.inner.lock().local.insert(block, hash);
    }

    /// The locally computed hash for `block`, if known.
    pub fn local_hash(&self, block: BlockHeight) -> Option<Digest> {
        self.inner.lock().local.get(&block).copied()
    }

    /// Record a peer's vote (from block metadata). Returns a divergence
    /// report if this vote disagrees with our local hash.
    pub fn record_vote(&self, node: &str, block: BlockHeight, hash: Digest) -> Option<Divergence> {
        let mut inner = self.inner.lock();
        inner
            .votes
            .entry(block)
            .or_default()
            .insert(node.to_string(), hash);
        let local = *inner.local.get(&block)?;
        let divergent: Vec<String> = inner
            .votes
            .get(&block)
            .map(|m| {
                let mut v: Vec<String> = m
                    .iter()
                    .filter(|(_, h)| **h != local)
                    .map(|(n, _)| n.clone())
                    .collect();
                v.sort();
                v
            })
            .unwrap_or_default();
        if divergent.is_empty() || inner.flagged.contains(&block) {
            return None;
        }
        inner.flagged.push(block);
        Some(Divergence {
            block,
            divergent_nodes: divergent,
        })
    }

    /// Number of nodes (including us, if we voted via `record_vote`) that
    /// agree with our local hash for `block`.
    pub fn agreement_count(&self, block: BlockHeight) -> usize {
        let inner = self.inner.lock();
        let Some(local) = inner.local.get(&block) else {
            return 0;
        };
        inner
            .votes
            .get(&block)
            .map(|m| m.values().filter(|h| *h == local).count())
            .unwrap_or(0)
    }

    /// Drop bookkeeping for blocks at or below `horizon`.
    pub fn prune(&self, horizon: BlockHeight) {
        let mut inner = self.inner.lock();
        inner.local.retain(|b, _| *b > horizon);
        inner.votes.retain(|b, _| *b > horizon);
        inner.flagged.retain(|b| *b > horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writeset_hash_is_order_and_content_sensitive() {
        let mut a = WriteSetHasher::new();
        a.add("t", 0, RowId(1), &[Value::Int(1)]);
        a.add("t", 1, RowId(2), &[Value::Int(2)]);
        let ha = a.finish();

        // Same entries, same order → same hash.
        let mut b = WriteSetHasher::new();
        b.add("t", 0, RowId(1), &[Value::Int(1)]);
        b.add("t", 1, RowId(2), &[Value::Int(2)]);
        assert_eq!(ha, b.finish());

        // Different order → different hash (order is part of the state).
        let mut c = WriteSetHasher::new();
        c.add("t", 1, RowId(2), &[Value::Int(2)]);
        c.add("t", 0, RowId(1), &[Value::Int(1)]);
        assert_ne!(ha, c.finish());

        // Different content → different hash.
        let mut d = WriteSetHasher::new();
        d.add("t", 0, RowId(1), &[Value::Int(999)]);
        d.add("t", 1, RowId(2), &[Value::Int(2)]);
        assert_ne!(ha, d.finish());

        // Empty write set has a well-defined hash.
        let empty1 = WriteSetHasher::new().finish();
        let empty2 = WriteSetHasher::new().finish();
        assert_eq!(empty1, empty2);
        assert_ne!(empty1, ha);
    }

    #[test]
    fn tracker_detects_divergence() {
        let t = CheckpointTracker::new();
        t.record_local(5, [1u8; 32]);
        // Honest peer agrees — no divergence.
        assert!(t.record_vote("org2/peer", 5, [1u8; 32]).is_none());
        assert_eq!(t.agreement_count(5), 1);
        // Malicious peer diverges.
        let d = t.record_vote("org3/peer", 5, [9u8; 32]).unwrap();
        assert_eq!(d.block, 5);
        assert_eq!(d.divergent_nodes, vec!["org3/peer".to_string()]);
        // Reported once only.
        assert!(t.record_vote("org3/peer", 5, [9u8; 32]).is_none());
    }

    #[test]
    fn votes_before_local_hash_are_held() {
        let t = CheckpointTracker::new();
        // Vote arrives before we computed our own hash (a fast peer).
        assert!(t.record_vote("org2/peer", 3, [2u8; 32]).is_none());
        t.record_local(3, [1u8; 32]);
        // The next vote triggers evaluation of all held votes.
        let d = t.record_vote("org4/peer", 3, [1u8; 32]).unwrap();
        assert_eq!(d.divergent_nodes, vec!["org2/peer".to_string()]);
    }

    /// A vote re-embedded after a view change (the old leader's block
    /// carried it, the new leader's NEW-VIEW re-proposal carries it
    /// again) must be idempotent: same node, same block, same hash — no
    /// divergence, no double-counted agreement.
    #[test]
    fn duplicate_vote_across_view_change_is_idempotent() {
        let t = CheckpointTracker::new();
        t.record_local(7, [3u8; 32]);
        assert!(t.record_vote("org2/peer", 7, [3u8; 32]).is_none());
        assert_eq!(t.agreement_count(7), 1);
        // The identical vote arrives again, embedded in a block proposed
        // by the post-rotation leader.
        assert!(t.record_vote("org2/peer", 7, [3u8; 32]).is_none());
        assert_eq!(t.agreement_count(7), 1, "re-embedded vote not re-counted");
    }

    /// Votes for several heights straddling a leader rotation: blocks
    /// proposed by leader A embed votes for heights 3–4, the new leader B
    /// embeds the stragglers for 3 plus fresh votes for 5. Divergence
    /// detection must work per height regardless of which leader's block
    /// carried the vote.
    #[test]
    fn votes_across_leader_rotation_detect_divergence_per_height() {
        let t = CheckpointTracker::new();
        t.record_local(3, [3u8; 32]);
        t.record_local(4, [4u8; 32]);
        t.record_local(5, [5u8; 32]);

        // Embedded by leader A (pre-rotation).
        assert!(t.record_vote("org2/peer", 3, [3u8; 32]).is_none());
        assert!(t.record_vote("org2/peer", 4, [4u8; 32]).is_none());

        // Embedded by leader B (post-rotation): a late vote for height 3
        // from a third org, plus divergent state at height 5.
        assert!(t.record_vote("org3/peer", 3, [3u8; 32]).is_none());
        assert_eq!(t.agreement_count(3), 2);
        let d = t.record_vote("org3/peer", 5, [99u8; 32]).unwrap();
        assert_eq!(d.block, 5);
        assert_eq!(d.divergent_nodes, vec!["org3/peer".to_string()]);
        // Height 4 is untouched by the divergence at 5.
        assert_eq!(t.agreement_count(4), 1);
    }

    /// A node that diverged before the rotation and submits a *corrected*
    /// hash through the new leader's block: the tracker keeps the latest
    /// vote per (node, block), so agreement recovers — but the original
    /// divergence stays flagged exactly once.
    #[test]
    fn corrected_vote_after_view_change_restores_agreement() {
        let t = CheckpointTracker::new();
        t.record_local(9, [1u8; 32]);
        let d = t.record_vote("org2/peer", 9, [2u8; 32]).unwrap();
        assert_eq!(d.divergent_nodes, vec!["org2/peer".to_string()]);
        // Corrected vote arrives in a block from the new leader.
        assert!(t.record_vote("org2/peer", 9, [1u8; 32]).is_none());
        assert_eq!(t.agreement_count(9), 1);
        // A further honest vote does not re-flag the healed height.
        assert!(t.record_vote("org3/peer", 9, [1u8; 32]).is_none());
    }

    /// Re-proposal can deliver vote-carrying blocks out of height order
    /// relative to local hashing (the replica fast-forwards through
    /// fetched blocks): votes for a height we have not hashed yet are
    /// held, and the local hash recorded later still triggers detection
    /// on the next vote — even when that next vote is for a *different*
    /// height.
    #[test]
    fn held_votes_from_old_view_evaluate_after_local_hash() {
        let t = CheckpointTracker::new();
        // Votes for height 6 arrive (old leader's block) before we
        // processed block 6 ourselves.
        assert!(t.record_vote("org2/peer", 6, [0xAAu8; 32]).is_none());
        assert!(t.record_vote("org3/peer", 6, [0x66u8; 32]).is_none());
        t.record_local(6, [0x66u8; 32]);
        // The next vote for 6 — relayed by the new leader — triggers
        // evaluation of everything held: org2 diverges, org3 agrees.
        let d = t.record_vote("org4/peer", 6, [0x66u8; 32]).unwrap();
        assert_eq!(d.block, 6);
        assert_eq!(d.divergent_nodes, vec!["org2/peer".to_string()]);
        assert_eq!(t.agreement_count(6), 2);
    }

    #[test]
    fn prune_drops_old_state() {
        let t = CheckpointTracker::new();
        t.record_local(1, [1u8; 32]);
        t.record_local(2, [2u8; 32]);
        t.record_vote("p", 1, [1u8; 32]);
        t.prune(1);
        assert!(t.local_hash(1).is_none());
        assert!(t.local_hash(2).is_some());
        assert_eq!(t.agreement_count(1), 0);
    }
}
