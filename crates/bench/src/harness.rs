//! Open-loop workload driver and micro-metric collection.
//!
//! The driver reproduces the paper's measurement methodology (§5): clients
//! submit transactions at a fixed arrival rate (load-balanced across
//! organizations), latency is measured from submission to the commit
//! notification, throughput counts unique committed transactions per
//! second, and the seven micro-metrics (brr, bpr, bpt, bet, bct, tet, mt)
//! plus system utilization come from the first node's block processor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::ledger::TxStatus;
use bcrdb_common::error::Result;
use bcrdb_common::ids::GlobalTxId;
use bcrdb_common::ids::TxId;
use bcrdb_common::value::Value;
use bcrdb_core::{Network, NetworkConfig, TransportKind};
use bcrdb_node::MetricsSnapshot;
use bcrdb_storage::version::Version;
use parking_lot::Mutex;

use crate::contracts::Workload;

/// A network plus the workload wiring used by one experiment run.
pub struct BenchNetwork {
    /// The running network.
    pub net: Network,
    /// The workload.
    pub workload: Workload,
}

impl BenchNetwork {
    /// Build a network, bootstrap the workload schema/contracts and seed
    /// the reference tables identically on every node.
    pub fn build(config: NetworkConfig, workload: Workload) -> Result<BenchNetwork> {
        let net = Network::build(config)?;
        net.bootstrap_sql(&workload.bootstrap_sql())?;
        for (table, rows) in workload.seed() {
            seed_genesis_rows(&net, &table, &rows)?;
        }
        Ok(BenchNetwork { net, workload })
    }
}

/// Install identical committed rows at genesis (height 0) on every node —
/// the pre-loaded reference data of the paper's complex contracts. Must be
/// called before any traffic.
pub fn seed_genesis_rows(net: &Network, table: &str, rows: &[Vec<Value>]) -> Result<()> {
    for node in net.nodes() {
        let t = node.catalog().get(table)?;
        for row in rows {
            let schema = t.schema();
            let row = schema.check_row(row.clone())?;
            let rid = t.alloc_row_id();
            t.append_restored(Version::restored(TxId::INVALID, row, rid, 0, None, None));
        }
    }
    Ok(())
}

/// Results of one measured run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Transactions submitted.
    pub submitted: u64,
    /// Committed (counted from notifications on the clients' home nodes).
    pub committed: u64,
    /// Aborted.
    pub aborted: u64,
    /// Measured wall-clock duration (s).
    pub duration_s: f64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Mean commit latency (ms).
    pub avg_latency_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_latency_ms: f64,
    /// Micro-metrics from the first node.
    pub micro: MetricsSnapshot,
}

impl RunStats {
    /// One-line table row matching the paper's metric naming.
    pub fn micro_row(&self, block_size: usize) -> String {
        format!(
            "{:>4}  {:>7.1}  {:>7.1}  {:>7.2}  {:>7.2}  {:>7.2}  {:>7.3}  {:>6.0}  {:>5.1}%",
            block_size,
            self.micro.brr,
            self.micro.bpr,
            self.micro.bpt_ms,
            self.micro.bet_ms,
            self.micro.bct_ms,
            self.micro.tet_ms,
            self.micro.mt_per_s,
            self.micro.su * 100.0
        )
    }
}

/// Drive the workload open-loop at `arrival_tps` for `duration`, starting
/// transaction ids at `id_base` (so successive runs on one network never
/// collide). Returns measured statistics.
pub fn run_open_loop(
    bench: &BenchNetwork,
    arrival_tps: f64,
    duration: Duration,
    id_base: u64,
) -> Result<RunStats> {
    let orgs: Vec<String> = bench.net.config().orgs.clone();
    let clients: Vec<_> = orgs
        .iter()
        .map(|o| bench.net.client(o, "bench").expect("client"))
        .collect();

    // Latency collectors: one firehose subscription per node; submit times
    // recorded by id.
    let submit_times: Arc<Mutex<std::collections::HashMap<GlobalTxId, Instant>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut collector_handles = Vec::new();
    // Each client's home node notifies exactly its own submissions, so the
    // union over nodes counts every transaction exactly once.
    for node in bench.net.nodes() {
        let rx = node.subscribe_notifications();
        let submit_times = Arc::clone(&submit_times);
        let committed = Arc::clone(&committed);
        let aborted = Arc::clone(&aborted);
        let latencies = Arc::clone(&latencies);
        collector_handles.push(std::thread::spawn(move || {
            for n in rx.iter() {
                let now = Instant::now();
                let Some(t0) = submit_times.lock().remove(&n.id) else {
                    continue;
                };
                match n.status {
                    TxStatus::Committed => {
                        committed.fetch_add(1, Ordering::Relaxed);
                        latencies
                            .lock()
                            .push(now.duration_since(t0).as_secs_f64() * 1000.0);
                    }
                    TxStatus::Aborted(_) => {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    // Warm-up: a short burst at a quarter of the target rate fills caches,
    // spins up worker threads and lets the first blocks cut before the
    // measured window opens.
    let warm = Duration::from_millis(400);
    let warm_interval = Duration::from_secs_f64(4.0 / arrival_tps.max(4.0));
    let warm_start = Instant::now();
    let mut warm_n = 0u64;
    while warm_start.elapsed() < warm {
        let client = &clients[(warm_n as usize) % clients.len()];
        let args = bench.workload.args(u64::MAX - 1_000_000 + warm_n);
        if let Ok(p) = client.call(bench.workload.contract()).args(args).submit() {
            submit_times.lock().insert(p.id, Instant::now());
        }
        warm_n += 1;
        let next = warm_start + warm_interval.mul_f64(warm_n as f64);
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
    }
    // Let warm-up traffic settle, then reset every counter it touched.
    std::thread::sleep(Duration::from_millis(300));
    submit_times.lock().clear();
    latencies.lock().clear();
    committed.store(0, Ordering::Relaxed);
    aborted.store(0, Ordering::Relaxed);
    let _ = bench.net.nodes()[0].metrics().take();

    // Paced submission loop.
    let start = Instant::now();
    let mut submitted = 0u64;
    let interval = Duration::from_secs_f64(1.0 / arrival_tps.max(1.0));
    while start.elapsed() < duration {
        let n = id_base + submitted;
        let client = &clients[(submitted as usize) % clients.len()];
        let args = bench.workload.args(n);
        match client.call(bench.workload.contract()).args(args).submit() {
            Ok(pending) => {
                submit_times.lock().insert(pending.id, Instant::now());
                submitted += 1;
            }
            Err(_) => {
                submitted += 1; // counted as offered load; never commits
            }
        }
        // Pace: absolute schedule avoids drift under slow submission.
        let next = start + interval.mul_f64(submitted as f64);
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
    }
    let offered_duration = start.elapsed();
    // Steady-state throughput: commits observed within the offered window
    // only (commits during the drain would overstate a saturated system).
    let committed_in_window = committed.load(Ordering::Relaxed);

    // Drain: wait for in-flight transactions to resolve (bounded).
    let drain_deadline = Instant::now() + Duration::from_secs(15);
    while !submit_times.lock().is_empty() && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let micro = bench.net.nodes()[0].metrics().take();

    let committed = committed.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    let mut lat = latencies.lock().clone();
    lat.sort_by(|a, b| a.total_cmp(b));
    let avg = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let p95 = if lat.is_empty() {
        0.0
    } else {
        lat[(lat.len() * 95 / 100).min(lat.len() - 1)]
    };

    Ok(RunStats {
        submitted,
        committed,
        aborted,
        duration_s: offered_duration.as_secs_f64(),
        throughput: committed_in_window as f64 / offered_duration.as_secs_f64(),
        avg_latency_ms: avg,
        p95_latency_ms: p95,
        micro,
    })
}

/// Client-observed latency statistics from [`run_latency_probe`].
///
/// Check `samples` before trusting the means: with zero committed
/// probe transactions both latencies read 0.0 and must be reported as
/// "no data", not as a measurement.
#[derive(Clone, Debug)]
pub struct ProbeStats {
    /// Committed transactions sampled.
    pub samples: usize,
    /// Mean submit-call → notification latency as the **client**
    /// experiences it over the wire (includes every client↔node hop).
    pub client_ms: f64,
    /// Mean submit-ack → notification latency: the node-side commit
    /// latency as estimable from the client (the submission round trips
    /// cancel out of this difference).
    pub node_ms: f64,
}

/// Drive `threads` closed-loop probe clients connected through the
/// **`Simulated` transport**, measuring commit latency as a remote
/// client observes it (Fig. 8a's client-observed series). Each probe
/// submits, waits for the commit notification, and records two numbers
/// per transaction: latency from the submit *call* (`client_ms`) and
/// latency from the submit *acknowledgement* (`node_ms`). Their
/// difference is exactly the wire cost of submission — at least one
/// client↔node round trip under any non-instant profile.
pub fn run_latency_probe(
    bench: &BenchNetwork,
    threads: usize,
    duration: Duration,
    id_base: u64,
) -> Result<ProbeStats> {
    let orgs: Vec<String> = bench.net.config().orgs.clone();
    let samples: Mutex<Vec<(f64, f64)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| -> Result<()> {
        let mut joins = Vec::new();
        for t in 0..threads {
            let client = bench.net.client_with_transport(
                &orgs[t % orgs.len()],
                &format!("probe-{t}"),
                TransportKind::Simulated,
            )?;
            let samples = &samples;
            let workload = &bench.workload;
            joins.push(s.spawn(move || {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < duration {
                    let id = id_base + (t as u64) * 1_000_000 + n;
                    n += 1;
                    let t_call = Instant::now();
                    let pending = match client
                        .call(workload.contract())
                        .args(workload.args(id))
                        .submit()
                    {
                        Ok(p) => p,
                        Err(_) => continue,
                    };
                    let t_ack = Instant::now();
                    let Ok(notif) = pending.wait(Duration::from_secs(30)) else {
                        continue;
                    };
                    if matches!(notif.status, TxStatus::Committed) {
                        let done = Instant::now();
                        samples.lock().push((
                            done.duration_since(t_call).as_secs_f64() * 1000.0,
                            done.duration_since(t_ack).as_secs_f64() * 1000.0,
                        ));
                    }
                }
            }));
        }
        for j in joins {
            let _ = j.join();
        }
        Ok(())
    })?;
    let lat = samples.into_inner();
    let count = lat.len().max(1) as f64;
    Ok(ProbeStats {
        samples: lat.len(),
        client_ms: lat.iter().map(|(c, _)| c).sum::<f64>() / count,
        node_ms: lat.iter().map(|(_, n)| n).sum::<f64>() / count,
    })
}

/// Closed-loop batch driver: sign and submit `count` workload
/// transactions as one [`bcrdb_core::PendingBatch`] per client and wait
/// for every outcome. Replaces the open-coded per-transaction channel
/// loops for closed workloads (convergence tests, ablation baselines).
/// Returns `(committed, aborted)`.
pub fn run_batch(
    bench: &BenchNetwork,
    count: u64,
    id_base: u64,
    timeout: Duration,
) -> Result<(u64, u64)> {
    let orgs: Vec<String> = bench.net.config().orgs.clone();
    let clients: Vec<_> = orgs
        .iter()
        .map(|o| bench.net.client(o, "bench-batch").expect("client"))
        .collect();
    // Round-robin the batch across organizations, one submit_all each.
    let mut batches = Vec::with_capacity(clients.len());
    for (i, client) in clients.iter().enumerate() {
        let calls: Vec<bcrdb_core::Call> = (0..count)
            .filter(|n| (*n as usize) % clients.len() == i)
            .map(|n| {
                bcrdb_core::Call::new(bench.workload.contract())
                    .args(bench.workload.args(id_base + n))
            })
            .collect();
        if !calls.is_empty() {
            batches.push(client.submit_all(calls)?);
        }
    }
    let mut committed = 0;
    let mut aborted = 0;
    for batch in batches {
        for n in batch.wait_all(timeout)? {
            match n.status {
                TxStatus::Committed => committed += 1,
                TxStatus::Aborted(_) => aborted += 1,
            }
        }
    }
    Ok((committed, aborted))
}

/// Standard benchmark network configuration: three organizations, Sim
/// signatures (the protocol, not our hash-based crypto, is under test —
/// see DESIGN.md), 8 executor threads, instant local network unless the
/// experiment models a deployment.
pub fn bench_config(
    flow: bcrdb_txn::ssi::Flow,
    block_size: usize,
    block_timeout: Duration,
) -> NetworkConfig {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], flow);
    cfg.ordering = bcrdb_ordering::OrderingConfig::kafka(3, block_size, block_timeout);
    cfg.executor_threads = 8;
    cfg
}

/// Header for micro-metric tables (Tables 4 and 5 of the paper).
pub fn micro_header() -> &'static str {
    "  bs      brr      bpr      bpt      bet      bct      tet      mt     su\n\
     ----  -------  -------  -------  -------  -------  -------  ------  ------"
}
