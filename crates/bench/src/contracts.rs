//! The three evaluation smart contracts of the paper (§5, Appendix A) and
//! their workload generators.
//!
//! * **simple** — inserts values into a table (Fig 9 of the paper);
//! * **complex-join** — joins two tables, aggregates, and writes the
//!   result into a third table (Fig 10);
//! * **complex-group** — aggregates over subgroups within a group and
//!   writes the max aggregate, using GROUP BY / ORDER BY / LIMIT (Fig 11).

use bcrdb_common::value::Value;

/// Which evaluation contract to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Single-row INSERT.
    Simple,
    /// Join + aggregate into a third table.
    ComplexJoin,
    /// Group-by subaggregates with ORDER BY/LIMIT.
    ComplexGroup,
}

impl WorkloadKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Simple => "simple",
            WorkloadKind::ComplexJoin => "complex-join",
            WorkloadKind::ComplexGroup => "complex-group",
        }
    }
}

/// Number of departments/regions in the seeded reference data.
pub const GROUPS: i64 = 10;

/// Custom per-transaction argument generator (ablations and ad-hoc
/// workloads): (contract name, args for the n-th transaction).
pub type CustomArgs = (
    String,
    std::sync::Arc<dyn Fn(u64) -> Vec<Value> + Send + Sync>,
);

/// A workload: schema DDL + contracts + per-transaction argument
/// generation.
pub struct Workload {
    /// Contract kind.
    pub kind: WorkloadKind,
    /// Rows of reference data (scaled by `full`).
    pub seed_rows: usize,
    /// Overrides `contract()`/`args()` when set.
    pub custom: Option<CustomArgs>,
}

impl Workload {
    /// Build a workload of `kind` with `seed_rows` reference rows (used by
    /// the complex contracts; ignored by `simple`).
    pub fn new(kind: WorkloadKind, seed_rows: usize) -> Workload {
        Workload {
            kind,
            seed_rows,
            custom: None,
        }
    }

    /// Genesis DDL: every table, index and contract the workload needs.
    pub fn bootstrap_sql(&self) -> String {
        match self.kind {
            WorkloadKind::Simple => "\
                CREATE TABLE bench_simple (id INT PRIMARY KEY, f1 INT NOT NULL, \
                    f2 INT NOT NULL, f3 TEXT NOT NULL, f4 FLOAT NOT NULL); \
                CREATE FUNCTION bench_tx(id INT, f1 INT, f2 INT, f3 TEXT, f4 FLOAT) AS $$ \
                    INSERT INTO bench_simple VALUES ($1, $2, $3, $4, $5) $$"
                .to_string(),
            WorkloadKind::ComplexJoin => "\
                CREATE TABLE bench_items (id INT PRIMARY KEY, dept INT NOT NULL, \
                    price FLOAT NOT NULL); \
                CREATE INDEX idx_items_dept ON bench_items (dept); \
                CREATE TABLE bench_orders (id INT PRIMARY KEY, item_id INT NOT NULL, \
                    amount FLOAT NOT NULL); \
                CREATE INDEX idx_orders_item ON bench_orders (item_id); \
                CREATE TABLE bench_results (run_id INT PRIMARY KEY, total FLOAT); \
                CREATE FUNCTION bench_tx(run_id INT, dept INT) AS $$ \
                    INSERT INTO bench_results \
                      SELECT $1, SUM(o.amount) \
                      FROM bench_items i JOIN bench_orders o ON o.item_id = i.id \
                      WHERE i.dept = $2 GROUP BY i.dept $$"
                .to_string(),
            WorkloadKind::ComplexGroup => "\
                CREATE TABLE bench_sales (id INT PRIMARY KEY, region INT NOT NULL, \
                    city INT NOT NULL, amount FLOAT NOT NULL); \
                CREATE INDEX idx_sales_region ON bench_sales (region); \
                CREATE TABLE bench_maxes (run_id INT PRIMARY KEY, city INT, total FLOAT); \
                CREATE FUNCTION bench_tx(run_id INT, region INT) AS $$ \
                    INSERT INTO bench_maxes \
                      SELECT $1, s.city, SUM(s.amount) \
                      FROM bench_sales s WHERE s.region = $2 \
                      GROUP BY s.city ORDER BY sum(s.amount) DESC LIMIT 1 $$"
                .to_string(),
        }
    }

    /// Reference tables to seed at genesis: (table name, row generator).
    pub fn seed(&self) -> Vec<(String, Vec<Vec<Value>>)> {
        match self.kind {
            WorkloadKind::Simple => Vec::new(),
            WorkloadKind::ComplexJoin => {
                let items = 100usize.max(self.seed_rows / 20);
                let item_rows: Vec<Vec<Value>> = (0..items as i64)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::Int(i % GROUPS),
                            Value::Float(1.0 + (i % 17) as f64),
                        ]
                    })
                    .collect();
                let order_rows: Vec<Vec<Value>> = (0..self.seed_rows as i64)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::Int(i % items as i64),
                            Value::Float((i % 31) as f64 + 0.5),
                        ]
                    })
                    .collect();
                vec![
                    ("bench_items".to_string(), item_rows),
                    ("bench_orders".to_string(), order_rows),
                ]
            }
            WorkloadKind::ComplexGroup => {
                let rows: Vec<Vec<Value>> = (0..self.seed_rows as i64)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::Int(i % GROUPS),
                            Value::Int(i % (GROUPS * 5)),
                            Value::Float((i % 23) as f64 + 0.25),
                        ]
                    })
                    .collect();
                vec![("bench_sales".to_string(), rows)]
            }
        }
    }

    /// Arguments for the `n`-th transaction. Ids are globally unique so
    /// every transaction is distinct (and EO-flow ids never collide).
    pub fn args(&self, n: u64) -> Vec<Value> {
        if let Some((_, gen)) = &self.custom {
            return gen(n);
        }
        match self.kind {
            WorkloadKind::Simple => vec![
                Value::Int(n as i64),
                Value::Int((n % 1000) as i64),
                Value::Int((n % 77) as i64),
                Value::Text(format!("payload-{n}")),
                Value::Float(n as f64 * 0.5),
            ],
            WorkloadKind::ComplexJoin | WorkloadKind::ComplexGroup => {
                vec![Value::Int(n as i64), Value::Int((n % GROUPS as u64) as i64)]
            }
        }
    }

    /// The contract name invoked per transaction.
    pub fn contract(&self) -> &str {
        match &self.custom {
            Some((name, _)) => name,
            None => "bench_tx",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_sql_parses_and_validates() {
        // The DDL must parse and pass even the stricter EO-flow rules.
        let rules = bcrdb_sql::validate::DeterminismRules::execute_order_parallel();
        for kind in [
            WorkloadKind::Simple,
            WorkloadKind::ComplexJoin,
            WorkloadKind::ComplexGroup,
        ] {
            let w = Workload::new(kind, 500);
            let stmts = bcrdb_sql::parse_statements(&w.bootstrap_sql()).unwrap();
            for stmt in &stmts {
                if let bcrdb_sql::ast::Statement::CreateFunction(def) = stmt {
                    bcrdb_sql::validate::validate_contract_body(&def.body, &rules)
                        .unwrap_or_else(|e| panic!("{:?}: {e}", kind));
                }
            }
            assert!(!w.args(7).is_empty());
            assert_eq!(w.contract(), "bench_tx");
        }
    }

    #[test]
    fn seeds_have_expected_shapes() {
        let w = Workload::new(WorkloadKind::ComplexJoin, 400);
        let seeds = w.seed();
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[1].1.len(), 400);
        let w = Workload::new(WorkloadKind::ComplexGroup, 300);
        assert_eq!(w.seed()[0].1.len(), 300);
        assert!(Workload::new(WorkloadKind::Simple, 10).seed().is_empty());
    }
}
