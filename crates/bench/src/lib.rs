//! # bcrdb-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5). Each `[[bench]]` target under `benches/`
//! reproduces one experiment and prints the same rows/series the paper
//! reports, annotated with the paper's reference numbers.
//!
//! Absolute throughput differs from the paper (their testbed: 32-vCPU
//! Xeon VMs running modified PostgreSQL; ours: an in-process simulator),
//! so the reproduction target is the *shape*: which flow wins, by what
//! rough factor, and where the crossovers fall. See `EXPERIMENTS.md` for
//! the paper-vs-measured record.
//!
//! Environment knobs:
//! * `BCRDB_BENCH_FULL=1` — longer runs and larger seeds.

pub mod contracts;
pub mod harness;

pub use contracts::{Workload, WorkloadKind};
pub use harness::{
    run_batch, run_latency_probe, run_open_loop, seed_genesis_rows, BenchNetwork, ProbeStats,
    RunStats,
};

/// True when full-scale runs were requested.
pub fn full_mode() -> bool {
    std::env::var("BCRDB_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale a quick-mode duration up in full mode.
pub fn scaled_secs(quick: f64) -> f64 {
    if full_mode() {
        quick * 4.0
    } else {
        quick
    }
}
