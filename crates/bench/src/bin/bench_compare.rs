//! CI bench-regression gate: compare a fresh `BENCH_smoke.json` against
//! the committed `BENCH_baseline.json` and fail the build (exit 1) when
//! a tracked metric regressed beyond the tolerance.
//!
//! Usage: `bench_compare [baseline.json] [current.json]`
//! (defaults: `BENCH_baseline.json`, `BENCH_smoke.json`).
//!
//! Tracked metrics and directions:
//!
//! * `throughput.tps` — must not drop more than the tolerance;
//! * `pipeline.speedup` — pipelined vs serial-baseline blocks/s; must
//!   not drop more than the tolerance;
//! * `pipeline.vs_concurrent` — pipelined vs pipeline-off blocks/s on
//!   the same chain; must not drop more than the tolerance (a drop
//!   below ~1 means the pipeline is hurting);
//! * `catch_up.duration_ms` — must not grow more than the tolerance;
//! * `failover.resume_ms` — must not grow more than the tolerance;
//! * `tcp.tps` — committed throughput over the real-TCP deployment
//!   surface; must not drop more than the tolerance;
//! * `tcp.p95_latency_ms` — client-observed commit latency over TCP;
//!   must not grow more than the tolerance.
//!
//! The tolerance defaults to ±20% (`BENCH_TOLERANCE`, a fraction).
//! Millisecond metrics additionally get a small absolute slack
//! (`BENCH_SLACK_MS`, default 250 ms) so scheduler jitter on loaded CI
//! runners cannot fail the gate on a sub-second measurement; tps, the
//! primary signal, gets no slack. Improvements never fail the gate —
//! they print a hint to refresh the baseline.
//!
//! The JSON is the fixed shape `bench_smoke` emits, so parsing is a
//! dependency-free scan: find the section object, then the key's number.

use std::process::ExitCode;

/// Extract `"section": { ... "key": <number> ... }` from `json`.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec_pat = format!("\"{section}\"");
    let sec_at = json.find(&sec_pat)?;
    let body = &json[sec_at + sec_pat.len()..];
    // The section's value must itself be an object: a skipped phase
    // (`"section": null` under BENCH_PHASES) must not fall through to
    // the next section's braces.
    if body
        .trim_start_matches([':', ' ', '\n'])
        .starts_with("null")
    {
        return None;
    }
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let obj = &body[open..=close];
    let key_pat = format!("\"{key}\"");
    let key_at = obj.find(&key_pat)?;
    let tail = &obj[key_at + key_pat.len()..];
    let colon = tail.find(':')?;
    let num: String = tail[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One gated metric. `higher_is_better` decides the regression direction;
/// `slack` is an absolute grace added on top of the relative tolerance.
struct Gate {
    section: &'static str,
    key: &'static str,
    higher_is_better: bool,
    slack: f64,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let current_path = args.next().unwrap_or_else(|| "BENCH_smoke.json".into());
    let tolerance = env_f64("BENCH_TOLERANCE", 0.20);
    let slack_ms = env_f64("BENCH_SLACK_MS", 250.0);

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = match std::fs::read_to_string(&current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read current run {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let gates = [
        Gate {
            section: "throughput",
            key: "tps",
            higher_is_better: true,
            slack: 0.0,
        },
        Gate {
            section: "pipeline",
            key: "speedup",
            higher_is_better: true,
            slack: 0.0,
        },
        Gate {
            section: "pipeline",
            key: "vs_concurrent",
            higher_is_better: true,
            slack: 0.0,
        },
        Gate {
            section: "catch_up",
            key: "duration_ms",
            higher_is_better: false,
            slack: slack_ms,
        },
        Gate {
            section: "failover",
            key: "resume_ms",
            higher_is_better: false,
            slack: slack_ms,
        },
        Gate {
            section: "tcp",
            key: "tps",
            higher_is_better: true,
            slack: 0.0,
        },
        Gate {
            section: "tcp",
            key: "p95_latency_ms",
            higher_is_better: false,
            slack: slack_ms,
        },
    ];

    println!(
        "bench_compare: {current_path} vs {baseline_path} (tolerance ±{:.0}%, slack {slack_ms} ms)",
        tolerance * 100.0
    );
    let mut regressions = 0;
    let mut improvements = 0;
    for g in &gates {
        let name = format!("{}.{}", g.section, g.key);
        let Some(base) = extract(&baseline, g.section, g.key) else {
            // A baseline missing a metric (e.g. recorded before the
            // metric existed) skips that gate instead of failing —
            // refresh the baseline to arm it.
            println!("  {name:<24} SKIP (not in baseline)");
            continue;
        };
        let Some(new) = extract(&current, g.section, g.key) else {
            eprintln!("  {name:<24} FAIL (missing from current run)");
            regressions += 1;
            continue;
        };
        let (bound, ok, better) = if g.higher_is_better {
            let bound = base * (1.0 - tolerance) - g.slack;
            (bound, new >= bound, new > base)
        } else {
            let bound = base * (1.0 + tolerance) + g.slack;
            (bound, new <= bound, new < base)
        };
        let verdict = if ok { "ok" } else { "REGRESSION" };
        println!("  {name:<24} base {base:>9.1}  new {new:>9.1}  bound {bound:>9.1}  {verdict}");
        if !ok {
            regressions += 1;
        } else if better && (new - base).abs() > base * tolerance {
            improvements += 1;
        }
    }

    if improvements > 0 {
        println!(
            "note: {improvements} metric(s) improved beyond the tolerance — consider \
             refreshing BENCH_baseline.json"
        );
    }
    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} regression(s) beyond the ±{:.0}% tolerance",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: all gates passed");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "bcrdb-bench-smoke-v4",
  "throughput": { "tps": 388.4, "committed": 1165, "aborted": 0 },
  "pipeline": { "serial_bps": 45.0, "pipelined_bps": 150.0, "speedup": 3.3, "vs_concurrent": 1.1 },
  "catch_up": { "blocks_fetched": 4, "duration_ms": 423.55, "fast_sync": false },
  "failover": { "committed": 20, "resume_ms": 512.01, "view_changes": 1 },
  "tcp": { "tps": 350.2, "committed": 1050, "aborted": 0, "p95_latency_ms": 98.5 }
}"#;

    #[test]
    fn extracts_nested_numbers() {
        assert_eq!(extract(SAMPLE, "throughput", "tps"), Some(388.4));
        assert_eq!(extract(SAMPLE, "pipeline", "speedup"), Some(3.3));
        assert_eq!(extract(SAMPLE, "catch_up", "duration_ms"), Some(423.55));
        assert_eq!(extract(SAMPLE, "failover", "resume_ms"), Some(512.01));
        assert_eq!(extract(SAMPLE, "failover", "view_changes"), Some(1.0));
        assert_eq!(extract(SAMPLE, "tcp", "tps"), Some(350.2));
        assert_eq!(extract(SAMPLE, "tcp", "p95_latency_ms"), Some(98.5));
        assert_eq!(extract(SAMPLE, "nope", "tps"), None);
        assert_eq!(extract(SAMPLE, "throughput", "nope"), None);
    }

    #[test]
    fn skipped_null_section_is_missing_not_misread() {
        // A BENCH_PHASES run writes `"pipeline": null`; the lookup must
        // not fall through into the next section's object.
        let json = r#"{
  "schema": "bcrdb-bench-smoke-v4",
  "pipeline": null,
  "catch_up": { "duration_ms": 423.55, "speedup": 99.0 }
}"#;
        assert_eq!(extract(json, "pipeline", "speedup"), None);
        assert_eq!(extract(json, "catch_up", "duration_ms"), Some(423.55));
    }

    #[test]
    fn key_lookup_stays_inside_the_section() {
        // "committed" appears in two sections; each lookup must resolve
        // within its own object.
        assert_eq!(extract(SAMPLE, "throughput", "committed"), Some(1165.0));
        assert_eq!(extract(SAMPLE, "failover", "committed"), Some(20.0));
    }
}
