//! CI bench-regression gate: compare a fresh `BENCH_smoke.json` against
//! the committed `BENCH_baseline.json` and fail the build (exit 1) when
//! a tracked metric regressed beyond the tolerance.
//!
//! Usage: `bench_compare [baseline.json] [current.json]`
//! (defaults: `BENCH_baseline.json`, `BENCH_smoke.json`).
//!
//! Tracked metrics and directions:
//!
//! * `throughput.tps` — must not drop more than the tolerance;
//! * `pipeline.speedup` — pipelined vs serial-baseline blocks/s; must
//!   not drop more than the tolerance;
//! * `pipeline.vs_concurrent` — pipelined blocks/s (with the sharded
//!   parallel apply) vs pipeline-off blocks/s on the same chain; must
//!   not drop more than the tolerance, and additionally carries an
//!   absolute floor of 1.1: whatever the baseline says, the pipeline +
//!   parallel-commit stack must beat the synchronous committer by at
//!   least 10% or the gate fails;
//! * `pipeline.apply_speedup` — pipelined blocks/s with
//!   `apply_workers = N` vs the same pipeline with the serial apply
//!   (`apply_workers = 1`); isolates the worker pool. On single-core
//!   CI this hovers near 1.0 (the apply is CPU-bound), so the gate is
//!   baseline-relative only — it exists to catch the pool *costing*
//!   throughput;
//! * `pipeline.pipelined_commit_p95_ms` — p95 of the commit stage
//!   (serial gate + apply) in pipelined mode; must not grow more than
//!   the tolerance plus a fixed 1 ms grace (the usual 250 ms duration
//!   slack would swamp a sub-millisecond percentile);
//! * `catch_up.duration_ms` — must not grow more than the tolerance;
//! * `failover.resume_ms` — must not grow more than the tolerance;
//! * `tcp.tps` — committed throughput over the real-TCP deployment
//!   surface; must not drop more than the tolerance;
//! * `tcp.p95_latency_ms` — client-observed commit latency over TCP;
//!   must not grow more than the tolerance;
//! * `storage.cold_rows_per_s` — full-scan throughput with every heap
//!   segment faulted from its slotted-page file through the buffer
//!   pool; must not drop more than the tolerance;
//! * `storage.hot_rows_per_s` — the same scan once the segments are
//!   resident again; must not drop more than the tolerance;
//! * `analytics.seq_rows_per_s` / `analytics.join_rows_per_s` —
//!   sequential-aggregate and sort-merge-join throughput of the
//!   cost-based planner's engine-level analytics phase; must not drop
//!   more than the tolerance;
//! * `analytics.union_speedup` — index-union point lookups vs the
//!   forced full-scan shape the old heuristic produced for every `OR`
//!   predicate; carries an absolute floor of 2.0 on top of the
//!   baseline-relative check, so the planner must beat the old plan by
//!   at least 2x regardless of baseline drift;
//! * `analytics.covering_speedup` — covering-index aggregate vs the
//!   heap-faulting index scan the old planner always produced; floor
//!   1.05 — covering must never be slower than faulting the heap;
//! * `analytics.ssi_abort_rate` — abort rate of a contention workload
//!   whose transaction pairs are serializable exactly when predicate
//!   locks are index-narrow (§4.3 read-set shrinkage); 0.0 by design,
//!   so it gets a fixed 0.05 absolute grace instead of a relative
//!   tolerance (which is meaningless on a zero baseline).
//!
//! The tolerance defaults to ±20% (`BENCH_TOLERANCE`, a fraction).
//! Millisecond metrics additionally get a small absolute slack
//! (`BENCH_SLACK_MS`, default 250 ms) so scheduler jitter on loaded CI
//! runners cannot fail the gate on a sub-second measurement; tps, the
//! primary signal, gets no slack. Improvements never fail the gate —
//! they print a hint to refresh the baseline.
//!
//! The JSON is the fixed shape `bench_smoke` emits, so parsing is a
//! dependency-free scan: find the section object, then the key's number.
//! Because the parse is positional rather than schema-validated, the
//! gate first checks the report's `schema` tag against the version this
//! binary was written for — a `bench_smoke` shape change that lands
//! without a matching `bench_compare` update fails the build instead of
//! silently mis-reading (or skipping) metrics.

use std::process::ExitCode;

/// The `bench_smoke` report schema this gate understands. Bump in the
/// same commit as the `"schema"` tag in `bench_smoke.rs` — CI fails on
/// any mismatch.
const EXPECTED_SCHEMA: &str = "bcrdb-bench-smoke-v7";

/// Extract the top-level `"schema": "<tag>"` string from `json`.
fn extract_schema(json: &str) -> Option<&str> {
    let key_at = json.find("\"schema\"")?;
    let tail = &json[key_at + "\"schema\"".len()..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extract `"section": { ... "key": <number> ... }` from `json`.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec_pat = format!("\"{section}\"");
    let sec_at = json.find(&sec_pat)?;
    let body = &json[sec_at + sec_pat.len()..];
    // The section's value must itself be an object: a skipped phase
    // (`"section": null` under BENCH_PHASES) must not fall through to
    // the next section's braces.
    if body
        .trim_start_matches([':', ' ', '\n'])
        .starts_with("null")
    {
        return None;
    }
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let obj = &body[open..=close];
    let key_pat = format!("\"{key}\"");
    let key_at = obj.find(&key_pat)?;
    let tail = &obj[key_at + key_pat.len()..];
    let colon = tail.find(':')?;
    let num: String = tail[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One gated metric. `higher_is_better` decides the regression direction;
/// `slack` is an absolute grace added on top of the relative tolerance;
/// `floor` is an absolute minimum (higher-is-better gates only) that
/// applies regardless of the baseline — a relative tolerance alone
/// would let a requirement like "vs_concurrent ≥ 1.1" erode one
/// baseline refresh at a time.
struct Gate {
    section: &'static str,
    key: &'static str,
    higher_is_better: bool,
    slack: f64,
    floor: Option<f64>,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let current_path = args.next().unwrap_or_else(|| "BENCH_smoke.json".into());
    let tolerance = env_f64("BENCH_TOLERANCE", 0.20);
    let slack_ms = env_f64("BENCH_SLACK_MS", 250.0);

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = match std::fs::read_to_string(&current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_compare: cannot read current run {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Schema handshake before any metric parse (see module docs).
    for (label, path, json) in [
        ("baseline", &baseline_path, &baseline),
        ("current run", &current_path, &current),
    ] {
        match extract_schema(json) {
            Some(s) if s == EXPECTED_SCHEMA => {}
            Some(s) => {
                eprintln!(
                    "bench_compare: {label} {path} has schema \"{s}\", this gate expects \
                     \"{EXPECTED_SCHEMA}\" — update bench_compare (and refresh the baseline) \
                     in the same commit as the bench_smoke schema bump"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("bench_compare: {label} {path} has no \"schema\" tag");
                return ExitCode::FAILURE;
            }
        }
    }

    let gates = [
        Gate {
            section: "throughput",
            key: "tps",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "pipeline",
            key: "speedup",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "pipeline",
            key: "vs_concurrent",
            higher_is_better: true,
            slack: 0.0,
            floor: Some(1.1),
        },
        Gate {
            section: "pipeline",
            key: "apply_speedup",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "pipeline",
            key: "pipelined_commit_p95_ms",
            higher_is_better: false,
            // Sub-millisecond percentile: the 250 ms scheduler slack
            // would swamp it, so it gets a fixed 1 ms grace instead.
            // The gate exists to catch the commit stage regressing to
            // multi-millisecond, not to police scheduler noise.
            slack: 1.0,
            floor: None,
        },
        Gate {
            section: "catch_up",
            key: "duration_ms",
            higher_is_better: false,
            slack: slack_ms,
            floor: None,
        },
        Gate {
            section: "failover",
            key: "resume_ms",
            higher_is_better: false,
            slack: slack_ms,
            floor: None,
        },
        Gate {
            section: "tcp",
            key: "tps",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "tcp",
            key: "p95_latency_ms",
            higher_is_better: false,
            slack: slack_ms,
            floor: None,
        },
        Gate {
            section: "storage",
            key: "cold_rows_per_s",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "storage",
            key: "hot_rows_per_s",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "analytics",
            key: "seq_rows_per_s",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "analytics",
            key: "union_speedup",
            higher_is_better: true,
            slack: 0.0,
            floor: Some(2.0),
        },
        Gate {
            section: "analytics",
            key: "covering_speedup",
            higher_is_better: true,
            slack: 0.0,
            floor: Some(1.05),
        },
        Gate {
            section: "analytics",
            key: "join_rows_per_s",
            higher_is_better: true,
            slack: 0.0,
            floor: None,
        },
        Gate {
            section: "analytics",
            key: "ssi_abort_rate",
            higher_is_better: false,
            // The baseline is 0.0, so the relative tolerance is inert;
            // the absolute grace is the whole gate. A planner
            // regression to scan-wide predicate locks aborts one
            // transaction per contention round (rate 0.5) and trips it.
            slack: 0.05,
            floor: None,
        },
    ];

    println!(
        "bench_compare: {current_path} vs {baseline_path} (tolerance ±{:.0}%, slack {slack_ms} ms)",
        tolerance * 100.0
    );
    let mut regressions = 0;
    let mut improvements = 0;
    for g in &gates {
        let name = format!("{}.{}", g.section, g.key);
        let Some(base) = extract(&baseline, g.section, g.key) else {
            // A baseline missing a metric (e.g. recorded before the
            // metric existed) skips that gate instead of failing —
            // refresh the baseline to arm it.
            println!("  {name:<24} SKIP (not in baseline)");
            continue;
        };
        let Some(new) = extract(&current, g.section, g.key) else {
            eprintln!("  {name:<24} FAIL (missing from current run)");
            regressions += 1;
            continue;
        };
        let (bound, ok, better) = if g.higher_is_better {
            let mut bound = base * (1.0 - tolerance) - g.slack;
            if let Some(floor) = g.floor {
                bound = bound.max(floor);
            }
            (bound, new >= bound, new > base)
        } else {
            let bound = base * (1.0 + tolerance) + g.slack;
            (bound, new <= bound, new < base)
        };
        let verdict = if ok { "ok" } else { "REGRESSION" };
        println!("  {name:<24} base {base:>9.1}  new {new:>9.1}  bound {bound:>9.1}  {verdict}");
        if !ok {
            regressions += 1;
        } else if better && (new - base).abs() > base * tolerance {
            improvements += 1;
        }
    }

    if improvements > 0 {
        println!(
            "note: {improvements} metric(s) improved beyond the tolerance — consider \
             refreshing BENCH_baseline.json"
        );
    }
    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} regression(s) beyond the ±{:.0}% tolerance",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: all gates passed");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "bcrdb-bench-smoke-v7",
  "throughput": { "tps": 388.4, "committed": 1165, "aborted": 0 },
  "pipeline": { "serial_bps": 45.0, "pipelined_bps": 150.0, "speedup": 3.3, "vs_concurrent": 1.2, "apply_workers": 4, "apply_serial_bps": 145.0, "apply_speedup": 1.03 },
  "catch_up": { "blocks_fetched": 4, "duration_ms": 423.55, "fast_sync": false },
  "failover": { "committed": 20, "resume_ms": 512.01, "view_changes": 1 },
  "tcp": { "tps": 350.2, "committed": 1050, "aborted": 0, "p95_latency_ms": 98.5 },
  "storage": { "rows": 8193, "spilled_segments": 8, "cold_rows_per_s": 510000.5, "hot_rows_per_s": 2400000.0, "pages_written": 280, "pages_read": 280, "pages_evicted": 216, "pool_hit_rate": 0.4321 },
  "analytics": { "fact_rows": 20000, "seq_rows_per_s": 9100000.0, "union_lookups_per_s": 81000.0, "fullscan_or_lookups_per_s": 420.0, "union_speedup": 192.86, "covering_lookups_per_s": 30000.0, "heap_lookups_per_s": 21000.0, "covering_speedup": 1.429, "join_rows_per_s": 2100000.0, "contention_txns": 400, "ssi_abort_rate": 0.0 }
}"#;

    #[test]
    fn schema_tag_roundtrips() {
        // The sample report is the schema this binary expects; if this
        // assertion fails, the SAMPLE fixture missed a schema bump.
        assert_eq!(extract_schema(SAMPLE), Some(EXPECTED_SCHEMA));
        assert_eq!(extract_schema("{}"), None);
        assert_eq!(
            extract_schema(r#"{ "schema": "bcrdb-bench-smoke-v4" }"#),
            Some("bcrdb-bench-smoke-v4")
        );
    }

    #[test]
    fn smoke_binary_source_emits_the_expected_schema() {
        // Satellite guard: a schema bump in bench_smoke.rs without a
        // matching bench_compare update must fail before CI does.
        let smoke_src = include_str!("bench_smoke.rs");
        assert!(
            smoke_src.contains(&format!("\\\"schema\\\": \\\"{EXPECTED_SCHEMA}\\\"")),
            "bench_smoke.rs no longer emits \"{EXPECTED_SCHEMA}\" — bump EXPECTED_SCHEMA \
             in bench_compare.rs and refresh BENCH_baseline.json in the same commit"
        );
    }

    #[test]
    fn extracts_nested_numbers() {
        assert_eq!(extract(SAMPLE, "throughput", "tps"), Some(388.4));
        assert_eq!(extract(SAMPLE, "pipeline", "speedup"), Some(3.3));
        assert_eq!(extract(SAMPLE, "pipeline", "apply_speedup"), Some(1.03));
        assert_eq!(extract(SAMPLE, "pipeline", "apply_workers"), Some(4.0));
        assert_eq!(extract(SAMPLE, "catch_up", "duration_ms"), Some(423.55));
        assert_eq!(extract(SAMPLE, "failover", "resume_ms"), Some(512.01));
        assert_eq!(extract(SAMPLE, "failover", "view_changes"), Some(1.0));
        assert_eq!(extract(SAMPLE, "tcp", "tps"), Some(350.2));
        assert_eq!(extract(SAMPLE, "tcp", "p95_latency_ms"), Some(98.5));
        assert_eq!(
            extract(SAMPLE, "storage", "cold_rows_per_s"),
            Some(510000.5)
        );
        assert_eq!(
            extract(SAMPLE, "storage", "hot_rows_per_s"),
            Some(2400000.0)
        );
        assert_eq!(extract(SAMPLE, "storage", "pool_hit_rate"), Some(0.4321));
        assert_eq!(extract(SAMPLE, "analytics", "union_speedup"), Some(192.86));
        assert_eq!(
            extract(SAMPLE, "analytics", "covering_speedup"),
            Some(1.429)
        );
        assert_eq!(
            extract(SAMPLE, "analytics", "join_rows_per_s"),
            Some(2100000.0)
        );
        assert_eq!(extract(SAMPLE, "analytics", "ssi_abort_rate"), Some(0.0));
        assert_eq!(extract(SAMPLE, "nope", "tps"), None);
        assert_eq!(extract(SAMPLE, "throughput", "nope"), None);
    }

    #[test]
    fn skipped_null_section_is_missing_not_misread() {
        // A BENCH_PHASES run writes `"pipeline": null`; the lookup must
        // not fall through into the next section's object.
        let json = r#"{
  "schema": "bcrdb-bench-smoke-v4",
  "pipeline": null,
  "catch_up": { "duration_ms": 423.55, "speedup": 99.0 }
}"#;
        assert_eq!(extract(json, "pipeline", "speedup"), None);
        assert_eq!(extract(json, "catch_up", "duration_ms"), Some(423.55));
    }

    #[test]
    fn key_lookup_stays_inside_the_section() {
        // "committed" appears in two sections; each lookup must resolve
        // within its own object.
        assert_eq!(extract(SAMPLE, "throughput", "committed"), Some(1165.0));
        assert_eq!(extract(SAMPLE, "failover", "committed"), Some(20.0));
    }
}
