//! CI smoke benchmark: a quick throughput run, a serial-vs-pipelined
//! block-commit comparison, a crash-and-rejoin catch-up scenario, an
//! orderer-leader-failover scenario, a real-TCP deployment run, a
//! paged-storage cold-vs-hot scan comparison, and a cost-based-planner
//! analytics comparison (index union / covering scan / sort-merge join
//! vs the old heuristic's plans), emitting one
//! machine-readable `BENCH_smoke.json` artifact so the perf trajectory
//! (throughput, pipeline speedup, catch-up duration, failover recovery
//! time, buffer-pool fault cost) is tracked run over run — and gated
//! against `BENCH_baseline.json` by the `bench_compare` bin.
//!
//! Output path: `$BENCH_OUT` or `./BENCH_smoke.json`. Runtime target is
//! well under a minute — this is a trend line, not a rigorous benchmark.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_bench::{run_open_loop, BenchNetwork, Workload, WorkloadKind};
use bcrdb_chain::ledger::TxStatus;
use bcrdb_common::value::Value;
use bcrdb_core::{Call, Network, NetworkConfig};
use bcrdb_network::NetProfile;
use bcrdb_ordering::OrderingConfig;
use bcrdb_txn::ssi::Flow;

fn main() {
    // `BENCH_PHASES=pipeline,throughput` runs a subset (local tuning /
    // CI triage); skipped phases emit `null` and their gates report the
    // metric as missing.
    let only: Option<Vec<String>> = std::env::var("BENCH_PHASES")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let want = |name: &str| only.as_ref().is_none_or(|v| v.iter().any(|p| p == name));
    let throughput = if want("throughput") {
        throughput_phase()
    } else {
        "null".into()
    };
    let pipeline = if want("pipeline") {
        pipeline_phase()
    } else {
        "null".into()
    };
    let catch_up = if want("catch_up") {
        catch_up_phase()
    } else {
        "null".into()
    };
    let failover = if want("failover") {
        failover_phase()
    } else {
        "null".into()
    };
    let tcp = if want("tcp") {
        tcp_phase()
    } else {
        "null".into()
    };
    let storage = if want("storage") {
        storage_phase()
    } else {
        "null".into()
    };
    let analytics = if want("analytics") {
        analytics_phase()
    } else {
        "null".into()
    };

    let json = format!(
        "{{\n  \"schema\": \"bcrdb-bench-smoke-v7\",\n  \"throughput\": {throughput},\n  \
         \"pipeline\": {pipeline},\n  \"catch_up\": {catch_up},\n  \"failover\": {failover},\n  \
         \"tcp\": {tcp},\n  \"storage\": {storage},\n  \"analytics\": {analytics}\n}}\n"
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_smoke.json".into());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}:\n{json}");
}

/// One run of the pipeline comparison: a pre-built chain fed straight
/// into the node's block processor, so the block processor — exactly the
/// subsystem the pipeline restructures — is the bottleneck, not the
/// ordering service. Both modes process the identical chain.
struct PipelineRun {
    blocks: u64,
    secs: f64,
    bps: f64,
    tps: f64,
    commit_p50_ms: f64,
    commit_p95_ms: f64,
    /// Windowed average of the apply slice of the commit stage.
    apply_stage_ms: f64,
}

fn percentile_ms(samples: &[u64], pct: usize) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[(s.len() * pct / 100).min(s.len() - 1)] as f64 / 1000.0
}

/// Blocks per pipeline run and transactions per block.
const PIPE_BLOCKS: u64 = 40;
const PIPE_BLOCK_TXS: u64 = 64;
/// Simulated per-transaction backend cost (µs) — the `min_exec_micros`
/// calibration knob (see DESIGN.md's substitution table) that stands in
/// for the paper's PostgreSQL parse/plan/WAL overhead, giving the
/// execution stage a realistic weight against the post-commit stage.
const PIPE_MIN_EXEC_US: u64 = 1200;
/// Tables the fixture's write sets spread across. The commit stage's
/// parallel apply shards by (table, heap segment), so a multi-table
/// write set is what gives `apply_workers > 1` distinct shards — one
/// table × one block's rows lands in a single heap segment.
const PIPE_TABLES: u64 = 8;
/// Payload bytes per row: write-set hashing, ledger appends and the
/// group fsync all scale with this, which is exactly the post-commit
/// work the pipeline overlaps and the apply pool shards.
const PIPE_PAYLOAD: usize = 2 * 1024;
/// Apply workers for the parallel-apply run (explicit, not
/// core-derived: CI runners are often single-core, and the point is to
/// exercise the sharded pool and measure its cost/benefit there too).
const PIPE_APPLY_WORKERS: usize = 4;

/// Deterministic identities + the pre-built chain shared by both runs.
struct PipelineFixture {
    certs: Arc<bcrdb_crypto::identity::CertificateRegistry>,
    blocks: Vec<Arc<bcrdb_chain::block::Block>>,
}

fn pipeline_fixture() -> PipelineFixture {
    use bcrdb_chain::block::{genesis_prev_hash, Block};
    use bcrdb_chain::tx::{Payload, Transaction};
    use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};

    let client = KeyPair::generate("org1/bench", b"bench", Scheme::Sim);
    let orderer = KeyPair::generate("ordering/orderer0", b"ord", Scheme::Sim);
    let certs = CertificateRegistry::new();
    certs.register(Certificate {
        name: "org1/bench".into(),
        org: "org1".into(),
        role: Role::Client,
        public_key: client.public_key(),
    });
    certs.register(Certificate {
        name: "ordering/orderer0".into(),
        org: "ordering".into(),
        role: Role::Orderer,
        public_key: orderer.public_key(),
    });

    let mut blocks = Vec::with_capacity(PIPE_BLOCKS as usize);
    let mut prev = genesis_prev_hash();
    let mut n = 0u64;
    for number in 1..=PIPE_BLOCKS {
        let txs: Vec<Transaction> = (0..PIPE_BLOCK_TXS)
            .map(|_| {
                n += 1;
                // One fat row per transaction: the post-commit stage
                // (write-set hashing, ledger records, group fsync) scales
                // with written bytes, which is exactly the work the
                // pipeline overlaps with the next block's execution.
                // Round-robin over PIPE_TABLES tables so each block's
                // write set spans several apply shards.
                let args = vec![
                    Value::Int(n as i64),
                    Value::Text(format!("payload-{n}-{}", "x".repeat(PIPE_PAYLOAD))),
                ];
                Transaction::new_order_execute(
                    "org1/bench",
                    Payload::new(format!("bench_tx{}", n % PIPE_TABLES), args),
                    n,
                    &client,
                )
                .unwrap()
            })
            .collect();
        let mut block = Block::build(number, prev, txs, "solo", vec![]);
        block.sign(&orderer).unwrap();
        prev = block.hash;
        blocks.push(Arc::new(block));
    }
    PipelineFixture { certs, blocks }
}

/// The three block-processing configurations under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PipeMode {
    /// The Ethereum-style order-then-serial-execute baseline (§5.1):
    /// one transaction at a time, inline at its commit point.
    Serial,
    /// Concurrent execution, synchronous per-block commit (the
    /// pre-pipeline default; `pipeline = false`).
    Concurrent,
    /// The staged commit pipeline (`pipeline = true`).
    Pipelined,
}

impl PipeMode {
    fn label(self) -> &'static str {
        match self {
            PipeMode::Serial => "serial",
            PipeMode::Concurrent => "concurrent",
            PipeMode::Pipelined => "pipelined",
        }
    }
}

fn pipeline_run(fixture: &PipelineFixture, mode: PipeMode, apply_workers: usize) -> PipelineRun {
    use bcrdb_node::{Node, NodeConfig};

    let dir = std::env::temp_dir().join(format!(
        "bcrdb-bench-pipe-{}-{}-w{}",
        std::process::id(),
        mode.label(),
        apply_workers
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
    cfg.pipeline = mode == PipeMode::Pipelined;
    cfg.serial_execution = mode == PipeMode::Serial;
    // Wide enough that the exec stage (sleep-dominated, overlappable)
    // never caps the pipeline: 64 tx × PIPE_MIN_EXEC_US / 32 keeps the
    // per-block pool floor below the commit thread's serial work, so
    // pipelined-mode head waits stay near zero even on one core.
    cfg.executor_threads = 32;
    cfg.apply_workers = apply_workers;
    cfg.min_exec_micros = PIPE_MIN_EXEC_US;
    // Durable store so the comparison includes the group-fsync effect:
    // serial mode pays a sync_data per appended block on the commit
    // path, the pipeline batches syncs on the post-commit worker.
    cfg.fsync = true;
    cfg.data_dir = Some(dir.clone());
    let node = Node::new(cfg, Arc::clone(&fixture.certs), vec!["org1".into()]).expect("node");
    let ddl: String = (0..PIPE_TABLES)
        .map(|t| {
            format!(
                "CREATE TABLE bench_pipe{t} (id INT PRIMARY KEY, payload TEXT NOT NULL); \
                 CREATE FUNCTION bench_tx{t}(id INT, p TEXT) AS $$ \
                   INSERT INTO bench_pipe{t} VALUES ($1, $2) $$; "
            )
        })
        .collect();
    for stmt in bcrdb_sql::parse_statements(&ddl).expect("ddl") {
        match stmt {
            bcrdb_sql::ast::Statement::CreateTable { .. } => {}
            bcrdb_sql::ast::Statement::CreateFunction(def) => {
                node.contracts().install(def).expect("contract");
                continue;
            }
            _ => continue,
        }
        // CreateTable: materialize via the schema helper.
        if let bcrdb_sql::ast::Statement::CreateTable {
            name,
            columns,
            primary_key,
        } = stmt
        {
            let cols: Vec<bcrdb_common::schema::Column> = columns
                .iter()
                .map(|c| bcrdb_common::schema::Column {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    nullable: c.nullable && !c.inline_pk,
                })
                .collect();
            let mut pk: Vec<usize> = columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.inline_pk)
                .map(|(i, _)| i)
                .collect();
            if !primary_key.is_empty() {
                pk = primary_key
                    .iter()
                    .map(|n| {
                        columns
                            .iter()
                            .position(|c| &c.name == n)
                            .expect("pk column")
                    })
                    .collect();
            }
            let schema = bcrdb_common::schema::TableSchema::new(name, cols, pk).expect("schema");
            node.catalog().create_table(schema).expect("table");
        }
    }

    let (tx, rx) = crossbeam_channel::unbounded();
    node.start(rx);
    let t0 = Instant::now();
    for b in &fixture.blocks {
        tx.send(Arc::clone(b)).expect("feed block");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while node.postcommit_height() < PIPE_BLOCKS {
        assert!(Instant::now() < deadline, "pipeline bench run stalled");
        std::thread::sleep(Duration::from_micros(200));
    }
    let secs = t0.elapsed().as_secs_f64();
    let committed = node.metrics().committed();
    assert_eq!(
        committed,
        PIPE_BLOCKS * PIPE_BLOCK_TXS,
        "no aborts expected"
    );
    let samples = node.metrics().commit_stage_samples();
    let m = node.metrics().take();
    if std::env::var("BENCH_PIPE_DEBUG").is_ok() {
        eprintln!(
            "debug[{}-w{}]: bpt {:.2} ms, bet {:.2} ms, commit {:.2} ms \
             (apply {:.3} ms), post {:.2} ms",
            mode.label(),
            apply_workers,
            m.bpt_ms,
            m.bet_ms,
            m.commit_stage_ms,
            m.apply_stage_ms,
            m.post_stage_ms
        );
    }
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    PipelineRun {
        blocks: PIPE_BLOCKS,
        secs,
        bps: PIPE_BLOCKS as f64 / secs,
        tps: committed as f64 / secs,
        commit_p50_ms: percentile_ms(&samples, 50),
        commit_p95_ms: percentile_ms(&samples, 95),
        apply_stage_ms: m.apply_stage_ms,
    }
}

/// Serial vs pipelined block commit on the same pre-built chain — the
/// headline number for the staged commit pipeline (execution of block
/// N+1 and post-commit work of block N overlap the serial commit core).
fn pipeline_phase() -> String {
    let fixture = pipeline_fixture();
    // Best-of-N per mode: on loaded single-core CI runners, scheduler
    // noise dwarfs the effect under test; the best run is the cleanest
    // observation of each mode's capability on identical work.
    let runs = 3;
    let best = |mode: PipeMode, workers: usize| {
        (0..runs)
            .map(|_| pipeline_run(&fixture, mode, workers))
            .max_by(|a, b| a.bps.total_cmp(&b.bps))
            .expect("runs > 0")
    };
    let serial = best(PipeMode::Serial, 1);
    let concurrent = best(PipeMode::Concurrent, 1);
    // The apply axis, isolated inside the pipelined mode: the same
    // staged pipeline with the fully serial apply vs the sharded
    // apply-worker pool.
    let apply_serial = best(PipeMode::Pipelined, 1);
    let pipelined = best(PipeMode::Pipelined, PIPE_APPLY_WORKERS);
    // Headline: the staged pipeline vs the paper's serial-execution
    // baseline (§5.1) on the same chain. The pipelined/concurrent ratio
    // isolates this PR sequence's commit-path restructuring (pipeline +
    // gated parallel apply) against the pre-pipeline synchronous
    // committer; apply_speedup isolates the worker pool alone — on a
    // single-core runner it hovers near 1.0 (the apply is CPU-bound),
    // on real hardware it tracks the apply share of the commit stage.
    let speedup = if serial.bps > 0.0 {
        pipelined.bps / serial.bps
    } else {
        0.0
    };
    let vs_concurrent = if concurrent.bps > 0.0 {
        pipelined.bps / concurrent.bps
    } else {
        0.0
    };
    let apply_speedup = if apply_serial.bps > 0.0 {
        pipelined.bps / apply_serial.bps
    } else {
        0.0
    };
    for (mode, run) in [
        ("serial", &serial),
        ("concurrent", &concurrent),
        ("apply=1", &apply_serial),
        ("pipelined", &pipelined),
    ] {
        println!(
            "pipeline: {mode:<10} {:>6.1} blocks/s ({} blocks in {:.2}s, {:>6.0} tx/s, \
             commit p50/p95 {:.2}/{:.2} ms, apply {:.3} ms)",
            run.bps,
            run.blocks,
            run.secs,
            run.tps,
            run.commit_p50_ms,
            run.commit_p95_ms,
            run.apply_stage_ms
        );
    }
    println!(
        "pipeline: pipelined vs serial {speedup:.2}x, vs concurrent {vs_concurrent:.2}x, \
         apply 1-vs-{PIPE_APPLY_WORKERS} {apply_speedup:.2}x"
    );
    format!(
        "{{ \"serial_bps\": {:.2}, \"concurrent_bps\": {:.2}, \"pipelined_bps\": {:.2}, \
         \"speedup\": {:.3}, \"vs_concurrent\": {:.3}, \
         \"apply_workers\": {}, \"apply_serial_bps\": {:.2}, \"apply_speedup\": {:.3}, \
         \"serial_tps\": {:.1}, \"pipelined_tps\": {:.1}, \
         \"serial_commit_p50_ms\": {:.3}, \"serial_commit_p95_ms\": {:.3}, \
         \"apply_serial_commit_p50_ms\": {:.3}, \"apply_serial_commit_p95_ms\": {:.3}, \
         \"pipelined_commit_p50_ms\": {:.3}, \"pipelined_commit_p95_ms\": {:.3}, \
         \"pipelined_apply_stage_ms\": {:.3} }}",
        serial.bps,
        concurrent.bps,
        pipelined.bps,
        speedup,
        vs_concurrent,
        PIPE_APPLY_WORKERS,
        apply_serial.bps,
        apply_speedup,
        serial.tps,
        pipelined.tps,
        serial.commit_p50_ms,
        serial.commit_p95_ms,
        apply_serial.commit_p50_ms,
        apply_serial.commit_p95_ms,
        pipelined.commit_p50_ms,
        pipelined.commit_p95_ms,
        pipelined.apply_stage_ms
    )
}

/// Open-loop throughput of the OE flow with the simple contract on an
/// instant network — the cheapest stable signal of protocol overhead.
fn throughput_phase() -> String {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.ordering = OrderingConfig::kafka(3, 64, Duration::from_millis(100));
    cfg.executor_threads = 4;
    let bench =
        BenchNetwork::build(cfg, Workload::new(WorkloadKind::Simple, 0)).expect("build network");
    let stats = run_open_loop(&bench, 400.0, Duration::from_secs(3), 1).expect("open loop");
    bench.net.shutdown();
    println!(
        "throughput: {:.1} tx/s (committed {}, aborted {}, p95 {:.1} ms)",
        stats.throughput, stats.committed, stats.aborted, stats.p95_latency_ms
    );
    format!(
        "{{ \"tps\": {:.1}, \"committed\": {}, \"aborted\": {}, \"avg_latency_ms\": {:.2}, \
         \"p95_latency_ms\": {:.2} }}",
        stats.throughput,
        stats.committed,
        stats.aborted,
        stats.avg_latency_ms,
        stats.p95_latency_ms
    )
}

/// Crash-and-rejoin under a WAN profile: stop one node, commit blocks
/// without it, rejoin, and report how long peer catch-up took — the
/// acceptance signal for the §3.6 sync subsystem.
fn catch_up_phase() -> String {
    let root = std::env::temp_dir().join(format!("bcrdb-bench-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("temp root");

    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.net_profile = NetProfile::wan();
    cfg.data_root = Some(root.clone());
    cfg.genesis_sql = Some(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
         CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$"
            .into(),
    );
    let net = Network::build(cfg).expect("build network");

    let pump = |net: &Network, start: i64, count: i64| {
        let client = net.client("org1", "smoke").expect("client");
        for k in start..start + count {
            client
                .call("put")
                .arg(k)
                .arg(k)
                .submit_wait_retrying(Duration::from_secs(30))
                .expect("commit");
        }
    };

    pump(&net, 1, 3);
    net.stop_node("org3").expect("stop");
    pump(&net, 100, 10);

    let t0 = Instant::now();
    let node = net.rejoin_node("org3").expect("rejoin");
    let rejoin_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let stats = node.last_sync_stats().expect("catch-up ran");
    let head = net
        .nodes()
        .iter()
        .map(|n| n.height())
        .max()
        .unwrap_or_default();
    net.await_height(head, Duration::from_secs(30))
        .expect("convergence");
    net.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "catch-up: {} blocks fetched ({} replayed) in {:.1} ms ({} rounds, fast-sync: {:?})",
        stats.fetched,
        stats.replayed,
        stats.duration.as_secs_f64() * 1000.0,
        stats.rounds,
        stats.fast_sync_height
    );
    format!(
        "{{ \"blocks_fetched\": {}, \"blocks_replayed\": {}, \"rounds\": {}, \
         \"duration_ms\": {:.2}, \"rejoin_total_ms\": {:.2}, \"fast_sync\": {} }}",
        stats.fetched,
        stats.replayed,
        stats.rounds,
        stats.duration.as_secs_f64() * 1000.0,
        rejoin_ms,
        stats.fast_sync_height.is_some()
    )
}

/// Orderer leader failover under load: kill the BFT leader with a batch
/// in flight and report how long until every transaction of the batch is
/// committed under the rotated leader — the acceptance signal for the
/// PBFT view-change subsystem.
fn failover_phase() -> String {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    let mut ord = OrderingConfig::bft(4, 8, Duration::from_millis(50));
    ord.bft_msg_cost = Duration::from_micros(50);
    ord.view_change_timeout = Duration::from_millis(300);
    cfg.ordering = ord;
    cfg.gap_timeout = Duration::from_millis(300);
    cfg.genesis_sql = Some(
        "CREATE TABLE fo (k INT PRIMARY KEY, v INT NOT NULL); \
         CREATE FUNCTION fput(k INT, v INT) AS $$ INSERT INTO fo VALUES ($1, $2) $$"
            .into(),
    );
    let net = Network::build(cfg).expect("build network");

    // Warm traffic in view 0.
    let warm = net.client("org1", "warm").expect("client");
    for k in 1..4i64 {
        warm.call("fput")
            .arg(k)
            .arg(k)
            .submit_wait_retrying(Duration::from_secs(30))
            .expect("warm commit");
    }

    // A batch in flight when the leader dies.
    let client = net.client("org2", "burst").expect("client");
    let calls: Vec<Call> = (100..120i64)
        .map(|k| Call::new("fput").arg(k).arg(k))
        .collect();
    let batch = client.submit_all(calls).expect("batch");
    net.stop_orderer(0).expect("stop leader");
    let t0 = Instant::now();
    let outcomes = batch
        .wait_all(Duration::from_secs(60))
        .expect("batch resolves across failover");
    let resume_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut committed = HashSet::new();
    for n in &outcomes {
        assert!(
            matches!(n.status, TxStatus::Committed),
            "transaction lost across failover"
        );
        assert!(committed.insert(n.id), "transaction duplicated");
    }
    let stats = net.ordering().stats_snapshot();
    net.shutdown();

    println!(
        "failover: {} txs re-committed {resume_ms:.1} ms after leader kill \
         (view {} after {} view change(s))",
        committed.len(),
        stats.current_view,
        stats.view_changes
    );
    format!(
        "{{ \"committed\": {}, \"resume_ms\": {:.2}, \"view_changes\": {}, \
         \"current_view\": {} }}",
        committed.len(),
        resume_ms,
        stats.view_changes,
        stats.current_view
    )
}

/// Real-TCP deployment phase: a 4-node / 4-orderer localhost cluster
/// (in-process services behind real sockets — the surface `bcrdb-node`
/// serves) driven open-loop by per-connection TCP clients. Measures the
/// full deployment path end to end: length-prefixed framing,
/// per-connection frontend workers, server-push notifications.
fn tcp_phase() -> String {
    use bcrdb_core::{tcp_client, ClusterSpec, TcpCluster};

    const CONNECTIONS: usize = 8;
    const OFFERED_TPS: f64 = 400.0;
    const SECS: f64 = 3.0;

    let spec = ClusterSpec::new(
        &["org1", "org2", "org3", "org4"],
        Flow::ExecuteOrderParallel,
    );
    let cluster = TcpCluster::launch(spec, None).expect("tcp cluster");
    let addrs = cluster.client_addrs().to_vec();
    let spec = Arc::new(cluster.spec().clone());

    let start = Instant::now();
    let window = Duration::from_secs_f64(SECS);
    let window_end = start + window;
    let drain_deadline = window_end + Duration::from_secs(15);
    let interval = Duration::from_secs_f64(CONNECTIONS as f64 / OFFERED_TPS);

    let workers: Vec<_> = (0..CONNECTIONS)
        .map(|i| {
            let spec = Arc::clone(&spec);
            let addr = addrs[i % addrs.len()].clone();
            std::thread::spawn(move || {
                let norgs = spec.orgs.len();
                let org = spec.orgs[i % norgs].clone();
                let user = ClusterSpec::bench_user(i / norgs);
                let client = tcp_client(&spec, &org, &user, &addr).expect("tcp client");
                // Latencies are observed on a dedicated collector so the
                // open-loop submitter's pacing never delays them.
                let (q_tx, q_rx) = std::sync::mpsc::channel::<(Instant, bcrdb_core::PendingTx)>();
                let collector = std::thread::spawn(move || {
                    let (mut committed, mut in_window, mut aborted) = (0u64, 0u64, 0u64);
                    let mut lats = Vec::new();
                    for (at, pending) in q_rx.iter() {
                        let left = drain_deadline
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_millis(1));
                        match pending.wait(left) {
                            Ok(n) if matches!(n.status, TxStatus::Committed) => {
                                committed += 1;
                                if Instant::now() <= window_end {
                                    in_window += 1;
                                }
                                lats.push(at.elapsed().as_secs_f64() * 1000.0);
                            }
                            Ok(_) => aborted += 1,
                            Err(_) => {}
                        }
                    }
                    (committed, in_window, aborted, lats)
                });
                let mut n: u64 = 0;
                while Instant::now() < window_end {
                    let id = (i as i64) + (n as i64) * CONNECTIONS as i64;
                    n += 1;
                    let call = client
                        .call("bench_tx")
                        .arg(id)
                        .arg(id % 1000)
                        .arg(id % 77)
                        .arg(format!("payload-{id}"))
                        .arg(id as f64 * 0.5);
                    if let Ok(p) = call.submit() {
                        let _ = q_tx.send((Instant::now(), p));
                    }
                    let next = start + interval.mul_f64(n as f64);
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    }
                }
                drop(q_tx);
                collector.join().expect("collector")
            })
        })
        .collect();

    let (mut committed, mut in_window, mut aborted) = (0u64, 0u64, 0u64);
    let mut lats = Vec::new();
    for w in workers {
        let (c, iw, a, l) = w.join().expect("worker");
        committed += c;
        in_window += iw;
        aborted += a;
        lats.extend(l);
    }
    cluster.shutdown();

    lats.sort_by(|a, b| a.total_cmp(b));
    let tps = in_window as f64 / SECS;
    let p95 = if lats.is_empty() {
        0.0
    } else {
        lats[(lats.len() * 95 / 100).min(lats.len() - 1)]
    };
    println!("tcp: {tps:.1} tx/s over real sockets (committed {committed}, p95 {p95:.1} ms)");
    format!(
        "{{ \"tps\": {tps:.1}, \"committed\": {committed}, \"aborted\": {aborted}, \
         \"p95_latency_ms\": {p95:.2} }}"
    )
}

/// Disk-backed paged storage at the engine level (no node, no network):
/// fill a multi-segment heap, spill every cold segment to slotted-page
/// files through a deliberately tiny buffer pool, then compare a cold
/// full scan (every chain faulted from disk, clock eviction churning)
/// against an immediate hot re-scan (segments rehydrated and resident).
/// The cold/hot gap is the page-fault cost the pool and the spill
/// quiescence rules are designed to keep off the commit path.
fn storage_phase() -> String {
    use bcrdb_common::schema::{Column, DataType, TableSchema};
    use bcrdb_storage::table::SEGMENT_SIZE;
    use bcrdb_storage::{Catalog, PagedStore, Version};

    /// Full heap segments to spill; the tail segment stays resident.
    const SEGMENTS: usize = 8;
    /// Buffer-pool frames — far below the spilled page count, so both
    /// the spill write-back and the cold scan exercise eviction.
    const FRAMES: usize = 64;
    /// Payload bytes per row; sizes the cells so each segment chains
    /// across many 8 KB pages.
    const PAYLOAD: usize = 192;

    let dir = std::env::temp_dir().join(format!("bcrdb-bench-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PagedStore::open(&dir, FRAMES, false).expect("page store");
    let catalog = Catalog::with_store(Arc::clone(&store));
    let schema = TableSchema::new(
        "bench_store",
        vec![
            Column::new("id", DataType::Int),
            Column::new("payload", DataType::Text),
        ],
        vec![0],
    )
    .expect("schema");
    let table = catalog.create_table(schema).expect("table");

    // SEGMENTS full segments plus one tail row (a full segment only
    // stops being the tail — and becomes spillable — once the next
    // append extends the directory past it).
    let rows = SEGMENTS * SEGMENT_SIZE + 1;
    for n in 0..rows {
        let row = vec![
            Value::Int(n as i64),
            Value::Text(format!("payload-{n}-{}", "x".repeat(PAYLOAD))),
        ];
        table.append_restored(Version::restored(
            bcrdb_common::TxId(1),
            row,
            bcrdb_common::RowId(n as u64 + 1),
            1,
            None,
            None,
        ));
    }

    let t0 = Instant::now();
    let spilled = table.spill(2, 1);
    store.sync().expect("page sync");
    let spill_ms = t0.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(spilled, SEGMENTS, "every full non-tail segment spills");

    let t0 = Instant::now();
    let cold = table.all_versions().len();
    let cold_s = t0.elapsed().as_secs_f64();
    assert_eq!(cold, rows, "cold scan sees every version");
    let t0 = Instant::now();
    let hot = table.all_versions().len();
    let hot_s = t0.elapsed().as_secs_f64();
    assert_eq!(hot, rows, "hot scan sees every version");

    let cold_rps = rows as f64 / cold_s;
    let hot_rps = rows as f64 / hot_s;
    let pages_written = store.pages_written();
    let pages_read = store.pages_read();
    let pages_evicted = store.pages_evicted();
    let hit_rate = store.pool_hit_rate();
    drop(table);
    drop(catalog);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "storage: cold scan {cold_rps:.0} rows/s, hot scan {hot_rps:.0} rows/s \
         ({rows} rows, {spilled} segments spilled in {spill_ms:.1} ms, \
         {pages_written} pages written, {pages_read} read, {pages_evicted} evicted, \
         hit rate {hit_rate:.3})"
    );
    format!(
        "{{ \"rows\": {rows}, \"spilled_segments\": {spilled}, \"spill_ms\": {spill_ms:.2}, \
         \"cold_rows_per_s\": {cold_rps:.1}, \"hot_rows_per_s\": {hot_rps:.1}, \
         \"pages_written\": {pages_written}, \"pages_read\": {pages_read}, \
         \"pages_evicted\": {pages_evicted}, \"pool_hit_rate\": {hit_rate:.4} }}"
    )
}

/// The cost-based planner at the engine level (no node, no network): a
/// multi-thousand-row indexed fact table with sealed statistics, timing
/// each new access path against the plan the old heuristic would have
/// picked for the same question. The old planner full-scanned every
/// `OR` predicate and faulted the heap under every index scan, so each
/// comparison leg forces that shape — a non-indexable extra disjunct
/// for the union leg, a second consumed column for the covering leg —
/// and the speedup ratios are self-relative, robust to machine speed.
fn analytics_phase() -> String {
    use bcrdb_common::schema::{Column, DataType, TableSchema};
    use bcrdb_engine::exec::{Executor, StatementEffect};
    use bcrdb_sql::parse_statement;
    use bcrdb_storage::snapshot::ScanMode;
    use bcrdb_storage::Catalog;
    use bcrdb_txn::context::TxnCtx;
    use bcrdb_txn::ssi::SsiManager;

    /// Fact-table rows; large enough that a full scan visibly loses to
    /// two index probes, small enough to seed in well under a second.
    const FACT_ROWS: i64 = 20_000;
    /// Distinct customers (the indexed dimension key): 1000 fact rows
    /// per customer, so the covering leg's per-row heap-fault saving
    /// dominates the fixed per-query parse/plan cost.
    const CUSTOMERS: i64 = 20;
    /// Repetitions for the index-driven legs.
    const LOOKUPS: usize = 300;
    /// Repetitions for legs that visit every fact row (full scans and
    /// the join); far fewer are needed for a stable number.
    const SCANS: usize = 10;

    let mgr = Arc::new(SsiManager::new());
    let catalog = Catalog::new();
    // The fact row carries a wide payload column: a covering scan's
    // win is skipping the per-row heap materialization, which only
    // shows up when the row is more than a couple of scalars.
    let mut orders = TableSchema::new(
        "orders",
        vec![
            Column::new("id", DataType::Int),
            Column::new("customer", DataType::Int),
            Column::new("amount", DataType::Float),
            Column::new("note", DataType::Text),
        ],
        vec![0],
    )
    .expect("orders schema");
    orders
        .add_index("idx_orders_customer", "customer")
        .expect("orders index");
    let orders = catalog.create_table(orders).expect("orders table");
    let customers = TableSchema::new(
        "customers",
        vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ],
        vec![0],
    )
    .expect("customers schema");
    let customers = catalog.create_table(customers).expect("customers table");

    let seed = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
    for c in 0..CUSTOMERS {
        seed.insert(
            &customers,
            vec![Value::Int(c), Value::Text(format!("customer-{c}"))],
        )
        .expect("seed customer");
    }
    for i in 0..FACT_ROWS {
        seed.insert(
            &orders,
            vec![
                Value::Int(i),
                Value::Int(i % CUSTOMERS),
                Value::Float((i % 97) as f64),
                Value::Text(format!("order-{i}-{}", "x".repeat(160))),
            ],
        )
        .expect("seed order");
    }
    assert!(
        seed.apply_commit(1, 0, bcrdb_txn::ssi::Flow::OrderThenExecute)
            .is_committed(),
        "analytics seed commits"
    );
    // Seal exact statistics at the seeded height, the way the vacuum
    // tick's dirty-flag rebuild does on a live node.
    for name in catalog.table_names() {
        catalog.get(&name).expect("table").rebuild_stats(1);
    }

    let run_query = |sql: &str| -> usize {
        let ctx = TxnCtx::read_only(&mgr, 1);
        let exec = Executor::new(&catalog, &ctx, &[]);
        let stmt = parse_statement(sql).expect("bench query parses");
        match exec.execute(&stmt).expect("bench query runs") {
            StatementEffect::Rows(r) => r.rows.len(),
            other => panic!("expected rows, got {other:?}"),
        }
    };
    let plan_of = |sql: &str| -> String {
        let ctx = TxnCtx::read_only(&mgr, 1);
        let exec = Executor::new(&catalog, &ctx, &[]);
        let stmt = parse_statement(&format!("EXPLAIN {sql}")).expect("explain parses");
        match exec.execute(&stmt).expect("explain runs") {
            StatementEffect::Rows(r) => r
                .rows
                .iter()
                .map(|row| match &row[0] {
                    Value::Text(s) => s.clone(),
                    other => panic!("plan line is not text: {other:?}"),
                })
                .collect::<Vec<_>>()
                .join("\n"),
            other => panic!("expected rows, got {other:?}"),
        }
    };

    // Leg 1: sequential aggregate over an unindexed column — the
    // baseline rows/s the other legs are measured against.
    let seq_sql = "SELECT COUNT(amount) FROM orders";
    assert!(plan_of(seq_sql).contains("SeqScan orders"), "seq leg plan");
    let t0 = Instant::now();
    for _ in 0..SCANS {
        assert_eq!(run_query(seq_sql), 1);
    }
    let seq_rps = (SCANS as i64 * FACT_ROWS) as f64 / t0.elapsed().as_secs_f64();

    // Leg 2: OR of two point predicates. The planner probes the primary
    // index per disjunct and unions the row ids; the old heuristic
    // full-scanned. The heuristic shape is forced with an extra
    // disjunct on the unindexed column (never true, so both legs return
    // the same two rows).
    let union_plan = plan_of("SELECT amount FROM orders WHERE id = 17 OR id = 19017");
    assert!(
        union_plan.contains("IndexUnion orders"),
        "union leg plan: {union_plan}"
    );
    assert!(
        plan_of("SELECT amount FROM orders WHERE id = 17 OR id = 19017 OR amount < -1.0")
            .contains("SeqScan orders"),
        "full-scan leg plan"
    );
    let t0 = Instant::now();
    for k in 0..LOOKUPS {
        let a = (k as i64 * 37) % FACT_ROWS;
        let b = (a + FACT_ROWS / 2) % FACT_ROWS;
        let sql = format!("SELECT amount FROM orders WHERE id = {a} OR id = {b}");
        assert_eq!(run_query(&sql), 2);
    }
    let union_lps = LOOKUPS as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for k in 0..SCANS {
        let a = (k as i64 * 37) % FACT_ROWS;
        let b = (a + FACT_ROWS / 2) % FACT_ROWS;
        let sql = format!("SELECT amount FROM orders WHERE id = {a} OR id = {b} OR amount < -1.0");
        assert_eq!(run_query(&sql), 2);
    }
    let fullscan_lps = SCANS as f64 / t0.elapsed().as_secs_f64();
    let union_speedup = union_lps / fullscan_lps;

    // Leg 3: aggregate answered entirely from the secondary index
    // (consumed columns ⊆ {customer}) versus the same aggregate forced
    // to fault 200 heap rows by consuming a second column — the plan
    // the old planner produced for every index scan.
    assert!(
        plan_of("SELECT COUNT(customer) FROM orders WHERE customer = 7")
            .contains("CoveringIndexScan orders"),
        "covering leg plan"
    );
    assert!(
        plan_of("SELECT COUNT(id) FROM orders WHERE customer = 7").contains("IndexScan orders"),
        "heap leg plan"
    );
    let t0 = Instant::now();
    for k in 0..LOOKUPS {
        let sql = format!(
            "SELECT COUNT(customer) FROM orders WHERE customer = {}",
            k as i64 % CUSTOMERS
        );
        assert_eq!(run_query(&sql), 1);
    }
    let covering_lps = LOOKUPS as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for k in 0..LOOKUPS {
        let sql = format!(
            "SELECT COUNT(id) FROM orders WHERE customer = {}",
            k as i64 % CUSTOMERS
        );
        assert_eq!(run_query(&sql), 1);
    }
    let heap_lps = LOOKUPS as f64 / t0.elapsed().as_secs_f64();
    let covering_speedup = covering_lps / heap_lps;

    // Leg 4: fact-to-dimension join, ordered on the join key so the
    // sort credit puts sort-merge ahead of the hash join.
    let join_sql = "SELECT c.name, o.amount FROM orders o \
                    JOIN customers c ON o.customer = c.id ORDER BY o.customer";
    let join_plan = plan_of(join_sql);
    assert!(
        join_plan.contains("SortMergeJoin"),
        "join leg plan: {join_plan}"
    );
    let t0 = Instant::now();
    for _ in 0..SCANS {
        assert_eq!(run_query(join_sql), FACT_ROWS as usize);
    }
    let join_rps = (SCANS as i64 * FACT_ROWS) as f64 / t0.elapsed().as_secs_f64();

    // Leg 5: SSI abort rate under contention. Each round runs two
    // concurrent read-then-write transactions whose index-backed reads
    // overlap only on a row *neither writes*: with the planner's
    // narrow per-disjunct predicate locks the pair is serializable and
    // both commit, but a regression to full-scan reads would register
    // table-wide predicate locks, manufacture rw cycles, and abort one
    // transaction per round — the §4.3 read-set-shrinkage win measured
    // directly.
    const CONTENTION_ROUNDS: usize = 200;
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for k in 0..CONTENTION_ROUNDS {
        let block = 2 + k as u64;
        let a = (k as i64 * 131) % (FACT_ROWS - 3);
        let t1 = TxnCtx::begin(&mgr, block - 1, ScanMode::Relaxed);
        let t2 = TxnCtx::begin(&mgr, block - 1, ScanMode::Relaxed);
        for (t, lo, write) in [(&t1, a, a), (&t2, a + 1, a + 2)] {
            let exec = Executor::new(&catalog, t, &[]);
            let read = parse_statement(&format!(
                "SELECT amount FROM orders WHERE id = {lo} OR id = {}",
                lo + 1
            ))
            .expect("contention read parses");
            exec.execute(&read).expect("contention read runs");
            let update = parse_statement(&format!(
                "UPDATE orders SET amount = {}.0 WHERE id = {write}",
                k % 7
            ))
            .expect("contention write parses");
            exec.execute(&update).expect("contention write runs");
        }
        for (pos, t) in [(0u32, t1), (1u32, t2)] {
            if t.apply_commit(block, pos, bcrdb_txn::ssi::Flow::OrderThenExecute)
                .is_committed()
            {
                committed += 1;
            } else {
                aborted += 1;
            }
        }
    }
    let abort_rate = aborted as f64 / (committed + aborted) as f64;

    println!(
        "analytics: seq {seq_rps:.0} rows/s; union {union_lps:.0} lookups/s vs full-scan \
         {fullscan_lps:.0} ({union_speedup:.1}x); covering {covering_lps:.0} lookups/s vs \
         heap {heap_lps:.0} ({covering_speedup:.2}x); sort-merge join {join_rps:.0} rows/s; \
         contention abort rate {abort_rate:.3} ({aborted}/{})",
        committed + aborted
    );
    format!(
        "{{ \"fact_rows\": {FACT_ROWS}, \"seq_rows_per_s\": {seq_rps:.1}, \
         \"union_lookups_per_s\": {union_lps:.1}, \"fullscan_or_lookups_per_s\": {fullscan_lps:.1}, \
         \"union_speedup\": {union_speedup:.2}, \"covering_lookups_per_s\": {covering_lps:.1}, \
         \"heap_lookups_per_s\": {heap_lps:.1}, \"covering_speedup\": {covering_speedup:.3}, \
         \"join_rows_per_s\": {join_rps:.1}, \"contention_txns\": {}, \
         \"ssi_abort_rate\": {abort_rate:.4} }}",
        committed + aborted
    )
}
