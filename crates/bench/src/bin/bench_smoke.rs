//! CI smoke benchmark: a quick throughput run, a crash-and-rejoin
//! catch-up scenario, and an orderer-leader-failover scenario, emitting
//! one machine-readable `BENCH_smoke.json` artifact so the perf
//! trajectory (throughput, catch-up duration, failover recovery time) is
//! tracked run over run — and gated against `BENCH_baseline.json` by the
//! `bench_compare` bin.
//!
//! Output path: `$BENCH_OUT` or `./BENCH_smoke.json`. Runtime target is
//! well under a minute — this is a trend line, not a rigorous benchmark.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use bcrdb_bench::{run_open_loop, BenchNetwork, Workload, WorkloadKind};
use bcrdb_chain::ledger::TxStatus;
use bcrdb_core::{Call, Network, NetworkConfig};
use bcrdb_network::NetProfile;
use bcrdb_ordering::OrderingConfig;
use bcrdb_txn::ssi::Flow;

fn main() {
    let throughput = throughput_phase();
    let catch_up = catch_up_phase();
    let failover = failover_phase();

    let json = format!(
        "{{\n  \"schema\": \"bcrdb-bench-smoke-v2\",\n  \"throughput\": {throughput},\n  \
         \"catch_up\": {catch_up},\n  \"failover\": {failover}\n}}\n"
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_smoke.json".into());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}:\n{json}");
}

/// Open-loop throughput of the OE flow with the simple contract on an
/// instant network — the cheapest stable signal of protocol overhead.
fn throughput_phase() -> String {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.ordering = OrderingConfig::kafka(3, 64, Duration::from_millis(100));
    cfg.executor_threads = 4;
    let bench =
        BenchNetwork::build(cfg, Workload::new(WorkloadKind::Simple, 0)).expect("build network");
    let stats = run_open_loop(&bench, 400.0, Duration::from_secs(3), 1).expect("open loop");
    bench.net.shutdown();
    println!(
        "throughput: {:.1} tx/s (committed {}, aborted {}, p95 {:.1} ms)",
        stats.throughput, stats.committed, stats.aborted, stats.p95_latency_ms
    );
    format!(
        "{{ \"tps\": {:.1}, \"committed\": {}, \"aborted\": {}, \"avg_latency_ms\": {:.2}, \
         \"p95_latency_ms\": {:.2} }}",
        stats.throughput,
        stats.committed,
        stats.aborted,
        stats.avg_latency_ms,
        stats.p95_latency_ms
    )
}

/// Crash-and-rejoin under a WAN profile: stop one node, commit blocks
/// without it, rejoin, and report how long peer catch-up took — the
/// acceptance signal for the §3.6 sync subsystem.
fn catch_up_phase() -> String {
    let root = std::env::temp_dir().join(format!("bcrdb-bench-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("temp root");

    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.net_profile = NetProfile::wan();
    cfg.data_root = Some(root.clone());
    cfg.genesis_sql = Some(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
         CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$"
            .into(),
    );
    let net = Network::build(cfg).expect("build network");

    let pump = |net: &Network, start: i64, count: i64| {
        let client = net.client("org1", "smoke").expect("client");
        for k in start..start + count {
            client
                .call("put")
                .arg(k)
                .arg(k)
                .submit_wait_retrying(Duration::from_secs(30))
                .expect("commit");
        }
    };

    pump(&net, 1, 3);
    net.stop_node("org3").expect("stop");
    pump(&net, 100, 10);

    let t0 = Instant::now();
    let node = net.rejoin_node("org3").expect("rejoin");
    let rejoin_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let stats = node.last_sync_stats().expect("catch-up ran");
    let head = net
        .nodes()
        .iter()
        .map(|n| n.height())
        .max()
        .unwrap_or_default();
    net.await_height(head, Duration::from_secs(30))
        .expect("convergence");
    net.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "catch-up: {} blocks fetched ({} replayed) in {:.1} ms ({} rounds, fast-sync: {:?})",
        stats.fetched,
        stats.replayed,
        stats.duration.as_secs_f64() * 1000.0,
        stats.rounds,
        stats.fast_sync_height
    );
    format!(
        "{{ \"blocks_fetched\": {}, \"blocks_replayed\": {}, \"rounds\": {}, \
         \"duration_ms\": {:.2}, \"rejoin_total_ms\": {:.2}, \"fast_sync\": {} }}",
        stats.fetched,
        stats.replayed,
        stats.rounds,
        stats.duration.as_secs_f64() * 1000.0,
        rejoin_ms,
        stats.fast_sync_height.is_some()
    )
}

/// Orderer leader failover under load: kill the BFT leader with a batch
/// in flight and report how long until every transaction of the batch is
/// committed under the rotated leader — the acceptance signal for the
/// PBFT view-change subsystem.
fn failover_phase() -> String {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    let mut ord = OrderingConfig::bft(4, 8, Duration::from_millis(50));
    ord.bft_msg_cost = Duration::from_micros(50);
    ord.view_change_timeout = Duration::from_millis(300);
    cfg.ordering = ord;
    cfg.gap_timeout = Duration::from_millis(300);
    cfg.genesis_sql = Some(
        "CREATE TABLE fo (k INT PRIMARY KEY, v INT NOT NULL); \
         CREATE FUNCTION fput(k INT, v INT) AS $$ INSERT INTO fo VALUES ($1, $2) $$"
            .into(),
    );
    let net = Network::build(cfg).expect("build network");

    // Warm traffic in view 0.
    let warm = net.client("org1", "warm").expect("client");
    for k in 1..4i64 {
        warm.call("fput")
            .arg(k)
            .arg(k)
            .submit_wait_retrying(Duration::from_secs(30))
            .expect("warm commit");
    }

    // A batch in flight when the leader dies.
    let client = net.client("org2", "burst").expect("client");
    let calls: Vec<Call> = (100..120i64)
        .map(|k| Call::new("fput").arg(k).arg(k))
        .collect();
    let batch = client.submit_all(calls).expect("batch");
    net.stop_orderer(0).expect("stop leader");
    let t0 = Instant::now();
    let outcomes = batch
        .wait_all(Duration::from_secs(60))
        .expect("batch resolves across failover");
    let resume_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut committed = HashSet::new();
    for n in &outcomes {
        assert!(
            matches!(n.status, TxStatus::Committed),
            "transaction lost across failover"
        );
        assert!(committed.insert(n.id), "transaction duplicated");
    }
    let stats = net.ordering().stats_snapshot();
    net.shutdown();

    println!(
        "failover: {} txs re-committed {resume_ms:.1} ms after leader kill \
         (view {} after {} view change(s))",
        committed.len(),
        stats.current_view,
        stats.view_changes
    );
    format!(
        "{{ \"committed\": {}, \"resume_ms\": {:.2}, \"view_changes\": {}, \
         \"current_view\": {} }}",
        committed.len(),
        resume_ms,
        stats.view_changes,
        stats.current_view
    )
}
