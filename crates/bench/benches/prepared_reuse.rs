//! Prepared-statement reuse vs. per-query re-parsing on the **Fig. 6**
//! complex-join workload.
//!
//! The paper's client interface is PostgreSQL's wire protocol, where
//! `PREPARE`/`EXECUTE` amortizes parse+plan across invocations (§4.3).
//! This microbench isolates that win on the read path of the complex-join
//! contract: the same join+aggregate SELECT executed repeatedly against
//! seeded reference tables, once through `Node::query` (full re-parse
//! every call) and once through `Node::query_prepared` (parsed once,
//! executed with fresh parameters).

use std::sync::Arc;
use std::time::Instant;

use bcrdb_bench::contracts::{Workload, WorkloadKind, GROUPS};
use bcrdb_common::ids::TxId;
use bcrdb_common::schema::{Column, DataType, TableSchema};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::CertificateRegistry;
use bcrdb_node::{Node, NodeConfig};
use bcrdb_storage::version::Version;
use bcrdb_txn::ssi::Flow;
use criterion::{criterion_group, criterion_main, Criterion};

/// The read shape inside the Fig. 10 complex-join contract, as a
/// parameterized SELECT.
const JOIN_SQL: &str = "SELECT i.dept, SUM(o.amount) FROM bench_items i \
                        JOIN bench_orders o ON o.item_id = i.id \
                        WHERE i.dept = $1 GROUP BY i.dept";

/// A point read against the same reference tables — the shape where
/// parsing dominates execution and statement reuse pays the most.
const POINT_SQL: &str = "SELECT price FROM bench_items WHERE id = $1";

fn build_node(seed_rows: usize) -> Arc<Node> {
    let certs = CertificateRegistry::new();
    let cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
    let node = Node::new(cfg, Arc::clone(&certs), vec!["org1".into()]).unwrap();

    let mut items = TableSchema::new(
        "bench_items",
        vec![
            Column::new("id", DataType::Int),
            Column::new("dept", DataType::Int),
            Column::new("price", DataType::Float),
        ],
        vec![0],
    )
    .unwrap();
    items.add_index("idx_items_dept", "dept").unwrap();
    node.catalog().create_table(items).unwrap();
    let mut orders = TableSchema::new(
        "bench_orders",
        vec![
            Column::new("id", DataType::Int),
            Column::new("item_id", DataType::Int),
            Column::new("amount", DataType::Float),
        ],
        vec![0],
    )
    .unwrap();
    orders.add_index("idx_orders_item", "item_id").unwrap();
    node.catalog().create_table(orders).unwrap();

    // Seed the Fig. 6 reference data (same generator the macro bench uses),
    // committed at genesis.
    let workload = Workload::new(WorkloadKind::ComplexJoin, seed_rows);
    for (table, rows) in workload.seed() {
        let t = node.catalog().get(&table).unwrap();
        for row in rows {
            let row = t.schema().check_row(row).unwrap();
            let rid = t.alloc_row_id();
            t.append_restored(Version::restored(TxId::INVALID, row, rid, 0, None, None));
        }
    }
    node
}

fn bench_prepared_vs_reparse(c: &mut Criterion) {
    let seed_rows = if bcrdb_bench::full_mode() {
        20_000
    } else {
        2_000
    };
    let node = build_node(seed_rows);
    let prepared = node.prepare(JOIN_SQL).unwrap();

    let mut g = c.benchmark_group("fig6_join_read");
    let mut dept = 0i64;
    g.bench_function("reparse_per_query", |b| {
        b.iter(|| {
            dept = (dept + 1) % GROUPS;
            node.query(JOIN_SQL, &[Value::Int(dept)]).unwrap()
        })
    });
    g.bench_function("prepared_reuse", |b| {
        b.iter(|| {
            dept = (dept + 1) % GROUPS;
            node.query_prepared(&prepared, &[Value::Int(dept)]).unwrap()
        })
    });
    g.finish();

    let point = node.prepare(POINT_SQL).unwrap();
    let items = 100i64.max(seed_rows as i64 / 20);
    let mut id = 0i64;
    g.bench_function("point_reparse_per_query", |b| {
        b.iter(|| {
            id = (id + 1) % items;
            node.query(POINT_SQL, &[Value::Int(id)]).unwrap()
        })
    });
    g.bench_function("point_prepared_reuse", |b| {
        b.iter(|| {
            id = (id + 1) % items;
            node.query_prepared(&point, &[Value::Int(id)]).unwrap()
        })
    });
    g.finish();

    // Explicit head-to-head so the win is visible without reading the
    // per-bench medians: identical query streams, wall-clock totals.
    let iters = 2_000u64;
    let run = |f: &mut dyn FnMut(i64)| {
        let t0 = Instant::now();
        for n in 0..iters {
            f((n % GROUPS as u64) as i64);
        }
        t0.elapsed()
    };
    let join_reparse = run(&mut |d| {
        node.query(JOIN_SQL, &[Value::Int(d)]).unwrap();
    });
    let join_reuse = run(&mut |d| {
        node.query_prepared(&prepared, &[Value::Int(d)]).unwrap();
    });
    let point_reparse = run(&mut |d| {
        node.query(POINT_SQL, &[Value::Int(d)]).unwrap();
    });
    let point_reuse = run(&mut |d| {
        node.query_prepared(&point, &[Value::Int(d)]).unwrap();
    });
    println!(
        "\n{iters} executions, {seed_rows} seeded orders:\n\
         join  — re-parse {:.1} ms, prepared {:.1} ms ({:.2}x)\n\
         point — re-parse {:.1} ms, prepared {:.1} ms ({:.2}x)",
        join_reparse.as_secs_f64() * 1e3,
        join_reuse.as_secs_f64() * 1e3,
        join_reparse.as_secs_f64() / join_reuse.as_secs_f64(),
        point_reparse.as_secs_f64() * 1e3,
        point_reuse.as_secs_f64() * 1e3,
        point_reparse.as_secs_f64() / point_reuse.as_secs_f64(),
    );
    // The join is execution-dominated, so reuse must merely not lose
    // (within noise); the point read is parse-dominated, so reuse must
    // win outright.
    assert!(
        join_reuse.as_secs_f64() <= join_reparse.as_secs_f64() * 1.05,
        "prepared reuse slower than re-parsing on the join: {join_reuse:?} vs {join_reparse:?}"
    );
    assert!(
        point_reuse < point_reparse,
        "prepared reuse must beat re-parsing on point reads: {point_reuse:?} vs {point_reparse:?}"
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_prepared_vs_reparse
);
criterion_main!(benches);
