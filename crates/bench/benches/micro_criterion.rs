//! Criterion micro-benchmarks of the substrates: crypto costs (hashes,
//! Merkle roots, both signature schemes), block codec, SQL parsing, and
//! the SSI commit-decision cycle — the per-operation costs underneath the
//! macro experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bcrdb_chain::block::{genesis_prev_hash, Block};
use bcrdb_chain::tx::{Payload, Transaction};
use bcrdb_common::codec::{Decode, Encode};
use bcrdb_common::ids::RowId;
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::{KeyPair, Scheme};
use bcrdb_crypto::merkle::MerkleTree;
use bcrdb_crypto::sha256::sha256;
use bcrdb_txn::ssi::{Flow, SsiManager};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data_1k = vec![0xabu8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sha256_1k", |b| {
        b.iter(|| sha256(std::hint::black_box(&data_1k)))
    });
    g.throughput(Throughput::Elements(100));
    let leaves: Vec<Vec<u8>> = (0..100).map(|i| vec![i as u8; 64]).collect();
    g.bench_function("merkle_root_100_leaves", |b| {
        b.iter(|| MerkleTree::build(std::hint::black_box(&leaves)).root())
    });
    g.finish();

    let mut g = c.benchmark_group("signatures");
    let sim = KeyPair::generate("sim", b"s", Scheme::Sim);
    let hb = KeyPair::generate("hb", b"h", Scheme::HashBased { height: 14 });
    let msg = b"a blockchain transaction payload";
    g.bench_function("sim_sign", |b| {
        b.iter(|| sim.sign(std::hint::black_box(msg)).unwrap())
    });
    let sim_sig = sim.sign(msg).unwrap();
    g.bench_function("sim_verify", |b| {
        b.iter(|| bcrdb_crypto::identity::verify(&sim.public_key(), msg, &sim_sig))
    });
    g.bench_function("hashbased_sign", |b| {
        b.iter(|| hb.sign(std::hint::black_box(msg)).expect("key budget"))
    });
    let hb_sig = hb.sign(msg).unwrap();
    g.bench_function("hashbased_verify", |b| {
        b.iter(|| bcrdb_crypto::identity::verify(&hb.public_key(), msg, &hb_sig))
    });
    g.finish();
}

fn bench_block_codec(c: &mut Criterion) {
    let key = KeyPair::generate("c", b"c", Scheme::Sim);
    let txs: Vec<Transaction> = (0..100u64)
        .map(|i| {
            Transaction::new_order_execute(
                "c",
                Payload::new(
                    "f",
                    vec![Value::Int(i as i64), Value::Text(format!("p{i}"))],
                ),
                i,
                &key,
            )
            .unwrap()
        })
        .collect();
    let block = Block::build(1, genesis_prev_hash(), txs, "kafka", vec![]);
    let bytes = block.encode_to_vec();

    let mut g = c.benchmark_group("block_codec");
    g.throughput(Throughput::Elements(100));
    g.bench_function("encode_100tx", |b| b.iter(|| block.encode_to_vec()));
    g.bench_function("decode_100tx", |b| {
        b.iter(|| Block::decode_all(std::hint::black_box(&bytes)).unwrap())
    });
    g.bench_function("verify_integrity_100tx", |b| {
        b.iter(|| block.verify_integrity().unwrap())
    });
    g.finish();
}

fn bench_sql(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql");
    let complex = "SELECT i.supplier, SUM(i.amount) AS total FROM invoices i \
                   JOIN parts p ON i.part_id = p.id WHERE p.kind = 'widget' \
                   GROUP BY i.supplier HAVING SUM(i.amount) > 100 \
                   ORDER BY total DESC LIMIT 5";
    g.bench_function("parse_complex_select", |b| {
        b.iter(|| bcrdb_sql::parse_statement(std::hint::black_box(complex)).unwrap())
    });
    let stmt = bcrdb_sql::parse_statement(complex).unwrap();
    g.bench_function("render_complex_select", |b| {
        b.iter(|| bcrdb_sql::display::statement_to_sql(std::hint::black_box(&stmt)))
    });
    g.finish();
}

fn bench_ssi(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssi");
    // One conflict-free commit cycle: begin → read → write-probe → commit.
    g.bench_function("begin_read_write_commit", |b| {
        let mgr = SsiManager::new();
        let mut block = 1u64;
        b.iter(|| {
            let t = mgr.begin();
            mgr.register_row_read(t, "t", RowId(block % 1000));
            mgr.on_write(
                t,
                "t",
                RowId(block % 1000 + 1),
                &[(0, Value::Int(block as i64))],
            );
            mgr.commit_check(t, block, 0, Flow::ExecuteOrderParallel)
                .unwrap();
            mgr.commit(t);
            block += 1;
            if block.is_multiple_of(4096) {
                mgr.gc();
            }
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto, bench_block_codec, bench_sql, bench_ssi
);
criterion_main!(benches);
