//! **Figure 6** of the paper: peak throughput and block timings for the
//! `complex-join` contract (join two tables, aggregate, write into a
//! third) across block sizes 10/50/100, for both flows.
//!
//! Paper reference: OE peaks at ~400 tps (≈22% of simple's 1800, because
//! tet grows ~160×); EO reaches roughly 2× OE because execution is
//! unrestricted by block size and overlaps ordering.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, run_open_loop, BenchNetwork};
use bcrdb_bench::{full_mode, scaled_secs, Workload, WorkloadKind};
use bcrdb_txn::ssi::Flow;

fn main() {
    run(
        WorkloadKind::ComplexJoin,
        "Figure 6",
        "paper: OE peak ~400 tps, EO ~2x OE; tet 160x simple's",
    );
}

pub fn run(kind: WorkloadKind, figure: &str, paper: &str) {
    let run_secs = scaled_secs(3.0);
    let seed_rows = if full_mode() { 20_000 } else { 4_000 };
    // Saturating offered load: the measured committed rate is the peak.
    let arrival = 4500.0;
    let block_sizes = [10usize, 50, 100];

    for (flow, label) in [
        (Flow::OrderThenExecute, "(a) order-then-execute"),
        (Flow::ExecuteOrderParallel, "(b) execute-order-in-parallel"),
    ] {
        println!(
            "\n=== {figure}{label} — {} contract ({paper}) ===",
            kind.name()
        );
        println!(
            "{:>6}  {:>12}  {:>9}  {:>9}  {:>9}  {:>8}",
            "bs", "peak tput", "bpt ms", "bet ms", "tet ms", "aborts"
        );
        for &bs in &block_sizes {
            let cfg = bench_config(flow, bs, Duration::from_millis(250));
            let bench = BenchNetwork::build(cfg, Workload::new(kind, seed_rows)).expect("network");
            let stats =
                run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0).expect("run");
            println!(
                "{:>6}  {:>12.0}  {:>9.2}  {:>9.2}  {:>9.3}  {:>8}",
                bs,
                stats.throughput,
                stats.micro.bpt_ms,
                stats.micro.bet_ms,
                stats.micro.tet_ms,
                stats.aborted
            );
            bench.net.shutdown();
        }
    }
    println!("\nshape check: peak well below the simple contract's; EO above OE; EO bpt/bet");
    println!("below OE's at equal block size (execution already finished at block arrival).");
}
