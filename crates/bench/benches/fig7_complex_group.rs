//! **Figure 7** of the paper: the `complex-group` contract (aggregates
//! over subgroups, ORDER BY + LIMIT writing the max) across block sizes,
//! both flows.
//!
//! Paper reference: for block size 100, peak throughput is ~1.75× (OE)
//! and ~1.6× (EO) the complex-join contract's — grouping a single indexed
//! region is cheaper than the two-table join.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, run_open_loop, BenchNetwork};
use bcrdb_bench::{full_mode, scaled_secs, Workload, WorkloadKind};
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(3.0);
    let seed_rows = if full_mode() { 20_000 } else { 4_000 };
    let arrival = 4500.0;
    let block_sizes = [10usize, 50, 100];

    for (flow, label) in [
        (Flow::OrderThenExecute, "(a) order-then-execute"),
        (Flow::ExecuteOrderParallel, "(b) execute-order-in-parallel"),
    ] {
        println!(
            "\n=== Figure 7{label} — complex-group contract \
             (paper: ~1.75x/1.6x the complex-join peak at bs=100) ==="
        );
        println!(
            "{:>6}  {:>12}  {:>9}  {:>9}  {:>9}  {:>8}",
            "bs", "peak tput", "bpt ms", "bet ms", "tet ms", "aborts"
        );
        for &bs in &block_sizes {
            let cfg = bench_config(flow, bs, Duration::from_millis(250));
            let bench =
                BenchNetwork::build(cfg, Workload::new(WorkloadKind::ComplexGroup, seed_rows))
                    .expect("network");
            let stats =
                run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0).expect("run");
            println!(
                "{:>6}  {:>12.0}  {:>9.2}  {:>9.2}  {:>9.3}  {:>8}",
                bs,
                stats.throughput,
                stats.micro.bpt_ms,
                stats.micro.bet_ms,
                stats.micro.tet_ms,
                stats.aborted
            );
            bench.net.shutdown();
        }
    }
    println!("\nshape check: complex-group peaks above complex-join (Fig 6) at equal block");
    println!("size, and below the simple contract (Fig 5).");
}
