//! **Figure 8(a)** of the paper: single-cloud (LAN) vs multi-cloud (WAN)
//! deployment with the complex contract.
//!
//! Paper reference: moving the three organizations onto four continents
//! (50–60 Mbps, ~100 ms) adds ~100 ms of latency but leaves throughput
//! almost unchanged (−4% at block size 100) because blocks are only
//! ~100 KB.
//!
//! Two latency series per cell:
//!
//! * **node lat** — commit latency of the open-loop load as measured at
//!   the node (in-process clients; the pre-transport series).
//! * **client lat** — commit latency as a *remote* client observes it:
//!   probe clients connect through the `Simulated` transport, so their
//!   submissions, acks and commit notifications all travel the same
//!   latency/bandwidth profile as peer and orderer traffic. The `wire Δ`
//!   column is `client lat − ack-to-commit lat` for those same probe
//!   transactions — exactly the submission round trips the wire adds
//!   (≥ 1 client↔node RTT under WAN).

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, run_latency_probe, run_open_loop, BenchNetwork};
use bcrdb_bench::{full_mode, scaled_secs, Workload, WorkloadKind};
use bcrdb_network::NetProfile;
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(3.0);
    let probe_secs = scaled_secs(1.5);
    let seed_rows = if full_mode() { 20_000 } else { 4_000 };
    let arrival = 1200.0;
    let block_sizes = [10usize, 50, 100];

    for (flow, flow_label) in [
        (Flow::OrderThenExecute, "OE"),
        (Flow::ExecuteOrderParallel, "EO"),
    ] {
        println!(
            "\n=== Figure 8(a) [{flow_label}] — complex-join, LAN vs multi-cloud WAN \
             (paper: +~100ms latency, ~same throughput) ==="
        );
        println!(
            "{:>6}  {:>6}  {:>12}  {:>12}  {:>12}  {:>10}  {:>14}",
            "bs", "net", "peak tput", "node lat ms", "client lat", "wire Δ ms", "lat increase"
        );
        for &bs in &block_sizes {
            let mut lan_lat = 0.0;
            for (profile, name) in [(NetProfile::lan(), "LAN"), (NetProfile::wan(), "WAN")] {
                let mut cfg = bench_config(flow, bs, Duration::from_millis(250));
                cfg.net_profile = profile;
                let bench =
                    BenchNetwork::build(cfg, Workload::new(WorkloadKind::ComplexJoin, seed_rows))
                        .expect("network");
                let stats = run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0)
                    .expect("run");
                // Client-observed latency through the simulated wire
                // (after the open-loop window, on the same network).
                let probe =
                    run_latency_probe(&bench, 6, Duration::from_secs_f64(probe_secs), 500_000_000)
                        .expect("probe");
                let increase = if name == "LAN" {
                    lan_lat = stats.avg_latency_ms;
                    String::from("—")
                } else {
                    format!("{:+.1} ms", stats.avg_latency_ms - lan_lat)
                };
                // An empty probe series must not print as a 0.00 ms
                // measurement.
                let (client_lat, wire_delta) = if probe.samples == 0 {
                    ("—".to_string(), "— (0 samples)".to_string())
                } else {
                    (
                        format!("{:.2}", probe.client_ms),
                        format!("{:.2}", probe.client_ms - probe.node_ms),
                    )
                };
                println!(
                    "{:>6}  {:>6}  {:>12.0}  {:>12.2}  {:>12}  {:>10}  {:>14}",
                    bs,
                    name,
                    stats.throughput,
                    stats.avg_latency_ms,
                    client_lat,
                    wire_delta,
                    increase
                );
                bench.net.shutdown();
            }
        }
    }
    println!("\nshape check: WAN adds roughly the configured one-way latency (~50-100 ms)");
    println!("to node-side commit latency while throughput stays within a few percent of LAN;");
    println!("client-observed latency exceeds node-side latency by the submission round trips");
    println!("(wire Δ ≥ one client↔node RTT, ~100+ ms under the WAN profile).");
}
