//! **Figure 8(a)** of the paper: single-cloud (LAN) vs multi-cloud (WAN)
//! deployment with the complex contract.
//!
//! Paper reference: moving the three organizations onto four continents
//! (50–60 Mbps, ~100 ms) adds ~100 ms of latency but leaves throughput
//! almost unchanged (−4% at block size 100) because blocks are only
//! ~100 KB.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, run_open_loop, BenchNetwork};
use bcrdb_bench::{full_mode, scaled_secs, Workload, WorkloadKind};
use bcrdb_network::NetProfile;
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(3.0);
    let seed_rows = if full_mode() { 20_000 } else { 4_000 };
    let arrival = 1200.0;
    let block_sizes = [10usize, 50, 100];

    for (flow, flow_label) in [
        (Flow::OrderThenExecute, "OE"),
        (Flow::ExecuteOrderParallel, "EO"),
    ] {
        println!(
            "\n=== Figure 8(a) [{flow_label}] — complex-join, LAN vs multi-cloud WAN \
             (paper: +~100ms latency, ~same throughput) ==="
        );
        println!(
            "{:>6}  {:>6}  {:>12}  {:>12}  {:>14}",
            "bs", "net", "peak tput", "avg lat ms", "lat increase"
        );
        for &bs in &block_sizes {
            let mut lan_lat = 0.0;
            for (profile, name) in [(NetProfile::lan(), "LAN"), (NetProfile::wan(), "WAN")] {
                let mut cfg = bench_config(flow, bs, Duration::from_millis(250));
                cfg.net_profile = profile;
                let bench =
                    BenchNetwork::build(cfg, Workload::new(WorkloadKind::ComplexJoin, seed_rows))
                        .expect("network");
                let stats = run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0)
                    .expect("run");
                let increase = if name == "LAN" {
                    lan_lat = stats.avg_latency_ms;
                    String::from("—")
                } else {
                    format!("{:+.1} ms", stats.avg_latency_ms - lan_lat)
                };
                println!(
                    "{:>6}  {:>6}  {:>12.0}  {:>12.2}  {:>14}",
                    bs, name, stats.throughput, stats.avg_latency_ms, increase
                );
                bench.net.shutdown();
            }
        }
    }
    println!("\nshape check: WAN adds roughly the configured one-way latency (~50-100 ms)");
    println!("to commit latency while throughput stays within a few percent of LAN.");
}
