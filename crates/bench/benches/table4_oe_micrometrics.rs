//! **Table 4** of the paper: order-then-execute micro-metrics at a fixed
//! arrival rate near saturation, across block sizes 10/100/500.
//!
//! Paper reference (arrival 2100 tps):
//! ```text
//! bs    brr    bpr    bpt   bet  bct  tet  su
//! 10  209.7  163.5    6.0   5.0  1.0  0.2  98.1%
//! 100  20.9   17.9   55.4  47.0  8.3  0.2  99.1%
//! 500   4.2    3.5  285.4 245.0 44.3  0.4  99.7%
//! ```
//! Shape targets: brr/bpr scale inversely with block size; bpt of one
//! block of size n is less than n/m blocks of size m; su near 100% at
//! saturation.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, micro_header, run_open_loop, BenchNetwork};
use bcrdb_bench::{scaled_secs, Workload, WorkloadKind};
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(3.0);
    // Near the OE saturation point found in Fig 5 (scaled testbed).
    let arrival = 3000.0;
    println!(
        "\n=== Table 4: order-then-execute micro-metrics @ {arrival} tps (simple contract) ==="
    );
    println!("paper @2100 tps: bs=10: bpt 6ms bet 5ms bct 1ms su 98%; bs=500: bpt 285ms bet 245ms");
    println!("{}", micro_header());
    for bs in [10usize, 100, 500] {
        let mut cfg = bench_config(Flow::OrderThenExecute, bs, Duration::from_millis(250));
        cfg.min_exec_micros = 1_500;
        let bench =
            BenchNetwork::build(cfg, Workload::new(WorkloadKind::Simple, 0)).expect("network");
        let stats =
            run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0).expect("run");
        println!("{}", stats.micro_row(bs));
        bench.net.shutdown();
    }
    println!("\nshape check: brr & bpr fall ~linearly with block size; su ≈ 100% at saturation;");
    println!("bpt(bs=500) < 50 x bpt(bs=10) (batching amortizes per-block costs).");
}
