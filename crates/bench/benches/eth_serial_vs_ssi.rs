//! **§5.1 "Comparison With Ethereum's Order then Execute"**: the paper
//! emulates Ethereum-style platforms by executing and committing
//! transactions one at a time, and measures ~800 tps — about 40% of the
//! ~1800 tps its SSI-parallel order-then-execute flow achieves.
//!
//! This bench toggles the node's serial-execution mode and compares.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, run_open_loop, BenchNetwork};
use bcrdb_bench::{scaled_secs, Workload, WorkloadKind};
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(3.0);
    let arrival = 3000.0;
    let bs = 100usize;
    println!("\n=== Ethereum-style serial execution vs SSI-parallel (OE flow, bs={bs}) ===");
    println!("paper: serial ~800 tps = ~40% of SSI-parallel ~1800 tps");
    println!(
        "{:>22}  {:>12}  {:>9}  {:>9}",
        "mode", "peak tput", "bpt ms", "bet ms"
    );

    let mut results = Vec::new();
    for (serial, label) in [(true, "serial (Ethereum-like)"), (false, "SSI parallel")] {
        let mut cfg = bench_config(Flow::OrderThenExecute, bs, Duration::from_millis(250));
        cfg.serial_execution = serial;
        cfg.min_exec_micros = 1_500;
        let bench =
            BenchNetwork::build(cfg, Workload::new(WorkloadKind::Simple, 0)).expect("network");
        let stats =
            run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0).expect("run");
        println!(
            "{:>22}  {:>12.0}  {:>9.2}  {:>9.2}",
            label, stats.throughput, stats.micro.bpt_ms, stats.micro.bet_ms
        );
        results.push(stats.throughput);
        bench.net.shutdown();
    }
    let ratio = results[0] / results[1].max(1.0);
    println!(
        "\nserial/parallel throughput ratio: {:.2} (paper: ~0.4; lower is a stronger win for SSI)",
        ratio
    );
}
