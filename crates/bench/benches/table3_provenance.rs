//! **Table 3** of the paper: provenance/audit queries over the invoice
//! history, expressed as plain SQL joining `HISTORY(invoices)` with the
//! ledger table. The paper lists the queries; this bench populates a
//! realistic history and measures both audit queries end-to-end.

use std::time::{Duration, Instant};

use bcrdb_common::value::Value;
use bcrdb_core::{Call, Network, NetworkConfig};
use bcrdb_txn::ssi::Flow;

fn main() {
    let n_invoices: i64 = if bcrdb_bench::full_mode() { 500 } else { 100 };
    let updates_per_invoice = 4usize;

    let mut cfg = NetworkConfig::quick(&["supplier", "manufacturer"], Flow::OrderThenExecute);
    cfg.ordering = bcrdb_ordering::OrderingConfig::kafka(2, 200, Duration::from_millis(100));
    let net = Network::build(cfg).expect("network");
    net.bootstrap_sql(
        "CREATE TABLE invoices (invoice_id INT PRIMARY KEY, supplier TEXT NOT NULL, \
             amount FLOAT NOT NULL); \
         CREATE FUNCTION create_invoice(id INT, supplier TEXT, amount FLOAT) AS $$ \
             INSERT INTO invoices VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION revise_invoice(id INT, amount FLOAT) AS $$ \
             UPDATE invoices SET amount = $2 WHERE invoice_id = $1 $$",
    )
    .expect("bootstrap");

    let supplier = net.client("supplier", "s").expect("client");
    let manufacturer = net.client("manufacturer", "m").expect("client");
    let wait = Duration::from_secs(30);

    println!("\n=== Table 3: provenance queries (populating {n_invoices} invoices × {updates_per_invoice} updates) ===");
    // Population runs as signed batches: one submit_all per round, one
    // fanned-in notification channel instead of a channel per tx.
    supplier
        .submit_all(
            (0..n_invoices).map(|id| Call::new("create_invoice").arg(id).arg("s").arg(100.0)),
        )
        .expect("submit batch")
        .wait_committed_all(wait)
        .expect("creates committed");
    for round in 0..updates_per_invoice {
        // Alternate updaters; the supplier performs the final round so it
        // owns the live versions that query 1 looks for.
        let client = if round % 2 == 0 {
            &manufacturer
        } else {
            &supplier
        };
        client
            .submit_all((0..n_invoices).map(|id| {
                Call::new("revise_invoice")
                    .arg(id)
                    .arg(100.0 + round as f64)
            }))
            .expect("submit batch")
            .wait_committed_all(wait)
            .expect("revisions committed");
    }

    // Query 1 (Table 3): all invoice versions updated by supplier S
    // between two blocks.
    let node = net.node("supplier").expect("node");
    let tip = node.height();
    let t0 = Instant::now();
    let r1 = node
        .query(
            "SELECT h.invoice_id, h.amount FROM HISTORY(invoices) h, ledger l \
             WHERE l.block BETWEEN 2 AND $1 AND l.username = 'supplier/s' \
               AND h.xmin = l.txid AND h._deleter_block IS NULL",
            &[Value::Int(tip as i64)],
        )
        .expect("query 1");
    let q1 = t0.elapsed();

    // Query 2 (Table 3): full history of one invoice touched by either
    // party, most recent first.
    let t0 = Instant::now();
    let r2 = node
        .query(
            "SELECT h.amount, l.username, l.block FROM HISTORY(invoices) h, ledger l \
             WHERE h.invoice_id = $1 AND h.xmin = l.txid \
             ORDER BY l.block DESC",
            &[Value::Int(n_invoices / 2)],
        )
        .expect("query 2");
    let q2 = t0.elapsed();

    println!(
        "query 1 (supplier's live versions in block range): {} rows in {:.2} ms",
        r1.len(),
        q1.as_secs_f64() * 1000.0
    );
    println!(
        "query 2 (full history of one invoice):             {} rows in {:.2} ms",
        r2.len(),
        q2.as_secs_f64() * 1000.0
    );
    assert_eq!(
        r2.len(),
        updates_per_invoice + 1,
        "history must hold every version (insert + each revision)"
    );
    println!("\nshape check: historic versions are all queryable (the paper's key claim:");
    println!("provenance queries that key-value blockchains cannot express run as plain SQL).");
    net.shutdown();
}
