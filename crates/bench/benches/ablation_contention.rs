//! Ablation: contention and the ww/xmax-array design (§3.3.3/§4.3).
//!
//! The paper replaces PostgreSQL's exclusive row lock with an xmax *array*
//! so concurrent writers never block each other during the execution
//! phase; the serial commit phase picks the block-order winner and dooms
//! the rest. The cost of that choice is aborted work under contention.
//! This ablation sweeps the fraction of transactions updating one hot row
//! and reports throughput and abort rates — the trade the paper accepts
//! for cross-node determinism.

use std::time::Duration;

use bcrdb_bench::contracts::{Workload, WorkloadKind};
use bcrdb_bench::harness::{bench_config, run_open_loop, seed_genesis_rows, BenchNetwork};
use bcrdb_bench::scaled_secs;
use bcrdb_common::value::Value;
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(2.0);
    let arrival = 1500.0;

    println!("\n=== Ablation: hot-row contention under the xmax-array ww design ===");
    println!("(no lock waits during execution; losers abort at serial commit)");
    println!(
        "{:>10}  {:>12}  {:>10}  {:>10}  {:>10}",
        "hot share", "tput (tps)", "committed", "aborted", "abort %"
    );

    for hot_permille in [0u64, 100, 300, 600] {
        let mut cfg = bench_config(Flow::OrderThenExecute, 100, Duration::from_millis(250));
        cfg.min_exec_micros = 500;
        // A custom workload: mostly unique-row updates, a `hot_permille`
        // share hitting row 0.
        let net = bcrdb_core::Network::build(cfg).expect("network");
        net.bootstrap_sql(
            "CREATE TABLE counters (id INT PRIMARY KEY, n INT NOT NULL); \
             CREATE FUNCTION bump(id INT, v INT) AS $$ \
               UPDATE counters SET n = n + $2 WHERE id = $1 $$",
        )
        .expect("bootstrap");
        let rows: Vec<Vec<Value>> = (0..5000)
            .map(|i| vec![Value::Int(i), Value::Int(0)])
            .collect();
        seed_genesis_rows(&net, "counters", &rows).expect("seed");

        let mut workload = Workload::new(WorkloadKind::Simple, 0);
        let hp = hot_permille;
        workload.custom = Some((
            "bump".to_string(),
            std::sync::Arc::new(move |n: u64| {
                let hot = (n * 1009) % 1000 < hp;
                let id = if hot { 0 } else { (n % 4999) as i64 + 1 };
                vec![Value::Int(id), Value::Int(1)]
            }),
        ));
        let bench = BenchNetwork {
            net: net.handle(),
            workload,
        };
        let stats = run_open_loop(
            &bench,
            arrival,
            Duration::from_secs_f64(run_secs),
            1, // row ids start at 1; row 0 is the hot row
        )
        .expect("run");
        let total = stats.committed + stats.aborted;
        println!(
            "{:>9}%  {:>12.0}  {:>10}  {:>10}  {:>9.1}%",
            hot_permille / 10,
            stats.throughput,
            stats.committed,
            stats.aborted,
            if total > 0 {
                stats.aborted as f64 * 100.0 / total as f64
            } else {
                0.0
            }
        );
        net.shutdown();
    }
    println!("\nreading: abort rate grows with the hot share (first-committer-wins);");
    println!("throughput of *committed* work degrades gracefully, and no executor ever blocks.");
}
