//! **Table 5** of the paper: execute-order-in-parallel micro-metrics at a
//! fixed arrival rate, across block sizes — including the `mt` column
//! (missing transactions per second at the block processor) unique to the
//! EO flow.
//!
//! Paper reference (arrival 2400 tps):
//! ```text
//! bs     brr     bpr    bpt   bet   bct  tet   mt   su
//! 10  232.26  232.26   3.86  2.05  1.81 0.58  479  89%
//! 100  24.00   24.00  35.26 18.57 16.69 3.08  519  84%
//! 500   4.83    4.83 149.64 50.83 98.81 6.27  230  72%
//! ```
//! Shape targets: bet lower than the OE flow at equal block size (work
//! already done when blocks arrive); su below 100% even at peak; some
//! missing transactions driven by forwarding latency.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, micro_header, run_open_loop, BenchNetwork};
use bcrdb_bench::{scaled_secs, Workload, WorkloadKind};
use bcrdb_network::NetProfile;
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(3.0);
    let arrival = 3600.0;
    println!(
        "\n=== Table 5: execute-order-in-parallel micro-metrics @ {arrival} tps (simple contract) ==="
    );
    println!("paper @2400 tps: bet roughly halves vs OE; su 72-89%; mt 230-519/s");
    println!("{}", micro_header());
    for bs in [10usize, 100, 500] {
        let mut cfg = bench_config(Flow::ExecuteOrderParallel, bs, Duration::from_millis(250));
        cfg.min_exec_micros = 1_500;
        // A LAN profile (rather than instant delivery) gives transaction
        // forwarding a real latency; a 15% forwarding drop rate models the
        // lossy/malicious middleware that produces the paper's missing
        // transactions at the block processor (§3.4.3, §3.5(2)).
        cfg.net_profile = NetProfile::lan();
        cfg.forward_drop_permille = 150;
        let bench =
            BenchNetwork::build(cfg, Workload::new(WorkloadKind::Simple, 0)).expect("network");
        let stats =
            run_open_loop(&bench, arrival, Duration::from_secs_f64(run_secs), 0).expect("run");
        println!("{}", stats.micro_row(bs));
        bench.net.shutdown();
    }
    println!("\nshape check: bet below the OE flow's (Table 4) at each block size; su < 100%.");
}
