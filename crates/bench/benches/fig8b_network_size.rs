//! **Figure 8(b)** of the paper: ordering-service throughput vs number of
//! orderer nodes at a fixed offered load, for the Kafka-style CFT backend
//! and the BFT backend.
//!
//! Paper reference (3000 tps offered): Kafka stays flat at ~3000 tps for
//! any orderer count; BFT degrades from ~3000 tps at 4 orderers to
//! ~650 tps at 32 due to its quadratic message complexity.

use std::time::{Duration, Instant};

use bcrdb_chain::tx::{Payload, Transaction};
use bcrdb_common::value::Value;
use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb_ordering::{OrderingConfig, OrderingService};

fn main() {
    let offered_tps = 3000.0;
    let run = Duration::from_secs_f64(bcrdb_bench::scaled_secs(3.0));
    let sizes = [4usize, 8, 16, 32];

    println!(
        "\n=== Figure 8(b): ordering throughput vs orderer count @ {offered_tps} tps offered ==="
    );
    println!("paper: kafka flat ~3000; bft 3000 → ~650 at 32 orderers");
    println!("{:>8}  {:>10}  {:>14}", "orderers", "backend", "tput (tps)");

    let key = KeyPair::generate("bench/client", b"bench", Scheme::Sim);
    let certs = CertificateRegistry::new();
    certs.register(Certificate {
        name: "bench/client".into(),
        org: "bench".into(),
        role: Role::Client,
        public_key: key.public_key(),
    });

    for &n in &sizes {
        for (mk, name) in [
            (
                OrderingConfig::kafka as fn(usize, usize, Duration) -> OrderingConfig,
                "kafka",
            ),
            (
                OrderingConfig::bft as fn(usize, usize, Duration) -> OrderingConfig,
                "bft",
            ),
        ] {
            let certs = CertificateRegistry::new();
            let cfg = mk(n, 100, Duration::from_millis(100));
            let svc = OrderingService::start(cfg, &certs);
            let _rx = svc.subscribe(); // keep delivery alive
            let start = Instant::now();
            let interval = Duration::from_secs_f64(1.0 / offered_tps);
            let mut i = 0u64;
            while start.elapsed() < run {
                let tx = Transaction::new_order_execute(
                    "bench/client",
                    Payload::new("f", vec![Value::Int(i as i64)]),
                    i,
                    &key,
                )
                .expect("sign");
                let _ = svc.submit(tx);
                i += 1;
                let next = start + interval.mul_f64(i as f64);
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                }
            }
            let offered = start.elapsed();
            let (_, txs) = svc.stats();
            let tput = txs as f64 / offered.as_secs_f64();
            println!("{:>8}  {:>10}  {:>14.0}", n, name, tput);
            svc.shutdown();
        }
    }
    println!("\nshape check: kafka throughput independent of orderer count; bft declines");
    println!("steeply with orderer count (quadratic message complexity).");
}
