//! **Figure 5** of the paper: throughput and latency vs transaction
//! arrival rate for the `simple` contract, under (a) order-then-execute
//! and (b) execute-order-in-parallel, across block sizes.
//!
//! Paper reference (32-vCPU testbed): OE saturates at ~1800 tps and EO at
//! ~2700 tps (≈1.5× higher); below saturation larger blocks mean higher
//! latency (waiting to fill the block), above saturation larger blocks
//! mean higher throughput and lower latency.

use std::time::Duration;

use bcrdb_bench::harness::{bench_config, run_open_loop, BenchNetwork};
use bcrdb_bench::{scaled_secs, Workload, WorkloadKind};
use bcrdb_txn::ssi::Flow;

fn main() {
    let run_secs = scaled_secs(2.0);
    let rates: Vec<f64> = if bcrdb_bench::full_mode() {
        vec![500.0, 1000.0, 2000.0, 4000.0, 6000.0, 8000.0]
    } else {
        vec![800.0, 1600.0, 3200.0, 6400.0]
    };
    let block_sizes = [10usize, 100, 500];

    for (flow, label, paper) in [
        (
            Flow::OrderThenExecute,
            "Figure 5(a) order-then-execute",
            "paper: peak ~1800 tps; latency jumps near saturation",
        ),
        (
            Flow::ExecuteOrderParallel,
            "Figure 5(b) execute-order-in-parallel",
            "paper: peak ~2700 tps (~1.5x OE)",
        ),
    ] {
        println!("\n=== {label} — simple contract ({paper}) ===");
        println!(
            "{:>6}  {:>6}  {:>12}  {:>12}  {:>10}  {:>8}",
            "bs", "rate", "tput (tps)", "avg lat ms", "p95 ms", "aborts"
        );
        for &bs in &block_sizes {
            let mut cfg = bench_config(flow, bs, Duration::from_millis(250));
            // Emulate the paper's per-backend execution cost (tet ≈ 0.2 ms
            // on PostgreSQL; see DESIGN.md): without it our in-memory
            // engine never saturates and the flows are indistinguishable.
            cfg.min_exec_micros = 1_500;
            let bench =
                BenchNetwork::build(cfg, Workload::new(WorkloadKind::Simple, 0)).expect("network");
            let mut id_base = 0u64;
            for &rate in &rates {
                let stats = run_open_loop(&bench, rate, Duration::from_secs_f64(run_secs), id_base)
                    .expect("run");
                id_base += stats.submitted + 10;
                println!(
                    "{:>6}  {:>6.0}  {:>12.0}  {:>12.2}  {:>10.2}  {:>8}",
                    bs,
                    rate,
                    stats.throughput,
                    stats.avg_latency_ms,
                    stats.p95_latency_ms,
                    stats.aborted
                );
            }
            bench.net.shutdown();
        }
    }
    println!("\nshape check: EO peak should exceed OE peak; latency rises near saturation.");
}
