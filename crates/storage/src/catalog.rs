//! The table catalog: the named collection of tables forming one node's
//! replica of the shared database (the paper's "blockchain schema", §3.7).
//!
//! DDL only ever executes inside the serial block-commit phase (contracts
//! are deployed through system smart contracts), so catalog mutations are
//! coarse-grained and rare; lookups are lock-free clones of `Arc`s.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::schema::TableSchema;
use parking_lot::RwLock;

use crate::pager::PagedStore;
use crate::table::{Table, TablePager};

/// A named set of tables, optionally backed by a [`PagedStore`] — when
/// attached, every table created through the catalog gets its own page
/// file and spills cold segments through the shared buffer pool.
///
/// The catalog also carries the planner's node-local plan-shape
/// counters: the engine has no handle to the node metrics, so the
/// executor bumps these and the node's Metrics RPC overlays them into
/// its snapshot, the same way the paged-store counters are reported.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    store: Option<Arc<PagedStore>>,
    /// Multi-index (intersection/union) scans planned (cumulative).
    plans_multi_index: AtomicU64,
    /// Covering-index scans planned (cumulative).
    plans_covering: AtomicU64,
}

impl Catalog {
    /// Empty in-memory catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Empty catalog whose tables page through `store`.
    pub fn with_store(store: Arc<PagedStore>) -> Catalog {
        Catalog {
            store: Some(store),
            ..Catalog::default()
        }
    }

    /// Count one multi-index (intersection/union) scan plan.
    pub fn on_multi_index_plan(&self) {
        self.plans_multi_index.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one covering-index scan plan.
    pub fn on_covering_plan(&self) {
        self.plans_covering.fetch_add(1, Ordering::Relaxed);
    }

    /// Multi-index (intersection/union) scans planned since start.
    pub fn plans_multi_index(&self) -> u64 {
        self.plans_multi_index.load(Ordering::Relaxed)
    }

    /// Covering-index scans planned since start.
    pub fn plans_covering(&self) -> u64 {
        self.plans_covering.load(Ordering::Relaxed)
    }

    /// The catalog's paged store, if one is attached.
    pub fn store(&self) -> Option<&Arc<PagedStore>> {
        self.store.as_ref()
    }

    /// Create a table from a schema. Fails if the name is taken. On a
    /// store-backed catalog the table gets a page file anchored at the
    /// current checkpoint height of the store (0 for fresh tables — the
    /// anchor only matters for files carrying chains across a restart).
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        let name = schema.name.clone();
        if tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("table {name}")));
        }
        let pager = match &self.store {
            Some(store) => Some(TablePager {
                store: Arc::clone(store),
                file: store.open_file(&name, 0)?,
            }),
            None => None,
        };
        let table = Arc::new(Table::new_in(schema, pager));
        tables.insert(name, Arc::clone(&table));
        Ok(table)
    }

    /// Register an existing table object (snapshot restore).
    pub fn install_table(&self, table: Arc<Table>) {
        self.tables.write().insert(table.name(), table);
    }

    /// Replace this catalog's entire table set with `other`'s (snapshot
    /// fast-sync, §3.6). The `Catalog` object itself — and every
    /// `Arc<Catalog>` pointing at it — stays valid; only the tables are
    /// swapped, so callers must be quiescent (no in-flight transactions
    /// holding `Arc<Table>` clones).
    pub fn replace_with(&self, other: Catalog) {
        *self.tables.write() = other.tables.into_inner();
    }

    /// Drop a table (and its page file, on a store-backed catalog).
    /// With `if_exists`, missing tables are not an error.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let removed = self.tables.write().remove(name).is_some();
        if !removed && !if_exists {
            return Err(Error::NotFound(format!("table {name}")));
        }
        if removed {
            if let Some(store) = &self.store {
                store.drop_file(name);
            }
        }
        Ok(())
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Does the table exist?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True if no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(name, vec![Column::new("id", DataType::Int)], vec![0]).unwrap()
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.create_table(schema("a")).unwrap();
        cat.create_table(schema("b")).unwrap();
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(cat.get("a").is_ok());
        assert!(cat.get("zzz").is_err());
        assert!(cat.contains("b"));
        // Duplicate create fails.
        assert!(cat.create_table(schema("a")).is_err());
        // Drop.
        cat.drop_table("a", false).unwrap();
        assert!(cat.get("a").is_err());
        assert!(cat.drop_table("a", false).is_err());
        assert!(cat.drop_table("a", true).is_ok());
        assert_eq!(cat.len(), 1);
    }
}
