//! Tables: an append-only, *segmented* version heap plus B-tree indexes.
//!
//! The heap is a sequence of fixed-size segments. Heap positions are
//! global (`segment · SEGMENT_SIZE + offset`) and **stable for the life
//! of the table**: appends only ever touch the tail segment's lock, so
//! readers scanning older segments never contend with concurrent
//! appends (the property the pipelined block commit leans on — block
//! N+1's executions read while block N's post-commit work appends
//! ledger rows), and [`Table::vacuum`] reclaims dead versions by
//! tombstoning their slot in place instead of compacting, so a scan
//! that captured index positions before a vacuum still resolves them to
//! the same rows afterwards (reclaimed slots simply read as empty).
//! Vacuum is therefore safe to run concurrently with readers; the
//! history it destroys — versions deleted at or before the horizon — is
//! exactly what the paper's enhanced `VACUUM` (§7) gives up.
//!
//! # Paged segments
//!
//! A table constructed with a [`TablePager`] attachment can page cold
//! segments out to its on-disk page file ([`Table::spill`]): a full,
//! non-tail segment whose versions are all quiescent (committed at or
//! below the spill horizon, no pending writers, no outstanding `Arc`
//! clones) is serialized into a segment chain and its slots are freed.
//! Every accessor *faults* a paged segment back in on first touch —
//! whole-segment granularity, through the shared buffer pool — so
//! paging is invisible to readers: positions, scan results and hashes
//! are identical to the all-in-memory table. Index entries for paged
//! positions stay in the indexes (positions are stable), so index scans
//! fault in exactly the segments they touch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::{Row, Value};
use parking_lot::{RwLock, RwLockReadGuard};

use crate::index::{BTreeIndex, KeyRange};
use crate::page::{self, PageBuilder, NO_DELETER};
use crate::pager::{PagedStore, PagerFile};
use crate::stats::{self, StatsDelta, TableStats, TableSummary};
use crate::version::Version;

/// log2 of the heap segment size. Public so write-set partitioners can
/// shard by `(table, row_id >> SEGMENT_SHIFT)` — the same granularity
/// appends contend on.
pub const SEGMENT_SHIFT: usize = 10;
/// Version-heap slots per segment. Appends lock only the tail segment;
/// reads lock only the segment(s) they touch.
pub const SEGMENT_SIZE: usize = 1 << SEGMENT_SHIFT;

/// A table's attachment to the node-wide paged store: the shared buffer
/// pool plus this table's own page file.
#[derive(Clone)]
pub struct TablePager {
    /// The node-wide store (buffer pool, file registry, metrics).
    pub store: Arc<PagedStore>,
    /// This table's page file.
    pub file: Arc<PagerFile>,
}

/// Mutable state of one segment, behind its `slots` lock.
struct SegmentInner {
    /// The heap slots. Empty while the segment is paged out.
    slots: Vec<Option<Arc<Version>>>,
    /// The segment's versions live in the table's page file; any access
    /// faults them back in first.
    paged: bool,
}

/// One fixed-size run of heap slots. A slot is `None` either because the
/// segment has not grown to it yet or because vacuum reclaimed it.
struct Segment {
    slots: RwLock<SegmentInner>,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            slots: RwLock::new(SegmentInner {
                slots: Vec::with_capacity(SEGMENT_SIZE),
                paged: false,
            }),
        }
    }
}

/// A table: schema, segmented version heap and indexes.
pub struct Table {
    schema: RwLock<TableSchema>,
    /// The segment directory. Write-locked only to push a new (empty)
    /// tail segment — roughly once per [`SEGMENT_SIZE`] appends.
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Column ordinal → index. The primary-key index always exists for
    /// single-column PKs.
    indexes: RwLock<BTreeMap<usize, Arc<BTreeIndex>>>,
    /// Commit-time row-id allocator. Advanced only during the serial commit
    /// phase, so the sequence is identical on every node.
    next_row_id: AtomicU64,
    /// Planner statistics: exact per-indexed-column key counts plus the
    /// sealed summary history read as-of snapshot height. Maintained on
    /// the commit thread (fold + seal in block order); a leaf lock —
    /// never held while acquiring any other table lock.
    stats: RwLock<TableStats>,
    /// Paging attachment; `None` keeps the whole heap in memory.
    pager: Option<TablePager>,
}

impl Table {
    /// Create an empty in-memory table. A primary-key index is created
    /// automatically for single-column primary keys; secondary indexes
    /// declared in the schema are materialized too.
    pub fn new(schema: TableSchema) -> Table {
        Table::new_in(schema, None)
    }

    /// Create an empty table, optionally attached to a paged store (cold
    /// segments then spill to the table's page file). The attachment is
    /// fixed for the table's lifetime.
    pub fn new_in(schema: TableSchema, pager: Option<TablePager>) -> Table {
        let mut indexes = BTreeMap::new();
        if schema.primary_key.len() == 1 {
            let col = schema.primary_key[0];
            indexes.insert(
                col,
                Arc::new(BTreeIndex::new(format!("{}_pkey", schema.name), col)),
            );
        }
        for def in &schema.indexes {
            indexes
                .entry(def.column)
                .or_insert_with(|| Arc::new(BTreeIndex::new(def.name.clone(), def.column)));
        }
        let stats = TableStats::with_columns(&stats::stat_columns(&schema));
        Table {
            schema: RwLock::new(schema),
            segments: RwLock::new(vec![Arc::new(Segment::new())]),
            indexes: RwLock::new(indexes),
            next_row_id: AtomicU64::new(1),
            stats: RwLock::new(stats),
            pager,
        }
    }

    /// The table's paging attachment, if any.
    pub fn pager(&self) -> Option<&TablePager> {
        self.pager.as_ref()
    }

    /// Acquire `seg`'s slots for reading, faulting the segment in from
    /// the page file first when it is paged out.
    fn resident<'a>(&self, si: usize, seg: &'a Segment) -> RwLockReadGuard<'a, SegmentInner> {
        loop {
            {
                let g = seg.slots.read();
                if !g.paged {
                    return g;
                }
            }
            self.fault(si, seg);
        }
    }

    /// Rehydrate a paged-out segment from its chain. A fault failure is
    /// unrecoverable mid-transaction (the accessor APIs are infallible),
    /// so corruption panics with a diagnostic — operationally the same
    /// as the block store's fatal mid-file corruption.
    #[cold]
    fn fault(&self, si: usize, seg: &Segment) {
        let pager = self.pager.as_ref().expect("paged segment on unpaged table");
        let mut g = seg.slots.write();
        if !g.paged {
            return; // another thread faulted it in first
        }
        let mut slots = vec![None; SEGMENT_SIZE];
        for (off, v) in decode_chain(pager, si) {
            slots[off] = Some(Arc::new(v));
        }
        g.slots = slots;
        g.paged = false;
    }

    /// Append `version` to the heap and return its global position.
    /// Contends only on the tail segment (and, when the tail is full, on
    /// the segment directory for the one push that extends it).
    fn push(&self, version: Arc<Version>) -> usize {
        loop {
            let (seg_idx, seg) = {
                let segs = self.segments.read();
                (segs.len() - 1, Arc::clone(segs.last().expect("≥1 segment")))
            };
            {
                let mut g = seg.slots.write();
                // A paged segment is by construction full — treat it
                // like a full tail rather than pushing into its freed
                // slot vector.
                if !g.paged && g.slots.len() < SEGMENT_SIZE {
                    let pos = (seg_idx << SEGMENT_SHIFT) + g.slots.len();
                    g.slots.push(Some(version));
                    return pos;
                }
            }
            // Tail full: extend the directory (exactly one appender wins;
            // losers retry against the fresh tail).
            let mut segs = self.segments.write();
            if segs.len() == seg_idx + 1 {
                segs.push(Arc::new(Segment::new()));
            }
        }
    }

    /// Run `f` over every occupied slot in position order, faulting
    /// paged segments in.
    fn for_each_slot(&self, mut f: impl FnMut(usize, &Arc<Version>)) {
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for (si, seg) in segs.iter().enumerate() {
            let g = self.resident(si, seg);
            for (off, slot) in g.slots.iter().enumerate() {
                if let Some(v) = slot {
                    f((si << SEGMENT_SHIFT) + off, v);
                }
            }
        }
    }

    /// Run `f` over every occupied slot of every *resident* segment, in
    /// position order, without faulting anything in (snapshot encoding:
    /// paged segments are carried by their chains instead).
    pub fn for_each_resident_slot(&self, mut f: impl FnMut(usize, &Arc<Version>)) {
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for (si, seg) in segs.iter().enumerate() {
            let g = seg.slots.read();
            if g.paged {
                continue;
            }
            for (off, slot) in g.slots.iter().enumerate() {
                if let Some(v) = slot {
                    f((si << SEGMENT_SHIFT) + off, v);
                }
            }
        }
    }

    /// Clone of the schema.
    pub fn schema(&self) -> TableSchema {
        self.schema.read().clone()
    }

    /// Table name.
    pub fn name(&self) -> String {
        self.schema.read().name.clone()
    }

    /// Add a secondary index over `column_name` and backfill it from the
    /// existing heap.
    pub fn add_index(&self, index_name: &str, column_name: &str) -> Result<()> {
        let column = {
            let mut schema = self.schema.write();
            schema.add_index(index_name, column_name)?;
            schema
                .column_index(column_name)
                .expect("column checked by add_index")
        };
        let idx = Arc::new(BTreeIndex::new(index_name, column));
        // Backfill and register under the segment-directory write lock:
        // appenders (who take it for read in `push`) are excluded for
        // the duration, so a concurrent insert can neither be missed by
        // the backfill nor double-registered after it — once the lock
        // drops, every new append sees the registered index.
        {
            let segs = self.segments.write();
            for (si, seg) in segs.iter().enumerate() {
                let g = self.resident(si, seg);
                for (off, slot) in g.slots.iter().enumerate() {
                    if let Some(v) = slot {
                        idx.insert(v.data[column].clone(), (si << SEGMENT_SHIFT) + off);
                    }
                }
            }
            self.indexes.write().insert(column, idx);
        }
        // The new column's key counts are unknown until the next stats
        // rebuild; mark dirty so the commit thread rebuilds after apply.
        self.stats.write().add_column(column);
        Ok(())
    }

    /// The index over `column`, if one exists.
    pub fn index_for(&self, column: usize) -> Option<Arc<BTreeIndex>> {
        self.indexes.read().get(&column).cloned()
    }

    /// Append an in-flight version (INSERT or the successor image of an
    /// UPDATE). Returns its heap position.
    pub fn append_version(&self, xmin: TxId, data: Row, row_id: RowId) -> (usize, Arc<Version>) {
        let version = Arc::new(Version::new(xmin, data, row_id));
        let pos = self.push(Arc::clone(&version));
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
        (pos, version)
    }

    /// Append a fully committed version (snapshot restore path).
    pub fn append_restored(&self, version: Version) {
        let version = Arc::new(version);
        let pos = self.push(Arc::clone(&version));
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
    }

    /// Append a batch of fully committed versions (ledger writer and bulk
    /// restore paths), taking each tail-segment lock once per segment run
    /// instead of once per version. Index maintenance happens after the
    /// heap positions are fixed, mirroring [`Table::append_restored`].
    pub fn append_restored_batch(&self, versions: Vec<Version>) {
        let mut placed: Vec<(usize, Arc<Version>)> = Vec::with_capacity(versions.len());
        let mut pending = versions.into_iter().map(Arc::new).peekable();
        while pending.peek().is_some() {
            let (seg_idx, seg) = {
                let segs = self.segments.read();
                (segs.len() - 1, Arc::clone(segs.last().expect("≥1 segment")))
            };
            {
                let mut g = seg.slots.write();
                while !g.paged && g.slots.len() < SEGMENT_SIZE {
                    let Some(v) = pending.next() else { break };
                    let pos = (seg_idx << SEGMENT_SHIFT) + g.slots.len();
                    g.slots.push(Some(Arc::clone(&v)));
                    placed.push((pos, v));
                }
            }
            if pending.peek().is_none() {
                break;
            }
            // Tail full: extend the directory, same protocol as `push`.
            let mut segs = self.segments.write();
            if segs.len() == seg_idx + 1 {
                segs.push(Arc::new(Segment::new()));
            }
        }
        let indexes = self.indexes.read();
        for (pos, v) in &placed {
            for idx in indexes.values() {
                idx.insert(v.data[idx.column].clone(), *pos);
            }
        }
    }

    /// The version at a heap position (`None` for unoccupied or vacuumed
    /// slots). Faults the position's segment in if it is paged out.
    pub fn version_at(&self, pos: usize) -> Option<Arc<Version>> {
        let segs = self.segments.read();
        let seg = segs.get(pos >> SEGMENT_SHIFT)?;
        let g = self.resident(pos >> SEGMENT_SHIFT, seg);
        g.slots.get(pos & (SEGMENT_SIZE - 1)).cloned()?
    }

    /// Versions at the given heap positions (missing positions skipped).
    /// Consecutive positions in the same segment share one lock
    /// acquisition — index scans resolve hundreds of positions here, so
    /// this is the hot read path. Faults in exactly the segments the
    /// positions touch.
    pub fn versions_at(&self, positions: &[usize]) -> Vec<Arc<Version>> {
        let segs = self.segments.read();
        let mut out = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let si = positions[i] >> SEGMENT_SHIFT;
            let Some(seg) = segs.get(si) else {
                i += 1;
                continue;
            };
            let g = self.resident(si, seg);
            while i < positions.len() && positions[i] >> SEGMENT_SHIFT == si {
                if let Some(Some(v)) = g.slots.get(positions[i] & (SEGMENT_SIZE - 1)) {
                    out.push(Arc::clone(v));
                }
                i += 1;
            }
        }
        out
    }

    /// All versions, in heap order. Full scans re-sort visible rows by
    /// row id for determinism.
    pub fn all_versions(&self) -> Vec<Arc<Version>> {
        let mut out = Vec::new();
        self.for_each_slot(|_, v| out.push(Arc::clone(v)));
        out
    }

    /// Number of versions in the heap (live + dead + in-flight; vacuumed
    /// slots excluded).
    pub fn version_count(&self) -> usize {
        let mut n = 0;
        self.for_each_slot(|_, _| n += 1);
        n
    }

    /// Candidate versions for an indexed range scan.
    pub fn index_scan(&self, column: usize, range: &KeyRange) -> Option<Vec<Arc<Version>>> {
        let idx = self.index_for(column)?;
        Some(self.versions_at(&idx.positions_in_range(range)))
    }

    /// Allocate the next committed row id. **Only call from the serial
    /// commit phase** — determinism across nodes depends on allocation
    /// order matching the block order.
    pub fn alloc_row_id(&self) -> RowId {
        RowId(self.next_row_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Reserve `n` consecutive row ids with one allocator bump, returning
    /// the first id of the range. **Only call from the serial commit
    /// phase** — like [`Table::alloc_row_id`], determinism across nodes
    /// depends on reservation order matching the block order. The commit
    /// gate reserves one range per transaction and hands ids out in op
    /// order, so the ids the parallel apply stage publishes are fixed
    /// before any worker runs.
    pub fn reserve_row_ids(&self, n: u64) -> RowId {
        RowId(self.next_row_id.fetch_add(n, Ordering::Relaxed))
    }

    /// Current row-id high-water mark (for persistence).
    pub fn row_id_watermark(&self) -> u64 {
        self.next_row_id.load(Ordering::Relaxed)
    }

    /// Force the row-id allocator (snapshot restore).
    pub fn set_row_id_watermark(&self, v: u64) {
        self.next_row_id.store(v, Ordering::Relaxed);
    }

    /// Count of live (committed, not deleted) rows — a consistency check
    /// helper for tests and checkpoint audits.
    pub fn live_row_count(&self) -> usize {
        let mut n = 0;
        self.for_each_slot(|_, v| {
            if v.is_live() {
                n += 1;
            }
        });
        n
    }

    // ------------------------------------------------- planner statistics

    /// Fold one committed transaction's statistics delta into the live
    /// maps. **Only call from the commit thread, in block order** — the
    /// fold sequence must be identical on every node.
    pub fn stats_apply(&self, delta: &StatsDelta) {
        self.stats.write().apply(delta);
    }

    /// Seal the current statistics as the summary at `height` (after all
    /// of the block's deltas folded). Commit thread only, like
    /// [`Table::stats_apply`].
    pub fn stats_seal(&self, height: BlockHeight) {
        self.stats.write().seal(height);
    }

    /// The sealed statistics summary as of `height` — the planner's
    /// input. `None` before any seal (plan from the stats-free
    /// heuristic).
    pub fn stats_summary_at(&self, height: BlockHeight) -> Option<TableSummary> {
        self.stats.read().summary_at(height)
    }

    /// True when a CREATE INDEX invalidated the statistics and a rebuild
    /// is required before the next seal.
    pub fn stats_dirty(&self) -> bool {
        self.stats.read().dirty()
    }

    /// Request a statistics rebuild at the next commit-thread fold (the
    /// maintenance tick's drift defense). Safe from any thread — only
    /// the flag is touched; the rebuild itself stays on the commit
    /// thread, serialized with the fold.
    pub fn stats_mark_dirty(&self) {
        self.stats.write().mark_dirty();
    }

    /// Recompute the statistics from the heap as of `height` and seal.
    /// Counts exactly the versions visible at `height` (created at or
    /// below it, not aborted, deleted above it or not at all) — the same
    /// set the incremental fold tracks, so a rebuild is a semantic no-op
    /// on the summary values and differing rebuild cadences cannot
    /// diverge replicas. Used by the vacuum tick, snapshot restore,
    /// fast-sync install and after CREATE INDEX.
    pub fn rebuild_stats(&self, height: BlockHeight) {
        let columns = stats::stat_columns(&self.schema());
        let mut rows = 0u64;
        let mut keys: BTreeMap<usize, BTreeMap<Value, u64>> =
            columns.iter().map(|c| (*c, BTreeMap::new())).collect();
        self.for_each_slot(|_, v| {
            let st = v.state();
            let visible = !st.aborted
                && st.creator_block.is_some_and(|b| b <= height)
                && st.deleter_block.is_none_or(|b| b > height);
            if visible {
                rows += 1;
                for (c, map) in keys.iter_mut() {
                    let val = &v.data[*c];
                    if !val.is_null() {
                        *map.entry(val.clone()).or_insert(0) += 1;
                    }
                }
            }
        });
        self.stats.write().install(rows, keys, height);
    }

    /// Reclaim versions deleted at or before `horizon` and versions from
    /// aborted transactions by tombstoning their heap slot in place and
    /// dropping their index entries. Returns the number of versions
    /// reclaimed.
    ///
    /// This is the paper's enhanced vacuum (§7): it trades provenance
    /// history older than `horizon` for space. Because positions are
    /// stable (no compaction) it is safe to run concurrently with
    /// readers and appenders: a racing scan resolves a reclaimed
    /// position to an empty slot and skips it — correct for any
    /// snapshot above the horizon, and below the horizon the history is
    /// gone by definition.
    /// Paged segments are handled through the chain's `min_deleter`
    /// stamp: a chain whose earliest delete is above the horizon has
    /// nothing reclaimable and is skipped *without faulting it in*
    /// (spill never pages out aborted versions, so chains hold only
    /// committed history). A chain that does contain reclaimable
    /// versions is faulted back in and vacuumed resident; the segment
    /// re-spills at the next spill tick with the dead slots gone, which
    /// is how tombstoned slots ultimately return pages to the on-disk
    /// free list.
    pub fn vacuum(&self, horizon: BlockHeight) -> usize {
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let indexes = self.indexes.read();
        let mut reclaimed = 0;
        for (si, seg) in segs.iter().enumerate() {
            loop {
                let mut g = seg.slots.write();
                if g.paged {
                    let min_deleter = self
                        .pager
                        .as_ref()
                        .and_then(|p| p.file.chain_min_deleter(si as u32))
                        .unwrap_or(NO_DELETER);
                    if min_deleter > horizon {
                        break; // nothing reclaimable — stay paged out
                    }
                    drop(g);
                    self.fault(si, seg);
                    continue;
                }
                for (off, slot) in g.slots.iter_mut().enumerate() {
                    let dead = match slot {
                        Some(v) => {
                            let st = v.state();
                            st.aborted || st.deleter_block.is_some_and(|db| db <= horizon)
                        }
                        None => false,
                    };
                    if dead {
                        let v = slot.take().expect("checked Some above");
                        let pos = (si << SEGMENT_SHIFT) + off;
                        for idx in indexes.values() {
                            idx.remove(&v.data[idx.column], pos);
                        }
                        reclaimed += 1;
                    }
                }
                break;
            }
        }
        reclaimed
    }

    /// Page out every cold segment: a full, non-tail, resident segment
    /// whose occupied slots are all *quiescent* — committed at or below
    /// `horizon`, not aborted, no pending writers, not deleted above
    /// `horizon`, and with no outstanding `Arc` clones (in-flight scans
    /// hold clones, so holding the segment's write lock while checking
    /// `strong_count == 1` is race-free: no new clone can be taken
    /// until the lock drops). Versions deleted *recently* (above the
    /// horizon) keep their segment resident, which is what pins
    /// SSI-relevant history in memory.
    ///
    /// `lsn` must be monotone across calls within a process (the block
    /// height at the spill tick) — it orders competing chains for a
    /// segment during crash recovery. Returns the number of segments
    /// paged out. No-op on unpaged tables.
    pub fn spill(&self, horizon: BlockHeight, lsn: u64) -> usize {
        let Some(pager) = self.pager.as_ref() else {
            return 0;
        };
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let last = segs.len() - 1;
        let mut spilled = 0;
        for (si, seg) in segs.iter().enumerate() {
            if si == last {
                continue; // the hot tail never spills
            }
            let mut g = seg.slots.write();
            if g.paged || g.slots.len() < SEGMENT_SIZE {
                continue;
            }
            let Some((builders, min_deleter)) = build_spill_pages(&g, horizon) else {
                continue;
            };
            if pager
                .store
                .commit_chain(&pager.file, si as u32, builders, lsn, min_deleter)
                .is_err()
            {
                continue; // stay resident; retried at the next tick
            }
            g.slots = Vec::new();
            g.paged = true;
            spilled += 1;
        }
        spilled
    }

    /// Total heap length (occupied slot count including tombstoned
    /// slots; paged segments count as full, which they are by
    /// construction). Snapshot encoding records this so restore can
    /// rebuild the exact segment geometry.
    pub fn heap_len(&self) -> usize {
        let segs = self.segments.read();
        let tail = segs.last().expect("≥1 segment");
        let g = tail.slots.read();
        let tail_len = if g.paged { SEGMENT_SIZE } else { g.slots.len() };
        (segs.len() - 1) * SEGMENT_SIZE + tail_len
    }

    /// Indices of the currently paged-out segments.
    pub fn paged_segments(&self) -> Vec<u32> {
        self.segments
            .read()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.slots.read().paged)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Rebuild the segment directory for a heap of `heap_len` slots, all
    /// empty (snapshot restore: [`Table::install_at`] then fills resident
    /// positions and [`Table::mark_paged`] flags paged segments).
    /// Discards any existing heap contents.
    pub fn preset_heap(&self, heap_len: usize) {
        let n_segs = heap_len.div_ceil(SEGMENT_SIZE).max(1);
        let tail_len = heap_len - (n_segs - 1) * SEGMENT_SIZE;
        let mut segs = Vec::with_capacity(n_segs);
        for i in 0..n_segs {
            let len = if i + 1 == n_segs {
                tail_len
            } else {
                SEGMENT_SIZE
            };
            let seg = Segment::new();
            seg.slots.write().slots.resize(len, None);
            segs.push(Arc::new(seg));
        }
        *self.segments.write() = segs;
    }

    /// Flag `segment` as paged out (snapshot restore of a heap whose
    /// chain already exists in the attached page file). The segment must
    /// be within the heap built by [`Table::preset_heap`].
    pub fn mark_paged(&self, segment: usize) {
        let segs = self.segments.read();
        let mut g = segs[segment].slots.write();
        g.slots = Vec::new();
        g.paged = true;
    }

    /// Install a restored version at an exact heap position and index it
    /// (snapshot restore; the position must be within the heap built by
    /// [`Table::preset_heap`]).
    pub fn install_at(&self, pos: usize, version: Version) {
        let version = Arc::new(version);
        {
            let segs = self.segments.read();
            let mut g = segs[pos >> SEGMENT_SHIFT].slots.write();
            g.slots[pos & (SEGMENT_SIZE - 1)] = Some(Arc::clone(&version));
        }
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
    }

    /// Populate the indexes with entries for every paged-out segment by
    /// streaming its chain — the versions themselves stay on disk.
    /// Snapshot restore calls this once after attaching chains, so index
    /// scans over paged history work without faulting anything in until
    /// a scan actually resolves a position.
    pub fn reindex_paged(&self) {
        let Some(pager) = self.pager.as_ref() else {
            return;
        };
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let indexes = self.indexes.read();
        for (si, seg) in segs.iter().enumerate() {
            if !seg.slots.read().paged {
                continue;
            }
            for (off, v) in decode_chain(pager, si) {
                let pos = (si << SEGMENT_SHIFT) + off;
                for idx in indexes.values() {
                    idx.insert(v.data[idx.column].clone(), pos);
                }
            }
        }
    }

    /// Look up live committed rows by primary-key value (single-column PK
    /// fast path used for uniqueness checks at commit).
    pub fn committed_pk_conflicts(&self, pk_value: &Value, exclude_tx: TxId) -> Vec<Arc<Version>> {
        let schema = self.schema.read();
        if schema.primary_key.len() != 1 {
            return Vec::new();
        }
        let col = schema.primary_key[0];
        drop(schema);
        let Some(idx) = self.index_for(col) else {
            return Vec::new();
        };
        self.versions_at(&idx.positions_eq(pk_value))
            .into_iter()
            .filter(|v| v.is_live() && v.xmin != exclude_tx)
            .collect()
    }
}

/// Serialize a segment's occupied slots into filled page builders, or
/// `None` if any slot disqualifies the segment from spilling (see
/// [`Table::spill`] for the quiescence rules). Also returns the minimum
/// deleter block across the cells ([`NO_DELETER`] when nothing is
/// deleted) for the chain's `min_deleter` header stamp.
fn build_spill_pages(
    inner: &SegmentInner,
    horizon: BlockHeight,
) -> Option<(Vec<PageBuilder>, u64)> {
    let mut builders = vec![PageBuilder::new()];
    let mut min_deleter = NO_DELETER;
    for (off, slot) in inner.slots.iter().enumerate() {
        let Some(v) = slot else { continue };
        if Arc::strong_count(v) != 1 {
            return None; // an in-flight scan still holds this version
        }
        let st = v.state();
        if st.aborted || !st.xmax_pending.is_empty() {
            return None;
        }
        let creator = st.creator_block?;
        if creator > horizon {
            return None;
        }
        if let Some(d) = st.deleter_block {
            if d > horizon {
                return None; // recently deleted: SSI-relevant, stays hot
            }
            min_deleter = min_deleter.min(d);
        }
        let cell = page::encode_cell(off as u16, v.xmin, &st, &v.data);
        if !builders.last_mut().expect("≥1 builder").try_add(&cell) {
            let mut b = PageBuilder::new();
            if !b.try_add(&cell) {
                return None; // row too large for a page — keep resident
            }
            builders.push(b);
        }
    }
    Some((builders, min_deleter))
}

/// Decode a paged segment's chain into `(offset, Version)` pairs.
///
/// Pages written by an *earlier process epoch* get the restore-anchor
/// filter: cells created above the file's anchor height are dropped,
/// and delete/xmax stamps above it are cleared — block replay past the
/// anchor regenerates exactly that history, and replaying a delete onto
/// a version already carrying the stamp would double-commit it. Pages
/// from the current epoch were written after replay finished and are
/// taken verbatim.
///
/// Chain corruption panics with a diagnostic: the accessors that fault
/// segments in are infallible, so this is operationally the same class
/// of fatal error as mid-file block-store corruption.
fn decode_chain(pager: &TablePager, si: usize) -> Vec<(usize, Version)> {
    let table = pager.file.table();
    let pages = match pager.store.read_chain(&pager.file, si as u32) {
        Ok(Some(pages)) => pages,
        Ok(None) => panic!("table {table}: segment {si} is marked paged but has no chain"),
        Err(e) => panic!("table {table}: segment {si} chain unreadable: {e}"),
    };
    let epoch = pager.file.epoch();
    let anchor = pager.file.anchor();
    let mut out = Vec::new();
    for image in &pages {
        let header = page::read_header(image)
            .unwrap_or_else(|e| panic!("table {table}: segment {si} page corrupt: {e}"));
        let old = header.epoch < epoch;
        let cells = page::cells(image)
            .unwrap_or_else(|e| panic!("table {table}: segment {si} page corrupt: {e}"));
        for cell in cells {
            let c = page::decode_cell(cell)
                .unwrap_or_else(|e| panic!("table {table}: segment {si} cell corrupt: {e}"));
            if old && c.creator > anchor {
                continue;
            }
            let (deleter, xmax) = if old && c.deleter.is_some_and(|d| d > anchor) {
                (None, None)
            } else {
                (c.deleter, c.xmax)
            };
            out.push((
                c.slot as usize,
                Version::restored(c.xmin, c.row, c.row_id, c.creator, deleter, xmax),
            ));
        }
    }
    out
}

/// A sanity guard: tables are shared across executor threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Table>()
};

/// Convenience for building a table error.
pub fn unknown_table(name: &str) -> Error {
    Error::NotFound(format!("table {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::UNASSIGNED_ROW_ID;
    use bcrdb_common::schema::{Column, DataType};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        Table::new(schema)
    }

    #[test]
    fn pk_index_created_automatically() {
        let t = table();
        assert!(t.index_for(0).is_some());
        assert!(t.index_for(1).is_none());
    }

    #[test]
    fn append_and_index_scan() {
        let t = table();
        let (p0, v0) = t.append_version(
            TxId(1),
            vec![Value::Int(10), Value::Text("a".into())],
            UNASSIGNED_ROW_ID,
        );
        v0.commit_create(1, t.alloc_row_id());
        let (p1, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(20), Value::Text("b".into())],
            UNASSIGNED_ROW_ID,
        );
        v1.commit_create(1, t.alloc_row_id());
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(t.version_count(), 2);
        assert_eq!(t.live_row_count(), 2);

        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(10))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("a".into()));
    }

    #[test]
    fn secondary_index_backfills() {
        let t = table();
        let (_, v) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("x".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(1, t.alloc_row_id());
        t.add_index("idx_name", "name").unwrap();
        let hits = t
            .index_scan(1, &KeyRange::eq(Value::Text("x".into())))
            .unwrap();
        assert_eq!(hits.len(), 1);
        // Index registered in the schema too.
        assert_eq!(t.schema().indexes.len(), 1);
    }

    #[test]
    fn pk_conflict_detection() {
        let t = table();
        let (_, v) = t.append_version(
            TxId(1),
            vec![Value::Int(5), Value::Text("a".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(1, t.alloc_row_id());
        let conflicts = t.committed_pk_conflicts(&Value::Int(5), TxId(2));
        assert_eq!(conflicts.len(), 1);
        // The inserting transaction itself is excluded.
        assert!(t.committed_pk_conflicts(&Value::Int(5), TxId(1)).is_empty());
        // Deleted rows do not conflict.
        v.add_pending_writer(TxId(3));
        v.commit_delete(TxId(3), 2);
        assert!(t.committed_pk_conflicts(&Value::Int(5), TxId(2)).is_empty());
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let t = table();
        // v1 committed at block 1, deleted at block 2.
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("old".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v1.commit_create(1, rid);
        v1.add_pending_writer(TxId(2));
        v1.commit_delete(TxId(2), 2);
        // Successor version committed at block 2.
        let (_, v2) =
            t.append_version(TxId(2), vec![Value::Int(1), Value::Text("new".into())], rid);
        v2.commit_create(2, rid);
        // An aborted insert.
        let (_, v3) = t.append_version(
            TxId(3),
            vec![Value::Int(9), Value::Text("zzz".into())],
            UNASSIGNED_ROW_ID,
        );
        v3.abort_create();

        assert_eq!(t.version_count(), 3);
        let reclaimed = t.vacuum(2);
        assert_eq!(reclaimed, 2);
        assert_eq!(t.version_count(), 1);
        assert_eq!(t.live_row_count(), 1);
        // Reclaimed entries left the indexes: scans still work.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(1))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("new".into()));
    }

    #[test]
    fn reserve_row_ids_matches_per_op_allocation() {
        let t = table();
        // A batched reservation hands out the same ids the per-op
        // allocator would have, and leaves the allocator where per-op
        // allocation would leave it.
        let start = t.reserve_row_ids(3);
        assert_eq!(start, RowId(1));
        assert_eq!(t.alloc_row_id(), RowId(4));
        assert_eq!(t.row_id_watermark(), 5);
        // Zero-length reservations don't consume ids.
        let same = t.reserve_row_ids(0);
        assert_eq!(same, RowId(5));
        assert_eq!(t.alloc_row_id(), RowId(5));
    }

    #[test]
    fn append_restored_batch_spans_segments_and_indexes() {
        let t = table();
        let n = SEGMENT_SIZE + 10;
        let base = t.reserve_row_ids(n as u64).0;
        let batch: Vec<Version> = (0..n)
            .map(|i| {
                Version::restored(
                    TxId::INVALID,
                    vec![Value::Int(i as i64), Value::Text(format!("r{i}"))],
                    RowId(base + i as u64),
                    1,
                    None,
                    None,
                )
            })
            .collect();
        t.append_restored_batch(batch);
        assert_eq!(t.version_count(), n);
        assert_eq!(t.live_row_count(), n);
        // Positions past the first segment boundary landed in segment 1
        // and stayed indexed.
        let hits = t
            .index_scan(0, &KeyRange::eq(Value::Int(SEGMENT_SIZE as i64 + 3)))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].data[1],
            Value::Text(format!("r{}", SEGMENT_SIZE + 3))
        );
    }

    #[test]
    fn vacuum_preserves_history_after_horizon() {
        let t = table();
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("v1".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v1.commit_create(1, rid);
        v1.add_pending_writer(TxId(2));
        v1.commit_delete(TxId(2), 5);
        // Horizon 3 < deleter 5 → history kept.
        assert_eq!(t.vacuum(3), 0);
        assert_eq!(t.version_count(), 1);
    }

    #[test]
    fn heap_spans_segments_with_stable_positions() {
        let t = table();
        let n = SEGMENT_SIZE + 17;
        for i in 0..n {
            let (pos, v) = t.append_version(
                TxId(1),
                vec![Value::Int(i as i64), Value::Text("x".into())],
                UNASSIGNED_ROW_ID,
            );
            assert_eq!(pos, i, "positions are dense across segment boundaries");
            v.commit_create(1, t.alloc_row_id());
        }
        assert_eq!(t.version_count(), n);
        assert_eq!(t.live_row_count(), n);
        // Positions resolve across the segment boundary.
        let boundary = t.version_at(SEGMENT_SIZE).unwrap();
        assert_eq!(boundary.data[0], Value::Int(SEGMENT_SIZE as i64));
        assert!(t.version_at(n).is_none(), "past the tail");
        // Index scans reach rows in both segments.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(3))).unwrap();
        assert_eq!(hits.len(), 1);
        let hits = t
            .index_scan(0, &KeyRange::eq(Value::Int(SEGMENT_SIZE as i64 + 5)))
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn vacuum_keeps_surviving_positions_stable() {
        let t = table();
        // pos 0: deleted at block 1 (reclaimable at horizon ≥ 1);
        // pos 1: live.
        let (p0, v0) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("dead".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v0.commit_create(1, rid);
        v0.add_pending_writer(TxId(2));
        v0.commit_delete(TxId(2), 1);
        let (p1, v1) = t.append_version(
            TxId(2),
            vec![Value::Int(2), Value::Text("live".into())],
            UNASSIGNED_ROW_ID,
        );
        v1.commit_create(1, t.alloc_row_id());

        // A reader captured positions before the vacuum.
        let idx = t.index_for(0).unwrap();
        let pre_positions = idx.positions_in_range(&KeyRange::all());
        assert_eq!(pre_positions, vec![p0, p1]);

        assert_eq!(t.vacuum(1), 1);
        // The stale position list still resolves correctly: the reclaimed
        // slot reads empty, the survivor is unchanged.
        let resolved = t.versions_at(&pre_positions);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].data[1], Value::Text("live".into()));
        // New appends go to fresh slots — reclaimed positions never alias.
        let (p2, _) = t.append_version(
            TxId(3),
            vec![Value::Int(3), Value::Text("new".into())],
            UNASSIGNED_ROW_ID,
        );
        assert_eq!(p2, 2);
    }

    #[test]
    fn row_id_watermark_roundtrip() {
        let t = table();
        assert_eq!(t.alloc_row_id(), RowId(1));
        assert_eq!(t.alloc_row_id(), RowId(2));
        assert_eq!(t.row_id_watermark(), 3);
        t.set_row_id_watermark(100);
        assert_eq!(t.alloc_row_id(), RowId(100));
    }

    // ------------------------------------------------- paged segments

    fn paged_table(tag: &str) -> (Table, Arc<PagedStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("bcrdb-table-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = PagedStore::open(&dir, 16, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        let t = Table::new_in(
            schema,
            Some(TablePager {
                store: Arc::clone(&store),
                file,
            }),
        );
        (t, store, dir)
    }

    /// Fill `n` committed rows at block 1.
    fn fill(t: &Table, n: usize) {
        for i in 0..n {
            let (_, v) = t.append_version(
                TxId(1),
                vec![Value::Int(i as i64), Value::Text(format!("r{i}"))],
                UNASSIGNED_ROW_ID,
            );
            v.commit_create(1, t.alloc_row_id());
        }
    }

    #[test]
    fn spill_and_fault_roundtrip_is_invisible_to_readers() {
        let (t, _store, dir) = paged_table("roundtrip");
        let n = SEGMENT_SIZE + 5;
        fill(&t, n);
        let before: Vec<(RowId, Row)> = t
            .all_versions()
            .iter()
            .map(|v| (v.row_id(), v.data.clone()))
            .collect();

        assert_eq!(t.spill(10, 10), 1, "the one full non-tail segment spills");
        assert_eq!(t.paged_segments(), vec![0]);
        assert_eq!(t.heap_len(), n, "paged segments count as full");

        // An indexed point read into the paged segment faults it in and
        // sees the same row.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(3))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("r3".into()));
        assert!(t.paged_segments().is_empty(), "fault made it resident");
        drop(hits); // outstanding clones pin the segment

        // Full scan equals the pre-spill state byte for byte.
        let after: Vec<(RowId, Row)> = t
            .all_versions()
            .iter()
            .map(|v| (v.row_id(), v.data.clone()))
            .collect();
        assert_eq!(before, after);

        // Re-spilling the faulted segment rewrites its chain fine.
        assert_eq!(t.spill(10, 11), 1);
        assert_eq!(t.version_count(), n);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_skips_hot_and_partial_segments() {
        let (t, _store, dir) = paged_table("hot");
        // Segment 0 full but with one version committed above the
        // horizon; tail partial.
        fill(&t, SEGMENT_SIZE - 1);
        let (_, v) = t.append_version(
            TxId(9),
            vec![Value::Int(-1), Value::Text("hot".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(50, t.alloc_row_id());
        drop(v); // outstanding clones pin the segment
        fill(&t, 3);
        assert_eq!(t.spill(10, 10), 0, "creator above horizon pins segment 0");
        assert_eq!(t.spill(50, 50), 1, "horizon caught up");
        // The tail never spills even when the horizon covers it.
        assert_eq!(t.spill(100, 100), 0);
        assert_eq!(t.paged_segments(), vec![0]);

        // A version with a pending writer pins its segment: fault 0
        // back, flag a row, and try again.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(7))).unwrap();
        hits[0].add_pending_writer(TxId(77));
        assert_eq!(t.spill(100, 101), 0, "pending writer pins the segment");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn vacuum_faults_only_chains_with_reclaimable_history() {
        let (t, _store, dir) = paged_table("vac");
        fill(&t, SEGMENT_SIZE);
        // Delete row id=2 at block 5, leaving its successor out (plain
        // DELETE), then spill at a horizon covering the delete.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(2))).unwrap();
        hits[0].add_pending_writer(TxId(5));
        hits[0].commit_delete(TxId(5), 5);
        drop(hits);
        fill(&t, 2); // fresh tail so segment 0 is non-tail
        assert_eq!(t.spill(6, 6), 1);
        assert_eq!(t.paged_segments(), vec![0]);

        // Horizon below the chain's min_deleter: no fault, no reclaim.
        assert_eq!(t.vacuum(4), 0);
        assert_eq!(t.paged_segments(), vec![0], "skipped without faulting");

        // Horizon at the delete: faults in, reclaims, stays resident.
        assert_eq!(t.vacuum(5), 1);
        assert!(t.paged_segments().is_empty());
        assert!(t
            .index_scan(0, &KeyRange::eq(Value::Int(2)))
            .unwrap()
            .is_empty());
        assert_eq!(t.version_count(), SEGMENT_SIZE + 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn preset_install_and_mark_paged_rebuild_geometry() {
        let (t, store, dir) = paged_table("preset");
        // Build a donor heap, spill segment 0, and remember its state.
        fill(&t, SEGMENT_SIZE + 4);
        assert_eq!(t.spill(10, 10), 1);
        let donor_chain = t.pager().unwrap().file.chain(0).unwrap();
        assert!(!donor_chain.is_empty());

        // Restore path: a second table over the same file re-creates the
        // geometry without touching the chain's versions.
        let schema = t.schema();
        let file = t.pager().unwrap().file.clone();
        let t2 = Table::new_in(schema, Some(TablePager { store, file }));
        t2.preset_heap(SEGMENT_SIZE + 4);
        assert_eq!(t2.heap_len(), SEGMENT_SIZE + 4);
        t2.mark_paged(0);
        for i in 0..4 {
            let pos = SEGMENT_SIZE + i;
            t2.install_at(
                pos,
                Version::restored(
                    TxId(1),
                    vec![Value::Int(pos as i64), Value::Text(format!("r{pos}"))],
                    RowId(pos as u64 + 1),
                    1,
                    None,
                    None,
                ),
            );
        }
        t2.reindex_paged();
        // Index entries cover the paged segment without faulting it…
        assert_eq!(t2.paged_segments(), vec![0]);
        let hits = t2.index_scan(0, &KeyRange::eq(Value::Int(9))).unwrap();
        // …and resolving positions faults it in with identical contents.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("r9".into()));
        assert_eq!(t2.version_count(), SEGMENT_SIZE + 4);
        let _ = std::fs::remove_dir_all(dir);
    }
}
