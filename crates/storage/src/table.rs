//! Tables: an append-only version heap plus B-tree indexes.
//!
//! The heap only ever grows (updates append new versions); positions are
//! stable until an explicit [`Table::vacuum`], which is a stop-the-world
//! maintenance operation in the spirit of the paper's enhanced `VACUUM`
//! (§7: pruning by creator/deleter block).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::{Row, Value};
use parking_lot::RwLock;

use crate::index::{BTreeIndex, KeyRange};
use crate::version::Version;

/// A table: schema, version heap and indexes.
pub struct Table {
    schema: RwLock<TableSchema>,
    versions: RwLock<Vec<Arc<Version>>>,
    /// Column ordinal → index. The primary-key index always exists for
    /// single-column PKs.
    indexes: RwLock<HashMap<usize, Arc<BTreeIndex>>>,
    /// Commit-time row-id allocator. Advanced only during the serial commit
    /// phase, so the sequence is identical on every node.
    next_row_id: AtomicU64,
}

impl Table {
    /// Create an empty table. A primary-key index is created automatically
    /// for single-column primary keys; secondary indexes declared in the
    /// schema are materialized too.
    pub fn new(schema: TableSchema) -> Table {
        let mut indexes = HashMap::new();
        if schema.primary_key.len() == 1 {
            let col = schema.primary_key[0];
            indexes.insert(
                col,
                Arc::new(BTreeIndex::new(format!("{}_pkey", schema.name), col)),
            );
        }
        for def in &schema.indexes {
            indexes
                .entry(def.column)
                .or_insert_with(|| Arc::new(BTreeIndex::new(def.name.clone(), def.column)));
        }
        Table {
            schema: RwLock::new(schema),
            versions: RwLock::new(Vec::new()),
            indexes: RwLock::new(indexes),
            next_row_id: AtomicU64::new(1),
        }
    }

    /// Clone of the schema.
    pub fn schema(&self) -> TableSchema {
        self.schema.read().clone()
    }

    /// Table name.
    pub fn name(&self) -> String {
        self.schema.read().name.clone()
    }

    /// Add a secondary index over `column_name` and backfill it from the
    /// existing heap.
    pub fn add_index(&self, index_name: &str, column_name: &str) -> Result<()> {
        let column = {
            let mut schema = self.schema.write();
            schema.add_index(index_name, column_name)?;
            schema
                .column_index(column_name)
                .expect("column checked by add_index")
        };
        let idx = Arc::new(BTreeIndex::new(index_name, column));
        let versions = self.versions.read();
        for (pos, v) in versions.iter().enumerate() {
            idx.insert(v.data[column].clone(), pos);
        }
        self.indexes.write().insert(column, idx);
        Ok(())
    }

    /// The index over `column`, if one exists.
    pub fn index_for(&self, column: usize) -> Option<Arc<BTreeIndex>> {
        self.indexes.read().get(&column).cloned()
    }

    /// Append an in-flight version (INSERT or the successor image of an
    /// UPDATE). Returns its heap position.
    pub fn append_version(&self, xmin: TxId, data: Row, row_id: RowId) -> (usize, Arc<Version>) {
        let version = Arc::new(Version::new(xmin, data, row_id));
        let pos = {
            let mut versions = self.versions.write();
            versions.push(Arc::clone(&version));
            versions.len() - 1
        };
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
        (pos, version)
    }

    /// Append a fully committed version (snapshot restore path).
    pub fn append_restored(&self, version: Version) {
        let version = Arc::new(version);
        let pos = {
            let mut versions = self.versions.write();
            versions.push(Arc::clone(&version));
            versions.len() - 1
        };
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
    }

    /// The version at a heap position.
    pub fn version_at(&self, pos: usize) -> Option<Arc<Version>> {
        self.versions.read().get(pos).cloned()
    }

    /// Versions at the given heap positions (missing positions skipped).
    pub fn versions_at(&self, positions: &[usize]) -> Vec<Arc<Version>> {
        let versions = self.versions.read();
        positions
            .iter()
            .filter_map(|&p| versions.get(p).cloned())
            .collect()
    }

    /// All versions, in heap order. Full scans re-sort visible rows by
    /// row id for determinism.
    pub fn all_versions(&self) -> Vec<Arc<Version>> {
        self.versions.read().clone()
    }

    /// Number of versions in the heap (live + dead + in-flight).
    pub fn version_count(&self) -> usize {
        self.versions.read().len()
    }

    /// Candidate versions for an indexed range scan.
    pub fn index_scan(&self, column: usize, range: &KeyRange) -> Option<Vec<Arc<Version>>> {
        let idx = self.index_for(column)?;
        Some(self.versions_at(&idx.positions_in_range(range)))
    }

    /// Allocate the next committed row id. **Only call from the serial
    /// commit phase** — determinism across nodes depends on allocation
    /// order matching the block order.
    pub fn alloc_row_id(&self) -> RowId {
        RowId(self.next_row_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Current row-id high-water mark (for persistence).
    pub fn row_id_watermark(&self) -> u64 {
        self.next_row_id.load(Ordering::Relaxed)
    }

    /// Force the row-id allocator (snapshot restore).
    pub fn set_row_id_watermark(&self, v: u64) {
        self.next_row_id.store(v, Ordering::Relaxed);
    }

    /// Count of live (committed, not deleted) rows — a consistency check
    /// helper for tests and checkpoint audits.
    pub fn live_row_count(&self) -> usize {
        self.versions.read().iter().filter(|v| v.is_live()).count()
    }

    /// Remove versions deleted at or before `horizon` and versions from
    /// aborted transactions, rebuilding the heap and all indexes. Returns
    /// the number of versions reclaimed.
    ///
    /// This is the paper's enhanced vacuum (§7): it trades provenance
    /// history older than `horizon` for space. Never run it while
    /// transactions are executing.
    pub fn vacuum(&self, horizon: BlockHeight) -> usize {
        let mut versions = self.versions.write();
        let before = versions.len();
        let retained: Vec<Arc<Version>> = versions
            .iter()
            .filter(|v| {
                let st = v.state();
                if st.aborted {
                    return false;
                }
                match st.deleter_block {
                    Some(db) => db > horizon,
                    None => true,
                }
            })
            .cloned()
            .collect();
        *versions = retained;
        // Rebuild indexes against the compacted positions.
        let indexes = self.indexes.read();
        for idx in indexes.values() {
            idx.clear();
            for (pos, v) in versions.iter().enumerate() {
                idx.insert(v.data[idx.column].clone(), pos);
            }
        }
        before - versions.len()
    }

    /// Look up live committed rows by primary-key value (single-column PK
    /// fast path used for uniqueness checks at commit).
    pub fn committed_pk_conflicts(&self, pk_value: &Value, exclude_tx: TxId) -> Vec<Arc<Version>> {
        let schema = self.schema.read();
        if schema.primary_key.len() != 1 {
            return Vec::new();
        }
        let col = schema.primary_key[0];
        drop(schema);
        let Some(idx) = self.index_for(col) else {
            return Vec::new();
        };
        self.versions_at(&idx.positions_eq(pk_value))
            .into_iter()
            .filter(|v| v.is_live() && v.xmin != exclude_tx)
            .collect()
    }
}

/// A sanity guard: tables are shared across executor threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Table>()
};

/// Convenience for building a table error.
pub fn unknown_table(name: &str) -> Error {
    Error::NotFound(format!("table {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::UNASSIGNED_ROW_ID;
    use bcrdb_common::schema::{Column, DataType};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        Table::new(schema)
    }

    #[test]
    fn pk_index_created_automatically() {
        let t = table();
        assert!(t.index_for(0).is_some());
        assert!(t.index_for(1).is_none());
    }

    #[test]
    fn append_and_index_scan() {
        let t = table();
        let (p0, v0) = t.append_version(
            TxId(1),
            vec![Value::Int(10), Value::Text("a".into())],
            UNASSIGNED_ROW_ID,
        );
        v0.commit_create(1, t.alloc_row_id());
        let (p1, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(20), Value::Text("b".into())],
            UNASSIGNED_ROW_ID,
        );
        v1.commit_create(1, t.alloc_row_id());
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(t.version_count(), 2);
        assert_eq!(t.live_row_count(), 2);

        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(10))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("a".into()));
    }

    #[test]
    fn secondary_index_backfills() {
        let t = table();
        let (_, v) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("x".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(1, t.alloc_row_id());
        t.add_index("idx_name", "name").unwrap();
        let hits = t
            .index_scan(1, &KeyRange::eq(Value::Text("x".into())))
            .unwrap();
        assert_eq!(hits.len(), 1);
        // Index registered in the schema too.
        assert_eq!(t.schema().indexes.len(), 1);
    }

    #[test]
    fn pk_conflict_detection() {
        let t = table();
        let (_, v) = t.append_version(
            TxId(1),
            vec![Value::Int(5), Value::Text("a".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(1, t.alloc_row_id());
        let conflicts = t.committed_pk_conflicts(&Value::Int(5), TxId(2));
        assert_eq!(conflicts.len(), 1);
        // The inserting transaction itself is excluded.
        assert!(t.committed_pk_conflicts(&Value::Int(5), TxId(1)).is_empty());
        // Deleted rows do not conflict.
        v.add_pending_writer(TxId(3));
        v.commit_delete(TxId(3), 2);
        assert!(t.committed_pk_conflicts(&Value::Int(5), TxId(2)).is_empty());
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let t = table();
        // v1 committed at block 1, deleted at block 2.
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("old".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v1.commit_create(1, rid);
        v1.add_pending_writer(TxId(2));
        v1.commit_delete(TxId(2), 2);
        // Successor version committed at block 2.
        let (_, v2) =
            t.append_version(TxId(2), vec![Value::Int(1), Value::Text("new".into())], rid);
        v2.commit_create(2, rid);
        // An aborted insert.
        let (_, v3) = t.append_version(
            TxId(3),
            vec![Value::Int(9), Value::Text("zzz".into())],
            UNASSIGNED_ROW_ID,
        );
        v3.abort_create();

        assert_eq!(t.version_count(), 3);
        let reclaimed = t.vacuum(2);
        assert_eq!(reclaimed, 2);
        assert_eq!(t.version_count(), 1);
        assert_eq!(t.live_row_count(), 1);
        // Index positions were rebuilt: scans still work.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(1))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("new".into()));
    }

    #[test]
    fn vacuum_preserves_history_after_horizon() {
        let t = table();
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("v1".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v1.commit_create(1, rid);
        v1.add_pending_writer(TxId(2));
        v1.commit_delete(TxId(2), 5);
        // Horizon 3 < deleter 5 → history kept.
        assert_eq!(t.vacuum(3), 0);
        assert_eq!(t.version_count(), 1);
    }

    #[test]
    fn row_id_watermark_roundtrip() {
        let t = table();
        assert_eq!(t.alloc_row_id(), RowId(1));
        assert_eq!(t.alloc_row_id(), RowId(2));
        assert_eq!(t.row_id_watermark(), 3);
        t.set_row_id_watermark(100);
        assert_eq!(t.alloc_row_id(), RowId(100));
    }
}
