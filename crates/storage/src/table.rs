//! Tables: an append-only, *segmented* version heap plus B-tree indexes.
//!
//! The heap is a sequence of fixed-size segments. Heap positions are
//! global (`segment · SEGMENT_SIZE + offset`) and **stable for the life
//! of the table**: appends only ever touch the tail segment's lock, so
//! readers scanning older segments never contend with concurrent
//! appends (the property the pipelined block commit leans on — block
//! N+1's executions read while block N's post-commit work appends
//! ledger rows), and [`Table::vacuum`] reclaims dead versions by
//! tombstoning their slot in place instead of compacting, so a scan
//! that captured index positions before a vacuum still resolves them to
//! the same rows afterwards (reclaimed slots simply read as empty).
//! Vacuum is therefore safe to run concurrently with readers; the
//! history it destroys — versions deleted at or before the horizon — is
//! exactly what the paper's enhanced `VACUUM` (§7) gives up.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::{Row, Value};
use parking_lot::RwLock;

use crate::index::{BTreeIndex, KeyRange};
use crate::version::Version;

/// log2 of the heap segment size. Public so write-set partitioners can
/// shard by `(table, row_id >> SEGMENT_SHIFT)` — the same granularity
/// appends contend on.
pub const SEGMENT_SHIFT: usize = 10;
/// Version-heap slots per segment. Appends lock only the tail segment;
/// reads lock only the segment(s) they touch.
pub const SEGMENT_SIZE: usize = 1 << SEGMENT_SHIFT;

/// One fixed-size run of heap slots. A slot is `None` either because the
/// segment has not grown to it yet or because vacuum reclaimed it.
struct Segment {
    slots: RwLock<Vec<Option<Arc<Version>>>>,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            slots: RwLock::new(Vec::with_capacity(SEGMENT_SIZE)),
        }
    }
}

/// A table: schema, segmented version heap and indexes.
pub struct Table {
    schema: RwLock<TableSchema>,
    /// The segment directory. Write-locked only to push a new (empty)
    /// tail segment — roughly once per [`SEGMENT_SIZE`] appends.
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Column ordinal → index. The primary-key index always exists for
    /// single-column PKs.
    indexes: RwLock<HashMap<usize, Arc<BTreeIndex>>>,
    /// Commit-time row-id allocator. Advanced only during the serial commit
    /// phase, so the sequence is identical on every node.
    next_row_id: AtomicU64,
}

impl Table {
    /// Create an empty table. A primary-key index is created automatically
    /// for single-column primary keys; secondary indexes declared in the
    /// schema are materialized too.
    pub fn new(schema: TableSchema) -> Table {
        let mut indexes = HashMap::new();
        if schema.primary_key.len() == 1 {
            let col = schema.primary_key[0];
            indexes.insert(
                col,
                Arc::new(BTreeIndex::new(format!("{}_pkey", schema.name), col)),
            );
        }
        for def in &schema.indexes {
            indexes
                .entry(def.column)
                .or_insert_with(|| Arc::new(BTreeIndex::new(def.name.clone(), def.column)));
        }
        Table {
            schema: RwLock::new(schema),
            segments: RwLock::new(vec![Arc::new(Segment::new())]),
            indexes: RwLock::new(indexes),
            next_row_id: AtomicU64::new(1),
        }
    }

    /// Append `version` to the heap and return its global position.
    /// Contends only on the tail segment (and, when the tail is full, on
    /// the segment directory for the one push that extends it).
    fn push(&self, version: Arc<Version>) -> usize {
        loop {
            let (seg_idx, seg) = {
                let segs = self.segments.read();
                (segs.len() - 1, Arc::clone(segs.last().expect("≥1 segment")))
            };
            {
                let mut slots = seg.slots.write();
                if slots.len() < SEGMENT_SIZE {
                    let pos = (seg_idx << SEGMENT_SHIFT) + slots.len();
                    slots.push(Some(version));
                    return pos;
                }
            }
            // Tail full: extend the directory (exactly one appender wins;
            // losers retry against the fresh tail).
            let mut segs = self.segments.write();
            if segs.len() == seg_idx + 1 {
                segs.push(Arc::new(Segment::new()));
            }
        }
    }

    /// Run `f` over every occupied slot in position order.
    fn for_each_slot(&self, mut f: impl FnMut(usize, &Arc<Version>)) {
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        for (si, seg) in segs.iter().enumerate() {
            let slots = seg.slots.read();
            for (off, slot) in slots.iter().enumerate() {
                if let Some(v) = slot {
                    f((si << SEGMENT_SHIFT) + off, v);
                }
            }
        }
    }

    /// Clone of the schema.
    pub fn schema(&self) -> TableSchema {
        self.schema.read().clone()
    }

    /// Table name.
    pub fn name(&self) -> String {
        self.schema.read().name.clone()
    }

    /// Add a secondary index over `column_name` and backfill it from the
    /// existing heap.
    pub fn add_index(&self, index_name: &str, column_name: &str) -> Result<()> {
        let column = {
            let mut schema = self.schema.write();
            schema.add_index(index_name, column_name)?;
            schema
                .column_index(column_name)
                .expect("column checked by add_index")
        };
        let idx = Arc::new(BTreeIndex::new(index_name, column));
        // Backfill and register under the segment-directory write lock:
        // appenders (who take it for read in `push`) are excluded for
        // the duration, so a concurrent insert can neither be missed by
        // the backfill nor double-registered after it — once the lock
        // drops, every new append sees the registered index.
        {
            let segs = self.segments.write();
            for (si, seg) in segs.iter().enumerate() {
                let slots = seg.slots.read();
                for (off, slot) in slots.iter().enumerate() {
                    if let Some(v) = slot {
                        idx.insert(v.data[column].clone(), (si << SEGMENT_SHIFT) + off);
                    }
                }
            }
            self.indexes.write().insert(column, idx);
        }
        Ok(())
    }

    /// The index over `column`, if one exists.
    pub fn index_for(&self, column: usize) -> Option<Arc<BTreeIndex>> {
        self.indexes.read().get(&column).cloned()
    }

    /// Append an in-flight version (INSERT or the successor image of an
    /// UPDATE). Returns its heap position.
    pub fn append_version(&self, xmin: TxId, data: Row, row_id: RowId) -> (usize, Arc<Version>) {
        let version = Arc::new(Version::new(xmin, data, row_id));
        let pos = self.push(Arc::clone(&version));
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
        (pos, version)
    }

    /// Append a fully committed version (snapshot restore path).
    pub fn append_restored(&self, version: Version) {
        let version = Arc::new(version);
        let pos = self.push(Arc::clone(&version));
        for idx in self.indexes.read().values() {
            idx.insert(version.data[idx.column].clone(), pos);
        }
    }

    /// Append a batch of fully committed versions (ledger writer and bulk
    /// restore paths), taking each tail-segment lock once per segment run
    /// instead of once per version. Index maintenance happens after the
    /// heap positions are fixed, mirroring [`Table::append_restored`].
    pub fn append_restored_batch(&self, versions: Vec<Version>) {
        let mut placed: Vec<(usize, Arc<Version>)> = Vec::with_capacity(versions.len());
        let mut pending = versions.into_iter().map(Arc::new).peekable();
        while pending.peek().is_some() {
            let (seg_idx, seg) = {
                let segs = self.segments.read();
                (segs.len() - 1, Arc::clone(segs.last().expect("≥1 segment")))
            };
            {
                let mut slots = seg.slots.write();
                while slots.len() < SEGMENT_SIZE {
                    let Some(v) = pending.next() else { break };
                    let pos = (seg_idx << SEGMENT_SHIFT) + slots.len();
                    slots.push(Some(Arc::clone(&v)));
                    placed.push((pos, v));
                }
            }
            if pending.peek().is_none() {
                break;
            }
            // Tail full: extend the directory, same protocol as `push`.
            let mut segs = self.segments.write();
            if segs.len() == seg_idx + 1 {
                segs.push(Arc::new(Segment::new()));
            }
        }
        let indexes = self.indexes.read();
        for (pos, v) in &placed {
            for idx in indexes.values() {
                idx.insert(v.data[idx.column].clone(), *pos);
            }
        }
    }

    /// The version at a heap position (`None` for unoccupied or vacuumed
    /// slots).
    pub fn version_at(&self, pos: usize) -> Option<Arc<Version>> {
        let segs = self.segments.read();
        let seg = segs.get(pos >> SEGMENT_SHIFT)?;
        let slot = seg.slots.read().get(pos & (SEGMENT_SIZE - 1)).cloned()?;
        slot
    }

    /// Versions at the given heap positions (missing positions skipped).
    /// Consecutive positions in the same segment share one lock
    /// acquisition — index scans resolve hundreds of positions here, so
    /// this is the hot read path.
    pub fn versions_at(&self, positions: &[usize]) -> Vec<Arc<Version>> {
        let segs = self.segments.read();
        let mut out = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let si = positions[i] >> SEGMENT_SHIFT;
            let Some(seg) = segs.get(si) else {
                i += 1;
                continue;
            };
            let slots = seg.slots.read();
            while i < positions.len() && positions[i] >> SEGMENT_SHIFT == si {
                if let Some(Some(v)) = slots.get(positions[i] & (SEGMENT_SIZE - 1)) {
                    out.push(Arc::clone(v));
                }
                i += 1;
            }
        }
        out
    }

    /// All versions, in heap order. Full scans re-sort visible rows by
    /// row id for determinism.
    pub fn all_versions(&self) -> Vec<Arc<Version>> {
        let mut out = Vec::new();
        self.for_each_slot(|_, v| out.push(Arc::clone(v)));
        out
    }

    /// Number of versions in the heap (live + dead + in-flight; vacuumed
    /// slots excluded).
    pub fn version_count(&self) -> usize {
        let mut n = 0;
        self.for_each_slot(|_, _| n += 1);
        n
    }

    /// Candidate versions for an indexed range scan.
    pub fn index_scan(&self, column: usize, range: &KeyRange) -> Option<Vec<Arc<Version>>> {
        let idx = self.index_for(column)?;
        Some(self.versions_at(&idx.positions_in_range(range)))
    }

    /// Allocate the next committed row id. **Only call from the serial
    /// commit phase** — determinism across nodes depends on allocation
    /// order matching the block order.
    pub fn alloc_row_id(&self) -> RowId {
        RowId(self.next_row_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Reserve `n` consecutive row ids with one allocator bump, returning
    /// the first id of the range. **Only call from the serial commit
    /// phase** — like [`Table::alloc_row_id`], determinism across nodes
    /// depends on reservation order matching the block order. The commit
    /// gate reserves one range per transaction and hands ids out in op
    /// order, so the ids the parallel apply stage publishes are fixed
    /// before any worker runs.
    pub fn reserve_row_ids(&self, n: u64) -> RowId {
        RowId(self.next_row_id.fetch_add(n, Ordering::Relaxed))
    }

    /// Current row-id high-water mark (for persistence).
    pub fn row_id_watermark(&self) -> u64 {
        self.next_row_id.load(Ordering::Relaxed)
    }

    /// Force the row-id allocator (snapshot restore).
    pub fn set_row_id_watermark(&self, v: u64) {
        self.next_row_id.store(v, Ordering::Relaxed);
    }

    /// Count of live (committed, not deleted) rows — a consistency check
    /// helper for tests and checkpoint audits.
    pub fn live_row_count(&self) -> usize {
        let mut n = 0;
        self.for_each_slot(|_, v| {
            if v.is_live() {
                n += 1;
            }
        });
        n
    }

    /// Reclaim versions deleted at or before `horizon` and versions from
    /// aborted transactions by tombstoning their heap slot in place and
    /// dropping their index entries. Returns the number of versions
    /// reclaimed.
    ///
    /// This is the paper's enhanced vacuum (§7): it trades provenance
    /// history older than `horizon` for space. Because positions are
    /// stable (no compaction) it is safe to run concurrently with
    /// readers and appenders: a racing scan resolves a reclaimed
    /// position to an empty slot and skips it — correct for any
    /// snapshot above the horizon, and below the horizon the history is
    /// gone by definition.
    pub fn vacuum(&self, horizon: BlockHeight) -> usize {
        let segs: Vec<Arc<Segment>> = self.segments.read().clone();
        let indexes = self.indexes.read();
        let mut reclaimed = 0;
        for (si, seg) in segs.iter().enumerate() {
            let mut slots = seg.slots.write();
            for (off, slot) in slots.iter_mut().enumerate() {
                let dead = match slot {
                    Some(v) => {
                        let st = v.state();
                        st.aborted || st.deleter_block.is_some_and(|db| db <= horizon)
                    }
                    None => false,
                };
                if dead {
                    let v = slot.take().expect("checked Some above");
                    let pos = (si << SEGMENT_SHIFT) + off;
                    for idx in indexes.values() {
                        idx.remove(&v.data[idx.column], pos);
                    }
                    reclaimed += 1;
                }
            }
        }
        reclaimed
    }

    /// Look up live committed rows by primary-key value (single-column PK
    /// fast path used for uniqueness checks at commit).
    pub fn committed_pk_conflicts(&self, pk_value: &Value, exclude_tx: TxId) -> Vec<Arc<Version>> {
        let schema = self.schema.read();
        if schema.primary_key.len() != 1 {
            return Vec::new();
        }
        let col = schema.primary_key[0];
        drop(schema);
        let Some(idx) = self.index_for(col) else {
            return Vec::new();
        };
        self.versions_at(&idx.positions_eq(pk_value))
            .into_iter()
            .filter(|v| v.is_live() && v.xmin != exclude_tx)
            .collect()
    }
}

/// A sanity guard: tables are shared across executor threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Table>()
};

/// Convenience for building a table error.
pub fn unknown_table(name: &str) -> Error {
    Error::NotFound(format!("table {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::UNASSIGNED_ROW_ID;
    use bcrdb_common::schema::{Column, DataType};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        Table::new(schema)
    }

    #[test]
    fn pk_index_created_automatically() {
        let t = table();
        assert!(t.index_for(0).is_some());
        assert!(t.index_for(1).is_none());
    }

    #[test]
    fn append_and_index_scan() {
        let t = table();
        let (p0, v0) = t.append_version(
            TxId(1),
            vec![Value::Int(10), Value::Text("a".into())],
            UNASSIGNED_ROW_ID,
        );
        v0.commit_create(1, t.alloc_row_id());
        let (p1, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(20), Value::Text("b".into())],
            UNASSIGNED_ROW_ID,
        );
        v1.commit_create(1, t.alloc_row_id());
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(t.version_count(), 2);
        assert_eq!(t.live_row_count(), 2);

        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(10))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("a".into()));
    }

    #[test]
    fn secondary_index_backfills() {
        let t = table();
        let (_, v) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("x".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(1, t.alloc_row_id());
        t.add_index("idx_name", "name").unwrap();
        let hits = t
            .index_scan(1, &KeyRange::eq(Value::Text("x".into())))
            .unwrap();
        assert_eq!(hits.len(), 1);
        // Index registered in the schema too.
        assert_eq!(t.schema().indexes.len(), 1);
    }

    #[test]
    fn pk_conflict_detection() {
        let t = table();
        let (_, v) = t.append_version(
            TxId(1),
            vec![Value::Int(5), Value::Text("a".into())],
            UNASSIGNED_ROW_ID,
        );
        v.commit_create(1, t.alloc_row_id());
        let conflicts = t.committed_pk_conflicts(&Value::Int(5), TxId(2));
        assert_eq!(conflicts.len(), 1);
        // The inserting transaction itself is excluded.
        assert!(t.committed_pk_conflicts(&Value::Int(5), TxId(1)).is_empty());
        // Deleted rows do not conflict.
        v.add_pending_writer(TxId(3));
        v.commit_delete(TxId(3), 2);
        assert!(t.committed_pk_conflicts(&Value::Int(5), TxId(2)).is_empty());
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let t = table();
        // v1 committed at block 1, deleted at block 2.
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("old".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v1.commit_create(1, rid);
        v1.add_pending_writer(TxId(2));
        v1.commit_delete(TxId(2), 2);
        // Successor version committed at block 2.
        let (_, v2) =
            t.append_version(TxId(2), vec![Value::Int(1), Value::Text("new".into())], rid);
        v2.commit_create(2, rid);
        // An aborted insert.
        let (_, v3) = t.append_version(
            TxId(3),
            vec![Value::Int(9), Value::Text("zzz".into())],
            UNASSIGNED_ROW_ID,
        );
        v3.abort_create();

        assert_eq!(t.version_count(), 3);
        let reclaimed = t.vacuum(2);
        assert_eq!(reclaimed, 2);
        assert_eq!(t.version_count(), 1);
        assert_eq!(t.live_row_count(), 1);
        // Reclaimed entries left the indexes: scans still work.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(1))).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("new".into()));
    }

    #[test]
    fn reserve_row_ids_matches_per_op_allocation() {
        let t = table();
        // A batched reservation hands out the same ids the per-op
        // allocator would have, and leaves the allocator where per-op
        // allocation would leave it.
        let start = t.reserve_row_ids(3);
        assert_eq!(start, RowId(1));
        assert_eq!(t.alloc_row_id(), RowId(4));
        assert_eq!(t.row_id_watermark(), 5);
        // Zero-length reservations don't consume ids.
        let same = t.reserve_row_ids(0);
        assert_eq!(same, RowId(5));
        assert_eq!(t.alloc_row_id(), RowId(5));
    }

    #[test]
    fn append_restored_batch_spans_segments_and_indexes() {
        let t = table();
        let n = SEGMENT_SIZE + 10;
        let base = t.reserve_row_ids(n as u64).0;
        let batch: Vec<Version> = (0..n)
            .map(|i| {
                Version::restored(
                    TxId::INVALID,
                    vec![Value::Int(i as i64), Value::Text(format!("r{i}"))],
                    RowId(base + i as u64),
                    1,
                    None,
                    None,
                )
            })
            .collect();
        t.append_restored_batch(batch);
        assert_eq!(t.version_count(), n);
        assert_eq!(t.live_row_count(), n);
        // Positions past the first segment boundary landed in segment 1
        // and stayed indexed.
        let hits = t
            .index_scan(0, &KeyRange::eq(Value::Int(SEGMENT_SIZE as i64 + 3)))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].data[1],
            Value::Text(format!("r{}", SEGMENT_SIZE + 3))
        );
    }

    #[test]
    fn vacuum_preserves_history_after_horizon() {
        let t = table();
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("v1".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v1.commit_create(1, rid);
        v1.add_pending_writer(TxId(2));
        v1.commit_delete(TxId(2), 5);
        // Horizon 3 < deleter 5 → history kept.
        assert_eq!(t.vacuum(3), 0);
        assert_eq!(t.version_count(), 1);
    }

    #[test]
    fn heap_spans_segments_with_stable_positions() {
        let t = table();
        let n = SEGMENT_SIZE + 17;
        for i in 0..n {
            let (pos, v) = t.append_version(
                TxId(1),
                vec![Value::Int(i as i64), Value::Text("x".into())],
                UNASSIGNED_ROW_ID,
            );
            assert_eq!(pos, i, "positions are dense across segment boundaries");
            v.commit_create(1, t.alloc_row_id());
        }
        assert_eq!(t.version_count(), n);
        assert_eq!(t.live_row_count(), n);
        // Positions resolve across the segment boundary.
        let boundary = t.version_at(SEGMENT_SIZE).unwrap();
        assert_eq!(boundary.data[0], Value::Int(SEGMENT_SIZE as i64));
        assert!(t.version_at(n).is_none(), "past the tail");
        // Index scans reach rows in both segments.
        let hits = t.index_scan(0, &KeyRange::eq(Value::Int(3))).unwrap();
        assert_eq!(hits.len(), 1);
        let hits = t
            .index_scan(0, &KeyRange::eq(Value::Int(SEGMENT_SIZE as i64 + 5)))
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn vacuum_keeps_surviving_positions_stable() {
        let t = table();
        // pos 0: deleted at block 1 (reclaimable at horizon ≥ 1);
        // pos 1: live.
        let (p0, v0) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Text("dead".into())],
            UNASSIGNED_ROW_ID,
        );
        let rid = t.alloc_row_id();
        v0.commit_create(1, rid);
        v0.add_pending_writer(TxId(2));
        v0.commit_delete(TxId(2), 1);
        let (p1, v1) = t.append_version(
            TxId(2),
            vec![Value::Int(2), Value::Text("live".into())],
            UNASSIGNED_ROW_ID,
        );
        v1.commit_create(1, t.alloc_row_id());

        // A reader captured positions before the vacuum.
        let idx = t.index_for(0).unwrap();
        let pre_positions = idx.positions_in_range(&KeyRange::all());
        assert_eq!(pre_positions, vec![p0, p1]);

        assert_eq!(t.vacuum(1), 1);
        // The stale position list still resolves correctly: the reclaimed
        // slot reads empty, the survivor is unchanged.
        let resolved = t.versions_at(&pre_positions);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].data[1], Value::Text("live".into()));
        // New appends go to fresh slots — reclaimed positions never alias.
        let (p2, _) = t.append_version(
            TxId(3),
            vec![Value::Int(3), Value::Text("new".into())],
            UNASSIGNED_ROW_ID,
        );
        assert_eq!(p2, 2);
    }

    #[test]
    fn row_id_watermark_roundtrip() {
        let t = table();
        assert_eq!(t.alloc_row_id(), RowId(1));
        assert_eq!(t.alloc_row_id(), RowId(2));
        assert_eq!(t.row_id_watermark(), 3);
        t.set_row_id_watermark(100);
        assert_eq!(t.alloc_row_id(), RowId(100));
    }
}
