//! Disk-backed paged storage: per-table page files behind a
//! workspace-wide buffer pool.
//!
//! Each table owns one `<table>.pages` file of 8 KB slotted pages (see
//! [`crate::page`]) holding the *cold* segments of its version heap as
//! **segment chains** — linked runs of pages, one chain per spilled
//! segment. A shared [`PagedStore`] caches page images in a bounded
//! [buffer pool](#buffer-pool) and batches writes through a per-file
//! redo **journal** so in-place page writes can never tear state.
//!
//! # Buffer pool
//!
//! Frames are keyed `(file id, page number)` and evicted with a clock
//! (second-chance) sweep. The pool mutex — the field is named `latch`,
//! and `bcrdb-lint`'s lock-order graph pins it as **leaf-only** — is
//! never held across I/O or another lock: eviction *marks* dirty
//! victims and returns them to the caller, which performs the
//! write-back through the file's `disk` lock and then confirms with
//! [`PagedStore`]'s generation-checked finish step. A frame re-written
//! while its eviction was in flight simply stays resident.
//!
//! # Durability
//!
//! A write batch appends every page image to the journal, terminates it
//! with a commit marker, then writes the pages in place and truncates
//! the journal (with `fsync` between the steps when the store is
//! configured for power-loss durability, mirroring the block store's
//! `fsync` knob). On open the journal is replayed — only batches with a
//! valid commit marker apply; a torn tail is discarded — and the whole
//! file is scanned to rebuild the segment directory and free list:
//! for each segment the chain with the highest `(epoch, lsn)` wins and
//! every other readable page is free. Pages that fail their checksum
//! are free space, never data.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bcrdb_common::error::{Error, Result};
use parking_lot::Mutex;

use crate::page::{
    self, PageBuf, PageBytes, PageFileMeta, PageHeader, FREE_SEGMENT, META_PAGE_NO, NO_DELETER,
    NO_NEXT_PAGE, PAGE_SIZE,
};

/// Journal record tag: one page image follows.
const JOURNAL_PAGE: u8 = 1;
/// Journal record tag: commit marker ending a batch.
const JOURNAL_COMMIT: u8 = 2;

/// File-name suffix of a table's page file.
pub const PAGE_FILE_SUFFIX: &str = ".pages";
/// File-name suffix of a table's page-file journal.
pub const JOURNAL_SUFFIX: &str = ".pages.journal";

// ------------------------------------------------------------ PagerFile

/// One segment chain: its pages in `seq` order.
#[derive(Clone, Debug, Default)]
struct Chain {
    pages: Vec<u32>,
    /// Minimum deleter block over the chain's cells ([`NO_DELETER`] if
    /// none) — lets vacuum skip chains with nothing reclaimable.
    min_deleter: u64,
}

/// Mutable disk state of one page file, behind the `disk` lock.
struct Disk {
    file: File,
    journal: File,
    /// Allocation high-water mark: pages `1..next_page` exist on disk.
    next_page: u32,
    /// Reusable page numbers (freed by chain rewrites), smallest first.
    free: std::collections::BTreeSet<u32>,
    /// Segment id → chain, rebuilt by the open-time scan.
    chains: BTreeMap<u32, Chain>,
    /// Meta page as last written.
    meta: PageFileMeta,
}

/// One table's page file: raw page I/O, the journal, the segment-chain
/// directory and the free list. All mutable state lives behind the
/// single `disk` mutex; like the buffer-pool `latch`, it is a leaf lock
/// — no other lock is ever acquired while holding it.
pub struct PagerFile {
    /// Pool key component, unique per open file within the store.
    id: u32,
    table: String,
    path: PathBuf,
    journal_path: PathBuf,
    /// Epoch this process opened the file under; pages written this run
    /// carry it. Strictly larger than any epoch already on disk.
    epoch: u64,
    /// Recovery anchor: the state-snapshot height this file was
    /// restored against. Cells on pages from an *earlier* epoch are
    /// filtered against it (drop `creator > anchor`, clear
    /// `deleter > anchor`) because block replay regenerates that
    /// history.
    anchor: u64,
    disk: Mutex<Disk>,
}

impl std::fmt::Debug for PagerFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagerFile")
            .field("table", &self.table)
            .field("epoch", &self.epoch)
            .finish()
    }
}

fn io_err(what: &str, table: &str, e: std::io::Error) -> Error {
    Error::Io(format!("page file {table}: {what}: {e}"))
}

impl PagerFile {
    /// Open (or create) the page file for `table` under `dir`. Replays
    /// the journal, bumps the epoch, and scans the file to rebuild the
    /// segment directory and free list. `anchor` is the snapshot height
    /// recovery will replay from (0 for a fresh node).
    fn open(dir: &Path, id: u32, table: &str, anchor: u64, fsync: bool) -> Result<PagerFile> {
        let path = dir.join(format!("{table}{PAGE_FILE_SUFFIX}"));
        let journal_path = dir.join(format!("{table}{JOURNAL_SUFFIX}"));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", table, e))?;
        let mut journal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&journal_path)
            .map_err(|e| io_err("open journal", table, e))?;

        replay_journal(&mut file, &mut journal, table)?;

        let len = file.metadata().map_err(|e| io_err("stat", table, e))?.len();
        let fresh = len == 0;
        let old_meta = if fresh {
            PageFileMeta {
                checkpoint_height: 0,
                epoch: 0,
            }
        } else {
            page::read_meta(&*read_page_at(&mut file, META_PAGE_NO, table)?)?
        };
        let meta = PageFileMeta {
            checkpoint_height: old_meta.checkpoint_height,
            epoch: old_meta.epoch + 1,
        };

        let (chains, free, next_page) = scan_pages(&mut file, len, table)?;

        let pf = PagerFile {
            id,
            table: table.to_string(),
            path,
            journal_path,
            epoch: meta.epoch,
            anchor,
            disk: Mutex::new(Disk {
                file,
                journal,
                next_page,
                free,
                chains,
                meta,
            }),
        };
        // Stamp the bumped epoch (journaled like any page write).
        pf.apply_batch(&[(META_PAGE_NO, Arc::new(*page::meta_image(&meta)))], fsync)?;
        Ok(pf)
    }

    /// Pool key component.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Table this file belongs to.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The epoch this process writes pages under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The recovery anchor height (see [`PagerFile`] field docs).
    pub fn anchor(&self) -> u64 {
        self.anchor
    }

    /// Checkpoint height currently recorded in the meta page.
    pub fn checkpoint_height(&self) -> u64 {
        self.disk.lock().meta.checkpoint_height
    }

    /// The pages of `segment`'s chain, in order (`None` if the segment
    /// has never been spilled).
    pub fn chain(&self, segment: u32) -> Option<Vec<u32>> {
        self.disk
            .lock()
            .chains
            .get(&segment)
            .map(|c| c.pages.clone())
    }

    /// Segment ids that currently have a chain.
    pub fn chain_segments(&self) -> Vec<u32> {
        self.disk.lock().chains.keys().copied().collect()
    }

    /// Minimum deleter block over `segment`'s chain ([`NO_DELETER`]
    /// when nothing in it is deleted, `None` if no chain exists).
    pub fn chain_min_deleter(&self, segment: u32) -> Option<u64> {
        self.disk.lock().chains.get(&segment).map(|c| c.min_deleter)
    }

    /// Drop `segment`'s chain, returning the freed page numbers (the
    /// caller invalidates their pool frames). Used when a restored
    /// snapshot marks the segment resident — residency wins.
    pub fn drop_chain(&self, segment: u32) -> Vec<u32> {
        let mut d = self.disk.lock();
        let freed = d
            .chains
            .remove(&segment)
            .map(|c| c.pages)
            .unwrap_or_default();
        d.free.extend(freed.iter().copied());
        freed
    }

    /// Re-point `segment`'s chain at `n` pages: reuses the old chain's
    /// page numbers first, then the free list, then extends the file.
    /// Returns `(chain pages, surplus pages freed from the old chain)`.
    fn begin_chain(&self, segment: u32, n: usize, min_deleter: u64) -> (Vec<u32>, Vec<u32>) {
        let mut d = self.disk.lock();
        let old = d
            .chains
            .remove(&segment)
            .map(|c| c.pages)
            .unwrap_or_default();
        let mut pages: Vec<u32> = old.iter().copied().take(n).collect();
        let surplus: Vec<u32> = old.iter().copied().skip(n).collect();
        d.free.extend(surplus.iter().copied());
        while pages.len() < n {
            let no = match d.free.iter().next().copied() {
                Some(no) => {
                    d.free.remove(&no);
                    no
                }
                None => {
                    let no = d.next_page;
                    d.next_page += 1;
                    no
                }
            };
            pages.push(no);
        }
        d.chains.insert(
            segment,
            Chain {
                pages: pages.clone(),
                min_deleter,
            },
        );
        (pages, surplus)
    }

    /// Read one page from disk, verifying its checksum (the caller
    /// checks the pool first; a dirty pool frame is newer than disk).
    fn read_page_raw(&self, page_no: u32) -> Result<PageBuf> {
        let mut d = self.disk.lock();
        let buf = read_page_at(&mut d.file, page_no, &self.table)?;
        if page_no != META_PAGE_NO {
            let h = page::read_header(&buf)?;
            if h.page_no != page_no {
                return Err(Error::Codec(format!(
                    "page file {}: page {page_no} self-identifies as {}",
                    self.table, h.page_no
                )));
            }
        }
        Ok(buf)
    }

    /// Durably apply one batch of page writes: journal + commit marker,
    /// then in place, then truncate the journal. With `fsync` the
    /// journal and data are fsynced around the in-place writes, so the
    /// batch survives power loss; without it the batch survives process
    /// death only (matching the block store's contract).
    fn apply_batch(&self, batch: &[(u32, Arc<PageBytes>)], fsync: bool) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let t = &self.table;
        let mut d = self.disk.lock();
        let d = &mut *d;
        d.journal
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("journal seek", t, e))?;
        for (no, image) in batch {
            d.journal
                .write_all(&[JOURNAL_PAGE])
                .and_then(|()| d.journal.write_all(&no.to_be_bytes()))
                .and_then(|()| d.journal.write_all(&image[..]))
                .map_err(|e| io_err("journal append", t, e))?;
        }
        d.journal
            .write_all(&[JOURNAL_COMMIT])
            .and_then(|()| d.journal.write_all(&(batch.len() as u32).to_be_bytes()))
            .map_err(|e| io_err("journal commit", t, e))?;
        d.journal
            .flush()
            .map_err(|e| io_err("journal flush", t, e))?;
        if fsync {
            d.journal
                .sync_data()
                .map_err(|e| io_err("journal fsync", t, e))?;
        }
        for (no, image) in batch {
            d.file
                .seek(SeekFrom::Start(*no as u64 * PAGE_SIZE as u64))
                .and_then(|_| d.file.write_all(&image[..]))
                .map_err(|e| io_err("page write", t, e))?;
            if *no >= d.next_page {
                d.next_page = *no + 1;
            }
            if *no == META_PAGE_NO {
                if let Ok(m) = page::read_meta(image) {
                    d.meta = m;
                }
            }
        }
        d.file.flush().map_err(|e| io_err("page flush", t, e))?;
        if fsync {
            d.file.sync_data().map_err(|e| io_err("page fsync", t, e))?;
        }
        // The batch is in place: the journal's protection is spent.
        d.journal
            .set_len(0)
            .map_err(|e| io_err("journal truncate", t, e))?;
        Ok(())
    }

    /// Delete both files from disk (DROP TABLE).
    fn delete_files(&self) {
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_file(&self.journal_path);
    }
}

/// Read one raw page at `page_no`.
fn read_page_at(file: &mut File, page_no: u32, table: &str) -> Result<PageBuf> {
    let mut buf = page::blank_page();
    file.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
        .and_then(|_| file.read_exact(&mut buf[..]))
        .map_err(|e| io_err(&format!("read page {page_no}"), table, e))?;
    Ok(buf)
}

/// Replay committed journal batches onto `file`, then truncate the
/// journal. A torn tail — a record without a following valid commit
/// marker — is discarded, mirroring the block store's torn-tail
/// discipline.
fn replay_journal(file: &mut File, journal: &mut File, table: &str) -> Result<()> {
    let len = journal
        .metadata()
        .map_err(|e| io_err("journal stat", table, e))?
        .len();
    if len == 0 {
        return Ok(());
    }
    journal
        .seek(SeekFrom::Start(0))
        .map_err(|e| io_err("journal seek", table, e))?;
    let mut bytes = Vec::with_capacity(len as usize);
    journal
        .read_to_end(&mut bytes)
        .map_err(|e| io_err("journal read", table, e))?;

    let mut pending: Vec<(u32, PageBuf)> = Vec::new();
    let mut i = 0usize;
    'replay: while i < bytes.len() {
        match bytes[i] {
            JOURNAL_PAGE => {
                if bytes.len() - i < 1 + 4 + PAGE_SIZE {
                    break; // torn record
                }
                let no = u32::from_be_bytes(bytes[i + 1..i + 5].try_into().expect("4 bytes"));
                let mut image = page::blank_page();
                image.copy_from_slice(&bytes[i + 5..i + 5 + PAGE_SIZE]);
                // A record whose image fails its own checksum is torn.
                let valid = if no == META_PAGE_NO {
                    page::read_meta(&image).is_ok()
                } else {
                    page::read_header(&image)
                        .map(|h| h.page_no == no)
                        .unwrap_or(false)
                };
                if !valid {
                    break 'replay;
                }
                pending.push((no, image));
                i += 1 + 4 + PAGE_SIZE;
            }
            JOURNAL_COMMIT => {
                if bytes.len() - i < 5 {
                    break;
                }
                let count =
                    u32::from_be_bytes(bytes[i + 1..i + 5].try_into().expect("4 bytes")) as usize;
                if count != pending.len() {
                    break; // corrupt marker: discard the batch
                }
                for (no, image) in pending.drain(..) {
                    file.seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))
                        .and_then(|_| file.write_all(&image[..]))
                        .map_err(|e| io_err("journal replay write", table, e))?;
                }
                i += 5;
            }
            _ => break, // garbage: torn tail
        }
    }
    file.flush().map_err(|e| io_err("replay flush", table, e))?;
    journal
        .set_len(0)
        .map_err(|e| io_err("journal truncate", table, e))?;
    Ok(())
}

/// Scan every page of the file, picking for each segment the chain with
/// the highest `(epoch, lsn)` and classifying every other readable page
/// — and every page that fails its checksum — as free. A winning chain
/// must be contiguous (`seq` 0..n with matching `next_page` links);
/// otherwise the segment gets no chain and restore falls back to block
/// replay.
#[allow(clippy::type_complexity)]
fn scan_pages(
    file: &mut File,
    len: u64,
    table: &str,
) -> Result<(BTreeMap<u32, Chain>, std::collections::BTreeSet<u32>, u32)> {
    let total = (len / PAGE_SIZE as u64) as u32;
    let next_page = total.max(1);
    // seg → (epoch, lsn) → seq → (page_no, next, min_deleter)
    let mut candidates: BTreeMap<u32, BTreeMap<(u64, u64), BTreeMap<u16, (u32, u32, u64)>>> =
        BTreeMap::new();
    let mut used: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for no in 1..total {
        let buf = read_page_at(file, no, table)?;
        let Ok(h) = page::read_header(&buf) else {
            continue; // torn / never-written: free
        };
        if h.segment_id == FREE_SEGMENT || h.page_no != no {
            continue;
        }
        candidates
            .entry(h.segment_id)
            .or_default()
            .entry((h.epoch, h.lsn))
            .or_default()
            .insert(h.seq, (no, h.next_page, h.min_deleter));
    }
    let mut chains = BTreeMap::new();
    for (seg, by_stamp) in candidates {
        let Some((_, members)) = by_stamp.into_iter().next_back() else {
            continue;
        };
        // Contiguity + link check.
        let n = members.len() as u16;
        let mut pages = Vec::with_capacity(n as usize);
        let mut ok = true;
        for seq in 0..n {
            match members.get(&seq) {
                Some(&(no, next, _)) => {
                    let want_next = members
                        .get(&(seq + 1))
                        .map(|&(no, _, _)| no)
                        .unwrap_or(NO_NEXT_PAGE);
                    if next != want_next {
                        ok = false;
                        break;
                    }
                    pages.push(no);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            let min_deleter = members.get(&0).map(|&(_, _, md)| md).unwrap_or(NO_DELETER);
            used.extend(pages.iter().copied());
            chains.insert(seg, Chain { pages, min_deleter });
        }
    }
    let free = (1..total).filter(|no| !used.contains(no)).collect();
    Ok((chains, free, next_page))
}

// ----------------------------------------------------------- BufferPool

/// One resident page image.
struct Frame {
    key: (u32, u32),
    file: Arc<PagerFile>,
    image: Arc<PageBytes>,
    dirty: bool,
    pinned: u32,
    referenced: bool,
    /// Bumped on every write; an in-flight eviction or flush completes
    /// only if the generation is unchanged.
    gen: u64,
    /// A write-back for this frame is in flight; not evictable.
    evicting: bool,
}

/// Buffer-pool state behind the leaf-only `latch`.
struct Pool {
    frames: Vec<Frame>,
    map: BTreeMap<(u32, u32), usize>,
    hand: usize,
    capacity: usize,
}

/// One file's grouped write-back batch: the file plus its
/// `(page_no, image)` pairs, journaled and applied as one unit.
type FileBatch = (Arc<PagerFile>, Vec<(u32, Arc<PageBytes>)>);

/// A dirty frame handed back by the pool for write-back outside the
/// latch.
struct WriteBack {
    file: Arc<PagerFile>,
    page_no: u32,
    image: Arc<PageBytes>,
    gen: u64,
    key: (u32, u32),
}

impl Pool {
    fn remove(&mut self, idx: usize) {
        let last = self.frames.len() - 1;
        self.map.remove(&self.frames[idx].key);
        if idx != last {
            let moved = self.frames[last].key;
            self.map.insert(moved, idx);
        }
        self.frames.swap_remove(idx);
        if self.frames.is_empty() {
            self.hand = 0;
        } else {
            self.hand %= self.frames.len();
        }
    }

    /// Clock sweep: evict clean victims in place, mark dirty victims
    /// evicting and return them for write-back. Stops early if every
    /// frame is pinned or already evicting.
    fn evict_to_capacity(&mut self, evicted: &AtomicU64) -> Vec<WriteBack> {
        let mut out = Vec::new();
        let mut scanned = 0usize;
        while self.frames.len() > self.capacity && scanned < 2 * self.frames.len() + 2 {
            if self.frames.is_empty() {
                break;
            }
            let idx = self.hand % self.frames.len();
            let f = &mut self.frames[idx];
            if f.pinned > 0 || f.evicting {
                self.hand = (idx + 1) % self.frames.len();
                scanned += 1;
                continue;
            }
            if f.referenced {
                f.referenced = false;
                self.hand = (idx + 1) % self.frames.len();
                scanned += 1;
                continue;
            }
            if f.dirty {
                f.evicting = true;
                out.push(WriteBack {
                    file: Arc::clone(&f.file),
                    page_no: f.key.1,
                    image: Arc::clone(&f.image),
                    gen: f.gen,
                    key: f.key,
                });
                self.hand = (idx + 1) % self.frames.len();
            } else {
                evicted.fetch_add(1, Ordering::Relaxed);
                self.remove(idx);
            }
            scanned += 1;
        }
        out
    }
}

// ----------------------------------------------------------- PagedStore

/// The workspace-wide paged store: a directory of per-table page files
/// and the shared buffer pool. One instance per node, shared by every
/// table of its catalog.
pub struct PagedStore {
    dir: PathBuf,
    fsync: bool,
    /// Buffer pool (leaf lock; see module docs).
    latch: Mutex<Pool>,
    /// Table name → open page file.
    files: Mutex<BTreeMap<String, Arc<PagerFile>>>,
    next_file_id: AtomicU64,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    pages_evicted: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStore")
            .field("dir", &self.dir)
            .field("frames", &self.latch.lock().capacity)
            .finish()
    }
}

impl PagedStore {
    /// Open a store rooted at `dir` (created if missing) with a buffer
    /// pool of `frames` pages. With `fsync`, every write batch is
    /// fsynced through the journal (power-loss durability).
    pub fn open(dir: impl AsRef<Path>, frames: usize, fsync: bool) -> Result<Arc<PagedStore>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Io(format!("create page dir {}: {e}", dir.display())))?;
        Ok(Arc::new(PagedStore {
            dir,
            fsync,
            latch: Mutex::new(Pool {
                frames: Vec::new(),
                map: BTreeMap::new(),
                hand: 0,
                capacity: frames.max(1),
            }),
            files: Mutex::new(BTreeMap::new()),
            next_file_id: AtomicU64::new(1),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            pages_evicted: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
        }))
    }

    /// Buffer-pool capacity in frames.
    pub fn pool_frames(&self) -> usize {
        self.latch.lock().capacity
    }

    /// Open (or return the already-open) page file for `table`.
    /// `anchor` is the snapshot height the file is being restored
    /// against (ignored when the file is already open).
    pub fn open_file(&self, table: &str, anchor: u64) -> Result<Arc<PagerFile>> {
        let mut files = self.files.lock();
        if let Some(f) = files.get(table) {
            return Ok(Arc::clone(f));
        }
        let id = self.next_file_id.fetch_add(1, Ordering::Relaxed) as u32;
        let f = Arc::new(PagerFile::open(&self.dir, id, table, anchor, self.fsync)?);
        files.insert(table.to_string(), Arc::clone(&f));
        Ok(f)
    }

    /// Replace `table`'s page file with a fresh, empty one (fast-sync
    /// install: the incoming state supersedes everything on disk). The
    /// old [`PagerFile`] handle — possibly still referenced by a
    /// superseded table — keeps its directory but its pages are gone.
    pub fn reset_file(&self, table: &str) -> Result<Arc<PagerFile>> {
        let mut files = self.files.lock();
        if let Some(old) = files.remove(table) {
            self.invalidate_file(old.id());
            old.delete_files();
        }
        let id = self.next_file_id.fetch_add(1, Ordering::Relaxed) as u32;
        let f = Arc::new(PagerFile::open(&self.dir, id, table, 0, self.fsync)?);
        files.insert(table.to_string(), Arc::clone(&f));
        Ok(f)
    }

    /// Close and delete `table`'s page file (DROP TABLE).
    pub fn drop_file(&self, table: &str) {
        if let Some(f) = self.files.lock().remove(table) {
            self.invalidate_file(f.id());
            f.delete_files();
        }
    }

    /// Delete every page file in the directory and forget all open
    /// handles — the restore-from-genesis fallback after an integrity
    /// failure.
    pub fn wipe(&self) -> Result<()> {
        let mut files = self.files.lock();
        for (_, f) in std::mem::take(&mut *files) {
            f.delete_files();
        }
        let mut pool = self.latch.lock();
        pool.frames.clear();
        pool.map.clear();
        pool.hand = 0;
        drop(pool);
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| Error::Io(format!("read page dir {}: {e}", self.dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(PAGE_FILE_SUFFIX) || name.ends_with(JOURNAL_SUFFIX) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    // ------------------------------------------------- page-level I/O

    /// Read a page, pool-first. A dirty pool frame is always newer than
    /// disk, so the pool **must** be consulted before the file.
    pub fn read_page(&self, file: &Arc<PagerFile>, page_no: u32) -> Result<Arc<PageBytes>> {
        let key = (file.id(), page_no);
        {
            let mut pool = self.latch.lock();
            if let Some(&idx) = pool.map.get(&key) {
                let f = &mut pool.frames[idx];
                f.referenced = true;
                let image = Arc::clone(&f.image);
                drop(pool);
                self.pool_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(image);
            }
        }
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
        let image: Arc<PageBytes> = Arc::new(*file.read_page_raw(page_no)?);
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        self.insert_frame(file, page_no, Arc::clone(&image), false)?;
        Ok(image)
    }

    /// Write a page through the pool (dirty; write-back is deferred to
    /// eviction, the post-commit group sync or a checkpoint).
    pub fn write_page(&self, file: &Arc<PagerFile>, page_no: u32, image: PageBuf) -> Result<()> {
        self.insert_frame(file, page_no, Arc::new(*image), true)
    }

    /// Pin a resident page (evictions skip it until unpinned).
    pub fn pin(&self, file: &Arc<PagerFile>, page_no: u32) {
        let mut pool = self.latch.lock();
        if let Some(&idx) = pool.map.get(&(file.id(), page_no)) {
            pool.frames[idx].pinned += 1;
        }
    }

    /// Release one pin.
    pub fn unpin(&self, file: &Arc<PagerFile>, page_no: u32) {
        let mut pool = self.latch.lock();
        if let Some(&idx) = pool.map.get(&(file.id(), page_no)) {
            let f = &mut pool.frames[idx];
            f.pinned = f.pinned.saturating_sub(1);
        }
    }

    /// Insert/overwrite a frame, then evict down to capacity. Dirty
    /// victims are written back outside the latch and confirmed with a
    /// generation check.
    fn insert_frame(
        &self,
        file: &Arc<PagerFile>,
        page_no: u32,
        image: Arc<PageBytes>,
        dirty: bool,
    ) -> Result<()> {
        let key = (file.id(), page_no);
        let victims = {
            let mut pool = self.latch.lock();
            if let Some(&idx) = pool.map.get(&key) {
                let f = &mut pool.frames[idx];
                f.image = image;
                f.dirty |= dirty;
                f.referenced = true;
                f.gen += 1;
            } else {
                let idx = pool.frames.len();
                pool.frames.push(Frame {
                    key,
                    file: Arc::clone(file),
                    image,
                    dirty,
                    pinned: 0,
                    referenced: true,
                    gen: 1,
                    evicting: false,
                });
                pool.map.insert(key, idx);
            }
            pool.evict_to_capacity(&self.pages_evicted)
        };
        self.write_back(victims, true)
    }

    /// Write back marked frames (grouped per file into one journaled
    /// batch each), then confirm: `remove` drops clean-written frames
    /// from the pool (eviction); otherwise they are merely marked clean
    /// (flush). A frame re-written concurrently (generation moved) is
    /// left dirty and resident either way.
    fn write_back(&self, victims: Vec<WriteBack>, remove: bool) -> Result<()> {
        if victims.is_empty() {
            return Ok(());
        }
        let mut by_file: BTreeMap<u32, FileBatch> = BTreeMap::new();
        for wb in &victims {
            by_file
                .entry(wb.file.id())
                .or_insert_with(|| (Arc::clone(&wb.file), Vec::new()))
                .1
                .push((wb.page_no, Arc::clone(&wb.image)));
        }
        let mut result = Ok(());
        for (_, (file, batch)) in by_file {
            let n = batch.len() as u64;
            match file.apply_batch(&batch, self.fsync) {
                Ok(()) => {
                    self.pages_written.fetch_add(n, Ordering::Relaxed);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        let written_ok = result.is_ok();
        let mut pool = self.latch.lock();
        for wb in victims {
            let Some(&idx) = pool.map.get(&wb.key) else {
                continue;
            };
            let f = &mut pool.frames[idx];
            if f.gen != wb.gen || !written_ok {
                // Re-dirtied while in flight (or the write failed):
                // keep it resident and dirty for the next pass.
                f.evicting = false;
                continue;
            }
            if remove {
                self.pages_evicted.fetch_add(1, Ordering::Relaxed);
                pool.remove(idx);
            } else {
                f.dirty = false;
                f.evicting = false;
            }
        }
        result
    }

    /// Drop every pool frame belonging to `file_id` (chain freed or
    /// file reset); dirty contents are discarded deliberately.
    fn invalidate_file(&self, file_id: u32) {
        let mut pool = self.latch.lock();
        let idxs: Vec<usize> = pool
            .map
            .iter()
            .filter(|((fid, _), _)| *fid == file_id)
            .map(|(_, &idx)| idx)
            .collect();
        let mut idxs = idxs;
        idxs.sort_unstable_by(|a, b| b.cmp(a));
        for idx in idxs {
            pool.remove(idx);
        }
    }

    // ---------------------------------------------- chains & flushing

    /// Atomically (re)write `segment`'s chain from filled page
    /// builders: allocates page numbers (reusing the old chain first),
    /// links and seals the pages, writes them through the pool, and
    /// overwrites any surplus old pages with free images.
    pub fn commit_chain(
        &self,
        file: &Arc<PagerFile>,
        segment: u32,
        builders: Vec<page::PageBuilder>,
        lsn: u64,
        min_deleter: u64,
    ) -> Result<()> {
        let n = builders.len();
        let (pages, surplus) = file.begin_chain(segment, n, min_deleter);
        for (i, b) in builders.into_iter().enumerate() {
            let header = PageHeader {
                page_no: pages[i],
                lsn,
                epoch: file.epoch(),
                segment_id: segment,
                next_page: pages.get(i + 1).copied().unwrap_or(NO_NEXT_PAGE),
                seq: i as u16,
                slot_count: 0, // filled by the builder
                min_deleter: if i == 0 { min_deleter } else { NO_DELETER },
            };
            self.write_page(file, pages[i], b.finish(header))?;
        }
        for no in surplus {
            self.write_page(file, no, page::free_image(no, file.epoch()))?;
        }
        Ok(())
    }

    /// Read `segment`'s whole chain through the pool. `None` if the
    /// segment has no chain.
    pub fn read_chain(
        &self,
        file: &Arc<PagerFile>,
        segment: u32,
    ) -> Result<Option<Vec<Arc<PageBytes>>>> {
        let Some(pages) = file.chain(segment) else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(pages.len());
        for no in &pages {
            self.pin(file, *no);
        }
        let mut result = Ok(());
        for no in &pages {
            match self.read_page(file, *no) {
                Ok(image) => out.push(image),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        for no in &pages {
            self.unpin(file, *no);
        }
        result.map(|()| Some(out))
    }

    /// Group write-back: flush every dirty frame (one journaled batch
    /// per file). Hooked into the post-commit stage next to the block
    /// store's group fsync.
    pub fn sync(&self) -> Result<()> {
        let victims = {
            let mut pool = self.latch.lock();
            let mut out = Vec::new();
            for f in pool.frames.iter_mut() {
                if f.dirty && !f.evicting {
                    f.evicting = true;
                    out.push(WriteBack {
                        file: Arc::clone(&f.file),
                        page_no: f.key.1,
                        image: Arc::clone(&f.image),
                        gen: f.gen,
                        key: f.key,
                    });
                }
            }
            out
        };
        self.write_back(victims, false)
    }

    /// Checkpoint every open file at `height`: flush all dirty pages,
    /// then stamp the meta pages. After this returns, the files on disk
    /// are self-consistent with the state snapshot at `height`.
    pub fn checkpoint(&self, height: u64) -> Result<()> {
        self.sync()?;
        let files: Vec<Arc<PagerFile>> = self.files.lock().values().cloned().collect();
        for f in files {
            let meta = PageFileMeta {
                checkpoint_height: height,
                epoch: f.epoch(),
            };
            f.apply_batch(
                &[(META_PAGE_NO, Arc::new(*page::meta_image(&meta)))],
                self.fsync,
            )?;
        }
        Ok(())
    }

    // -------------------------------------------------------- metrics

    /// Cumulative pages read from disk (pool misses that hit the file).
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Cumulative pages written to disk (journaled batch writes).
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Cumulative frames evicted from the pool.
    pub fn pages_evicted(&self) -> u64 {
        self.pages_evicted.load(Ordering::Relaxed)
    }

    /// Pool hit rate over the store's lifetime (1.0 when no lookups).
    pub fn pool_hit_rate(&self) -> f64 {
        let hits = self.pool_hits.load(Ordering::Relaxed) as f64;
        let misses = self.pool_misses.load(Ordering::Relaxed) as f64;
        if hits + misses == 0.0 {
            1.0
        } else {
            hits / (hits + misses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageBuilder;
    use crate::version::VersionState;
    use bcrdb_common::ids::{RowId, TxId};
    use bcrdb_common::value::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bcrdb-pager-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn committed_state(row_id: u64) -> VersionState {
        VersionState {
            creator_block: Some(1),
            deleter_block: None,
            xmax_committed: None,
            xmax_pending: Vec::new(),
            aborted: false,
            row_id: RowId(row_id),
        }
    }

    fn one_cell_builder(slot: u16, row_id: u64) -> PageBuilder {
        let mut b = PageBuilder::new();
        let cell = page::encode_cell(
            slot,
            TxId(1),
            &committed_state(row_id),
            &vec![Value::Int(row_id as i64)],
        );
        assert!(b.try_add(&cell));
        b
    }

    #[test]
    fn chain_roundtrip_through_pool_and_disk() {
        let dir = temp_dir("chain");
        let store = PagedStore::open(&dir, 4, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        store
            .commit_chain(
                &file,
                3,
                vec![one_cell_builder(0, 10), one_cell_builder(1, 11)],
                5,
                NO_DELETER,
            )
            .unwrap();
        let pages = store.read_chain(&file, 3).unwrap().unwrap();
        assert_eq!(pages.len(), 2);
        let cells = page::cells(&pages[0]).unwrap();
        assert_eq!(page::decode_cell(cells[0]).unwrap().row_id, RowId(10));

        // Survives flush + reopen (fresh store, fresh pool).
        store.sync().unwrap();
        store.checkpoint(7).unwrap();
        drop((file, store));
        let store2 = PagedStore::open(&dir, 4, false).unwrap();
        let file2 = store2.open_file("t", 0).unwrap();
        assert_eq!(file2.checkpoint_height(), 7);
        let pages = store2.read_chain(&file2, 3).unwrap().unwrap();
        assert_eq!(pages.len(), 2);
        let cells = page::cells(&pages[1]).unwrap();
        assert_eq!(page::decode_cell(cells[0]).unwrap().row_id, RowId(11));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_clock_ordered_and_writes_back() {
        let dir = temp_dir("evict");
        let store = PagedStore::open(&dir, 2, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        // Three single-page chains: pool holds 2 frames, so writing the
        // third evicts the least-recently-used dirty frame — which must
        // still read back correctly (write-back, then re-read).
        for seg in 0..3u32 {
            store
                .commit_chain(
                    &file,
                    seg,
                    vec![one_cell_builder(0, 100 + seg as u64)],
                    1,
                    NO_DELETER,
                )
                .unwrap();
        }
        assert!(store.pages_evicted() >= 1, "pool over capacity must evict");
        assert!(store.pages_written() >= 1, "dirty eviction writes back");
        for seg in 0..3u32 {
            let pages = store.read_chain(&file, seg).unwrap().unwrap();
            let cells = page::cells(&pages[0]).unwrap();
            assert_eq!(
                page::decode_cell(cells[0]).unwrap().row_id,
                RowId(100 + seg as u64)
            );
        }
        // An immediate re-read of the last page is a guaranteed hit.
        let last = file.chain(2).unwrap()[0];
        store.read_page(&file, last).unwrap();
        store.read_page(&file, last).unwrap();
        assert!(store.pool_hit_rate() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let dir = temp_dir("pin");
        let store = PagedStore::open(&dir, 2, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        for seg in 0..2u32 {
            store
                .commit_chain(
                    &file,
                    seg,
                    vec![one_cell_builder(0, seg as u64)],
                    1,
                    NO_DELETER,
                )
                .unwrap();
        }
        store.sync().unwrap();
        let p0 = file.chain(0).unwrap()[0];
        store.pin(&file, p0);
        let before = store.pages_evicted();
        // Push several more pages through a 2-frame pool.
        for seg in 2..6u32 {
            store
                .commit_chain(
                    &file,
                    seg,
                    vec![one_cell_builder(0, seg as u64)],
                    2,
                    NO_DELETER,
                )
                .unwrap();
        }
        assert!(store.pages_evicted() > before);
        // The pinned page is still resident: reading it is a pool hit.
        let hits = store.pool_hits.load(Ordering::Relaxed);
        store.read_page(&file, p0).unwrap();
        assert_eq!(store.pool_hits.load(Ordering::Relaxed), hits + 1);
        store.unpin(&file, p0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chain_rewrite_frees_surplus_pages_for_reuse() {
        let dir = temp_dir("freelist");
        let store = PagedStore::open(&dir, 8, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        store
            .commit_chain(
                &file,
                0,
                vec![
                    one_cell_builder(0, 1),
                    one_cell_builder(1, 2),
                    one_cell_builder(2, 3),
                ],
                1,
                NO_DELETER,
            )
            .unwrap();
        let old = file.chain(0).unwrap();
        assert_eq!(old.len(), 3);
        // Shrink to one page: two pages return to the free list…
        store
            .commit_chain(&file, 0, vec![one_cell_builder(0, 9)], 2, NO_DELETER)
            .unwrap();
        assert_eq!(file.chain(0).unwrap(), vec![old[0]]);
        // …and a new chain reuses them instead of growing the file.
        store
            .commit_chain(
                &file,
                1,
                vec![one_cell_builder(0, 20), one_cell_builder(1, 21)],
                3,
                NO_DELETER,
            )
            .unwrap();
        let reused = file.chain(1).unwrap();
        assert!(reused.iter().all(|p| old.contains(p)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_discarded_and_committed_batch_replayed() {
        let dir = temp_dir("journal");
        {
            let store = PagedStore::open(&dir, 4, false).unwrap();
            let file = store.open_file("t", 0).unwrap();
            store
                .commit_chain(&file, 0, vec![one_cell_builder(0, 7)], 1, NO_DELETER)
                .unwrap();
            store.sync().unwrap();
        }
        // Hand-craft a journal: one committed batch (a valid rewrite of
        // the chain page) followed by a torn record.
        let store = PagedStore::open(&dir, 4, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        let page_no = file.chain(0).unwrap()[0];
        let image = store.read_page(&file, page_no).unwrap();
        drop((file, store));
        let jpath = dir.join(format!("t{JOURNAL_SUFFIX}"));
        let mut j = Vec::new();
        j.push(JOURNAL_PAGE);
        j.extend_from_slice(&page_no.to_be_bytes());
        j.extend_from_slice(&image[..]);
        j.push(JOURNAL_COMMIT);
        j.extend_from_slice(&1u32.to_be_bytes());
        // Torn tail: a page record with a truncated image.
        j.push(JOURNAL_PAGE);
        j.extend_from_slice(&page_no.to_be_bytes());
        j.extend_from_slice(&image[..100]);
        std::fs::write(&jpath, &j).unwrap();

        let store = PagedStore::open(&dir, 4, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        // Journal replay applied the committed batch, discarded the torn
        // tail, truncated the journal, and the chain still reads.
        assert_eq!(std::fs::metadata(&jpath).unwrap().len(), 0);
        let pages = store.read_chain(&file, 0).unwrap().unwrap();
        let cells = page::cells(&pages[0]).unwrap();
        assert_eq!(page::decode_cell(cells[0]).unwrap().row_id, RowId(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_prefers_highest_epoch_chain_and_frees_stale_pages() {
        let dir = temp_dir("scan");
        {
            let store = PagedStore::open(&dir, 4, false).unwrap();
            let file = store.open_file("t", 0).unwrap();
            store
                .commit_chain(&file, 0, vec![one_cell_builder(0, 1)], 10, NO_DELETER)
                .unwrap();
            store.sync().unwrap();
        }
        {
            // Second epoch rewrites the chain (reusing the page) with new
            // content at a *lower* lsn — epoch must dominate lsn.
            let store = PagedStore::open(&dir, 4, false).unwrap();
            let file = store.open_file("t", 0).unwrap();
            assert!(file.epoch() > 1);
            store
                .commit_chain(&file, 0, vec![one_cell_builder(0, 2)], 3, NO_DELETER)
                .unwrap();
            store.sync().unwrap();
        }
        let store = PagedStore::open(&dir, 4, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        let pages = store.read_chain(&file, 0).unwrap().unwrap();
        let cells = page::cells(&pages[0]).unwrap();
        assert_eq!(page::decode_cell(cells[0]).unwrap().row_id, RowId(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_write_back_marks_clean_without_evicting() {
        let dir = temp_dir("flush");
        let store = PagedStore::open(&dir, 8, false).unwrap();
        let file = store.open_file("t", 0).unwrap();
        store
            .commit_chain(&file, 0, vec![one_cell_builder(0, 5)], 1, NO_DELETER)
            .unwrap();
        let before = store.pages_written();
        store.sync().unwrap();
        assert!(store.pages_written() > before, "sync flushes dirty frames");
        // A second sync writes nothing: the frame is clean but resident.
        let after = store.pages_written();
        store.sync().unwrap();
        assert_eq!(store.pages_written(), after);
        let hits = store.pool_hits.load(Ordering::Relaxed);
        store.read_page(&file, file.chain(0).unwrap()[0]).unwrap();
        assert_eq!(store.pool_hits.load(Ordering::Relaxed), hits + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
