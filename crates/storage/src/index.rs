//! B-tree secondary indexes.
//!
//! An index maps a column value to the heap positions of *all* versions
//! carrying that value (live, dead and in-flight alike); visibility is
//! resolved by the caller via [`crate::snapshot::classify`]. This mirrors
//! PostgreSQL, where every update inserts a new index entry and scans
//! filter by tuple visibility (§4.1 of the paper).
//!
//! The paper routes all predicate reads through indexes in the
//! execute-order-in-parallel flow (§4.3); [`KeyRange`] is both the scan
//! argument here and the *predicate lock* granularity used by the SSI layer.

use std::collections::BTreeMap;
use std::ops::Bound;

use bcrdb_common::value::Value;
use parking_lot::RwLock;

/// An inclusive/exclusive/unbounded key interval over one column.
///
/// Shared between index scans and SSI predicate locks so that "the set of
/// rows this transaction read" and "the set of rows a writer changed" are
/// compared in the same language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRange {
    /// Lower bound.
    pub low: Bound<Value>,
    /// Upper bound.
    pub high: Bound<Value>,
}

impl KeyRange {
    /// The full range (a whole-column predicate lock).
    pub fn all() -> KeyRange {
        KeyRange {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
        }
    }

    /// Exact-match range.
    pub fn eq(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Included(v.clone()),
            high: Bound::Included(v),
        }
    }

    /// `[low, high]` inclusive range (for BETWEEN).
    pub fn between(low: Value, high: Value) -> KeyRange {
        KeyRange {
            low: Bound::Included(low),
            high: Bound::Included(high),
        }
    }

    /// `> v` or `>= v` range.
    pub fn greater(v: Value, inclusive: bool) -> KeyRange {
        KeyRange {
            low: if inclusive {
                Bound::Included(v)
            } else {
                Bound::Excluded(v)
            },
            high: Bound::Unbounded,
        }
    }

    /// `< v` or `<= v` range.
    pub fn less(v: Value, inclusive: bool) -> KeyRange {
        KeyRange {
            low: Bound::Unbounded,
            high: if inclusive {
                Bound::Included(v)
            } else {
                Bound::Excluded(v)
            },
        }
    }

    /// Does the range contain `v`?
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.low {
            Bound::Unbounded => true,
            Bound::Included(l) => v.cmp_total(l) != std::cmp::Ordering::Less,
            Bound::Excluded(l) => v.cmp_total(l) == std::cmp::Ordering::Greater,
        };
        let hi_ok = match &self.high {
            Bound::Unbounded => true,
            Bound::Included(h) => v.cmp_total(h) != std::cmp::Ordering::Greater,
            Bound::Excluded(h) => v.cmp_total(h) == std::cmp::Ordering::Less,
        };
        lo_ok && hi_ok
    }

    /// Do two ranges overlap? (Used to merge predicate locks.)
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        // r1.low <= r2.high && r2.low <= r1.high, honoring bound kinds.
        fn low_leq_high(low: &Bound<Value>, high: &Bound<Value>) -> bool {
            match (low, high) {
                (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
                (Bound::Included(l), Bound::Included(h)) => {
                    l.cmp_total(h) != std::cmp::Ordering::Greater
                }
                (Bound::Included(l), Bound::Excluded(h))
                | (Bound::Excluded(l), Bound::Included(h))
                | (Bound::Excluded(l), Bound::Excluded(h)) => {
                    l.cmp_total(h) == std::cmp::Ordering::Less
                }
            }
        }
        low_leq_high(&self.low, &other.high) && low_leq_high(&other.low, &self.high)
    }
}

/// A concurrent B-tree index from column value to heap positions.
pub struct BTreeIndex {
    /// Indexed column ordinal.
    pub column: usize,
    /// Index name (for catalog display).
    pub name: String,
    map: RwLock<BTreeMap<Value, Vec<usize>>>,
}

impl BTreeIndex {
    /// Empty index over `column`.
    pub fn new(name: impl Into<String>, column: usize) -> BTreeIndex {
        BTreeIndex {
            column,
            name: name.into(),
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Register a heap position under `key`.
    pub fn insert(&self, key: Value, position: usize) {
        self.map.write().entry(key).or_default().push(position);
    }

    /// Heap positions whose key falls in `range`, in key order. Positions
    /// under the same key keep insertion order; the caller re-sorts visible
    /// results by row id for cross-node determinism.
    pub fn positions_in_range(&self, range: &KeyRange) -> Vec<usize> {
        let map = self.map.read();
        map.range((range.low.clone(), range.high.clone()))
            .flat_map(|(_, positions)| positions.iter().copied())
            .collect()
    }

    /// Heap positions with exactly `key`.
    pub fn positions_eq(&self, key: &Value) -> Vec<usize> {
        self.map.read().get(key).cloned().unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.read().len()
    }

    /// Total number of position entries.
    pub fn entry_count(&self) -> usize {
        self.map.read().values().map(Vec::len).sum()
    }

    /// Drop one `(key, position)` entry. Position-targeted removal is what
    /// lets vacuum prune reclaimed heap slots without clearing and
    /// rebuilding the whole index (a rebuild would race concurrent
    /// appends into the tail segment and could double-register them).
    pub fn remove(&self, key: &Value, position: usize) {
        let mut map = self.map.write();
        if let Some(positions) = map.get_mut(key) {
            if let Some(i) = positions.iter().position(|p| *p == position) {
                positions.remove(i);
            }
            if positions.is_empty() {
                map.remove(key);
            }
        }
    }

    /// Drop all entries.
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains() {
        let r = KeyRange::between(Value::Int(2), Value::Int(5));
        assert!(!r.contains(&Value::Int(1)));
        assert!(r.contains(&Value::Int(2)));
        assert!(r.contains(&Value::Int(5)));
        assert!(!r.contains(&Value::Int(6)));

        let r = KeyRange::greater(Value::Int(3), false);
        assert!(!r.contains(&Value::Int(3)));
        assert!(r.contains(&Value::Int(4)));

        let r = KeyRange::less(Value::Int(3), true);
        assert!(r.contains(&Value::Int(3)));
        assert!(!r.contains(&Value::Int(4)));

        assert!(KeyRange::all().contains(&Value::Text("anything".into())));
    }

    #[test]
    fn range_overlap() {
        let a = KeyRange::between(Value::Int(1), Value::Int(5));
        let b = KeyRange::between(Value::Int(5), Value::Int(9));
        let c = KeyRange::between(Value::Int(6), Value::Int(9));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(KeyRange::all().overlaps(&a));
        // Excluded boundaries do not touch.
        let d = KeyRange::greater(Value::Int(5), false);
        assert!(!a.overlaps(&d));
        let e = KeyRange::greater(Value::Int(5), true);
        assert!(a.overlaps(&e));
        // Point ranges.
        assert!(KeyRange::eq(Value::Int(3)).overlaps(&a));
        assert!(!KeyRange::eq(Value::Int(0)).overlaps(&a));
    }

    #[test]
    fn index_insert_and_scan() {
        let idx = BTreeIndex::new("idx_a", 0);
        idx.insert(Value::Int(10), 0);
        idx.insert(Value::Int(20), 1);
        idx.insert(Value::Int(10), 2); // second version of key 10
        idx.insert(Value::Int(30), 3);

        assert_eq!(idx.positions_eq(&Value::Int(10)), vec![0, 2]);
        assert_eq!(idx.positions_eq(&Value::Int(99)), Vec::<usize>::new());
        assert_eq!(
            idx.positions_in_range(&KeyRange::between(Value::Int(10), Value::Int(20))),
            vec![0, 2, 1]
        );
        assert_eq!(idx.positions_in_range(&KeyRange::all()), vec![0, 2, 1, 3]);
        assert_eq!(idx.key_count(), 3);
        assert_eq!(idx.entry_count(), 4);
        idx.clear();
        assert_eq!(idx.entry_count(), 0);
    }

    #[test]
    fn remove_targets_one_position() {
        let idx = BTreeIndex::new("idx", 0);
        idx.insert(Value::Int(10), 0);
        idx.insert(Value::Int(10), 2);
        idx.insert(Value::Int(20), 1);
        idx.remove(&Value::Int(10), 0);
        assert_eq!(idx.positions_eq(&Value::Int(10)), vec![2]);
        // Removing the last position under a key drops the key.
        idx.remove(&Value::Int(20), 1);
        assert_eq!(idx.key_count(), 1);
        // Removing an unknown (key, position) pair is a no-op.
        idx.remove(&Value::Int(99), 7);
        idx.remove(&Value::Int(10), 7);
        assert_eq!(idx.positions_eq(&Value::Int(10)), vec![2]);
    }

    #[test]
    fn mixed_type_keys_order_consistently() {
        // A nullable indexed column can hold NULL; ensure the canonical
        // value order keeps scans total.
        let idx = BTreeIndex::new("idx", 0);
        idx.insert(Value::Null, 0);
        idx.insert(Value::Int(1), 1);
        assert_eq!(idx.positions_in_range(&KeyRange::all()), vec![0, 1]);
        assert_eq!(
            idx.positions_in_range(&KeyRange::greater(Value::Int(0), true)),
            vec![1]
        );
    }
}
