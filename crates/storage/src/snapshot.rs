//! Snapshot-isolation visibility based on block height (§3.4.1, Figure 3).
//!
//! A transaction executes at a *snapshot height* `h` and sees exactly the
//! database state committed by blocks `1..=h`:
//!
//! * a version is visible iff `creator_block <= h` and
//!   (`deleter_block` is empty or `> h`), plus the transaction's own
//!   uncommitted writes;
//! * in the execute-order-in-parallel flow the node may already be at a
//!   *higher* committed height than `h`; reads that would be affected by
//!   those newer commits are serializability violations the paper resolves
//!   by aborting the reader: **phantom** (`creator > h`, not deleted) and
//!   **stale** (`creator <= h < deleter`) reads (§3.4.1 rules 1–2).
//!
//! The order-then-execute flow always executes at the node's current
//! height, so those two cases cannot arise there; the same code path
//! serves both flows.

use bcrdb_common::ids::{BlockHeight, TxId};

use crate::version::VersionState;

/// A transaction's view of the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Committed state visible up to and including this block height.
    pub height: BlockHeight,
    /// The reading transaction's own (local) id; own writes are visible.
    pub tx: TxId,
}

impl Snapshot {
    /// Snapshot at `height` for transaction `tx`.
    pub fn new(tx: TxId, height: BlockHeight) -> Snapshot {
        Snapshot { height, tx }
    }
}

/// Whether a scan must abort on phantom/stale versions (EO flow executing
/// below the node's committed height) or may ignore them (OE flow, and
/// read-only queries that don't participate in consensus).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanMode {
    /// Abort on phantom/stale candidates (§3.4.1). Used for contract
    /// execution in the EO flow.
    Strict,
    /// Serve the snapshot silently. Used in the OE flow (where the cases
    /// cannot arise) and for local read-only queries.
    Relaxed,
}

/// Outcome of classifying one version against a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Classification {
    /// Visible to the snapshot; carries the other in-flight writers of the
    /// version so the caller can register rw-antidependencies.
    Visible {
        /// In-flight writers other than the reader itself.
        pending_writers: Vec<TxId>,
    },
    /// Not visible and irrelevant to this snapshot.
    Invisible,
    /// Committed *after* the snapshot height and still live — a phantom
    /// candidate if it matches the read predicate (§3.4.1 rule 1).
    Phantom,
    /// Visible at the snapshot height but deleted by a later committed
    /// block — a stale-read candidate (§3.4.1 rule 2).
    Stale,
    /// An uncommitted version written by another in-flight transaction;
    /// the reader must record a `reader -rw-> writer` antidependency.
    PendingWrite {
        /// The in-flight creating transaction.
        writer: TxId,
    },
}

/// Classify a version (by its header state and creating transaction)
/// against a snapshot.
pub fn classify(xmin: TxId, state: &VersionState, snap: &Snapshot) -> Classification {
    if state.aborted {
        return Classification::Invisible;
    }

    // Own writes: visible unless also deleted by self.
    if xmin == snap.tx {
        if state.xmax_pending.contains(&snap.tx) || state.xmax_committed == Some(snap.tx) {
            return Classification::Invisible;
        }
        return Classification::Visible {
            pending_writers: state
                .xmax_pending
                .iter()
                .copied()
                .filter(|t| *t != snap.tx)
                .collect(),
        };
    }

    match state.creator_block {
        // In-flight insert by another transaction.
        None => Classification::PendingWrite { writer: xmin },
        Some(cb) if cb > snap.height => {
            // Committed beyond the snapshot. Live → phantom candidate;
            // already deleted again → cannot affect this snapshot.
            if state.deleter_block.is_none() {
                Classification::Phantom
            } else {
                Classification::Invisible
            }
        }
        Some(_) => {
            match state.deleter_block {
                Some(db) if db <= snap.height => Classification::Invisible,
                Some(_) => Classification::Stale,
                None => {
                    // Deleted by self (update/delete in this transaction)?
                    if state.xmax_pending.contains(&snap.tx) {
                        return Classification::Invisible;
                    }
                    Classification::Visible {
                        pending_writers: state
                            .xmax_pending
                            .iter()
                            .copied()
                            .filter(|t| *t != snap.tx)
                            .collect(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::ids::RowId;

    fn committed(cb: BlockHeight, db: Option<BlockHeight>) -> VersionState {
        VersionState {
            creator_block: Some(cb),
            deleter_block: db,
            xmax_committed: db.map(|_| TxId(99)),
            xmax_pending: Vec::new(),
            aborted: false,
            row_id: RowId(1),
        }
    }

    fn snap(h: BlockHeight) -> Snapshot {
        Snapshot::new(TxId(7), h)
    }

    #[test]
    fn basic_block_height_visibility() {
        // Figure 3 of the paper: at snapshot-height 1, only state committed
        // by block 1 is visible.
        let st = committed(1, None);
        assert!(matches!(
            classify(TxId(2), &st, &snap(1)),
            Classification::Visible { .. }
        ));
        assert!(matches!(
            classify(TxId(2), &st, &snap(5)),
            Classification::Visible { .. }
        ));

        let st = committed(3, None);
        assert!(matches!(
            classify(TxId(2), &st, &snap(2)),
            Classification::Phantom
        ));
        assert!(matches!(
            classify(TxId(2), &st, &snap(3)),
            Classification::Visible { .. }
        ));
    }

    #[test]
    fn deleted_versions() {
        // Created at 1, deleted at 3.
        let st = committed(1, Some(3));
        // At height 3+ the version is simply gone.
        assert!(matches!(
            classify(TxId(2), &st, &snap(3)),
            Classification::Invisible
        ));
        assert!(matches!(
            classify(TxId(2), &st, &snap(9)),
            Classification::Invisible
        ));
        // At heights 1..=2 the row existed, but a later block deleted it:
        // stale-read candidate (§3.4.1 rule 2).
        assert!(matches!(
            classify(TxId(2), &st, &snap(1)),
            Classification::Stale
        ));
        assert!(matches!(
            classify(TxId(2), &st, &snap(2)),
            Classification::Stale
        ));
        // Created at 5, already deleted at 7: invisible to snapshot 4 (it
        // never existed there and no longer matters).
        let st = committed(5, Some(7));
        assert!(matches!(
            classify(TxId(2), &st, &snap(4)),
            Classification::Invisible
        ));
    }

    #[test]
    fn own_writes_visible_own_deletes_invisible() {
        let me = TxId(7);
        // Own uncommitted insert.
        let st = VersionState {
            row_id: RowId(1),
            ..Default::default()
        };
        assert!(matches!(
            classify(me, &st, &snap(4)),
            Classification::Visible { .. }
        ));
        // Own insert then own delete.
        let st = VersionState {
            xmax_pending: vec![me],
            row_id: RowId(1),
            ..Default::default()
        };
        assert!(matches!(
            classify(me, &st, &snap(4)),
            Classification::Invisible
        ));
        // Committed row deleted by self → invisible to self.
        let mut st = committed(1, None);
        st.xmax_pending.push(me);
        assert!(matches!(
            classify(TxId(2), &st, &snap(4)),
            Classification::Invisible
        ));
    }

    #[test]
    fn pending_writes_by_others() {
        let st = VersionState {
            row_id: RowId(1),
            ..Default::default()
        };
        match classify(TxId(3), &st, &snap(4)) {
            Classification::PendingWrite { writer } => assert_eq!(writer, TxId(3)),
            other => panic!("expected PendingWrite, got {other:?}"),
        }
    }

    #[test]
    fn visible_reports_pending_writers() {
        let mut st = committed(1, None);
        st.xmax_pending = vec![TxId(3), TxId(4)];
        match classify(TxId(2), &st, &snap(4)) {
            Classification::Visible { pending_writers } => {
                assert_eq!(pending_writers, vec![TxId(3), TxId(4)]);
            }
            other => panic!("expected Visible, got {other:?}"),
        }
        // The reader itself is excluded.
        st.xmax_pending = vec![TxId(7), TxId(4)];
        match classify(TxId(2), &st, &snap(4)) {
            // snap.tx == 7 is a pending writer → the row is deleted by self.
            Classification::Invisible => {}
            other => panic!("expected Invisible, got {other:?}"),
        }
    }

    #[test]
    fn aborted_versions_are_dead() {
        let st = VersionState {
            aborted: true,
            ..Default::default()
        };
        assert!(matches!(
            classify(TxId(2), &st, &snap(4)),
            Classification::Invisible
        ));
    }
}
