//! The 8 KB slotted-page format used by the [`crate::pager`].
//!
//! This module is the single authority for every byte written to a
//! `<table>.pages` file; the layout is specified byte-by-byte in
//! `docs/ON_DISK_FORMAT.md` and the two must be kept in lockstep. A
//! page is always exactly [`PAGE_SIZE`] bytes:
//!
//! * **page 0** is the file meta page ([`PageFileMeta`]): magic, format
//!   version, checkpoint height and open epoch;
//! * every other page is a **data page**: a fixed [`PageHeader`], a
//!   slot directory growing forward from the header, and cells growing
//!   backward from the end of the page. Each cell is one serialized
//!   committed [`crate::Version`] record prefixed by its heap-slot offset
//!   within the segment, so a segment's versions rehydrate at their
//!   original (stable) heap positions.
//!
//! Pages carry a CRC-32 over their entire body; a page that fails the
//! check is treated as free space by the open-time scan (a torn write
//! under power loss) and never as silently-empty data.

use bcrdb_common::codec::{Decoder, Encoder};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::value::Row;

use crate::version::VersionState;

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Fixed data-page header length (the slot directory starts here).
pub const PAGE_HEADER_LEN: usize = 44;
/// One slot-directory entry: `u16` cell offset + `u16` cell length.
pub const SLOT_ENTRY_LEN: usize = 4;
/// Page number of the meta page.
pub const META_PAGE_NO: u32 = 0;
/// `segment_id` sentinel marking a page as free.
pub const FREE_SEGMENT: u32 = u32::MAX;
/// `next_page` sentinel ending a segment chain (page 0 is the meta
/// page, so it can never be a successor).
pub const NO_NEXT_PAGE: u32 = 0;
/// Magic bytes opening the meta page.
pub const PAGE_MAGIC: &[u8; 8] = b"BCRDBPG1";
/// On-disk format version stamped into the meta page.
pub const PAGE_FORMAT_VERSION: u32 = 1;
/// `min_deleter` sentinel: no cell in the chain carries a deleter.
pub const NO_DELETER: u64 = u64::MAX;

/// A raw page image.
pub type PageBytes = [u8; PAGE_SIZE];

/// Boxed page image (pages are too large for the stack in bulk).
pub type PageBuf = Box<PageBytes>;

// ------------------------------------------------------------ CRC-32

/// IEEE CRC-32 lookup table, built at compile time (reflected
/// polynomial 0xEDB88320 — the same CRC as zip/PNG, chosen so the spec
/// in `docs/ON_DISK_FORMAT.md` can reference a well-known function).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --------------------------------------------------- byte-level utils

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes(buf[off..off + 2].try_into().expect("2 bytes"))
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_be_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// A zeroed page image.
pub fn blank_page() -> PageBuf {
    // `vec!` keeps the 8 KB allocation off the stack.
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact page size")
}

// ----------------------------------------------------------- meta page

/// Decoded contents of the file meta page (page 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageFileMeta {
    /// Block height of the last completed checkpoint: the page file's
    /// contents were flushed and fsynced as part of the snapshot at
    /// this height. Crash recovery requires this to equal the state
    /// snapshot's height before trusting segment chains.
    pub checkpoint_height: BlockHeight,
    /// Open counter, bumped every time the file is opened for writing.
    /// Data pages stamp the epoch they were written under, so recovery
    /// can tell "written this run" from "survived a crash".
    pub epoch: u64,
}

/// Serialize the meta page. Layout: `crc32` over bytes `4..64` at
/// offset 0, then magic (8), format version (4), page size (4),
/// checkpoint height (8), epoch (8); the rest of the page is zero.
pub fn meta_image(meta: &PageFileMeta) -> PageBuf {
    let mut buf = blank_page();
    buf[4..12].copy_from_slice(PAGE_MAGIC);
    put_u32(&mut buf[..], 12, PAGE_FORMAT_VERSION);
    put_u32(&mut buf[..], 16, PAGE_SIZE as u32);
    put_u64(&mut buf[..], 20, meta.checkpoint_height);
    put_u64(&mut buf[..], 28, meta.epoch);
    let crc = crc32(&buf[4..64]);
    put_u32(&mut buf[..], 0, crc);
    buf
}

/// Decode and verify the meta page.
pub fn read_meta(buf: &PageBytes) -> Result<PageFileMeta> {
    if get_u32(buf, 0) != crc32(&buf[4..64]) {
        return Err(Error::Codec("page file meta: bad checksum".into()));
    }
    if &buf[4..12] != PAGE_MAGIC {
        return Err(Error::Codec("page file meta: bad magic".into()));
    }
    let version = get_u32(buf, 12);
    if version != PAGE_FORMAT_VERSION {
        return Err(Error::Codec(format!(
            "page file meta: unsupported format version {version}"
        )));
    }
    let size = get_u32(buf, 16) as usize;
    if size != PAGE_SIZE {
        return Err(Error::Codec(format!(
            "page file meta: page size {size} != {PAGE_SIZE}"
        )));
    }
    Ok(PageFileMeta {
        checkpoint_height: get_u64(buf, 20),
        epoch: get_u64(buf, 28),
    })
}

// ----------------------------------------------------------- data page

/// Fixed header of a data page. See `docs/ON_DISK_FORMAT.md` for the
/// byte offsets; the CRC at offset 0 covers bytes `4..PAGE_SIZE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageHeader {
    /// This page's own number (self-identifying, so a page written to
    /// the wrong offset is detected).
    pub page_no: u32,
    /// Spill horizon at the time the chain was written; together with
    /// `epoch` this orders competing chains for the same segment — the
    /// open-time scan keeps the chain with the largest
    /// `(epoch, lsn)` and frees the rest.
    pub lsn: u64,
    /// Open epoch the page was written under.
    pub epoch: u64,
    /// Table segment this page belongs to, or [`FREE_SEGMENT`].
    pub segment_id: u32,
    /// Next page of the segment chain, or [`NO_NEXT_PAGE`].
    pub next_page: u32,
    /// Position of this page within its chain (0-based).
    pub seq: u16,
    /// Number of slot-directory entries.
    pub slot_count: u16,
    /// Minimum deleter block over every cell in the *chain* (stamped on
    /// the seq-0 page, [`NO_DELETER`] elsewhere or when no cell is
    /// deleted) — lets vacuum skip chains with nothing reclaimable
    /// without reading their cells.
    pub min_deleter: u64,
}

fn write_header(buf: &mut PageBytes, h: &PageHeader) {
    put_u32(buf, 4, h.page_no);
    put_u64(buf, 8, h.lsn);
    put_u64(buf, 16, h.epoch);
    put_u32(buf, 24, h.segment_id);
    put_u32(buf, 28, h.next_page);
    put_u16(buf, 32, h.seq);
    put_u16(buf, 34, h.slot_count);
    put_u64(buf, 36, h.min_deleter);
}

/// Stamp the CRC over bytes `4..PAGE_SIZE` into the first four bytes.
pub fn seal_page(buf: &mut PageBytes) {
    let crc = crc32(&buf[4..]);
    put_u32(buf, 0, crc);
}

/// Decode and verify a data-page header. Fails on checksum mismatch
/// (torn write) — callers treat such pages as free space or as a chain
/// integrity failure depending on context.
pub fn read_header(buf: &PageBytes) -> Result<PageHeader> {
    if get_u32(buf, 0) != crc32(&buf[4..]) {
        return Err(Error::Codec("data page: bad checksum".into()));
    }
    Ok(PageHeader {
        page_no: get_u32(buf, 4),
        lsn: get_u64(buf, 8),
        epoch: get_u64(buf, 16),
        segment_id: get_u32(buf, 24),
        next_page: get_u32(buf, 28),
        seq: get_u16(buf, 32),
        slot_count: get_u16(buf, 34),
        min_deleter: get_u64(buf, 36),
    })
}

/// Serialize a free-page image: a sealed header with
/// `segment_id = FREE_SEGMENT` and no cells. Written over pages
/// released by vacuum so a crash-time scan reclassifies them quickly.
pub fn free_image(page_no: u32, epoch: u64) -> PageBuf {
    let mut buf = blank_page();
    write_header(
        &mut buf,
        &PageHeader {
            page_no,
            lsn: 0,
            epoch,
            segment_id: FREE_SEGMENT,
            next_page: NO_NEXT_PAGE,
            seq: 0,
            slot_count: 0,
            min_deleter: NO_DELETER,
        },
    );
    seal_page(&mut buf);
    buf
}

/// Incrementally fills one data page: slot-directory entries grow
/// forward from the header, cells grow backward from the end.
pub struct PageBuilder {
    buf: PageBuf,
    slot_count: u16,
    /// First free byte after the slot directory.
    lower: usize,
    /// First byte of the cell area.
    upper: usize,
}

impl PageBuilder {
    /// An empty page under construction.
    pub fn new() -> PageBuilder {
        PageBuilder {
            buf: blank_page(),
            slot_count: 0,
            lower: PAGE_HEADER_LEN,
            upper: PAGE_SIZE,
        }
    }

    /// Try to add one cell; returns `false` (leaving the page
    /// unchanged) when the cell plus its directory entry no longer fit.
    pub fn try_add(&mut self, cell: &[u8]) -> bool {
        let need = cell.len() + SLOT_ENTRY_LEN;
        if cell.len() > u16::MAX as usize || self.upper - self.lower < need {
            return false;
        }
        self.upper -= cell.len();
        self.buf[self.upper..self.upper + cell.len()].copy_from_slice(cell);
        put_u16(&mut self.buf[..], self.lower, self.upper as u16);
        put_u16(&mut self.buf[..], self.lower + 2, cell.len() as u16);
        self.lower += SLOT_ENTRY_LEN;
        self.slot_count += 1;
        true
    }

    /// True if no cell has been added yet.
    pub fn is_empty(&self) -> bool {
        self.slot_count == 0
    }

    /// Finalize the page: write the header (with the builder's slot
    /// count) and seal the checksum.
    pub fn finish(mut self, header: PageHeader) -> PageBuf {
        write_header(
            &mut self.buf,
            &PageHeader {
                slot_count: self.slot_count,
                ..header
            },
        );
        seal_page(&mut self.buf);
        self.buf
    }
}

impl Default for PageBuilder {
    fn default() -> Self {
        PageBuilder::new()
    }
}

/// Borrowed cell bodies of a (checksum-verified) data page, in slot
/// directory order, bounds-checked against the page.
pub fn cells(buf: &PageBytes) -> Result<Vec<&[u8]>> {
    let header = read_header(buf)?;
    let n = header.slot_count as usize;
    let dir_end = PAGE_HEADER_LEN + n * SLOT_ENTRY_LEN;
    if dir_end > PAGE_SIZE {
        return Err(Error::Codec("data page: slot directory overflows".into()));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let entry = PAGE_HEADER_LEN + i * SLOT_ENTRY_LEN;
        let off = get_u16(buf, entry) as usize;
        let len = get_u16(buf, entry + 2) as usize;
        if off < dir_end || off + len > PAGE_SIZE {
            return Err(Error::Codec("data page: cell out of bounds".into()));
        }
        out.push(&buf[off..off + len]);
    }
    Ok(out)
}

// ---------------------------------------------------------- cell codec

/// One decoded cell: a committed version record plus the heap-slot
/// offset it occupies within its segment.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedCell {
    /// Heap-slot offset within the segment (`0..SEGMENT_SIZE`).
    pub slot: u16,
    /// Creating transaction.
    pub xmin: TxId,
    /// Commit-time row id.
    pub row_id: RowId,
    /// Block that committed the creating transaction.
    pub creator: BlockHeight,
    /// Block that committed the deletion, if any.
    pub deleter: Option<BlockHeight>,
    /// The winning deleter transaction, if any.
    pub xmax: Option<TxId>,
    /// The row image.
    pub row: Row,
}

/// Serialize one committed version as a cell. The version record bytes
/// are identical to the state-snapshot encoding (`persist`), prefixed
/// by the slot offset as a big-endian `u16`.
///
/// The caller guarantees the version is committed
/// (`state.creator_block` is `Some` and not aborted).
pub fn encode_cell(slot: u16, xmin: TxId, state: &VersionState, row: &Row) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(64);
    enc.put_u8((slot >> 8) as u8);
    enc.put_u8(slot as u8);
    enc.put_u64(xmin.0);
    enc.put_u64(state.row_id.0);
    enc.put_u64(state.creator_block.expect("cell versions are committed"));
    match state.deleter_block {
        Some(db) => {
            enc.put_bool(true);
            enc.put_u64(db);
            enc.put_u64(state.xmax_committed.map_or(0, |t| t.0));
        }
        None => enc.put_bool(false),
    }
    enc.put_row(row);
    enc.finish().to_vec()
}

/// Decode one cell.
pub fn decode_cell(bytes: &[u8]) -> Result<DecodedCell> {
    let mut dec = Decoder::new(bytes);
    let hi = dec.get_u8()?;
    let lo = dec.get_u8()?;
    let slot = ((hi as u16) << 8) | lo as u16;
    let xmin = TxId(dec.get_u64()?);
    let row_id = RowId(dec.get_u64()?);
    let creator = dec.get_u64()?;
    let (deleter, xmax) = if dec.get_bool()? {
        let db = dec.get_u64()?;
        let xm = dec.get_u64()?;
        (Some(db), if xm == 0 { None } else { Some(TxId(xm)) })
    } else {
        (None, None)
    };
    let row = dec.get_row()?;
    if !dec.is_exhausted() {
        return Err(Error::Codec("trailing bytes in page cell".into()));
    }
    Ok(DecodedCell {
        slot,
        xmin,
        row_id,
        creator,
        deleter,
        xmax,
        row,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::value::Value;

    fn sample_state(deleter: Option<BlockHeight>) -> VersionState {
        VersionState {
            creator_block: Some(7),
            deleter_block: deleter,
            xmax_committed: deleter.map(|_| TxId(99)),
            xmax_pending: Vec::new(),
            aborted: false,
            row_id: RowId(42),
        }
    }

    #[test]
    fn cell_roundtrip() {
        let row = vec![Value::Int(5), Value::Text("hello".into()), Value::Null];
        let bytes = encode_cell(513, TxId(3), &sample_state(Some(9)), &row);
        let cell = decode_cell(&bytes).unwrap();
        assert_eq!(cell.slot, 513);
        assert_eq!(cell.xmin, TxId(3));
        assert_eq!(cell.row_id, RowId(42));
        assert_eq!(cell.creator, 7);
        assert_eq!(cell.deleter, Some(9));
        assert_eq!(cell.xmax, Some(TxId(99)));
        assert_eq!(cell.row, row);
    }

    #[test]
    fn page_roundtrip_and_cell_order() {
        let mut b = PageBuilder::new();
        let c1 = encode_cell(0, TxId(1), &sample_state(None), &vec![Value::Int(1)]);
        let c2 = encode_cell(3, TxId(2), &sample_state(None), &vec![Value::Int(2)]);
        assert!(b.try_add(&c1));
        assert!(b.try_add(&c2));
        let buf = b.finish(PageHeader {
            page_no: 5,
            lsn: 100,
            epoch: 2,
            segment_id: 1,
            next_page: 6,
            seq: 0,
            slot_count: 0, // overwritten by finish
            min_deleter: NO_DELETER,
        });
        let h = read_header(&buf).unwrap();
        assert_eq!(h.page_no, 5);
        assert_eq!(h.lsn, 100);
        assert_eq!(h.epoch, 2);
        assert_eq!(h.segment_id, 1);
        assert_eq!(h.next_page, 6);
        assert_eq!(h.slot_count, 2);
        let cs = cells(&buf).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(decode_cell(cs[0]).unwrap().slot, 0);
        assert_eq!(decode_cell(cs[1]).unwrap().slot, 3);
    }

    #[test]
    fn corrupt_page_rejected() {
        let mut b = PageBuilder::new();
        let c = encode_cell(0, TxId(1), &sample_state(None), &vec![Value::Int(1)]);
        assert!(b.try_add(&c));
        let mut buf = b.finish(PageHeader {
            page_no: 1,
            lsn: 1,
            epoch: 1,
            segment_id: 0,
            next_page: NO_NEXT_PAGE,
            seq: 0,
            slot_count: 0,
            min_deleter: NO_DELETER,
        });
        buf[PAGE_SIZE - 10] ^= 0xff;
        assert!(read_header(&buf).is_err());
        assert!(cells(&buf).is_err());
    }

    #[test]
    fn builder_rejects_overflow() {
        let mut b = PageBuilder::new();
        let big = vec![0u8; PAGE_SIZE]; // larger than any page can hold
        assert!(!b.try_add(&big));
        assert!(b.is_empty());
        // Fill with small cells until the page is full; the count must
        // match the space math exactly.
        let cell = encode_cell(0, TxId(1), &sample_state(None), &vec![Value::Int(0)]);
        let per = cell.len() + SLOT_ENTRY_LEN;
        let expect = (PAGE_SIZE - PAGE_HEADER_LEN) / per;
        let mut n = 0;
        while b.try_add(&cell) {
            n += 1;
        }
        assert_eq!(n, expect);
    }

    #[test]
    fn meta_roundtrip_and_corruption() {
        let meta = PageFileMeta {
            checkpoint_height: 77,
            epoch: 3,
        };
        let buf = meta_image(&meta);
        assert_eq!(read_meta(&buf).unwrap(), meta);
        let mut bad = buf.clone();
        bad[20] ^= 1;
        assert!(read_meta(&bad).is_err());
    }

    #[test]
    fn free_image_classifies() {
        let buf = free_image(9, 4);
        let h = read_header(&buf).unwrap();
        assert_eq!(h.segment_id, FREE_SEGMENT);
        assert_eq!(h.page_no, 9);
        assert_eq!(h.slot_count, 0);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
