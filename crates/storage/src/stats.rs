//! Deterministic per-table statistics for the cost-based planner.
//!
//! Every replica must pick the same plan for the same statement at the
//! same snapshot height, because the chosen index range doubles as the
//! SSI predicate lock (§4.3) and therefore feeds abort decisions and the
//! chain bytes. The statistics here are engineered for that:
//!
//! * they are **exact**, not sampled: per indexed column the table keeps
//!   a [`BTreeMap`] of key → live-row count, maintained from the write
//!   sets the serial commit gate validated — the same deterministic
//!   stream every replica folds in block order;
//! * planning never reads the live maps. After each block's apply the
//!   commit thread **seals** a scalar [`TableSummary`] (row count,
//!   per-column distinct/min/max) stamped with the block height, and
//!   the planner looks up the summary *as of its snapshot height*, so
//!   an execute-order transaction racing a later block's commit still
//!   plans from the same inputs on every node;
//! * a **rebuild** from the heap recomputes exactly the values the
//!   incremental fold maintains (both count the versions visible at the
//!   sealed height), so vacuum-tick rebuilds, snapshot restores and
//!   fast-syncs are semantic no-ops on the summary values and replicas
//!   with different maintenance cadences cannot diverge.
//!
//! Summaries are pushed only when the values changed, so two replicas
//! whose histories were built at different times (one restored from a
//! snapshot, one replaying from genesis) still agree on the summary
//! *value* at every height both can serve, which is all the planner
//! consumes. NULLs are excluded from the key maps: they are never
//! sargable, and excluding them keeps min/max meaningful for range
//! interpolation.

use std::collections::BTreeMap;

use bcrdb_common::schema::TableSchema;
use bcrdb_common::value::Value;

/// Blocks of sealed summary history retained for as-of-height planning.
/// A fixed constant (pruning is keyed to the sealed block height, a pure
/// function of the chain), deliberately matching the checkpoint/vacuum
/// retention horizon: a snapshot older than this is already stale for
/// the execute-order flow.
pub const STATS_HISTORY_HORIZON: u64 = 64;

/// Scalar summary of one indexed column at a sealed height.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnSummary {
    /// Distinct non-NULL keys.
    pub distinct: u64,
    /// Live rows with a non-NULL value in this column.
    pub count: u64,
    /// Smallest non-NULL key.
    pub min: Option<Value>,
    /// Largest non-NULL key.
    pub max: Option<Value>,
}

/// Per-table scalar summary at a sealed height — the planner's input.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TableSummary {
    /// Live rows visible at the sealed height.
    pub rows: u64,
    /// Per-column summaries, ascending by column ordinal.
    pub columns: Vec<(usize, ColumnSummary)>,
}

impl TableSummary {
    /// Summary of the given column ordinal, if it is a stat column.
    pub fn column(&self, col: usize) -> Option<&ColumnSummary> {
        self.columns
            .binary_search_by_key(&col, |(c, _)| *c)
            .ok()
            .map(|i| &self.columns[i].1)
    }
}

/// The statistics change of one committed transaction against one table,
/// computed by the serial validation gate from the write set's old/new
/// row images and folded on the commit thread in block order.
#[derive(Clone, Debug, Default)]
pub struct StatsDelta {
    /// Target table name.
    pub table: String,
    /// Indexed (column, value) pairs leaving the live set.
    pub removed: Vec<(usize, Value)>,
    /// Indexed (column, value) pairs entering the live set.
    pub added: Vec<(usize, Value)>,
    /// Net live-row change (inserts minus deletes).
    pub live_delta: i64,
}

/// Columns a table keeps statistics for: the single-column primary key
/// (if any) first, then every secondary index, deduplicated — the same
/// set the SSI write probes cover.
pub fn stat_columns(schema: &TableSchema) -> Vec<usize> {
    let mut out = Vec::new();
    if schema.primary_key.len() == 1 {
        out.push(schema.primary_key[0]);
    }
    for idx in &schema.indexes {
        if !out.contains(&idx.column) {
            out.push(idx.column);
        }
    }
    out
}

/// Live statistics of one table: exact per-column key counts plus the
/// sealed summary history the planner reads.
#[derive(Debug, Default)]
pub struct TableStats {
    rows: u64,
    /// Exact live key counts per stat column. `BTreeMap` throughout —
    /// iteration order feeds the sealed summaries.
    keys: BTreeMap<usize, BTreeMap<Value, u64>>,
    /// Sealed summaries, ascending by height, pushed only when changed.
    history: Vec<(u64, TableSummary)>,
    /// Set when the stat-column set changed (CREATE INDEX) and the maps
    /// must be rebuilt from the heap before the next seal.
    dirty: bool,
}

impl TableStats {
    /// Fresh, empty statistics tracking the given columns.
    pub fn with_columns(columns: &[usize]) -> TableStats {
        TableStats {
            keys: columns.iter().map(|c| (*c, BTreeMap::new())).collect(),
            ..TableStats::default()
        }
    }

    /// Start tracking `column` (CREATE INDEX): its counts are unknown
    /// until the next rebuild, so the stats are marked dirty.
    pub fn add_column(&mut self, column: usize) {
        self.keys.entry(column).or_default();
        self.dirty = true;
    }

    /// True when a CREATE INDEX invalidated the maps and a rebuild is
    /// required before the next seal.
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// Request a rebuild from the heap at the next commit-thread fold —
    /// the maintenance tick's drift defense. Exactness makes the rebuild
    /// a semantic no-op, so replicas ticking at different wall-clock
    /// moments still agree on every sealed value.
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Fold one transaction's delta into the live maps. Values for
    /// columns not (yet) tracked are ignored — they are covered by the
    /// rebuild the dirty flag forces.
    pub fn apply(&mut self, delta: &StatsDelta) {
        for (col, value) in &delta.removed {
            if value.is_null() {
                continue;
            }
            if let Some(map) = self.keys.get_mut(col) {
                if let Some(n) = map.get_mut(value) {
                    *n -= 1;
                    if *n == 0 {
                        map.remove(value);
                    }
                }
            }
        }
        for (col, value) in &delta.added {
            if value.is_null() {
                continue;
            }
            if let Some(map) = self.keys.get_mut(col) {
                *map.entry(value.clone()).or_insert(0) += 1;
            }
        }
        self.rows = (self.rows as i64 + delta.live_delta).max(0) as u64;
    }

    /// Replace the live maps with values recomputed from the heap as of
    /// `height`, clear the dirty flag and seal. Exactness makes this a
    /// semantic no-op when the incremental fold was already tracking
    /// every column.
    pub fn install(&mut self, rows: u64, keys: BTreeMap<usize, BTreeMap<Value, u64>>, height: u64) {
        self.rows = rows;
        self.keys = keys;
        self.dirty = false;
        self.seal(height);
    }

    /// Seal the current values as the summary at `height`, pushing a
    /// history entry only when the values changed, and prune entries
    /// older than the horizon (keeping the newest at-or-below-horizon
    /// entry as the floor anchor).
    pub fn seal(&mut self, height: u64) {
        let summary = self.current_summary();
        match self.history.last_mut() {
            Some((h, s)) if *h == height => *s = summary,
            Some((_, s)) if *s == summary => {}
            _ => self.history.push((height, summary)),
        }
        let floor = height.saturating_sub(STATS_HISTORY_HORIZON);
        if let Some(anchor) = self.history.iter().rposition(|(h, _)| *h <= floor) {
            self.history.drain(..anchor);
        }
    }

    /// The sealed summary as of `height`: the newest entry at or below
    /// it. `None` when nothing was sealed that early — the planner falls
    /// back to the stats-free heuristic.
    pub fn summary_at(&self, height: u64) -> Option<TableSummary> {
        self.history
            .iter()
            .rev()
            .find(|(h, _)| *h <= height)
            .map(|(_, s)| s.clone())
    }

    fn current_summary(&self) -> TableSummary {
        TableSummary {
            rows: self.rows,
            columns: self
                .keys
                .iter()
                .map(|(col, map)| {
                    (
                        *col,
                        ColumnSummary {
                            distinct: map.len() as u64,
                            count: map.values().sum(),
                            min: map.keys().next().cloned(),
                            max: map.keys().next_back().cloned(),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::schema::{Column, DataType};

    fn delta(
        added: Vec<(usize, Value)>,
        removed: Vec<(usize, Value)>,
        live_delta: i64,
    ) -> StatsDelta {
        StatsDelta {
            table: "t".into(),
            removed,
            added,
            live_delta,
        }
    }

    #[test]
    fn fold_and_seal_roundtrip() {
        let mut s = TableStats::with_columns(&[0]);
        s.apply(&delta(
            vec![(0, Value::Int(1)), (0, Value::Int(2))],
            vec![],
            2,
        ));
        s.seal(1);
        let sum = s.summary_at(1).unwrap();
        assert_eq!(sum.rows, 2);
        let c = sum.column(0).unwrap();
        assert_eq!(c.distinct, 2);
        assert_eq!(c.count, 2);
        assert_eq!(c.min, Some(Value::Int(1)));
        assert_eq!(c.max, Some(Value::Int(2)));

        // Delete one key: counts shrink, min moves.
        s.apply(&delta(vec![], vec![(0, Value::Int(1))], -1));
        s.seal(2);
        let sum2 = s.summary_at(2).unwrap();
        assert_eq!(sum2.rows, 1);
        assert_eq!(sum2.column(0).unwrap().min, Some(Value::Int(2)));
        // As-of height 1 still sees the old summary.
        assert_eq!(s.summary_at(1).unwrap(), sum);
        assert!(s.summary_at(0).is_none());
    }

    #[test]
    fn unchanged_seal_pushes_nothing() {
        let mut s = TableStats::with_columns(&[0]);
        s.apply(&delta(vec![(0, Value::Int(7))], vec![], 1));
        s.seal(1);
        s.seal(2);
        s.seal(3);
        assert_eq!(s.history.len(), 1);
        // Value at later heights equals the floor entry's value.
        assert_eq!(s.summary_at(3), s.summary_at(1));
    }

    #[test]
    fn history_prunes_to_horizon_with_floor_anchor() {
        let mut s = TableStats::with_columns(&[0]);
        for h in 1..=(STATS_HISTORY_HORIZON + 10) {
            s.apply(&delta(vec![(0, Value::Int(h as i64))], vec![], 1));
            s.seal(h);
        }
        let floor = (STATS_HISTORY_HORIZON + 10) - STATS_HISTORY_HORIZON;
        // Entries strictly below the newest at-or-below-floor entry are gone.
        assert_eq!(s.history.first().unwrap().0, floor);
        // The floor anchor still answers queries at the horizon edge.
        assert_eq!(s.summary_at(floor).unwrap().rows, floor);
    }

    #[test]
    fn nulls_are_excluded_from_key_maps() {
        let mut s = TableStats::with_columns(&[0]);
        s.apply(&delta(
            vec![(0, Value::Null), (0, Value::Int(1))],
            vec![],
            2,
        ));
        s.seal(1);
        let sum = s.summary_at(1).unwrap();
        assert_eq!(sum.rows, 2);
        assert_eq!(sum.column(0).unwrap().count, 1);
        assert_eq!(sum.column(0).unwrap().distinct, 1);
    }

    #[test]
    fn add_column_marks_dirty_and_install_clears() {
        let mut s = TableStats::with_columns(&[0]);
        assert!(!s.dirty());
        s.add_column(1);
        assert!(s.dirty());
        let mut keys = BTreeMap::new();
        keys.insert(0, BTreeMap::from([(Value::Int(1), 1u64)]));
        keys.insert(1, BTreeMap::from([(Value::Text("a".into()), 1u64)]));
        s.install(1, keys, 5);
        assert!(!s.dirty());
        let sum = s.summary_at(5).unwrap();
        assert_eq!(sum.column(1).unwrap().distinct, 1);
    }

    #[test]
    fn stat_columns_prefers_single_pk_then_indexes() {
        let mut schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("s", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        schema.add_index("idx_s", "s").unwrap();
        assert_eq!(stat_columns(&schema), vec![0, 1]);
    }
}
