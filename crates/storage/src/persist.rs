//! State-snapshot persistence.
//!
//! Recovery (§3.6 of the paper) is driven by re-executing blocks from the
//! block store; to bound replay time, a node periodically serializes its
//! *committed* state — all tables, full version history — to a snapshot
//! file, and replays only the blocks after the snapshot height on restart.
//! Only committed versions are persisted: in-flight and aborted versions
//! are reconstructed (or not) by replay.
//!
//! The encoding is the canonical codec. For in-memory catalogs (the v1
//! `BCRDBSS1` format) a snapshot doubles as a deterministic full-state
//! digest source for cross-node audits; paged catalogs emit the v2
//! `BCRDBSS2` format, whose bytes depend on which segments happen to be
//! resident and are therefore **not** cross-node comparable — state
//! comparisons between paged nodes go through the node's state hash
//! (which enumerates every version, faulting paged segments in) instead.
//!
//! ## v2 and paged-segment carry
//!
//! A v2 snapshot records each table's exact heap geometry (so restore
//! rebuilds stable positions), the resident committed versions with
//! their positions, and the list of paged-out segments. Paged segments
//! travel one of two ways ([`SnapshotCarry`]):
//!
//! - **External** (disk snapshots): the snapshot stores only the
//!   segment ids; their chains live in the node's own page files, which
//!   `write_snapshot` checkpoints at the same barrier. Restore attaches
//!   the chains and re-derives index entries by streaming them.
//! - **Inline** (fast-sync serving): raw page images ride inside the
//!   snapshot bytes, so a peer without access to our page directory can
//!   decode them — to resident versions — and re-spill on its own
//!   schedule.

use std::collections::BTreeSet;
use std::sync::Arc;

use bcrdb_common::codec::{Decoder, Encoder};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::schema::{Column, DataType, IndexDef, TableSchema};

use crate::catalog::Catalog;
use crate::page::{self, PageBytes};
use crate::pager::PagedStore;
use crate::table::{Table, TablePager, SEGMENT_SHIFT};
use crate::version::Version;

/// Magic bytes prefixing v1 (all-resident) snapshots.
const MAGIC: &[u8; 8] = b"BCRDBSS1";
/// Magic bytes prefixing v2 (paged-heap) snapshots.
const MAGIC_V2: &[u8; 8] = b"BCRDBSS2";

/// How a v2 snapshot ships paged-out segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotCarry {
    /// Only chain ids are recorded; the pages stay in the node's own
    /// page files (checkpointed at the same barrier). The snapshot is
    /// only decodable by the node that wrote it.
    External,
    /// Raw page images are embedded in the snapshot bytes, making it
    /// self-contained — the form served to fast-syncing peers.
    Inline,
}

/// Serialize the committed state of every table in the catalog at
/// `height`. In-memory catalogs emit the v1 format; store-backed
/// catalogs emit v2 with external carry (see
/// [`encode_catalog_carry`] to embed the pages instead).
pub fn encode_catalog(catalog: &Catalog, height: BlockHeight) -> Vec<u8> {
    encode_catalog_carry(catalog, height, SnapshotCarry::External)
        .expect("external carry does no page I/O and cannot fail")
}

/// Serialize the catalog at `height` with an explicit carry mode for
/// paged segments. Only inline carry can fail (it reads chain pages
/// through the buffer pool). The carry mode is ignored for in-memory
/// catalogs, which always emit v1.
pub fn encode_catalog_carry(
    catalog: &Catalog,
    height: BlockHeight,
    carry: SnapshotCarry,
) -> Result<Vec<u8>> {
    let mut enc = Encoder::with_capacity(64 * 1024);
    let paged = catalog.store().is_some();
    enc.put_bytes(if paged { MAGIC_V2 } else { MAGIC });
    enc.put_u64(height);
    let names = catalog.table_names();
    enc.put_u32(names.len() as u32);
    for name in names {
        let table = catalog.get(&name).expect("listed table exists");
        if paged {
            encode_table_v2(&mut enc, &table, carry)?;
        } else {
            encode_table(&mut enc, &table);
        }
    }
    Ok(enc.finish().to_vec())
}

/// One committed version record (shared by v1 tables, v2 resident
/// slots and page cells — see `page::encode_cell`).
fn encode_version(enc: &mut Encoder, v: &Version) {
    let st = v.state();
    enc.put_u64(v.xmin.0);
    enc.put_u64(st.row_id.0);
    enc.put_u64(st.creator_block.expect("only committed versions persist"));
    match st.deleter_block {
        Some(db) => {
            enc.put_bool(true);
            enc.put_u64(db);
            enc.put_u64(st.xmax_committed.map_or(0, |t| t.0));
        }
        None => enc.put_bool(false),
    }
    enc.put_row(&v.data);
}

fn decode_version(dec: &mut Decoder<'_>) -> Result<Version> {
    let xmin = TxId(dec.get_u64()?);
    let row_id = RowId(dec.get_u64()?);
    let creator = dec.get_u64()?;
    let (deleter, xmax) = if dec.get_bool()? {
        let db = dec.get_u64()?;
        let xm = dec.get_u64()?;
        (Some(db), if xm == 0 { None } else { Some(TxId(xm)) })
    } else {
        (None, None)
    };
    let data = dec.get_row()?;
    Ok(Version::restored(
        xmin, data, row_id, creator, deleter, xmax,
    ))
}

fn encode_schema(enc: &mut Encoder, table: &Table) {
    let schema = table.schema();
    enc.put_str(&schema.name);
    enc.put_u32(schema.columns.len() as u32);
    for c in &schema.columns {
        enc.put_str(&c.name);
        enc.put_u8(dtype_tag(c.dtype));
        enc.put_bool(c.nullable);
    }
    enc.put_u32(schema.primary_key.len() as u32);
    for &pk in &schema.primary_key {
        enc.put_u32(pk as u32);
    }
    enc.put_u32(schema.indexes.len() as u32);
    for idx in &schema.indexes {
        enc.put_str(&idx.name);
        enc.put_u32(idx.column as u32);
        enc.put_bool(idx.unique);
    }
    enc.put_u64(table.row_id_watermark());
}

fn encode_table(enc: &mut Encoder, table: &Table) {
    encode_schema(enc, table);
    // Persist committed versions only, in heap order. `all_versions`
    // faults paged segments in, but this path only runs for in-memory
    // catalogs.
    let committed: Vec<_> = table
        .all_versions()
        .into_iter()
        .filter(|v| {
            let st = v.state();
            !st.aborted && st.creator_block.is_some()
        })
        .collect();
    enc.put_u32(committed.len() as u32);
    for v in committed {
        encode_version(enc, &v);
    }
}

fn encode_table_v2(enc: &mut Encoder, table: &Table, carry: SnapshotCarry) -> Result<()> {
    encode_schema(enc, table);
    enc.put_u64(table.heap_len() as u64);

    // Resident committed versions keep their exact heap positions so
    // restore rebuilds the same geometry the paged chains index into.
    let mut resident: Vec<(usize, Arc<Version>)> = Vec::new();
    table.for_each_resident_slot(|pos, v| {
        let st = v.state();
        if !st.aborted && st.creator_block.is_some() {
            resident.push((pos, Arc::clone(v)));
        }
    });
    enc.put_u32(resident.len() as u32);
    for (pos, v) in resident {
        enc.put_u64(pos as u64);
        encode_version(enc, &v);
    }

    let paged = table.paged_segments();
    enc.put_u32(paged.len() as u32);
    for &s in &paged {
        enc.put_u32(s);
    }
    match carry {
        SnapshotCarry::External => enc.put_u8(0),
        SnapshotCarry::Inline => {
            enc.put_u8(1);
            let pager = table.pager().expect("store-backed tables have a pager");
            for &s in &paged {
                let pages = pager
                    .store
                    .read_chain(&pager.file, s)?
                    .ok_or_else(|| Error::Codec(format!("paged segment {s} has no chain")))?;
                enc.put_u32(pages.len() as u32);
                for p in &pages {
                    enc.put_bytes(&p[..]);
                }
            }
        }
    }
    Ok(())
}

/// Restore a catalog from snapshot bytes; returns the snapshot height.
/// Equivalent to [`decode_catalog_with`] without a paged store: v1 and
/// v2-inline snapshots decode fully resident; v2-external fails (the
/// chains live in a page directory this caller does not have).
pub fn decode_catalog(bytes: &[u8]) -> Result<(Catalog, BlockHeight)> {
    decode_catalog_with(bytes, None)
}

/// Restore a catalog from snapshot bytes, optionally backed by a paged
/// store; returns the snapshot height.
///
/// With a store: v2-external snapshots *attach* each table's existing
/// chains (verifying the page file was checkpointed at the snapshot
/// height — a mismatch means the snapshot and the page files are from
/// different barriers, and the caller should fall back to replay);
/// v2-inline and v1 snapshots decode to resident versions over a fresh
/// page file (the incoming state supersedes anything on disk), and the
/// heap re-spills on the node's normal schedule.
pub fn decode_catalog_with(
    bytes: &[u8],
    store: Option<&Arc<PagedStore>>,
) -> Result<(Catalog, BlockHeight)> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_bytes()?;
    let v2 = if magic == MAGIC_V2 {
        true
    } else if magic == MAGIC {
        false
    } else {
        return Err(Error::Codec("bad snapshot magic".into()));
    };
    let height = dec.get_u64()?;
    let catalog = match store {
        Some(s) => Catalog::with_store(Arc::clone(s)),
        None => Catalog::new(),
    };
    let table_count = dec.get_u32()?;
    for _ in 0..table_count {
        let table = if v2 {
            decode_table_v2(&mut dec, store, height)?
        } else {
            decode_table(&mut dec, store)?
        };
        catalog.install_table(Arc::new(table));
    }
    if !dec.is_exhausted() {
        return Err(Error::Codec("trailing bytes in snapshot".into()));
    }
    Ok((catalog, height))
}

fn decode_schema(dec: &mut Decoder<'_>) -> Result<(TableSchema, u64)> {
    let name = dec.get_str()?;
    let col_count = dec.get_u32()?;
    let mut columns = Vec::with_capacity(col_count as usize);
    for _ in 0..col_count {
        let cname = dec.get_str()?;
        let dtype = dtype_from_tag(dec.get_u8()?)?;
        let nullable = dec.get_bool()?;
        columns.push(Column {
            name: cname,
            dtype,
            nullable,
        });
    }
    let pk_count = dec.get_u32()?;
    let mut primary_key = Vec::with_capacity(pk_count as usize);
    for _ in 0..pk_count {
        primary_key.push(dec.get_u32()? as usize);
    }
    let mut schema = TableSchema::new(name, columns, primary_key)?;
    let idx_count = dec.get_u32()?;
    for _ in 0..idx_count {
        let iname = dec.get_str()?;
        let column = dec.get_u32()? as usize;
        let unique = dec.get_bool()?;
        schema.indexes.push(IndexDef {
            name: iname,
            column,
            unique,
        });
    }
    let watermark = dec.get_u64()?;
    Ok((schema, watermark))
}

/// Build a table's paging attachment over a **fresh** page file —
/// whatever the store held for this table before is superseded by the
/// snapshot being decoded.
fn fresh_pager(store: Option<&Arc<PagedStore>>, name: &str) -> Result<Option<TablePager>> {
    match store {
        Some(s) => Ok(Some(TablePager {
            store: Arc::clone(s),
            file: s.reset_file(name)?,
        })),
        None => Ok(None),
    }
}

fn decode_table(dec: &mut Decoder<'_>, store: Option<&Arc<PagedStore>>) -> Result<Table> {
    let (schema, watermark) = decode_schema(dec)?;
    let pager = fresh_pager(store, &schema.name)?;
    let table = Table::new_in(schema, pager);
    table.set_row_id_watermark(watermark);

    let version_count = dec.get_u32()?;
    for _ in 0..version_count {
        let v = decode_version(dec)?;
        table.append_restored(v);
    }
    Ok(table)
}

fn decode_table_v2(
    dec: &mut Decoder<'_>,
    store: Option<&Arc<PagedStore>>,
    height: BlockHeight,
) -> Result<Table> {
    let (schema, watermark) = decode_schema(dec)?;
    let name = schema.name.clone();
    let heap_len = dec.get_u64()? as usize;
    let resident_count = dec.get_u32()?;
    let mut resident = Vec::with_capacity(resident_count.min(1 << 20) as usize);
    for _ in 0..resident_count {
        let pos = dec.get_u64()? as usize;
        if pos >= heap_len {
            return Err(Error::Codec(format!(
                "table {name}: resident position {pos} outside heap of {heap_len}"
            )));
        }
        resident.push((pos, decode_version(dec)?));
    }
    let paged_count = dec.get_u32()?;
    let mut paged = Vec::with_capacity(paged_count.min(1 << 20) as usize);
    for _ in 0..paged_count {
        paged.push(dec.get_u32()?);
    }

    let table = match dec.get_u8()? {
        0 => {
            // External carry: the chains must already sit in this
            // node's own page file, checkpointed at the snapshot's
            // barrier.
            let store = store.ok_or_else(|| {
                Error::Codec(format!(
                    "table {name}: snapshot carries paged segments externally \
                     but no paged store is attached"
                ))
            })?;
            let file = store.open_file(&name, height)?;
            if !paged.is_empty() && file.checkpoint_height() != height {
                return Err(Error::Codec(format!(
                    "table {name}: page file checkpointed at {} but snapshot is at {height}",
                    file.checkpoint_height()
                )));
            }
            let table = Table::new_in(
                schema,
                Some(TablePager {
                    store: Arc::clone(store),
                    file: Arc::clone(&file),
                }),
            );
            table.set_row_id_watermark(watermark);
            table.preset_heap(heap_len);
            for (pos, v) in resident {
                table.install_at(pos, v);
            }
            let keep: BTreeSet<u32> = paged.iter().copied().collect();
            for &s in &paged {
                if file.chain(s).is_none() {
                    return Err(Error::Codec(format!(
                        "table {name}: paged segment {s} has no chain on disk"
                    )));
                }
                table.mark_paged(s as usize);
            }
            // Segments resident in the snapshot win over any leftover
            // chain (e.g. spilled after the barrier, before a crash).
            for s in file.chain_segments() {
                if !keep.contains(&s) {
                    file.drop_chain(s);
                }
            }
            table.reindex_paged();
            table
        }
        1 => {
            // Inline carry: decode the embedded pages to resident
            // versions — the receiver re-spills on its own schedule.
            let pager = fresh_pager(store, &name)?;
            let table = Table::new_in(schema, pager);
            table.set_row_id_watermark(watermark);
            table.preset_heap(heap_len);
            for (pos, v) in resident {
                table.install_at(pos, v);
            }
            for &s in &paged {
                let page_count = dec.get_u32()?;
                for _ in 0..page_count {
                    let bytes = dec.get_bytes()?;
                    let image: &PageBytes = bytes.as_slice().try_into().map_err(|_| {
                        Error::Codec(format!("table {name}: inline page has wrong size"))
                    })?;
                    page::read_header(image)?; // checksum check
                    for cell in page::cells(image)? {
                        let c = page::decode_cell(cell)?;
                        let pos = ((s as usize) << SEGMENT_SHIFT) + c.slot as usize;
                        if pos >= heap_len {
                            return Err(Error::Codec(format!(
                                "table {name}: inline cell position {pos} outside heap"
                            )));
                        }
                        table.install_at(
                            pos,
                            Version::restored(
                                c.xmin, c.row, c.row_id, c.creator, c.deleter, c.xmax,
                            ),
                        );
                    }
                }
            }
            table
        }
        other => return Err(Error::Codec(format!("table {name}: bad carry tag {other}"))),
    };
    Ok(table)
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bytes => 4,
        DataType::Timestamp => 5,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bytes,
        5 => DataType::Timestamp,
        other => return Err(Error::Codec(format!("bad dtype tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::UNASSIGNED_ROW_ID;
    use bcrdb_common::value::Value;

    fn build_catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = TableSchema::new(
            "inv",
            vec![
                Column::new("id", DataType::Int),
                Column::nullable("amount", DataType::Float),
            ],
            vec![0],
        )
        .unwrap();
        let t = cat.create_table(schema).unwrap();
        t.add_index("idx_amount", "amount").unwrap();

        // One live row, one updated (historical + successor), one aborted,
        // one in-flight — only committed versions should survive.
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Float(5.0)],
            UNASSIGNED_ROW_ID,
        );
        let r1 = t.alloc_row_id();
        v1.commit_create(1, r1);

        let (_, v2) = t.append_version(
            TxId(2),
            vec![Value::Int(2), Value::Float(7.5)],
            UNASSIGNED_ROW_ID,
        );
        let r2 = t.alloc_row_id();
        v2.commit_create(1, r2);
        v2.add_pending_writer(TxId(3));
        v2.commit_delete(TxId(3), 2);
        let (_, v2b) = t.append_version(TxId(3), vec![Value::Int(2), Value::Float(9.0)], r2);
        v2b.commit_create(2, r2);

        let (_, va) =
            t.append_version(TxId(4), vec![Value::Int(3), Value::Null], UNASSIGNED_ROW_ID);
        va.abort_create();
        let (_, _inflight) =
            t.append_version(TxId(5), vec![Value::Int(4), Value::Null], UNASSIGNED_ROW_ID);
        cat
    }

    #[test]
    fn roundtrip_preserves_committed_state() {
        let cat = build_catalog();
        let bytes = encode_catalog(&cat, 2);
        let (restored, height) = decode_catalog(&bytes).unwrap();
        assert_eq!(height, 2);

        let t = restored.get("inv").unwrap();
        // 3 committed versions (live, historical, successor); aborted and
        // in-flight dropped.
        assert_eq!(t.version_count(), 3);
        assert_eq!(t.live_row_count(), 2);
        assert_eq!(
            t.row_id_watermark(),
            cat.get("inv").unwrap().row_id_watermark()
        );
        // Schema round-trips with indexes.
        let schema = t.schema();
        assert_eq!(schema.indexes.len(), 1);
        assert_eq!(schema.primary_key, vec![0]);
        // Indexes are functional after restore.
        let hits = t
            .index_scan(0, &crate::index::KeyRange::eq(Value::Int(2)))
            .unwrap();
        assert_eq!(hits.len(), 2); // historical + successor
    }

    #[test]
    fn deterministic_encoding() {
        let a = encode_catalog(&build_catalog(), 2);
        let b = encode_catalog(&build_catalog(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let cat = build_catalog();
        let mut bytes = encode_catalog(&cat, 2);
        bytes[4] ^= 0xff; // corrupt magic
        assert!(decode_catalog(&bytes).is_err());
        let bytes = encode_catalog(&cat, 2);
        assert!(decode_catalog(&bytes[..bytes.len() - 3]).is_err());
    }

    // ------------------------------------------------- paged snapshots

    use crate::table::SEGMENT_SIZE;
    use bcrdb_common::ids::BlockHeight as Bh;

    fn paged_catalog(tag: &str) -> (Catalog, Arc<PagedStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("bcrdb-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = PagedStore::open(&dir, 32, false).unwrap();
        let cat = Catalog::with_store(Arc::clone(&store));
        let schema = TableSchema::new(
            "inv",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
            vec![0],
        )
        .unwrap();
        let t = cat.create_table(schema).unwrap();
        for i in 0..SEGMENT_SIZE + 7 {
            let (_, v) = t.append_version(
                TxId(1),
                vec![Value::Int(i as i64), Value::Text(format!("r{i}"))],
                UNASSIGNED_ROW_ID,
            );
            v.commit_create(1, t.alloc_row_id());
        }
        assert_eq!(t.spill(5, 5), 1, "segment 0 pages out");
        (cat, store, dir)
    }

    fn state_of(cat: &Catalog, table: &str) -> Vec<(RowId, Vec<Value>)> {
        cat.get(table)
            .unwrap()
            .all_versions()
            .iter()
            .map(|v| (v.row_id(), v.data.clone()))
            .collect()
    }

    #[test]
    fn v2_external_roundtrip_attaches_chains() {
        let (cat, store, dir) = paged_catalog("ext");
        let height: Bh = 5;
        store.checkpoint(height).unwrap();
        let bytes = encode_catalog(&cat, height);

        let (restored, h) = decode_catalog_with(&bytes, Some(&store)).unwrap();
        assert_eq!(h, height);
        let t = restored.get("inv").unwrap();
        // The spilled segment comes back attached, not faulted…
        assert_eq!(t.paged_segments(), vec![0]);
        // …with index entries already rebuilt from the chain.
        let hits = t
            .index_scan(0, &crate::index::KeyRange::eq(Value::Int(3)))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].data[1], Value::Text("r3".into()));
        // Full state identical (faults the chain in).
        assert_eq!(state_of(&restored, "inv"), state_of(&cat, "inv"));
        assert_eq!(
            t.row_id_watermark(),
            cat.get("inv").unwrap().row_id_watermark()
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn v2_external_rejects_stale_checkpoint() {
        let (cat, store, dir) = paged_catalog("stale");
        store.checkpoint(3).unwrap();
        // Snapshot claims height 9 but the page files were checkpointed
        // at 3 — different barriers, so restore must fall back.
        let bytes = encode_catalog(&cat, 9);
        assert!(decode_catalog_with(&bytes, Some(&store)).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn v2_inline_roundtrip_is_self_contained() {
        let (cat, store, dir) = paged_catalog("inline");
        store.checkpoint(5).unwrap();
        let bytes = encode_catalog_carry(&cat, 5, SnapshotCarry::Inline).unwrap();

        // A receiver with no paged store decodes everything resident.
        let (restored, h) = decode_catalog(&bytes).unwrap();
        assert_eq!(h, 5);
        let t = restored.get("inv").unwrap();
        assert!(t.paged_segments().is_empty());
        assert!(t.pager().is_none());
        assert_eq!(state_of(&restored, "inv"), state_of(&cat, "inv"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn v1_snapshot_decodes_onto_paged_store() {
        // Upgrade / fast-sync-from-unpaged-peer path: a v1 snapshot
        // restores onto a store-backed node with fresh page files.
        let cat = build_catalog();
        let bytes = encode_catalog(&cat, 2);
        let dir = std::env::temp_dir().join(format!("bcrdb-persist-v1up-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = PagedStore::open(&dir, 8, false).unwrap();
        let (restored, h) = decode_catalog_with(&bytes, Some(&store)).unwrap();
        assert_eq!(h, 2);
        let t = restored.get("inv").unwrap();
        assert!(t.pager().is_some(), "tables attach to the store");
        assert_eq!(t.version_count(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }
}
