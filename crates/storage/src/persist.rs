//! State-snapshot persistence.
//!
//! Recovery (§3.6 of the paper) is driven by re-executing blocks from the
//! block store; to bound replay time, a node periodically serializes its
//! *committed* state — all tables, full version history — to a snapshot
//! file, and replays only the blocks after the snapshot height on restart.
//! Only committed versions are persisted: in-flight and aborted versions
//! are reconstructed (or not) by replay.
//!
//! The encoding is the canonical codec, so a snapshot also doubles as a
//! deterministic full-state digest source for cross-node audits.

use std::sync::Arc;

use bcrdb_common::codec::{Decoder, Encoder};
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::schema::{Column, DataType, IndexDef, TableSchema};

use crate::catalog::Catalog;
use crate::table::Table;
use crate::version::Version;

/// Magic bytes prefixing every snapshot file.
const MAGIC: &[u8; 8] = b"BCRDBSS1";

/// Serialize the committed state of every table in the catalog at
/// `height`.
pub fn encode_catalog(catalog: &Catalog, height: BlockHeight) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(64 * 1024);
    enc.put_bytes(MAGIC);
    enc.put_u64(height);
    let names = catalog.table_names();
    enc.put_u32(names.len() as u32);
    for name in names {
        let table = catalog.get(&name).expect("listed table exists");
        encode_table(&mut enc, &table);
    }
    enc.finish().to_vec()
}

fn encode_table(enc: &mut Encoder, table: &Table) {
    let schema = table.schema();
    enc.put_str(&schema.name);
    enc.put_u32(schema.columns.len() as u32);
    for c in &schema.columns {
        enc.put_str(&c.name);
        enc.put_u8(dtype_tag(c.dtype));
        enc.put_bool(c.nullable);
    }
    enc.put_u32(schema.primary_key.len() as u32);
    for &pk in &schema.primary_key {
        enc.put_u32(pk as u32);
    }
    enc.put_u32(schema.indexes.len() as u32);
    for idx in &schema.indexes {
        enc.put_str(&idx.name);
        enc.put_u32(idx.column as u32);
        enc.put_bool(idx.unique);
    }
    enc.put_u64(table.row_id_watermark());

    // Persist committed versions only, in heap order.
    let committed: Vec<_> = table
        .all_versions()
        .into_iter()
        .filter(|v| {
            let st = v.state();
            !st.aborted && st.creator_block.is_some()
        })
        .collect();
    enc.put_u32(committed.len() as u32);
    for v in committed {
        let st = v.state();
        enc.put_u64(v.xmin.0);
        enc.put_u64(st.row_id.0);
        enc.put_u64(st.creator_block.expect("filtered to committed"));
        match st.deleter_block {
            Some(db) => {
                enc.put_bool(true);
                enc.put_u64(db);
                enc.put_u64(st.xmax_committed.map_or(0, |t| t.0));
            }
            None => enc.put_bool(false),
        }
        enc.put_row(&v.data);
    }
}

/// Restore a catalog from snapshot bytes; returns the snapshot height.
pub fn decode_catalog(bytes: &[u8]) -> Result<(Catalog, BlockHeight)> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_bytes()?;
    if magic != MAGIC {
        return Err(Error::Codec("bad snapshot magic".into()));
    }
    let height = dec.get_u64()?;
    let catalog = Catalog::new();
    let table_count = dec.get_u32()?;
    for _ in 0..table_count {
        let table = decode_table(&mut dec)?;
        catalog.install_table(Arc::new(table));
    }
    if !dec.is_exhausted() {
        return Err(Error::Codec("trailing bytes in snapshot".into()));
    }
    Ok((catalog, height))
}

fn decode_table(dec: &mut Decoder<'_>) -> Result<Table> {
    let name = dec.get_str()?;
    let col_count = dec.get_u32()?;
    let mut columns = Vec::with_capacity(col_count as usize);
    for _ in 0..col_count {
        let cname = dec.get_str()?;
        let dtype = dtype_from_tag(dec.get_u8()?)?;
        let nullable = dec.get_bool()?;
        columns.push(Column {
            name: cname,
            dtype,
            nullable,
        });
    }
    let pk_count = dec.get_u32()?;
    let mut primary_key = Vec::with_capacity(pk_count as usize);
    for _ in 0..pk_count {
        primary_key.push(dec.get_u32()? as usize);
    }
    let mut schema = TableSchema::new(name, columns, primary_key)?;
    let idx_count = dec.get_u32()?;
    for _ in 0..idx_count {
        let iname = dec.get_str()?;
        let column = dec.get_u32()? as usize;
        let unique = dec.get_bool()?;
        schema.indexes.push(IndexDef {
            name: iname,
            column,
            unique,
        });
    }
    let watermark = dec.get_u64()?;
    let table = Table::new(schema);
    table.set_row_id_watermark(watermark);

    let version_count = dec.get_u32()?;
    for _ in 0..version_count {
        let xmin = TxId(dec.get_u64()?);
        let row_id = RowId(dec.get_u64()?);
        let creator = dec.get_u64()?;
        let (deleter, xmax) = if dec.get_bool()? {
            let db = dec.get_u64()?;
            let xm = dec.get_u64()?;
            (Some(db), if xm == 0 { None } else { Some(TxId(xm)) })
        } else {
            (None, None)
        };
        let data = dec.get_row()?;
        table.append_restored(Version::restored(
            xmin, data, row_id, creator, deleter, xmax,
        ));
    }
    Ok(table)
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bytes => 4,
        DataType::Timestamp => 5,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bytes,
        5 => DataType::Timestamp,
        other => return Err(Error::Codec(format!("bad dtype tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::UNASSIGNED_ROW_ID;
    use bcrdb_common::value::Value;

    fn build_catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = TableSchema::new(
            "inv",
            vec![
                Column::new("id", DataType::Int),
                Column::nullable("amount", DataType::Float),
            ],
            vec![0],
        )
        .unwrap();
        let t = cat.create_table(schema).unwrap();
        t.add_index("idx_amount", "amount").unwrap();

        // One live row, one updated (historical + successor), one aborted,
        // one in-flight — only committed versions should survive.
        let (_, v1) = t.append_version(
            TxId(1),
            vec![Value::Int(1), Value::Float(5.0)],
            UNASSIGNED_ROW_ID,
        );
        let r1 = t.alloc_row_id();
        v1.commit_create(1, r1);

        let (_, v2) = t.append_version(
            TxId(2),
            vec![Value::Int(2), Value::Float(7.5)],
            UNASSIGNED_ROW_ID,
        );
        let r2 = t.alloc_row_id();
        v2.commit_create(1, r2);
        v2.add_pending_writer(TxId(3));
        v2.commit_delete(TxId(3), 2);
        let (_, v2b) = t.append_version(TxId(3), vec![Value::Int(2), Value::Float(9.0)], r2);
        v2b.commit_create(2, r2);

        let (_, va) =
            t.append_version(TxId(4), vec![Value::Int(3), Value::Null], UNASSIGNED_ROW_ID);
        va.abort_create();
        let (_, _inflight) =
            t.append_version(TxId(5), vec![Value::Int(4), Value::Null], UNASSIGNED_ROW_ID);
        cat
    }

    #[test]
    fn roundtrip_preserves_committed_state() {
        let cat = build_catalog();
        let bytes = encode_catalog(&cat, 2);
        let (restored, height) = decode_catalog(&bytes).unwrap();
        assert_eq!(height, 2);

        let t = restored.get("inv").unwrap();
        // 3 committed versions (live, historical, successor); aborted and
        // in-flight dropped.
        assert_eq!(t.version_count(), 3);
        assert_eq!(t.live_row_count(), 2);
        assert_eq!(
            t.row_id_watermark(),
            cat.get("inv").unwrap().row_id_watermark()
        );
        // Schema round-trips with indexes.
        let schema = t.schema();
        assert_eq!(schema.indexes.len(), 1);
        assert_eq!(schema.primary_key, vec![0]);
        // Indexes are functional after restore.
        let hits = t
            .index_scan(0, &crate::index::KeyRange::eq(Value::Int(2)))
            .unwrap();
        assert_eq!(hits.len(), 2); // historical + successor
    }

    #[test]
    fn deterministic_encoding() {
        let a = encode_catalog(&build_catalog(), 2);
        let b = encode_catalog(&build_catalog(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let cat = build_catalog();
        let mut bytes = encode_catalog(&cat, 2);
        bytes[4] ^= 0xff; // corrupt magic
        assert!(decode_catalog(&bytes).is_err());
        let bytes = encode_catalog(&cat, 2);
        assert!(decode_catalog(&bytes[..bytes.len() - 3]).is_err());
    }
}
