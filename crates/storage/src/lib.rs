#![deny(missing_docs)]
//! # bcrdb-storage
//!
//! The MVCC storage engine underneath the blockchain relational database.
//!
//! Modeled on PostgreSQL's storage as described in §4.1 of the paper:
//! every row version carries `xmin`/`xmax` transaction stamps, *plus* the
//! paper's two new fields — the **creator block number** and **deleter
//! block number** (§3.4.1, Figure 3) — which enable snapshot isolation
//! based on block height. Updates never modify rows in place: an UPDATE is
//! a delete-flag on the old version and an insert of a new version sharing
//! the same logical [`bcrdb_common::RowId`]; nothing is purged except by an
//! explicit [`table::Table::vacuum`], which is what makes provenance
//! queries over full row history possible (§4.2).
//!
//! Crucially for cross-node determinism, **row ids are assigned at commit
//! time** (commits are serialized in block order by the node), and all
//! scans order results by `(key, row_id)` — so independently executing
//! replicas observe identical scan orders and produce identical write-set
//! hashes during the checkpointing phase.

pub mod catalog;
pub mod index;
pub mod page;
pub mod pager;
pub mod persist;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod version;

pub use catalog::Catalog;
pub use index::BTreeIndex;
pub use pager::{PagedStore, PagerFile};
pub use snapshot::{Classification, ScanMode, Snapshot};
pub use table::Table;
pub use version::{Version, VersionState};
