//! Row versions.
//!
//! A [`Version`] is one immutable row image plus a small mutable state
//! block protected by a mutex. The mutable state mirrors PostgreSQL's
//! tuple header as extended by the paper (§4.3):
//!
//! * `creator_block` — block that committed this version (`None` while the
//!   creating transaction is still in flight);
//! * `deleter_block` — block that committed this version's deletion;
//! * `xmax` — **an array** of in-flight writer transaction ids. The paper
//!   replaces PostgreSQL's exclusive row lock with an xmax *array* so that
//!   concurrent transactions may all "write" the row during the execution
//!   phase, with the block-order commit phase choosing the single winner
//!   and dooming the rest (§3.3.3, §4.3);
//! * `aborted` — set when the creating transaction aborts, making the
//!   version permanently invisible (the analogue of a dead tuple).

use bcrdb_common::ids::{BlockHeight, RowId, TxId};
use bcrdb_common::value::Row;
use parking_lot::Mutex;

/// Mutable portion of a version's header.
#[derive(Clone, Debug)]
pub struct VersionState {
    /// Block that committed the creating transaction.
    pub creator_block: Option<BlockHeight>,
    /// Block that committed the deleting transaction.
    pub deleter_block: Option<BlockHeight>,
    /// The winning deleter (set when `deleter_block` is set).
    pub xmax_committed: Option<TxId>,
    /// In-flight writers that have flagged this version for delete/update.
    pub xmax_pending: Vec<TxId>,
    /// The creating transaction aborted; version is dead.
    pub aborted: bool,
    /// Commit-time row id. `RowId(u64::MAX)` until the creating transaction
    /// commits (row ids are assigned serially at commit to be identical on
    /// every node). Versions created by an UPDATE inherit the id of the
    /// updated row at write time.
    pub row_id: RowId,
}

impl Default for VersionState {
    fn default() -> Self {
        VersionState {
            creator_block: None,
            deleter_block: None,
            xmax_committed: None,
            xmax_pending: Vec::new(),
            aborted: false,
            row_id: UNASSIGNED_ROW_ID,
        }
    }
}

/// Sentinel for "row id not yet assigned".
pub const UNASSIGNED_ROW_ID: RowId = RowId(u64::MAX);

/// One version of a row.
#[derive(Debug)]
pub struct Version {
    /// Creating transaction (local id).
    pub xmin: TxId,
    /// The row image (immutable once written).
    pub data: Row,
    state: Mutex<VersionState>,
}

impl Version {
    /// Create a fresh in-flight version. `row_id` is
    /// [`UNASSIGNED_ROW_ID`] for INSERTs and the existing row's id for
    /// UPDATE-created successors.
    pub fn new(xmin: TxId, data: Row, row_id: RowId) -> Version {
        Version {
            xmin,
            data,
            state: Mutex::new(VersionState {
                row_id,
                ..VersionState::default()
            }),
        }
    }

    /// Construct a fully committed version directly (used when restoring a
    /// persisted state snapshot).
    pub fn restored(
        xmin: TxId,
        data: Row,
        row_id: RowId,
        creator_block: BlockHeight,
        deleter_block: Option<BlockHeight>,
        xmax_committed: Option<TxId>,
    ) -> Version {
        Version {
            xmin,
            data,
            state: Mutex::new(VersionState {
                creator_block: Some(creator_block),
                deleter_block,
                xmax_committed,
                xmax_pending: Vec::new(),
                aborted: false,
                row_id,
            }),
        }
    }

    /// Consistent copy of the mutable header.
    pub fn state(&self) -> VersionState {
        self.state.lock().clone()
    }

    /// The commit-time row id (or [`UNASSIGNED_ROW_ID`]).
    pub fn row_id(&self) -> RowId {
        self.state.lock().row_id
    }

    /// Register `tx` as a pending writer (UPDATE/DELETE intent). Returns the
    /// ids of the *other* pending writers at that moment so the caller can
    /// record rw/ww conflicts. Idempotent per transaction.
    pub fn add_pending_writer(&self, tx: TxId) -> Vec<TxId> {
        let mut st = self.state.lock();
        let others: Vec<TxId> = st
            .xmax_pending
            .iter()
            .copied()
            .filter(|t| *t != tx)
            .collect();
        if !st.xmax_pending.contains(&tx) {
            st.xmax_pending.push(tx);
        }
        others
    }

    /// Remove a pending writer (on abort, or after losing a ww conflict).
    pub fn remove_pending_writer(&self, tx: TxId) {
        let mut st = self.state.lock();
        st.xmax_pending.retain(|t| *t != tx);
    }

    /// All pending writers except `exclude`.
    pub fn pending_writers_except(&self, exclude: TxId) -> Vec<TxId> {
        self.state
            .lock()
            .xmax_pending
            .iter()
            .copied()
            .filter(|t| *t != exclude)
            .collect()
    }

    /// Commit this version's creation: stamp the creator block and the
    /// final row id.
    pub fn commit_create(&self, block: BlockHeight, row_id: RowId) {
        let mut st = self.state.lock();
        debug_assert!(st.creator_block.is_none(), "version committed twice");
        st.creator_block = Some(block);
        st.row_id = row_id;
    }

    /// The creating transaction aborted.
    pub fn abort_create(&self) {
        let mut st = self.state.lock();
        st.aborted = true;
    }

    /// Commit a deletion by `tx` at `block`. Returns the pending writers
    /// that lost the ww race (every pending writer other than `tx`); the
    /// caller dooms them per §4.3 ("marks all other transactions for abort
    /// as only one transaction can write to the row").
    pub fn commit_delete(&self, tx: TxId, block: BlockHeight) -> Vec<TxId> {
        let mut st = self.state.lock();
        debug_assert!(st.deleter_block.is_none(), "version deleted twice");
        st.deleter_block = Some(block);
        st.xmax_committed = Some(tx);
        let losers = st
            .xmax_pending
            .iter()
            .copied()
            .filter(|t| *t != tx)
            .collect();
        st.xmax_pending.clear();
        losers
    }

    /// True if this version is committed and not yet superseded — i.e. the
    /// current image of its logical row.
    pub fn is_live(&self) -> bool {
        let st = self.state.lock();
        !st.aborted && st.creator_block.is_some() && st.deleter_block.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_common::value::Value;

    fn v() -> Version {
        Version::new(TxId(1), vec![Value::Int(1)], UNASSIGNED_ROW_ID)
    }

    #[test]
    fn lifecycle_insert_commit() {
        let ver = v();
        assert!(!ver.is_live());
        ver.commit_create(5, RowId(7));
        assert!(ver.is_live());
        let st = ver.state();
        assert_eq!(st.creator_block, Some(5));
        assert_eq!(st.row_id, RowId(7));
    }

    #[test]
    fn lifecycle_insert_abort() {
        let ver = v();
        ver.abort_create();
        assert!(!ver.is_live());
        assert!(ver.state().aborted);
    }

    #[test]
    fn xmax_array_concurrent_writers() {
        let ver = v();
        ver.commit_create(1, RowId(1));
        // Two concurrent writers both flag the row (no lock wait — the
        // paper's xmax-array semantics).
        let others = ver.add_pending_writer(TxId(10));
        assert!(others.is_empty());
        let others = ver.add_pending_writer(TxId(11));
        assert_eq!(others, vec![TxId(10)]);
        // Re-adding is idempotent.
        ver.add_pending_writer(TxId(10));
        assert_eq!(ver.state().xmax_pending.len(), 2);
        // Winner commits; loser is reported.
        let losers = ver.commit_delete(TxId(10), 2);
        assert_eq!(losers, vec![TxId(11)]);
        let st = ver.state();
        assert_eq!(st.deleter_block, Some(2));
        assert_eq!(st.xmax_committed, Some(TxId(10)));
        assert!(st.xmax_pending.is_empty());
        assert!(!ver.is_live());
    }

    #[test]
    fn pending_writer_removal() {
        let ver = v();
        ver.commit_create(1, RowId(1));
        ver.add_pending_writer(TxId(5));
        ver.remove_pending_writer(TxId(5));
        assert!(ver.state().xmax_pending.is_empty());
        assert!(ver.pending_writers_except(TxId(5)).is_empty());
    }

    #[test]
    fn restored_version_is_committed() {
        let ver = Version::restored(TxId(3), vec![Value::Int(9)], RowId(4), 10, None, None);
        assert!(ver.is_live());
        let ver = Version::restored(
            TxId(3),
            vec![Value::Int(9)],
            RowId(4),
            10,
            Some(12),
            Some(TxId(8)),
        );
        assert!(!ver.is_live());
        assert_eq!(ver.state().deleter_block, Some(12));
    }
}
