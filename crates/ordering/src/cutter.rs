//! Block cutting: batch pending transactions by size or timeout (§4.4).

use std::time::{Duration, Instant};

use bcrdb_chain::block::CheckpointVote;
use bcrdb_chain::tx::Transaction;

/// A batch ready to become a block.
#[derive(Debug)]
pub struct Cut {
    /// Ordered transactions.
    pub txs: Vec<Transaction>,
    /// Checkpoint votes to embed in the block's metadata.
    pub votes: Vec<CheckpointVote>,
}

/// Accumulates transactions and checkpoint votes; cuts when the batch
/// reaches `block_size` or `timeout` after the first pending transaction.
pub struct BlockCutter {
    block_size: usize,
    timeout: Duration,
    pending: Vec<Transaction>,
    votes: Vec<CheckpointVote>,
    first_at: Option<Instant>,
}

impl BlockCutter {
    /// New cutter.
    pub fn new(block_size: usize, timeout: Duration) -> BlockCutter {
        BlockCutter {
            block_size: block_size.max(1),
            timeout,
            pending: Vec::new(),
            votes: Vec::new(),
            first_at: None,
        }
    }

    /// Number of pending transactions.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Enqueue a transaction; returns a cut when the size bound is hit.
    pub fn push_tx(&mut self, tx: Transaction, now: Instant) -> Option<Cut> {
        if self.pending.is_empty() {
            self.first_at = Some(now);
        }
        self.pending.push(tx);
        if self.pending.len() >= self.block_size {
            return Some(self.cut());
        }
        None
    }

    /// Enqueue a checkpoint vote (rides along with the next block).
    pub fn push_vote(&mut self, vote: CheckpointVote) {
        self.votes.push(vote);
    }

    /// Cut if the timeout since the first pending transaction has expired
    /// (the "time-to-cut" message of §4.4).
    pub fn poll_timeout(&mut self, now: Instant) -> Option<Cut> {
        match self.first_at {
            Some(first)
                if now.duration_since(first) >= self.timeout && !self.pending.is_empty() =>
            {
                Some(self.cut())
            }
            _ => None,
        }
    }

    /// How long until the timeout would fire (None when nothing pending).
    pub fn time_until_cut(&self, now: Instant) -> Option<Duration> {
        self.first_at
            .map(|first| (first + self.timeout).saturating_duration_since(now))
    }

    fn cut(&mut self) -> Cut {
        self.first_at = None;
        Cut {
            txs: std::mem::take(&mut self.pending),
            votes: std::mem::take(&mut self.votes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_chain::tx::Payload;
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{KeyPair, Scheme};

    fn tx(n: u64) -> Transaction {
        let key = KeyPair::generate("c", b"seed", Scheme::Sim);
        Transaction::new_order_execute("c", Payload::new("f", vec![Value::Int(n as i64)]), n, &key)
            .unwrap()
    }

    #[test]
    fn cuts_on_size() {
        let mut c = BlockCutter::new(3, Duration::from_secs(60));
        let now = Instant::now();
        assert!(c.push_tx(tx(1), now).is_none());
        assert!(c.push_tx(tx(2), now).is_none());
        let cut = c.push_tx(tx(3), now).expect("size bound reached");
        assert_eq!(cut.txs.len(), 3);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn cuts_on_timeout() {
        let mut c = BlockCutter::new(100, Duration::from_millis(50));
        let t0 = Instant::now();
        c.push_tx(tx(1), t0);
        assert!(c.poll_timeout(t0 + Duration::from_millis(10)).is_none());
        let cut = c
            .poll_timeout(t0 + Duration::from_millis(51))
            .expect("timeout fired");
        assert_eq!(cut.txs.len(), 1);
        // Nothing pending → no further cut.
        assert!(c.poll_timeout(t0 + Duration::from_secs(9)).is_none());
        assert!(c.time_until_cut(t0).is_none());
    }

    #[test]
    fn timeout_counts_from_first_tx() {
        let mut c = BlockCutter::new(100, Duration::from_millis(100));
        let t0 = Instant::now();
        c.push_tx(tx(1), t0);
        c.push_tx(tx(2), t0 + Duration::from_millis(90));
        // 95 ms after the FIRST tx → not yet; 100 ms after → cut both.
        assert!(c.poll_timeout(t0 + Duration::from_millis(95)).is_none());
        let cut = c.poll_timeout(t0 + Duration::from_millis(100)).unwrap();
        assert_eq!(cut.txs.len(), 2);
    }

    #[test]
    fn votes_ride_with_next_cut() {
        let mut c = BlockCutter::new(1, Duration::from_secs(1));
        c.push_vote(CheckpointVote {
            node: "n".into(),
            block: 1,
            state_hash: [0u8; 32],
        });
        let cut = c.push_tx(tx(1), Instant::now()).unwrap();
        assert_eq!(cut.votes.len(), 1);
        // Votes drained: the next cut has none.
        let cut = c.push_tx(tx(2), Instant::now()).unwrap();
        assert!(cut.votes.is_empty());
    }

    #[test]
    fn zero_block_size_clamped() {
        let mut c = BlockCutter::new(0, Duration::from_secs(1));
        assert!(c.push_tx(tx(1), Instant::now()).is_some());
    }
}
