//! Ordering-service configuration.

use std::time::Duration;

use bcrdb_crypto::identity::Scheme;
use bcrdb_network::NetProfile;

/// Consensus backend selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingKind {
    /// Single orderer node.
    Solo,
    /// Kafka-style CFT: totally ordered topic, flat scaling.
    Kafka,
    /// BFT-SMaRt-style PBFT rounds with O(n²) messages.
    Bft,
}

impl OrderingKind {
    /// Metadata string recorded in blocks.
    pub fn as_str(&self) -> &'static str {
        match self {
            OrderingKind::Solo => "solo",
            OrderingKind::Kafka => "kafka",
            OrderingKind::Bft => "bft",
        }
    }
}

/// Configuration for [`crate::OrderingService`].
#[derive(Clone, Debug)]
pub struct OrderingConfig {
    /// Backend.
    pub kind: OrderingKind,
    /// Number of orderer nodes.
    pub orderers: usize,
    /// Maximum transactions per block.
    pub block_size: usize,
    /// Maximum time since the first pending transaction before a block is
    /// cut anyway (the paper uses 1 s).
    pub block_timeout: Duration,
    /// Per-message processing cost applied by each BFT replica.
    ///
    /// Calibration knob for Fig 8(b): it stands in for BFT-SMaRt's
    /// per-message signature and I/O work on the paper's 32-vCPU testbed.
    /// The default (2 ms) makes a 32-orderer network bottom out around the
    /// paper's ~650 tps while 4 orderers stay arrival-limited.
    pub bft_msg_cost: Duration,
    /// Publishing cost per message for the Kafka sequencer (usually zero:
    /// the paper's Kafka cluster is never the bottleneck).
    pub kafka_publish_cost: Duration,
    /// BFT backend only: how long a replica with pending work waits for
    /// progress (a delivery or a proposal) before voting the leader out.
    /// PBFT's view-change timer; must comfortably exceed `block_timeout`
    /// plus a consensus round.
    pub view_change_timeout: Duration,
    /// Network profile for orderer-to-orderer consensus traffic.
    pub net_profile: NetProfile,
    /// Signature scheme for orderer identities.
    pub scheme: Scheme,
}

impl OrderingConfig {
    /// Solo orderer with the given block size/timeout.
    pub fn solo(block_size: usize, block_timeout: Duration) -> OrderingConfig {
        OrderingConfig {
            kind: OrderingKind::Solo,
            orderers: 1,
            block_size,
            block_timeout,
            bft_msg_cost: Duration::from_millis(2),
            kafka_publish_cost: Duration::ZERO,
            view_change_timeout: Duration::from_secs(2),
            net_profile: NetProfile::lan(),
            scheme: Scheme::Sim,
        }
    }

    /// Kafka-style service with `orderers` nodes.
    pub fn kafka(orderers: usize, block_size: usize, block_timeout: Duration) -> OrderingConfig {
        OrderingConfig {
            kind: OrderingKind::Kafka,
            orderers: orderers.max(1),
            ..OrderingConfig::solo(block_size, block_timeout)
        }
    }

    /// BFT service with `orderers` nodes.
    pub fn bft(orderers: usize, block_size: usize, block_timeout: Duration) -> OrderingConfig {
        OrderingConfig {
            kind: OrderingKind::Bft,
            orderers: orderers.max(1),
            ..OrderingConfig::solo(block_size, block_timeout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = OrderingConfig::solo(10, Duration::from_millis(100));
        assert_eq!(c.kind, OrderingKind::Solo);
        assert_eq!(c.orderers, 1);
        let c = OrderingConfig::kafka(3, 100, Duration::from_secs(1));
        assert_eq!(c.kind.as_str(), "kafka");
        assert_eq!(c.orderers, 3);
        let c = OrderingConfig::bft(0, 100, Duration::from_secs(1));
        assert_eq!(c.orderers, 1, "clamped to at least one orderer");
    }
}
