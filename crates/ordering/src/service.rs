//! The ordering service: public API plus the solo/Kafka sequencer.
//!
//! Clients (or peers acting for them) submit signed transactions; the
//! service batches them into blocks by size/timeout and delivers the
//! blocks to subscribed peers. Each orderer node has its own identity and
//! signs the canonical block it delivers (§3.1: "(f) digital signature on
//! the hash of the current block by the orderer node").

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::block::{genesis_prev_hash, Block, CheckpointVote};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role};
use bcrdb_crypto::sha256::Digest;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::bft::{self, BftHandle};

/// Per-organization block delivery channels (one slot per subscriber
/// index, each holding the senders registered for that organization).
pub(crate) type BlockSubscribers = Arc<Vec<Mutex<Vec<Sender<Arc<Block>>>>>>;
use crate::config::{OrderingConfig, OrderingKind};
use crate::cutter::{BlockCutter, Cut};

/// Input to the ordering pipeline.
pub enum Input {
    /// A client transaction.
    Tx(Box<Transaction>),
    /// A checkpoint vote from a database node (§3.3.4).
    Vote(CheckpointVote),
    /// Shut the pipeline down.
    Stop,
}

/// Counters exposed for the Fig 8(b) experiment and the node Metrics RPC.
#[derive(Default)]
pub struct OrderingStats {
    /// Blocks delivered.
    pub blocks: AtomicU64,
    /// Transactions ordered into blocks.
    pub txs: AtomicU64,
    /// Transactions forwarded into the service (accepted submissions).
    pub forwarded: AtomicU64,
    /// Blocks cut/proposed by a leader or sequencer (≥ `blocks`: a
    /// proposal in flight when its leader dies is re-proposed).
    pub cut: AtomicU64,
    /// Current BFT view number (0 for solo/Kafka and before any
    /// rotation).
    pub current_view: AtomicU64,
    /// Successful view changes installed since start.
    pub view_changes: AtomicU64,
}

impl OrderingStats {
    /// Plain-value snapshot of every counter.
    pub fn snapshot(&self) -> OrderingStatsSnapshot {
        OrderingStatsSnapshot {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            cut: self.cut.load(Ordering::Relaxed),
            delivered: self.blocks.load(Ordering::Relaxed),
            txs: self.txs.load(Ordering::Relaxed),
            current_view: self.current_view.load(Ordering::Relaxed),
            view_changes: self.view_changes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value view of [`OrderingStats`] (what the node Metrics RPC and
/// tests consume).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderingStatsSnapshot {
    /// Transactions forwarded into the service.
    pub forwarded: u64,
    /// Blocks cut/proposed.
    pub cut: u64,
    /// Blocks delivered.
    pub delivered: u64,
    /// Transactions ordered into delivered blocks.
    pub txs: u64,
    /// Current BFT view.
    pub current_view: u64,
    /// View changes installed.
    pub view_changes: u64,
}

/// Handle to a running ordering service.
pub struct OrderingService {
    config: OrderingConfig,
    input: Sender<Input>,
    subscribers: BlockSubscribers,
    keys: Vec<Arc<KeyPair>>,
    next_sub: AtomicUsize,
    height: Arc<AtomicU64>,
    stats: Arc<OrderingStats>,
    /// Liveness per orderer node: flipped off by
    /// [`OrderingService::stop_orderer`] so subscriptions route to a live
    /// replica.
    alive: Vec<AtomicBool>,
    bft: Option<BftHandle>,
}

/// Name of orderer node `i` as registered in the certificate registry.
pub fn orderer_name(i: usize) -> String {
    format!("ordering/orderer{i}")
}

impl OrderingService {
    /// Start the service: generates orderer identities (registering their
    /// certificates with `certs`) and spawns the consensus threads.
    pub fn start(config: OrderingConfig, certs: &Arc<CertificateRegistry>) -> Arc<OrderingService> {
        let keys: Vec<Arc<KeyPair>> = (0..config.orderers)
            .map(|i| {
                let name = orderer_name(i);
                let key = Arc::new(KeyPair::generate(
                    name.clone(),
                    format!("orderer-seed-{i}").as_bytes(),
                    config.scheme,
                ));
                certs.register(Certificate {
                    name,
                    org: "ordering".into(),
                    role: Role::Orderer,
                    public_key: key.public_key(),
                });
                key
            })
            .collect();

        let subscribers: BlockSubscribers = Arc::new(
            (0..config.orderers)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        );
        let height = Arc::new(AtomicU64::new(0));
        let stats = Arc::new(OrderingStats::default());
        let (input_tx, input_rx) = unbounded();

        let bft = match config.kind {
            OrderingKind::Solo | OrderingKind::Kafka => {
                let seq = Sequencer {
                    config: config.clone(),
                    keys: keys.clone(),
                    subscribers: Arc::clone(&subscribers),
                    height: Arc::clone(&height),
                    stats: Arc::clone(&stats),
                };
                std::thread::Builder::new()
                    .name("ordering-sequencer".into())
                    .spawn(move || seq.run(input_rx))
                    .expect("spawn sequencer");
                None
            }
            OrderingKind::Bft => Some(bft::start(
                &config,
                keys.clone(),
                Arc::clone(&subscribers),
                Arc::clone(&height),
                Arc::clone(&stats),
                input_rx,
            )),
        };

        let alive = (0..config.orderers)
            .map(|_| AtomicBool::new(true))
            .collect();
        Arc::new(OrderingService {
            config,
            input: input_tx,
            subscribers,
            keys,
            next_sub: AtomicUsize::new(0),
            height,
            stats,
            alive,
            bft,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &OrderingConfig {
        &self.config
    }

    /// Orderer identities (for tests and peers that pin an orderer).
    pub fn orderer_names(&self) -> Vec<String> {
        self.keys.iter().map(|k| k.name().to_string()).collect()
    }

    /// Submit a transaction for ordering.
    pub fn submit(&self, tx: Transaction) -> Result<()> {
        self.input
            .send(Input::Tx(Box::new(tx)))
            .map_err(|_| Error::Shutdown("ordering service stopped".into()))?;
        self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Submit a checkpoint vote; it is embedded in a subsequent block.
    pub fn submit_checkpoint(&self, vote: CheckpointVote) -> Result<()> {
        self.input
            .send(Input::Vote(vote))
            .map_err(|_| Error::Shutdown("ordering service stopped".into()))
    }

    /// Subscribe a peer for block delivery; peers are assigned to orderer
    /// nodes round-robin (each organization's peer connects to "its"
    /// orderer in the paper's deployment).
    pub fn subscribe(&self) -> Receiver<Arc<Block>> {
        let idx = self.next_sub.fetch_add(1, Ordering::Relaxed) % self.subscribers.len();
        self.subscribe_to(idx)
    }

    /// Subscribe to a specific orderer node. If that node was stopped
    /// ([`OrderingService::stop_orderer`]), the subscription fails over
    /// to the next live one — the paper's peers reconnect to another
    /// orderer when theirs goes away.
    pub fn subscribe_to(&self, orderer: usize) -> Receiver<Arc<Block>> {
        let n = self.subscribers.len();
        let mut idx = orderer % n;
        for probe in 0..n {
            let candidate = (orderer + probe) % n;
            if self.alive[candidate].load(Ordering::Relaxed) {
                idx = candidate;
                break;
            }
        }
        let (tx, rx) = unbounded();
        self.subscribers[idx].lock().push(tx);
        rx
    }

    /// Number of blocks delivered so far.
    pub fn height(&self) -> BlockHeight {
        self.height.load(Ordering::Relaxed)
    }

    /// Delivery counters: `(blocks delivered, transactions ordered)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.stats.blocks.load(Ordering::Relaxed),
            self.stats.txs.load(Ordering::Relaxed),
        )
    }

    /// Full counter snapshot (forwarded, cut, delivered, view state).
    pub fn stats_snapshot(&self) -> OrderingStatsSnapshot {
        self.stats.snapshot()
    }

    /// The current BFT view (0 for solo/Kafka).
    pub fn current_view(&self) -> u64 {
        self.stats.current_view.load(Ordering::Relaxed)
    }

    /// Crash orderer node `idx` (BFT backend only): its replica thread
    /// winds down, its consensus endpoint vanishes, and peers subscribed
    /// to it are re-homed to the next live orderer — they may see a
    /// duplicate or a gap at the splice point, which the node-level block
    /// processor resolves (duplicates are dropped by height; gaps trigger
    /// peer catch-up). The remaining replicas install a new view the next
    /// time work is pending and the dead leader makes no progress.
    pub fn stop_orderer(&self, idx: usize) -> Result<()> {
        let bft = self.bft.as_ref().ok_or_else(|| {
            Error::Config("stop_orderer: only the BFT backend models orderer crashes".into())
        })?;
        if idx >= self.config.orderers {
            return Err(Error::NotFound(format!("orderer {idx}")));
        }
        bft.stop_replica(idx)?;
        self.alive[idx].store(false, Ordering::Relaxed);
        // Re-home the dead orderer's subscribers onto a live replica.
        let target = (0..self.config.orderers)
            .map(|probe| (idx + 1 + probe) % self.config.orderers)
            .find(|i| self.alive[*i].load(Ordering::Relaxed));
        if let Some(target) = target {
            let moved: Vec<_> = self.subscribers[idx].lock().drain(..).collect();
            self.subscribers[target].lock().extend(moved);
        }
        Ok(())
    }

    /// Stall orderer node `idx` (BFT backend only): the replica stays
    /// registered but stops processing — a hung leader. Undo with
    /// [`OrderingService::unstall_orderer`]; queued messages are
    /// processed on resume and the replica adopts whatever view the rest
    /// of the network moved to.
    pub fn stall_orderer(&self, idx: usize) -> Result<()> {
        self.set_stalled(idx, true)
    }

    /// Resume a stalled orderer node.
    pub fn unstall_orderer(&self, idx: usize) -> Result<()> {
        self.set_stalled(idx, false)
    }

    /// Cut orderer node `idx` off the consensus network, or heal it (BFT
    /// backend only). While cut off its consensus traffic is dropped
    /// silently — unlike [`OrderingService::stall_orderer`], the messages
    /// are *lost*, so a long partition leaves the replica genuinely
    /// behind; on heal it catches up through the ordering-layer fetch
    /// path (fast-forwarding if it lagged beyond what peers retain).
    pub fn partition_orderer(&self, idx: usize, partitioned: bool) -> Result<()> {
        let bft = self.bft.as_ref().ok_or_else(|| {
            Error::Config(
                "partition_orderer: only the BFT backend models orderer partitions".into(),
            )
        })?;
        bft.partition_replica(idx, partitioned)
    }

    fn set_stalled(&self, idx: usize, stalled: bool) -> Result<()> {
        let bft = self.bft.as_ref().ok_or_else(|| {
            Error::Config("stall_orderer: only the BFT backend models orderer stalls".into())
        })?;
        bft.stall_replica(idx, stalled)
    }

    /// Stop all threads.
    pub fn shutdown(&self) {
        let _ = self.input.send(Input::Stop);
        if let Some(bft) = &self.bft {
            bft.shutdown();
        }
    }
}

/// Sign the canonical block once per orderer and deliver to that orderer's
/// subscribers. Shared by the sequencer and the BFT replicas.
pub(crate) fn deliver_block(
    canonical: &Block,
    orderer_idx: usize,
    key: &KeyPair,
    subscribers: &[Mutex<Vec<Sender<Arc<Block>>>>],
) {
    let mut signed = canonical.clone();
    if signed.sign(key).is_err() {
        // Key exhaustion: deliver unsigned (peers will reject; surfaced in
        // tests as a verification failure rather than a hang).
    }
    let arc = Arc::new(signed);
    let mut subs = subscribers[orderer_idx].lock();
    // Delivering doubles as pruning: a dropped receiver (stopped node's
    // retired relay) fails the send and its sender is removed, so
    // repeated stop/rejoin cycles cannot grow the subscriber list.
    subs.retain(|s| s.send(Arc::clone(&arc)).is_ok());
}

/// The solo/Kafka sequencer: a single total order, identical block stream
/// delivered through every orderer node.
struct Sequencer {
    config: OrderingConfig,
    keys: Vec<Arc<KeyPair>>,
    subscribers: BlockSubscribers,
    height: Arc<AtomicU64>,
    stats: Arc<OrderingStats>,
}

impl Sequencer {
    fn run(self, rx: Receiver<Input>) {
        let mut cutter = BlockCutter::new(self.config.block_size, self.config.block_timeout);
        let mut next_number: BlockHeight = 1;
        let mut prev_hash: Digest = genesis_prev_hash();
        loop {
            let wait = cutter
                // bcrdb-lint: allow(wall-clock, reason = "block-cut timeout; orderer-local, the cut block is what replicates")
                .time_until_cut(Instant::now())
                .unwrap_or(Duration::from_millis(100))
                .min(Duration::from_millis(100));
            match rx.recv_timeout(wait) {
                Ok(Input::Tx(tx)) => {
                    if !self.config.kafka_publish_cost.is_zero() {
                        std::thread::sleep(self.config.kafka_publish_cost);
                    }
                    // bcrdb-lint: allow(wall-clock, reason = "block-cut timeout; orderer-local, the cut block is what replicates")
                    if let Some(cut) = cutter.push_tx(*tx, Instant::now()) {
                        self.emit(cut, &mut next_number, &mut prev_hash);
                    }
                }
                Ok(Input::Vote(v)) => cutter.push_vote(v),
                Ok(Input::Stop) => return,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
            }
            // bcrdb-lint: allow(wall-clock, reason = "block-cut timeout; orderer-local, the cut block is what replicates")
            if let Some(cut) = cutter.poll_timeout(Instant::now()) {
                self.emit(cut, &mut next_number, &mut prev_hash);
            }
        }
    }

    fn emit(&self, cut: Cut, next_number: &mut BlockHeight, prev_hash: &mut Digest) {
        let block = Block::build(
            *next_number,
            *prev_hash,
            cut.txs,
            self.config.kind.as_str(),
            cut.votes,
        );
        *prev_hash = block.hash;
        *next_number += 1;
        self.stats.cut.fetch_add(1, Ordering::Relaxed);
        self.stats.blocks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .txs
            .fetch_add(block.txs.len() as u64, Ordering::Relaxed);
        self.height.store(block.number, Ordering::Relaxed);
        for (i, key) in self.keys.iter().enumerate() {
            deliver_block(&block, i, key, &self.subscribers);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcrdb_chain::tx::Payload;
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::Scheme;

    fn client() -> (KeyPair, Arc<CertificateRegistry>) {
        let key = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: key.public_key(),
        });
        (key, certs)
    }

    fn tx(key: &KeyPair, n: u64) -> Transaction {
        Transaction::new_order_execute(
            "org1/alice",
            Payload::new("f", vec![Value::Int(n as i64)]),
            n,
            key,
        )
        .unwrap()
    }

    #[test]
    fn solo_cuts_by_size() {
        let (key, certs) = client();
        let svc = OrderingService::start(OrderingConfig::solo(3, Duration::from_secs(60)), &certs);
        let rx = svc.subscribe();
        for i in 0..6 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b1 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let b2 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(b1.number, 1);
        assert_eq!(b2.number, 2);
        assert_eq!(b1.txs.len(), 3);
        assert_eq!(b2.prev_hash, b1.hash);
        // Blocks verify against the genesis chain + orderer cert.
        b1.verify(&genesis_prev_hash(), &certs).unwrap();
        b2.verify(&b1.hash, &certs).unwrap();
        assert_eq!(svc.height(), 2);
        let (blocks, txs) = svc.stats();
        assert_eq!((blocks, txs), (2, 6));
        svc.shutdown();
    }

    #[test]
    fn solo_cuts_by_timeout() {
        let (key, certs) = client();
        let svc = OrderingService::start(
            OrderingConfig::solo(1000, Duration::from_millis(50)),
            &certs,
        );
        let rx = svc.subscribe();
        svc.submit(tx(&key, 1)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(b.txs.len(), 1);
        svc.shutdown();
    }

    #[test]
    fn kafka_orderers_deliver_identical_chains() {
        let (key, certs) = client();
        let svc = OrderingService::start(
            OrderingConfig::kafka(3, 2, Duration::from_millis(200)),
            &certs,
        );
        let rx0 = svc.subscribe_to(0);
        let rx1 = svc.subscribe_to(1);
        let rx2 = svc.subscribe_to(2);
        for i in 0..4 {
            svc.submit(tx(&key, i)).unwrap();
        }
        for _ in 0..2 {
            let b0 = rx0.recv_timeout(Duration::from_secs(2)).unwrap();
            let b1 = rx1.recv_timeout(Duration::from_secs(2)).unwrap();
            let b2 = rx2.recv_timeout(Duration::from_secs(2)).unwrap();
            // Identical canonical content (hash covers everything except
            // signatures) delivered by different orderers.
            assert_eq!(b0.hash, b1.hash);
            assert_eq!(b1.hash, b2.hash);
            assert_ne!(b0.signatures[0].0, b1.signatures[0].0);
        }
        svc.shutdown();
    }

    #[test]
    fn checkpoint_votes_embedded_in_next_block() {
        let (key, certs) = client();
        let svc = OrderingService::start(OrderingConfig::solo(1, Duration::from_secs(60)), &certs);
        let rx = svc.subscribe();
        svc.submit_checkpoint(CheckpointVote {
            node: "org1/peer".into(),
            block: 0,
            state_hash: [7u8; 32],
        })
        .unwrap();
        svc.submit(tx(&key, 1)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(b.checkpoints.len(), 1);
        assert_eq!(b.checkpoints[0].node, "org1/peer");
        svc.shutdown();
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let (key, certs) = client();
        let svc = OrderingService::start(OrderingConfig::solo(1, Duration::from_secs(60)), &certs);
        svc.shutdown();
        std::thread::sleep(Duration::from_millis(50));
        // The sequencer consumed Stop; the channel may still accept sends
        // until the thread exits, so poll until the error appears.
        let mut saw_err = false;
        for i in 0..100 {
            if svc.submit(tx(&key, i)).is_err() {
                saw_err = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_err, "submissions should fail after shutdown");
    }
}
