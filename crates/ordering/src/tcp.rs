//! TCP front door of the ordering service.
//!
//! One listener per orderer replica. A database node dials its
//! replica's listener, identifies itself with [`OrdererWire::Hello`],
//! and from then on the connection is full duplex: the node streams
//! [`OrdererWire::Submit`]/[`OrdererWire::Vote`] frames up, and a
//! pusher thread streams every block delivered by
//! [`OrderingService::subscribe_to`] back down — the same per-node
//! subscription the in-process deployment uses, so a reconnecting node
//! simply resubscribes and heals any missed blocks through its normal
//! gap/catch-up machinery.
//!
//! Failure semantics: any malformed, oversized, or torn frame closes
//! the connection (the codec surfaces them as `Error::Codec`/
//! `Error::Decode`/`Error::Io`); the service itself is untouched.
//! Consensus among the orderer replicas stays in-process — only the
//! node-facing surface speaks TCP.

use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bcrdb_common::codec::{Decode, Encode};
use bcrdb_network::wire::{read_frame, write_frame, FrameEvent, MAX_ORDERER_FRAME};

use crate::service::OrderingService;
use crate::wire::OrdererWire;

/// How long the accept loop and frame readers sleep/block between
/// checks of the stop flag.
const POLL: Duration = Duration::from_millis(100);

/// A connection must complete its `Hello` within this long of being
/// accepted, or it is dropped.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// A stuck peer may block a block write for at most this long before
/// the connection is severed.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve orderer replica `idx` of `service` on `listener` until `stop`
/// is set. Returns the accept loop's join handle; per-connection
/// threads observe the same stop flag and wind down with it.
pub fn serve_orderer(
    service: Arc<OrderingService>,
    idx: usize,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name(format!("orderer{idx}-accept"))
        .spawn(move || {
            listener
                .set_nonblocking(true)
                .expect("listener nonblocking");
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = Arc::clone(&service);
                        let stop = Arc::clone(&stop);
                        let _ = thread::Builder::new()
                            .name(format!("orderer{idx}-conn"))
                            .spawn(move || serve_connection(service, idx, stream, stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
                    Err(_) => thread::sleep(POLL),
                }
            }
        })
        .expect("spawn orderer accept loop")
}

/// One node's connection: handshake, then a reader (submissions, votes)
/// with a paired pusher (delivered blocks).
fn serve_connection(
    service: Arc<OrderingService>,
    idx: usize,
    stream: TcpStream,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut reader = stream;

    // Handshake: the first frame must be Hello, within the deadline.
    // bcrdb-lint: allow(wall-clock, reason = "socket handshake deadline; bounds how long a silent connection may hold a thread, never influences block content")
    let accepted_at = std::time::Instant::now();
    let node = loop {
        if stop.load(Ordering::Relaxed) || accepted_at.elapsed() > HANDSHAKE_TIMEOUT {
            return;
        }
        match read_frame(&mut reader, MAX_ORDERER_FRAME) {
            Ok(FrameEvent::Frame(payload)) => match OrdererWire::decode_all(&payload) {
                Ok(OrdererWire::Hello { node }) => break node,
                _ => return, // protocol violation: sever
            },
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) | Err(_) => return,
        }
    };

    // Pusher: stream this replica's block deliveries down the socket.
    let conn_done = Arc::new(AtomicBool::new(false));
    let pusher = {
        let rx = service.subscribe_to(idx);
        let Ok(mut writer) = reader.try_clone() else {
            return;
        };
        let stop = Arc::clone(&stop);
        let conn_done = Arc::clone(&conn_done);
        thread::Builder::new()
            .name(format!("orderer{idx}-push:{node}"))
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) && !conn_done.load(Ordering::Relaxed) {
                    match rx.recv_timeout(POLL) {
                        Ok(block) => {
                            let bytes = OrdererWire::Block(block).encode_to_vec();
                            if write_frame(&mut writer, &bytes, MAX_ORDERER_FRAME).is_err() {
                                break;
                            }
                        }
                        Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
                let _ = writer.shutdown(Shutdown::Both);
            })
            .expect("spawn orderer pusher")
    };

    // Reader: submissions and votes until EOF, a bad frame, or stop.
    while !stop.load(Ordering::Relaxed) {
        match read_frame(&mut reader, MAX_ORDERER_FRAME) {
            Ok(FrameEvent::Frame(payload)) => match OrdererWire::decode_all(&payload) {
                Ok(OrdererWire::Submit(tx)) => {
                    if service.submit(*tx).is_err() {
                        break; // service shut down
                    }
                }
                Ok(OrdererWire::Vote(vote)) => {
                    if service.submit_checkpoint(vote).is_err() {
                        break;
                    }
                }
                // A duplicate Hello is harmless; a Block from a node is
                // a protocol violation — sever.
                Ok(OrdererWire::Hello { .. }) => {}
                Ok(OrdererWire::Block(_)) | Err(_) => break,
            },
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) | Err(_) => break,
        }
    }
    conn_done.store(true, Ordering::Relaxed);
    let _ = reader.shutdown(Shutdown::Both);
    let _ = pusher.join();
}
