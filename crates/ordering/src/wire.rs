//! Canonical binary codec for the node↔orderer TCP plane.
//!
//! A database node holds one TCP connection to its ordering-service
//! replica. Upstream it sends [`OrdererWire::Hello`] once, then
//! [`OrdererWire::Submit`] transactions and [`OrdererWire::Vote`]
//! checkpoint votes; downstream the orderer pushes every delivered
//! block as [`OrdererWire::Block`]. This mirrors exactly the calls the
//! in-process deployment makes on [`crate::OrderingService`]
//! (`submit`, `submit_checkpoint`, `subscribe_to`), so both transports
//! drive the same service surface.

use std::sync::Arc;

use bcrdb_chain::block::{Block, CheckpointVote};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::codec::{Decode, Decoder, Encode, Encoder};
use bcrdb_common::error::{Error, Result};

/// One message on a node↔orderer connection, either direction.
#[derive(Clone, Debug)]
pub enum OrdererWire {
    /// Node → orderer, first frame: identifies the connecting node (for
    /// diagnostics; authenticity still rests on transaction and block
    /// signatures, exactly as on the simulated network).
    Hello {
        /// The connecting node's name (`<org>/peer`).
        node: String,
    },
    /// Node → orderer: a transaction for ordering.
    Submit(Box<Transaction>),
    /// Node → orderer: a checkpoint vote to embed in block metadata.
    Vote(CheckpointVote),
    /// Orderer → node: a delivered block.
    Block(Arc<Block>),
}

impl Encode for OrdererWire {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            OrdererWire::Hello { node } => {
                enc.put_u8(0);
                enc.put_str(node);
            }
            OrdererWire::Submit(tx) => {
                enc.put_u8(1);
                tx.encode(enc);
            }
            OrdererWire::Vote(v) => {
                enc.put_u8(2);
                encode_checkpoint_vote(v, enc);
            }
            OrdererWire::Block(b) => {
                enc.put_u8(3);
                b.encode(enc);
            }
        }
    }
}

impl Decode for OrdererWire {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.get_u8()? {
            0 => Ok(OrdererWire::Hello {
                node: dec.get_str()?,
            }),
            1 => Ok(OrdererWire::Submit(Box::new(Transaction::decode(dec)?))),
            2 => Ok(OrdererWire::Vote(decode_checkpoint_vote(dec)?)),
            3 => Ok(OrdererWire::Block(Arc::new(Block::decode(dec)?))),
            t => Err(Error::Codec(format!("unknown orderer wire tag {t}"))),
        }
    }
}

/// Encode a [`CheckpointVote`] in the same field order the block codec
/// uses for embedded votes (free function: `CheckpointVote` and
/// `Encode` both live in other crates).
pub fn encode_checkpoint_vote(v: &CheckpointVote, enc: &mut Encoder) {
    enc.put_str(&v.node);
    enc.put_u64(v.block);
    enc.put_digest(&v.state_hash);
}

/// Inverse of [`encode_checkpoint_vote`].
pub fn decode_checkpoint_vote(dec: &mut Decoder<'_>) -> Result<CheckpointVote> {
    Ok(CheckpointVote {
        node: dec.get_str()?,
        block: dec.get_u64()?,
        state_hash: dec.get_digest()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_and_vote_roundtrip() {
        let hello = OrdererWire::Hello {
            node: "org1/peer".into(),
        };
        match OrdererWire::decode_all(&hello.encode_to_vec()).unwrap() {
            OrdererWire::Hello { node } => assert_eq!(node, "org1/peer"),
            other => panic!("{other:?}"),
        }
        let vote = OrdererWire::Vote(CheckpointVote {
            node: "org2/peer".into(),
            block: 9,
            state_hash: [7u8; 32],
        });
        match OrdererWire::decode_all(&vote.encode_to_vec()).unwrap() {
            OrdererWire::Vote(v) => {
                assert_eq!(v.node, "org2/peer");
                assert_eq!(v.block, 9);
                assert_eq!(v.state_hash, [7u8; 32]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_input_is_codec_error() {
        assert!(matches!(
            OrdererWire::decode_all(&[9u8]),
            Err(Error::Codec(_))
        ));
        let good = OrdererWire::Hello {
            node: "org1/peer".into(),
        }
        .encode_to_vec();
        for cut in 1..good.len() {
            assert!(matches!(
                OrdererWire::decode_all(&good[..cut]),
                Err(Error::Codec(_))
            ));
        }
    }
}
