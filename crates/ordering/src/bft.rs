//! BFT ordering backend: a PBFT-style three-phase protocol in the spirit
//! of BFT-SMaRt (§4.4).
//!
//! Replica 0 is the leader: it batches submitted transactions (block
//! size/timeout) and proposes each block with a PRE-PREPARE. Replicas then
//! exchange PREPARE and COMMIT messages over the simulated network —
//! `n(n-1)` messages per phase — and deliver once a quorum of `2f+1`
//! commits is observed. Every replica applies a configurable per-message
//! processing cost ([`crate::OrderingConfig::bft_msg_cost`]), which is what
//! produces the throughput degradation with orderer count seen in the
//! paper's Fig 8(b).
//!
//! This is the *failure-free path* of PBFT only: view changes are out of
//! scope (the paper likewise measures failure-free ordering throughput).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::service::BlockSubscribers;
use bcrdb_chain::block::{genesis_prev_hash, Block, CheckpointVote};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::ids::BlockHeight;
use bcrdb_crypto::identity::KeyPair;
use bcrdb_crypto::sha256::Digest;
use bcrdb_network::SimNetwork;
use crossbeam_channel::Receiver;

use crate::config::OrderingConfig;
use crate::cutter::BlockCutter;
use crate::service::{deliver_block, Input, OrderingStats};

/// Consensus messages between orderer replicas.
#[derive(Clone, Debug)]
pub enum BftMsg {
    /// A transaction forwarded to the leader.
    Forward(Box<Transaction>),
    /// A checkpoint vote forwarded to the leader.
    ForwardVote(CheckpointVote),
    /// Leader's proposal.
    PrePrepare(Arc<Block>),
    /// Phase-2 vote.
    Prepare {
        /// Block number.
        number: BlockHeight,
        /// Block hash.
        hash: Digest,
    },
    /// Phase-3 vote.
    Commit {
        /// Block number.
        number: BlockHeight,
        /// Block hash.
        hash: Digest,
    },
    /// Stop the replica.
    Stop,
}

/// Handle owning the BFT threads.
pub struct BftHandle {
    net: Arc<SimNetwork<BftMsg>>,
    stop: Arc<AtomicBool>,
    replicas: usize,
}

impl BftHandle {
    /// Signal every replica to stop and tear the network down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for i in 0..self.replicas {
            let _ = self
                .net
                .send("control", &replica_endpoint(i), BftMsg::Stop, 1);
        }
        // Give replicas a moment to observe Stop before the network dies.
        std::thread::sleep(Duration::from_millis(20));
        self.net.shutdown();
    }
}

fn replica_endpoint(i: usize) -> String {
    format!("bft-replica-{i}")
}

/// Start `config.orderers` BFT replicas. `input` feeds client submissions
/// (they are forwarded to the leader).
pub fn start(
    config: &OrderingConfig,
    keys: Vec<Arc<KeyPair>>,
    subscribers: BlockSubscribers,
    height: Arc<AtomicU64>,
    stats: Arc<OrderingStats>,
    input: Receiver<Input>,
) -> BftHandle {
    let n = config.orderers;
    let net: Arc<SimNetwork<BftMsg>> = SimNetwork::new(config.net_profile);
    let stop = Arc::new(AtomicBool::new(false));

    let mut rxs = Vec::with_capacity(n);
    for i in 0..n {
        rxs.push(net.register(replica_endpoint(i)));
    }
    for (i, rx) in rxs.into_iter().enumerate() {
        let replica = Replica {
            idx: i,
            n,
            f: (n.saturating_sub(1)) / 3,
            key: Arc::clone(&keys[i]),
            net: Arc::clone(&net),
            msg_cost: config.bft_msg_cost,
            block_size: config.block_size,
            block_timeout: config.block_timeout,
            subscribers: Arc::clone(&subscribers),
            height: Arc::clone(&height),
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
            consensus_label: config.kind.as_str(),
        };
        std::thread::Builder::new()
            .name(format!("bft-replica-{i}"))
            .spawn(move || replica.run(rx))
            .expect("spawn bft replica");
    }

    // Input pump: forwards client submissions to the leader endpoint.
    let pump_net = Arc::clone(&net);
    let pump_stop = Arc::clone(&stop);
    std::thread::Builder::new()
        .name("bft-input-pump".into())
        .spawn(move || {
            for msg in input.iter() {
                if pump_stop.load(Ordering::Relaxed) {
                    return;
                }
                let wire = match msg {
                    Input::Tx(tx) => {
                        let size = tx.wire_size();
                        (BftMsg::Forward(tx), size)
                    }
                    Input::Vote(v) => (BftMsg::ForwardVote(v), 72),
                    Input::Stop => return,
                };
                let _ = pump_net.send("client-gateway", &replica_endpoint(0), wire.0, wire.1);
            }
        })
        .expect("spawn bft input pump");

    BftHandle {
        net,
        stop,
        replicas: n,
    }
}

struct Replica {
    idx: usize,
    n: usize,
    f: usize,
    key: Arc<KeyPair>,
    net: Arc<SimNetwork<BftMsg>>,
    msg_cost: Duration,
    block_size: usize,
    block_timeout: Duration,
    subscribers: BlockSubscribers,
    height: Arc<AtomicU64>,
    stats: Arc<OrderingStats>,
    stop: Arc<AtomicBool>,
    consensus_label: &'static str,
}

#[derive(Default)]
struct RoundState {
    block: Option<Arc<Block>>,
    prepares: usize,
    commits: usize,
    sent_commit: bool,
    delivered: bool,
}

impl Replica {
    fn is_leader(&self) -> bool {
        self.idx == 0
    }

    fn broadcast(&self, msg: BftMsg, size: usize) {
        for j in 0..self.n {
            if j != self.idx {
                let _ = self.net.send(
                    &replica_endpoint(self.idx),
                    &replica_endpoint(j),
                    msg.clone(),
                    size,
                );
            }
        }
    }

    fn run(self, rx: Receiver<bcrdb_network::Delivered<BftMsg>>) {
        let mut cutter = BlockCutter::new(self.block_size, self.block_timeout);
        let mut rounds: HashMap<BlockHeight, RoundState> = HashMap::new();
        let mut next_number: BlockHeight = 1;
        let mut prev_hash = genesis_prev_hash();
        // Leader proposes sequentially: one consensus instance at a time.
        let mut in_flight = false;
        let mut ready: Vec<(Vec<Transaction>, Vec<CheckpointVote>)> = Vec::new();

        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let wait = if self.is_leader() {
                cutter
                    .time_until_cut(Instant::now())
                    .unwrap_or(Duration::from_millis(50))
                    .min(Duration::from_millis(50))
            } else {
                Duration::from_millis(50)
            };
            let msg = match rx.recv_timeout(wait) {
                Ok(d) => Some(d.msg),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
            };

            if let Some(msg) = msg {
                match msg {
                    BftMsg::Stop => return,
                    BftMsg::Forward(tx) => {
                        if self.is_leader() {
                            if let Some(cut) = cutter.push_tx(*tx, Instant::now()) {
                                ready.push((cut.txs, cut.votes));
                            }
                        }
                    }
                    BftMsg::ForwardVote(v) => {
                        if self.is_leader() {
                            cutter.push_vote(v);
                        }
                    }
                    BftMsg::PrePrepare(block) => {
                        self.pay_cost();
                        // Replicas validate the proposal before voting.
                        if block.verify_integrity().is_ok() {
                            self.on_preprepare(block, &mut rounds, &mut in_flight, &mut prev_hash);
                        }
                    }
                    BftMsg::Prepare { number, hash } => {
                        self.pay_cost();
                        self.on_prepare(number, hash, &mut rounds, &mut in_flight, &mut prev_hash);
                    }
                    BftMsg::Commit { number, hash } => {
                        self.pay_cost();
                        self.on_commit(number, hash, &mut rounds, &mut in_flight, &mut prev_hash);
                    }
                }
            }

            if self.is_leader() {
                if let Some(cut) = cutter.poll_timeout(Instant::now()) {
                    ready.push((cut.txs, cut.votes));
                }
                if !in_flight && !ready.is_empty() {
                    let (txs, votes) = ready.remove(0);
                    let block = Arc::new(Block::build(
                        next_number,
                        prev_hash,
                        txs,
                        self.consensus_label,
                        votes,
                    ));
                    next_number += 1;
                    in_flight = true;
                    let size = block.wire_size();
                    self.broadcast(BftMsg::PrePrepare(Arc::clone(&block)), size);
                    // The leader processes its own proposal.
                    self.on_preprepare(block, &mut rounds, &mut in_flight, &mut prev_hash);
                }
            }
        }
    }

    fn pay_cost(&self) {
        if !self.msg_cost.is_zero() {
            std::thread::sleep(self.msg_cost);
        }
    }

    fn on_preprepare(
        &self,
        block: Arc<Block>,
        rounds: &mut HashMap<BlockHeight, RoundState>,
        in_flight: &mut bool,
        prev_hash: &mut Digest,
    ) {
        let number = block.number;
        let hash = block.hash;
        let state = rounds.entry(number).or_default();
        if state.block.is_some() {
            return;
        }
        state.block = Some(block);
        // Broadcast our PREPARE and count it for ourselves.
        self.broadcast(BftMsg::Prepare { number, hash }, 64);
        state.prepares += 1;
        self.check_prepared(number, hash, rounds, in_flight, prev_hash);
    }

    fn on_prepare(
        &self,
        number: BlockHeight,
        hash: Digest,
        rounds: &mut HashMap<BlockHeight, RoundState>,
        in_flight: &mut bool,
        prev_hash: &mut Digest,
    ) {
        let state = rounds.entry(number).or_default();
        state.prepares += 1;
        self.check_prepared(number, hash, rounds, in_flight, prev_hash);
    }

    fn check_prepared(
        &self,
        number: BlockHeight,
        hash: Digest,
        rounds: &mut HashMap<BlockHeight, RoundState>,
        in_flight: &mut bool,
        prev_hash: &mut Digest,
    ) {
        let state = rounds.entry(number).or_default();
        // Prepared once we hold the proposal and 2f matching PREPAREs
        // (our own included).
        if !state.sent_commit && state.block.is_some() && state.prepares > 2 * self.f {
            state.sent_commit = true;
            self.broadcast(BftMsg::Commit { number, hash }, 64);
            state.commits += 1;
            // With f = 0 our own commit may already complete the quorum.
            self.try_deliver(number, rounds, in_flight, prev_hash);
        }
    }

    fn on_commit(
        &self,
        number: BlockHeight,
        _hash: Digest,
        rounds: &mut HashMap<BlockHeight, RoundState>,
        in_flight: &mut bool,
        prev_hash: &mut Digest,
    ) {
        let state = rounds.entry(number).or_default();
        state.commits += 1;
        self.try_deliver(number, rounds, in_flight, prev_hash);
    }

    fn try_deliver(
        &self,
        number: BlockHeight,
        rounds: &mut HashMap<BlockHeight, RoundState>,
        in_flight: &mut bool,
        prev_hash: &mut Digest,
    ) {
        let state = rounds.entry(number).or_default();
        if state.delivered || state.block.is_none() || state.commits < 2 * self.f + 1 {
            return;
        }
        state.delivered = true;
        let block = state.block.clone().expect("checked above");
        *prev_hash = block.hash;
        deliver_block(&block, self.idx, &self.key, &self.subscribers);
        if self.idx == 0 {
            self.stats.blocks.fetch_add(1, Ordering::Relaxed);
            self.stats
                .txs
                .fetch_add(block.txs.len() as u64, Ordering::Relaxed);
            self.height.store(block.number, Ordering::Relaxed);
            *in_flight = false;
        }
        rounds.retain(|n, _| *n + 8 > number);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrderingConfig;
    use crate::service::OrderingService;
    use bcrdb_chain::tx::Payload;
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{Certificate, CertificateRegistry, Role, Scheme};
    use bcrdb_network::NetProfile;

    fn client() -> (KeyPair, Arc<CertificateRegistry>) {
        let key = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: key.public_key(),
        });
        (key, certs)
    }

    fn tx(key: &KeyPair, n: u64) -> Transaction {
        Transaction::new_order_execute(
            "org1/alice",
            Payload::new("f", vec![Value::Int(n as i64)]),
            n,
            key,
        )
        .unwrap()
    }

    fn bft_config(n: usize) -> OrderingConfig {
        let mut c = OrderingConfig::bft(n, 3, Duration::from_millis(100));
        c.bft_msg_cost = Duration::from_micros(100); // fast tests
        c.net_profile = NetProfile::instant();
        c
    }

    #[test]
    fn four_replicas_reach_agreement() {
        let (key, certs) = client();
        let svc = OrderingService::start(bft_config(4), &certs);
        let rx0 = svc.subscribe_to(0);
        let rx3 = svc.subscribe_to(3);
        for i in 0..6 {
            svc.submit(tx(&key, i)).unwrap();
        }
        for expected in 1..=2u64 {
            let b0 = rx0.recv_timeout(Duration::from_secs(5)).unwrap();
            let b3 = rx3.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(b0.number, expected);
            assert_eq!(b0.hash, b3.hash, "replicas deliver the identical block");
            assert_eq!(b0.consensus, "bft");
        }
        // Chain verifies against the orderer certificates.
        svc.shutdown();
    }

    #[test]
    fn single_replica_degenerates_to_solo() {
        let (key, certs) = client();
        let svc = OrderingService::start(bft_config(1), &certs);
        let rx = svc.subscribe();
        for i in 0..3 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(b.number, 1);
        assert_eq!(b.txs.len(), 3);
        svc.shutdown();
    }

    #[test]
    fn timeout_cut_works_under_bft() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 1000;
        cfg.block_timeout = Duration::from_millis(50);
        let svc = OrderingService::start(cfg, &certs);
        let rx = svc.subscribe();
        svc.submit(tx(&key, 1)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(b.txs.len(), 1);
        svc.shutdown();
    }

    #[test]
    fn throughput_degrades_with_replica_count() {
        // A miniature Fig 8(b): identical offered load, 2 vs 8 replicas
        // with a non-trivial per-message cost. More replicas → more
        // messages per round → lower delivered throughput.
        let (key, _certs2) = client();
        let run = |n: usize| -> u64 {
            let certs = CertificateRegistry::new();
            let mut cfg = OrderingConfig::bft(n, 5, Duration::from_millis(20));
            cfg.bft_msg_cost = Duration::from_millis(2);
            cfg.net_profile = NetProfile::instant();
            let svc = OrderingService::start(cfg, &certs);
            let _rx = svc.subscribe();
            let deadline = Instant::now() + Duration::from_millis(600);
            let mut i = 0u64;
            while Instant::now() < deadline {
                let _ = svc.submit(tx(&key, i));
                i += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            std::thread::sleep(Duration::from_millis(300));
            let (_, txs) = svc.stats();
            svc.shutdown();
            txs
        };
        let small = run(2);
        let large = run(8);
        assert!(small > 0);
        assert!(
            large < small,
            "8 replicas ({large} txs) should order fewer than 2 replicas ({small} txs)"
        );
    }
}
