//! BFT ordering backend: a PBFT-style three-phase protocol in the spirit
//! of BFT-SMaRt (§4.4), **including view changes** so the service keeps
//! cutting blocks when the leader crashes or stalls.
//!
//! ## Failure-free path
//!
//! The leader of the current view (`leader = view % n`) batches submitted
//! transactions (block size/timeout) and proposes each block with a
//! PRE-PREPARE. Replicas then exchange PREPARE and COMMIT messages over
//! the simulated network — `n(n-1)` messages per phase — and deliver once
//! a quorum of `2f+1` commits is observed. Every replica applies a
//! configurable per-message processing cost
//! ([`crate::OrderingConfig::bft_msg_cost`]), which is what produces the
//! throughput degradation with orderer count seen in the paper's Fig 8(b).
//!
//! ## View change
//!
//! As in BFT-SMaRt, clients (the input pump) broadcast submissions to
//! *every* replica; each replica pools them, so pending transactions
//! survive a leader crash. A replica with pending work that sees no
//! progress for [`crate::OrderingConfig::view_change_timeout`] broadcasts
//! `VIEW-CHANGE(v+1)` carrying its last delivered height and the
//! in-flight proposal it holds (the prepared-certificate state). A
//! replica that sees `f+1` view-change votes joins them; at `2f+1` the
//! view is installed and the new leader (`(v+1) % n`) re-proposes the
//! carried in-flight block in a `NEW-VIEW` so no ordered transaction is
//! lost, then resumes cutting from its own pool. Delivery is strictly
//! sequential per replica; a replica that discovers it fell behind
//! (commit quorum for a future height, or a view-change timer expiry)
//! fetches the missing delivered blocks from its peers
//! (`FetchDelivered`), the ordering-layer analog of peer catch-up.
//!
//! Simplifications vs. real PBFT (we model crash/stall faults of honest
//! replicas, not byzantine leaders): view-change and new-view messages
//! are not signed and carry the raw in-flight proposal instead of signed
//! prepared certificates; replicas adopt a higher view number advertised
//! by any consensus message (honest peers only advance views through the
//! protocol); and there are no per-view checkpoint proofs — the
//! `FetchDelivered` exchange plays that role. See DESIGN.md "Ordering
//! fault tolerance".

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::service::BlockSubscribers;
use bcrdb_chain::block::{genesis_prev_hash, Block, CheckpointVote};
use bcrdb_chain::tx::Transaction;
use bcrdb_common::error::{Error, Result};
use bcrdb_common::ids::{BlockHeight, GlobalTxId};
use bcrdb_crypto::identity::KeyPair;
use bcrdb_crypto::sha256::Digest;
use bcrdb_network::SimNetwork;
use crossbeam_channel::Receiver;

use crate::config::OrderingConfig;
use crate::service::{deliver_block, Input, OrderingStats};

/// How many delivered blocks each replica retains to serve
/// [`BftMsg::FetchDelivered`] requests from lagging peers.
const DELIVERED_LOG_CAP: usize = 128;

/// Maximum blocks returned per [`BftMsg::FetchDelivered`] response.
const FETCH_BATCH: usize = 32;

/// Consensus messages between orderer replicas.
#[derive(Clone, Debug)]
pub enum BftMsg {
    /// A transaction forwarded by the client gateway (broadcast to every
    /// replica, BFT-SMaRt style, so pending work survives leader loss).
    Forward(Box<Transaction>),
    /// A checkpoint vote forwarded to every replica. Votes piggyback on
    /// the next transaction-bearing block (§3.3.4: "state change hashes
    /// are added in the next block") and never force a cut or arm the
    /// view-change timer on their own — the same semantics as the
    /// solo/Kafka sequencer's cutter.
    ForwardVote(CheckpointVote),
    /// Leader's proposal in `view`.
    PrePrepare {
        /// The view this proposal belongs to.
        view: u64,
        /// The proposed block.
        block: Arc<Block>,
    },
    /// Phase-2 vote.
    Prepare {
        /// The view the vote is cast in.
        view: u64,
        /// Block number.
        number: BlockHeight,
        /// Block hash.
        hash: Digest,
        /// Voting replica.
        from: usize,
    },
    /// Phase-3 vote.
    Commit {
        /// The view the vote is cast in.
        view: u64,
        /// Block number.
        number: BlockHeight,
        /// Block hash.
        hash: Digest,
        /// Voting replica.
        from: usize,
    },
    /// A replica suspects the current leader and votes to install
    /// `new_view`.
    ViewChange {
        /// The proposed view.
        new_view: u64,
        /// Voting replica.
        from: usize,
        /// The voter's last delivered height.
        last_delivered: BlockHeight,
        /// The undelivered in-flight proposal the voter holds (its
        /// prepared-certificate state), if any.
        in_flight: Option<Arc<Block>>,
    },
    /// The new leader installs `view` and re-proposes the carried
    /// in-flight blocks.
    NewView {
        /// The installed view.
        view: u64,
        /// Re-proposals (processed exactly like PRE-PREPAREs).
        proposals: Vec<Arc<Block>>,
    },
    /// A lagging replica asks a peer for delivered blocks above
    /// `from_height` (the ordering-layer catch-up path).
    FetchDelivered {
        /// The requester's last delivered height.
        from_height: BlockHeight,
    },
    /// Answer to [`BftMsg::FetchDelivered`]: contiguous delivered blocks.
    DeliveredBlocks {
        /// Blocks `from_height+1 ..`, in order.
        blocks: Vec<Arc<Block>>,
    },
    /// Stop the replica.
    Stop,
}

/// Per-replica control flags (crash and stall injection).
struct ReplicaCtl {
    stop: Arc<AtomicBool>,
    stalled: Arc<AtomicBool>,
}

/// Handle owning the BFT threads.
pub struct BftHandle {
    net: Arc<SimNetwork<BftMsg>>,
    stop: Arc<AtomicBool>,
    ctls: Vec<ReplicaCtl>,
}

impl BftHandle {
    /// Signal every replica to stop and tear the network down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for (i, ctl) in self.ctls.iter().enumerate() {
            ctl.stop.store(true, Ordering::Relaxed);
            let _ = self
                .net
                .send("control", &replica_endpoint(i), BftMsg::Stop, 1);
        }
        // Give replicas a moment to observe Stop before the network dies.
        std::thread::sleep(Duration::from_millis(20));
        self.net.shutdown();
    }

    /// Crash replica `idx`: its thread winds down and its endpoint
    /// vanishes from the consensus network (sends to it are dropped).
    pub(crate) fn stop_replica(&self, idx: usize) -> Result<()> {
        let ctl = self
            .ctls
            .get(idx)
            .ok_or_else(|| Error::NotFound(format!("orderer replica {idx}")))?;
        ctl.stop.store(true, Ordering::Relaxed);
        self.net.unregister(&replica_endpoint(idx));
        Ok(())
    }

    /// Stall (or resume) replica `idx`: the thread stays alive but stops
    /// processing messages, simulating a hung leader. Queued messages are
    /// processed on resume.
    pub(crate) fn stall_replica(&self, idx: usize, stalled: bool) -> Result<()> {
        let ctl = self
            .ctls
            .get(idx)
            .ok_or_else(|| Error::NotFound(format!("orderer replica {idx}")))?;
        ctl.stalled.store(stalled, Ordering::Relaxed);
        Ok(())
    }

    /// Cut replica `idx` off the consensus network (or heal it): unlike a
    /// stall, its messages are silently *dropped* while cut off, so on
    /// heal it has genuinely missed history and must catch up — deep lag
    /// exercises the `FetchDelivered` fast-forward path.
    pub(crate) fn partition_replica(&self, idx: usize, partitioned: bool) -> Result<()> {
        if idx >= self.ctls.len() {
            return Err(Error::NotFound(format!("orderer replica {idx}")));
        }
        self.net
            .set_partitioned(&replica_endpoint(idx), partitioned);
        Ok(())
    }
}

fn replica_endpoint(i: usize) -> String {
    format!("bft-replica-{i}")
}

/// The view-change voter claiming the highest delivered height — the
/// best peer for a catching-up new leader to fetch from.
fn best_claimant(votes: &BTreeMap<usize, VcInfo>) -> Option<usize> {
    votes
        .iter()
        .max_by_key(|(_, i)| i.last_delivered)
        .map(|(idx, _)| *idx)
}

/// Start `config.orderers` BFT replicas. `input` feeds client submissions
/// (broadcast to every replica; the current leader proposes them).
pub fn start(
    config: &OrderingConfig,
    keys: Vec<Arc<KeyPair>>,
    subscribers: BlockSubscribers,
    height: Arc<AtomicU64>,
    stats: Arc<OrderingStats>,
    input: Receiver<Input>,
) -> BftHandle {
    let n = config.orderers;
    let net: Arc<SimNetwork<BftMsg>> = SimNetwork::new(config.net_profile);
    let stop = Arc::new(AtomicBool::new(false));

    let mut rxs = Vec::with_capacity(n);
    for i in 0..n {
        rxs.push(net.register(replica_endpoint(i)));
    }
    let mut ctls = Vec::with_capacity(n);
    for (i, rx) in rxs.into_iter().enumerate() {
        let ctl = ReplicaCtl {
            stop: Arc::new(AtomicBool::new(false)),
            stalled: Arc::new(AtomicBool::new(false)),
        };
        let replica = Replica {
            idx: i,
            n,
            f: (n.saturating_sub(1)) / 3,
            key: Arc::clone(&keys[i]),
            net: Arc::clone(&net),
            msg_cost: config.bft_msg_cost,
            block_size: config.block_size,
            block_timeout: config.block_timeout,
            view_change_timeout: config.view_change_timeout,
            subscribers: Arc::clone(&subscribers),
            height: Arc::clone(&height),
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
            my_stop: Arc::clone(&ctl.stop),
            my_stall: Arc::clone(&ctl.stalled),
            consensus_label: config.kind.as_str(),
        };
        ctls.push(ctl);
        std::thread::Builder::new()
            .name(format!("bft-replica-{i}"))
            .spawn(move || replica.run(rx))
            .expect("spawn bft replica");
    }

    // Input pump: broadcasts client submissions to every replica (the
    // BFT-SMaRt client behavior), so a view change never strands pending
    // transactions with a dead leader.
    let pump_net = Arc::clone(&net);
    let pump_stop = Arc::clone(&stop);
    std::thread::Builder::new()
        .name("bft-input-pump".into())
        .spawn(move || {
            for msg in input.iter() {
                if pump_stop.load(Ordering::Relaxed) {
                    return;
                }
                let (wire, size) = match msg {
                    Input::Tx(tx) => {
                        let size = tx.wire_size();
                        (BftMsg::Forward(tx), size)
                    }
                    Input::Vote(v) => (BftMsg::ForwardVote(v), CheckpointVote::WIRE_SIZE),
                    Input::Stop => return,
                };
                let _ = pump_net.broadcast("client-gateway", &wire, size);
            }
        })
        .expect("spawn bft input pump");

    BftHandle { net, stop, ctls }
}

/// Pending transactions and checkpoint votes a replica holds until they
/// appear in a delivered block (every replica pools the broadcast
/// forwards; only the current leader cuts from its pool).
#[derive(Default)]
struct TxPool {
    txs: Vec<Transaction>,
    ids: HashSet<GlobalTxId>,
    votes: Vec<CheckpointVote>,
    first_at: Option<Instant>,
}

impl TxPool {
    /// Pool a forwarded transaction; returns true when this made the pool
    /// non-empty (arming the progress timer).
    fn push_tx(&mut self, tx: Transaction, now: Instant) -> bool {
        if self.ids.contains(&tx.id) {
            return false;
        }
        let was_empty = self.txs.is_empty();
        if was_empty {
            self.first_at = Some(now);
        }
        self.ids.insert(tx.id);
        self.txs.push(tx);
        was_empty
    }

    /// Ready to cut a block?
    fn cut_ready(&self, block_size: usize, timeout: Duration, now: Instant) -> bool {
        if self.txs.is_empty() {
            return false;
        }
        self.txs.len() >= block_size.max(1)
            || self
                .first_at
                .is_some_and(|t| now.duration_since(t) >= timeout)
    }

    /// Take up to `block_size` transactions plus all pending votes.
    fn take_cut(&mut self, block_size: usize) -> (Vec<Transaction>, Vec<CheckpointVote>) {
        let take = self.txs.len().min(block_size.max(1));
        let txs: Vec<Transaction> = self.txs.drain(..take).collect();
        for tx in &txs {
            self.ids.remove(&tx.id);
        }
        self.first_at = if self.txs.is_empty() {
            None
        } else {
            // bcrdb-lint: allow(wall-clock, reason = "batch-age timer for the leader's cut decision; consensus agrees on the result")
            Some(Instant::now())
        };
        (txs, std::mem::take(&mut self.votes))
    }

    /// Remove everything a delivered block made redundant.
    fn remove_delivered(&mut self, block: &Block) {
        if !self.txs.is_empty() {
            let delivered: HashSet<&GlobalTxId> = block.txs.iter().map(|t| &t.id).collect();
            self.txs.retain(|t| !delivered.contains(&t.id));
            for tx in &block.txs {
                self.ids.remove(&tx.id);
            }
            if self.txs.is_empty() {
                self.first_at = None;
            }
        }
        if !self.votes.is_empty() {
            self.votes
                .retain(|v| !block.checkpoints.iter().any(|c| c == v));
        }
    }
}

/// One consensus instance (one height). Votes are only valid within the
/// view recorded here; a vote arriving in a newer view lazily resets the
/// instance (the new leader re-proposes, PBFT's new-view behavior).
#[derive(Default)]
struct RoundState {
    view: u64,
    block: Option<Arc<Block>>,
    prepares: HashSet<usize>,
    commits: HashSet<usize>,
    sent_commit: bool,
}

/// A view-change vote's payload. `at` bounds its lifetime: a stale vote
/// (an old transient timeout, long since healed) must not combine with a
/// fresh one to reach the f+1 join threshold and rotate a healthy leader.
struct VcInfo {
    last_delivered: BlockHeight,
    in_flight: Option<Arc<Block>>,
    at: Instant,
}

struct Replica {
    idx: usize,
    n: usize,
    f: usize,
    key: Arc<KeyPair>,
    net: Arc<SimNetwork<BftMsg>>,
    msg_cost: Duration,
    block_size: usize,
    block_timeout: Duration,
    view_change_timeout: Duration,
    subscribers: BlockSubscribers,
    height: Arc<AtomicU64>,
    stats: Arc<OrderingStats>,
    stop: Arc<AtomicBool>,
    my_stop: Arc<AtomicBool>,
    my_stall: Arc<AtomicBool>,
    consensus_label: &'static str,
}

/// The mutable per-replica protocol state (owned by the replica thread).
struct ReplicaState {
    view: u64,
    /// Highest view this replica has broadcast a VIEW-CHANGE vote for.
    voted_view: u64,
    last_delivered: BlockHeight,
    prev_hash: Digest,
    pool: TxPool,
    rounds: BTreeMap<BlockHeight, RoundState>,
    /// View-change votes by proposed view.
    vc_votes: BTreeMap<u64, BTreeMap<usize, VcInfo>>,
    /// Recently delivered blocks, retained to serve `FetchDelivered`.
    delivered_log: BTreeMap<BlockHeight, Arc<Block>>,
    /// Transaction ids already ordered into delivered blocks (dedup for
    /// late forwards and re-proposals).
    delivered_ids: HashSet<GlobalTxId>,
    /// Checkpoint votes already embedded in delivered blocks. Keyed by
    /// (node, height, hash): a *corrected* re-vote with a different hash
    /// for the same height must still be embedded (the divergence-heal
    /// path the CheckpointTracker implements), exactly as the solo/Kafka
    /// cutter would.
    seen_votes: HashSet<(String, BlockHeight, Digest)>,
    /// Round-robin cursor for single-target `FetchDelivered` probes.
    next_fetch: usize,
    /// Height this replica proposed and has not yet delivered (leaders
    /// run one consensus instance at a time).
    in_flight: Option<BlockHeight>,
    /// Progress deadline: exceeded while work is pending → view change.
    deadline: Instant,
    /// A new leader waiting for `FetchDelivered` catch-up before it can
    /// install its view: `(view, target height, collected votes)`.
    pending_new_view: Option<(u64, BlockHeight, BTreeMap<usize, VcInfo>)>,
}

impl Replica {
    fn leader_of(&self, view: u64) -> usize {
        (view % self.n as u64) as usize
    }

    fn is_leader(&self, st: &ReplicaState) -> bool {
        self.leader_of(st.view) == self.idx
    }

    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    fn broadcast(&self, msg: BftMsg, size: usize) {
        for j in 0..self.n {
            if j != self.idx {
                let _ = self.net.send(
                    &replica_endpoint(self.idx),
                    &replica_endpoint(j),
                    msg.clone(),
                    size,
                );
            }
        }
    }

    fn pay_cost(&self) {
        if !self.msg_cost.is_zero() {
            std::thread::sleep(self.msg_cost);
        }
    }

    /// A view-change vote older than this cannot combine with fresh ones:
    /// genuine rotations collect their quorum within about one timeout,
    /// so three is a comfortable envelope.
    fn vc_vote_ttl(&self) -> Duration {
        self.view_change_timeout * 3
    }

    /// Ask **one** peer for delivered blocks above our tip. `preferred`
    /// targets a replica known to hold them (a view-change vote's
    /// claimant, or the current leader); otherwise — or when the
    /// preferred endpoint is gone — rotate round-robin across the other
    /// replicas, skipping dead endpoints. Probes repeat on the progress
    /// timer, so a stalled target only delays by one period; paying one
    /// message instead of a broadcast avoids n-1 identical block batches
    /// in response.
    fn fetch_delivered_from(&self, st: &mut ReplicaState, preferred: Option<usize>) {
        let msg = BftMsg::FetchDelivered {
            from_height: st.last_delivered,
        };
        if let Some(t) = preferred {
            if t != self.idx
                && self
                    .net
                    .send(
                        &replica_endpoint(self.idx),
                        &replica_endpoint(t),
                        msg.clone(),
                        16,
                    )
                    .is_ok()
            {
                return;
            }
        }
        for _ in 0..self.n {
            let j = st.next_fetch % self.n;
            st.next_fetch = st.next_fetch.wrapping_add(1);
            if j == self.idx || Some(j) == preferred {
                continue;
            }
            if self
                .net
                .send(
                    &replica_endpoint(self.idx),
                    &replica_endpoint(j),
                    msg.clone(),
                    16,
                )
                .is_ok()
            {
                return;
            }
        }
    }

    fn run(self, rx: Receiver<bcrdb_network::Delivered<BftMsg>>) {
        let mut st = ReplicaState {
            view: 0,
            voted_view: 0,
            last_delivered: 0,
            prev_hash: genesis_prev_hash(),
            pool: TxPool::default(),
            rounds: BTreeMap::new(),
            vc_votes: BTreeMap::new(),
            delivered_log: BTreeMap::new(),
            delivered_ids: HashSet::new(),
            seen_votes: HashSet::new(),
            next_fetch: self.idx + 1, // spread first probes around
            in_flight: None,
            // bcrdb-lint: allow(wall-clock, reason = "view-change progress deadline; replica-local")
            deadline: Instant::now() + self.view_change_timeout,
            pending_new_view: None,
        };

        loop {
            if self.stop.load(Ordering::Relaxed) || self.my_stop.load(Ordering::Relaxed) {
                return;
            }
            // Stall injection: a hung replica consumes nothing; messages
            // queue on its channel and are processed on resume.
            if self.my_stall.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }

            let wait = Duration::from_millis(20);
            let msg = match rx.recv_timeout(wait) {
                Ok(d) => Some(d),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
            };

            if let Some(d) = msg {
                self.on_msg(&mut st, d);
                // A Stop may have been consumed inside on_msg.
                if self.my_stop.load(Ordering::Relaxed) {
                    return;
                }
            }

            // Leader: cut and propose when no instance is in flight.
            if self.is_leader(&st) && st.in_flight.is_none() && st.pending_new_view.is_none() {
                // bcrdb-lint: allow(wall-clock, reason = "leader-local cut timing; consensus agrees on the proposed block")
                let now = Instant::now();
                if st.pool.cut_ready(self.block_size, self.block_timeout, now) {
                    let (txs, votes) = st.pool.take_cut(self.block_size);
                    let block = Arc::new(Block::build(
                        st.last_delivered + 1,
                        st.prev_hash,
                        txs,
                        self.consensus_label,
                        votes,
                    ));
                    self.stats.cut.fetch_add(1, Ordering::Relaxed);
                    st.in_flight = Some(block.number);
                    let size = block.wire_size();
                    let view = st.view;
                    self.broadcast(
                        BftMsg::PrePrepare {
                            view,
                            block: Arc::clone(&block),
                        },
                        size,
                    );
                    self.on_preprepare(&mut st, view, block);
                }
            }

            self.check_progress_timer(&mut st);
        }
    }

    fn on_msg(&self, st: &mut ReplicaState, d: bcrdb_network::Delivered<BftMsg>) {
        match d.msg {
            BftMsg::Stop => {
                self.my_stop.store(true, Ordering::Relaxed);
            }
            BftMsg::Forward(tx) => {
                // bcrdb-lint: allow(wall-clock, reason = "batch-age timestamp for the leader's cut decision")
                if !st.delivered_ids.contains(&tx.id) && st.pool.push_tx(*tx, Instant::now()) {
                    // Work appeared: start timing the leader from now.
                    // bcrdb-lint: allow(wall-clock, reason = "view-change progress deadline; replica-local")
                    st.deadline = Instant::now() + self.view_change_timeout;
                }
            }
            BftMsg::ForwardVote(v) => {
                if !st
                    .seen_votes
                    .contains(&(v.node.clone(), v.block, v.state_hash))
                {
                    st.pool.votes.push(v);
                }
            }
            BftMsg::PrePrepare { view, block } => {
                self.pay_cost();
                self.observe_view(st, view);
                if view == st.view && block.verify_integrity().is_ok() {
                    self.on_preprepare(st, view, block);
                }
            }
            BftMsg::Prepare {
                view,
                number,
                hash,
                from,
            } => {
                self.pay_cost();
                self.observe_view(st, view);
                if view == st.view {
                    self.on_prepare(st, number, hash, from);
                }
            }
            BftMsg::Commit {
                view,
                number,
                hash: _,
                from,
            } => {
                self.pay_cost();
                self.observe_view(st, view);
                if view == st.view {
                    self.on_commit(st, number, from);
                }
            }
            BftMsg::ViewChange {
                new_view,
                from,
                last_delivered,
                in_flight,
            } => {
                self.pay_cost();
                self.on_view_change(
                    st,
                    new_view,
                    from,
                    VcInfo {
                        last_delivered,
                        in_flight,
                        // bcrdb-lint: allow(wall-clock, reason = "view-change vote freshness TTL; replica-local")
                        at: Instant::now(),
                    },
                );
            }
            BftMsg::NewView { view, proposals } => {
                self.pay_cost();
                // NEW-VIEW is direct evidence the view is active.
                self.observe_view(st, view);
                if view == st.view {
                    for block in proposals {
                        if block.verify_integrity().is_ok() {
                            self.on_preprepare(st, view, block);
                        }
                    }
                }
            }
            BftMsg::FetchDelivered { from_height } => {
                let mut blocks = Vec::new();
                let mut next = from_height + 1;
                // Deep lag: when the requester's next block was already
                // pruned from our bounded log, serve the log's earliest
                // retained suffix instead — the requester fast-forwards
                // onto it and the skipped range is healed downstream by
                // node-level peer catch-up.
                if let Some(earliest) = st.delivered_log.keys().next() {
                    next = next.max(*earliest);
                }
                while blocks.len() < FETCH_BATCH {
                    match st.delivered_log.get(&next) {
                        Some(b) => blocks.push(Arc::clone(b)),
                        None => break,
                    }
                    next += 1;
                }
                if !blocks.is_empty() {
                    let size: usize = blocks.iter().map(|b| b.wire_size()).sum();
                    let _ = self.net.send(
                        &replica_endpoint(self.idx),
                        &d.from,
                        BftMsg::DeliveredBlocks { blocks },
                        size,
                    );
                }
            }
            BftMsg::DeliveredBlocks { blocks } => {
                let full_batch = blocks.len() == FETCH_BATCH;
                for block in blocks {
                    if block.number == st.last_delivered + 1
                        && block.prev_hash == st.prev_hash
                        && block.verify_integrity().is_ok()
                    {
                        self.deliver(st, block);
                    } else if block.number > st.last_delivered + 1
                        && block.verify_integrity().is_ok()
                    {
                        // The serving peer no longer retains our next
                        // block (we lagged beyond its DELIVERED_LOG_CAP):
                        // fast-forward onto the offered suffix. Skipped
                        // heights never reach our subscribers — their
                        // nodes see the delivery gap and run peer
                        // catch-up, the designed heal for splice holes.
                        // The pool is dropped wholesale: anything pooled
                        // across such a long outage was almost certainly
                        // ordered in a skipped block, and re-proposing it
                        // would duplicate (clients retry real losses).
                        st.last_delivered = block.number - 1;
                        st.prev_hash = block.prev_hash;
                        st.rounds.retain(|n, _| *n >= block.number);
                        st.pool = TxPool::default();
                        self.deliver(st, block);
                    }
                }
                self.maybe_finish_pending_new_view(st);
                // Catching up may have unblocked buffered rounds.
                self.try_deliver_sequential(st);
                // A full batch means the serving peer likely holds more:
                // chain the next request immediately instead of pacing a
                // deep catch-up at one batch per progress-timer period.
                if full_batch {
                    let _ = self.net.send(
                        &replica_endpoint(self.idx),
                        &d.from,
                        BftMsg::FetchDelivered {
                            from_height: st.last_delivered,
                        },
                        16,
                    );
                }
            }
        }
    }

    /// Adopt a higher view advertised by a consensus message (honest
    /// replicas only advance views through the protocol, so any message
    /// from view `v` proves `v` was installed somewhere).
    fn observe_view(&self, st: &mut ReplicaState, view: u64) {
        if view > st.view {
            self.enter_view(st, view, None);
        }
    }

    /// Install `view`. `votes` carries the view-change votes when we are
    /// entering through a view-change quorum (the new leader needs them
    /// for re-proposal).
    fn enter_view(&self, st: &mut ReplicaState, view: u64, votes: Option<BTreeMap<usize, VcInfo>>) {
        st.view = view;
        st.voted_view = st.voted_view.max(view);
        // bcrdb-lint: allow(wall-clock, reason = "view-change progress deadline; replica-local")
        st.deadline = Instant::now() + self.view_change_timeout;
        st.pending_new_view = None;
        st.in_flight = None;
        st.vc_votes.retain(|v, _| *v > view);
        let prev = self.stats.current_view.fetch_max(view, Ordering::Relaxed);
        if prev < view {
            self.stats.view_changes.fetch_add(1, Ordering::Relaxed);
        }

        if self.leader_of(view) == self.idx {
            let votes = votes.unwrap_or_default();
            // If any voter delivered beyond us, catch up before leading:
            // proposing over a stale tip would fork the chain. Fetch
            // from the voter that claims the highest tip.
            let target = votes
                .values()
                .map(|i| i.last_delivered)
                .max()
                .unwrap_or(0)
                .max(st.last_delivered);
            if target > st.last_delivered {
                let claimant = best_claimant(&votes);
                self.fetch_delivered_from(st, claimant);
                st.pending_new_view = Some((view, target, votes));
            } else {
                self.finish_new_view(st, view, &votes);
            }
        }
    }

    /// The new leader is caught up: install the view for everyone and
    /// re-propose the carried in-flight block, if any.
    fn finish_new_view(&self, st: &mut ReplicaState, view: u64, votes: &BTreeMap<usize, VcInfo>) {
        let next = st.last_delivered + 1;
        // Prefer a carried in-flight proposal for the next height; fall
        // back to our own round state (we may hold the proposal even if
        // no vote carried it).
        let re_proposal = votes
            .values()
            .filter_map(|i| i.in_flight.as_ref())
            .find(|b| b.number == next)
            .cloned()
            .or_else(|| st.rounds.get(&next).and_then(|r| r.block.as_ref()).cloned());
        let proposals: Vec<Arc<Block>> = re_proposal.into_iter().collect();
        let size = 16 + proposals.iter().map(|b| b.wire_size()).sum::<usize>();
        self.broadcast(
            BftMsg::NewView {
                view,
                proposals: proposals.clone(),
            },
            size,
        );
        for block in proposals {
            st.in_flight = Some(block.number);
            self.on_preprepare(st, view, block);
        }
    }

    fn maybe_finish_pending_new_view(&self, st: &mut ReplicaState) {
        if let Some((view, target, _)) = &st.pending_new_view {
            if st.view == *view && st.last_delivered >= *target {
                let (view, _, votes) = st.pending_new_view.take().expect("checked above");
                self.finish_new_view(st, view, &votes);
            } else if st.view != *view {
                st.pending_new_view = None;
            }
        }
    }

    fn on_view_change(&self, st: &mut ReplicaState, new_view: u64, from: usize, info: VcInfo) {
        if new_view <= st.view {
            return;
        }
        st.vc_votes.entry(new_view).or_default().insert(from, info);
        let count = self.live_vc_votes(st, new_view);
        // Join rule: f+1 distinct (fresh) votes prove at least one honest
        // replica timed out — join them so a live minority cannot stall.
        // Deliberately independent of `voted_view`: a replica whose own
        // votes escalated to higher views while it was isolated must
        // still be able to join a fresh quorum forming on a lower view,
        // or the two sides could escalate in lockstep forever. The only
        // guard is against re-voting the same view.
        let already_voted = st
            .vc_votes
            .get(&new_view)
            .is_some_and(|m| m.contains_key(&self.idx));
        if count > self.f && !already_voted {
            self.send_view_change(st, new_view);
        }
        let count = self.live_vc_votes(st, new_view);
        if count >= self.quorum() {
            let votes = st.vc_votes.remove(&new_view).expect("counted above");
            self.enter_view(st, new_view, Some(votes));
        }
    }

    /// Count votes for `new_view`, first expiring the stale ones — two
    /// transient timeouts far apart in time must not sum to a quorum.
    fn live_vc_votes(&self, st: &mut ReplicaState, new_view: u64) -> usize {
        let ttl = self.vc_vote_ttl();
        match st.vc_votes.get_mut(&new_view) {
            Some(m) => {
                m.retain(|_, i| i.at.elapsed() < ttl);
                m.len()
            }
            None => 0,
        }
    }

    fn send_view_change(&self, st: &mut ReplicaState, new_view: u64) {
        st.voted_view = st.voted_view.max(new_view);
        let in_flight = st
            .rounds
            .get(&(st.last_delivered + 1))
            .and_then(|r| r.block.as_ref())
            .cloned();
        let size = 32 + in_flight.as_ref().map_or(0, |b| b.wire_size());
        self.broadcast(
            BftMsg::ViewChange {
                new_view,
                from: self.idx,
                last_delivered: st.last_delivered,
                in_flight: in_flight.clone(),
            },
            size,
        );
        // Count our own vote (may already complete the quorum when f=0).
        st.vc_votes.entry(new_view).or_default().insert(
            self.idx,
            VcInfo {
                last_delivered: st.last_delivered,
                in_flight,
                // bcrdb-lint: allow(wall-clock, reason = "view-change vote freshness TTL; replica-local")
                at: Instant::now(),
            },
        );
        let count = self.live_vc_votes(st, new_view);
        if count >= self.quorum() && new_view > st.view {
            let votes = st.vc_votes.remove(&new_view).expect("counted above");
            self.enter_view(st, new_view, Some(votes));
        }
    }

    /// Work is pending and the leader made no progress for a full
    /// timeout: vote the leader out (and probe peers for delivered
    /// blocks, in case we are merely behind rather than leaderless).
    fn check_progress_timer(&self, st: &mut ReplicaState) {
        // bcrdb-lint: allow(wall-clock, reason = "view-change progress check; replica-local")
        let now = Instant::now();
        if now < st.deadline {
            return;
        }
        st.deadline = now + self.view_change_timeout;
        // A new leader stuck waiting for catch-up re-probes instead.
        if st.pending_new_view.is_some() {
            let claimant = st
                .pending_new_view
                .as_ref()
                .and_then(|(_, _, votes)| best_claimant(votes));
            self.fetch_delivered_from(st, claimant);
            return;
        }
        if self.is_leader(st) {
            return; // a leader cannot suspect itself
        }
        let has_work = !st.pool.txs.is_empty()
            || st
                .rounds
                .iter()
                .any(|(n, r)| *n > st.last_delivered && r.block.is_some());
        if !has_work {
            return;
        }
        // Probe first: if blocks were delivered elsewhere this heals
        // without a rotation, and the premature view-change vote below
        // expires before it can combine with a later one.
        self.fetch_delivered_from(st, None);
        let target = st.voted_view.max(st.view) + 1;
        self.send_view_change(st, target);
    }

    /// Lazily reset a round whose votes belong to an older view (the new
    /// leader re-proposes; stale proposals and votes must not count).
    fn fresh_round(
        rounds: &mut BTreeMap<BlockHeight, RoundState>,
        number: BlockHeight,
        view: u64,
    ) -> &mut RoundState {
        let state = rounds.entry(number).or_default();
        if state.view != view {
            state.view = view;
            state.block = None;
            state.prepares.clear();
            state.commits.clear();
            state.sent_commit = false;
        }
        state
    }

    fn on_preprepare(&self, st: &mut ReplicaState, view: u64, block: Arc<Block>) {
        let number = block.number;
        let hash = block.hash;
        if number <= st.last_delivered {
            // Already delivered here (a NEW-VIEW re-proposal): re-affirm
            // with current-view votes so lagging replicas reach quorum.
            if st
                .delivered_log
                .get(&number)
                .is_some_and(|b| b.hash == hash)
            {
                self.broadcast(
                    BftMsg::Prepare {
                        view,
                        number,
                        hash,
                        from: self.idx,
                    },
                    64,
                );
                self.broadcast(
                    BftMsg::Commit {
                        view,
                        number,
                        hash,
                        from: self.idx,
                    },
                    64,
                );
            }
            return;
        }
        let state = Self::fresh_round(&mut st.rounds, number, view);
        if let Some(existing) = &state.block {
            if existing.hash != hash {
                return; // conflicting same-view proposal: ignore
            }
        } else {
            state.block = Some(block);
        }
        if state.prepares.insert(self.idx) {
            self.broadcast(
                BftMsg::Prepare {
                    view,
                    number,
                    hash,
                    from: self.idx,
                },
                64,
            );
        }
        self.check_prepared(st, number, hash);
    }

    fn on_prepare(&self, st: &mut ReplicaState, number: BlockHeight, hash: Digest, from: usize) {
        if number <= st.last_delivered {
            return;
        }
        let view = st.view;
        let state = Self::fresh_round(&mut st.rounds, number, view);
        state.prepares.insert(from);
        self.check_prepared(st, number, hash);
    }

    fn check_prepared(&self, st: &mut ReplicaState, number: BlockHeight, hash: Digest) {
        let view = st.view;
        let state = Self::fresh_round(&mut st.rounds, number, view);
        // Prepared once we hold the proposal and 2f+1 matching PREPAREs
        // (our own included).
        if !state.sent_commit && state.block.is_some() && state.prepares.len() > 2 * self.f {
            state.sent_commit = true;
            state.commits.insert(self.idx);
            self.broadcast(
                BftMsg::Commit {
                    view,
                    number,
                    hash,
                    from: self.idx,
                },
                64,
            );
            // With f = 0 our own commit may already complete the quorum.
            self.try_deliver_sequential(st);
        }
    }

    fn on_commit(&self, st: &mut ReplicaState, number: BlockHeight, from: usize) {
        if number <= st.last_delivered {
            return;
        }
        let view = st.view;
        let state = Self::fresh_round(&mut st.rounds, number, view);
        state.commits.insert(from);
        self.try_deliver_sequential(st);
        // Commit quorum for a future height while the next block is
        // stuck: we fell behind (e.g. joined the view late and missed
        // votes) — fetch delivered blocks from peers.
        if number > st.last_delivered + 1 {
            let stuck = st
                .rounds
                .get(&number)
                .is_some_and(|r| r.commits.len() >= self.quorum() && r.block.is_some());
            if stuck {
                // The current leader is the peer most likely to have
                // delivered the heights we are missing.
                let leader = self.leader_of(st.view);
                self.fetch_delivered_from(st, Some(leader));
            }
        }
    }

    /// Deliver every consecutive height that reached its commit quorum.
    /// Delivery is strictly sequential so each replica's chain is gapless
    /// and `prev_hash` tracking stays sound across leader rotations.
    fn try_deliver_sequential(&self, st: &mut ReplicaState) {
        loop {
            let next = st.last_delivered + 1;
            let ready = match st.rounds.get(&next) {
                Some(r) => r.block.is_some() && r.commits.len() >= self.quorum(),
                None => false,
            };
            if !ready {
                return;
            }
            let block = st
                .rounds
                .get(&next)
                .and_then(|r| r.block.clone())
                .expect("checked above");
            self.deliver(st, block);
        }
    }

    fn deliver(&self, st: &mut ReplicaState, block: Arc<Block>) {
        let number = block.number;
        st.last_delivered = number;
        st.prev_hash = block.hash;
        st.pool.remove_delivered(&block);
        for tx in &block.txs {
            st.delivered_ids.insert(tx.id);
        }
        for cv in &block.checkpoints {
            st.seen_votes
                .insert((cv.node.clone(), cv.block, cv.state_hash));
        }
        st.delivered_log.insert(number, Arc::clone(&block));
        while st.delivered_log.len() > DELIVERED_LOG_CAP {
            let oldest = *st.delivered_log.keys().next().expect("non-empty");
            let evicted = st.delivered_log.remove(&oldest).expect("keyed above");
            // The dedup sets stay bounded by pruning in lockstep with the
            // log: forwards are broadcast at submission and delivered
            // within seconds, so nothing legitimately arrives ≥ 128
            // blocks after its delivery.
            for tx in &evicted.txs {
                st.delivered_ids.remove(&tx.id);
            }
            for cv in &evicted.checkpoints {
                st.seen_votes
                    .remove(&(cv.node.clone(), cv.block, cv.state_hash));
            }
        }
        st.rounds.retain(|n, _| *n > number);
        if st.in_flight == Some(number) {
            st.in_flight = None;
        }
        // bcrdb-lint: allow(wall-clock, reason = "view-change progress deadline; replica-local")
        st.deadline = Instant::now() + self.view_change_timeout;

        deliver_block(&block, self.idx, &self.key, &self.subscribers);
        // Count each block once, globally: the first replica to deliver
        // height h advances the shared counter and owns the stats bump.
        let prev = self.height.fetch_max(number, Ordering::Relaxed);
        if prev < number {
            self.stats.blocks.fetch_add(1, Ordering::Relaxed);
            self.stats
                .txs
                .fetch_add(block.txs.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrderingConfig;
    use crate::service::OrderingService;
    use bcrdb_chain::tx::Payload;
    use bcrdb_common::value::Value;
    use bcrdb_crypto::identity::{Certificate, CertificateRegistry, Role, Scheme};
    use bcrdb_network::NetProfile;

    fn client() -> (KeyPair, Arc<CertificateRegistry>) {
        let key = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: key.public_key(),
        });
        (key, certs)
    }

    fn tx(key: &KeyPair, n: u64) -> Transaction {
        Transaction::new_order_execute(
            "org1/alice",
            Payload::new("f", vec![Value::Int(n as i64)]),
            n,
            key,
        )
        .unwrap()
    }

    fn bft_config(n: usize) -> OrderingConfig {
        let mut c = OrderingConfig::bft(n, 3, Duration::from_millis(100));
        c.bft_msg_cost = Duration::from_micros(100); // fast tests
        c.view_change_timeout = Duration::from_millis(300);
        c.net_profile = NetProfile::instant();
        c
    }

    /// Wait until `cond` holds or panic after `secs` seconds.
    fn wait_until(secs: u64, what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn four_replicas_reach_agreement() {
        let (key, certs) = client();
        let svc = OrderingService::start(bft_config(4), &certs);
        let rx0 = svc.subscribe_to(0);
        let rx3 = svc.subscribe_to(3);
        for i in 0..6 {
            svc.submit(tx(&key, i)).unwrap();
        }
        for expected in 1..=2u64 {
            let b0 = rx0.recv_timeout(Duration::from_secs(5)).unwrap();
            let b3 = rx3.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(b0.number, expected);
            assert_eq!(b0.hash, b3.hash, "replicas deliver the identical block");
            assert_eq!(b0.consensus, "bft");
        }
        svc.shutdown();
    }

    #[test]
    fn single_replica_degenerates_to_solo() {
        let (key, certs) = client();
        let svc = OrderingService::start(bft_config(1), &certs);
        let rx = svc.subscribe();
        for i in 0..3 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(b.number, 1);
        assert_eq!(b.txs.len(), 3);
        svc.shutdown();
    }

    #[test]
    fn timeout_cut_works_under_bft() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 1000;
        cfg.block_timeout = Duration::from_millis(50);
        let svc = OrderingService::start(cfg, &certs);
        let rx = svc.subscribe();
        svc.submit(tx(&key, 1)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(b.txs.len(), 1);
        svc.shutdown();
    }

    #[test]
    fn leader_crash_triggers_view_change_and_blocks_resume() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 2;
        let svc = OrderingService::start(cfg, &certs);
        // Subscribe via replica 3 (stays alive throughout).
        let rx = svc.subscribe_to(3);
        for i in 0..2 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b1 = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(b1.number, 1);
        assert_eq!(svc.current_view(), 0);

        // Kill the leader of view 0; pending work forces a rotation.
        svc.stop_orderer(0).unwrap();
        for i in 10..12 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b2 = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(b2.number, 2, "block production resumed after failover");
        assert_eq!(
            b2.prev_hash, b1.hash,
            "chain is gapless across the view change"
        );
        assert!(svc.current_view() >= 1, "a view change was installed");
        let stats = svc.stats_snapshot();
        assert!(stats.view_changes >= 1);
        assert_eq!(stats.delivered, 2);
        svc.shutdown();
    }

    #[test]
    fn stalled_leader_is_voted_out_and_recovers_as_backup() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 2;
        let svc = OrderingService::start(cfg, &certs);
        let rx = svc.subscribe_to(2);

        // Stall the leader before any traffic; submissions then pile up
        // at the backups until the timer fires.
        svc.stall_orderer(0).unwrap();
        for i in 0..2 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b1 = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(b1.number, 1, "backups ordered the block without the leader");
        assert!(svc.current_view() >= 1);

        // Resume the old leader: it adopts the new view from queued
        // traffic and participates again as a backup.
        svc.unstall_orderer(0).unwrap();
        for i in 10..12 {
            svc.submit(tx(&key, i)).unwrap();
        }
        let b2 = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(b2.number, 2);
        assert_eq!(b2.prev_hash, b1.hash);
        svc.shutdown();
    }

    #[test]
    fn successive_leader_failures_rotate_twice() {
        let (key, certs) = client();
        let mut cfg = bft_config(7); // f = 2: survives two crashed leaders
        cfg.block_size = 1;
        let svc = OrderingService::start(cfg, &certs);
        let rx = svc.subscribe_to(6);

        svc.submit(tx(&key, 0)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().number, 1);

        svc.stop_orderer(0).unwrap();
        svc.submit(tx(&key, 1)).unwrap();
        let b2 = rx.recv_timeout(Duration::from_secs(15)).unwrap();
        assert_eq!(b2.number, 2);
        let view_after_first = svc.current_view();
        assert!(view_after_first >= 1);

        // Kill the *current* leader too.
        let leader = (view_after_first as usize) % 7;
        svc.stop_orderer(leader).unwrap();
        svc.submit(tx(&key, 2)).unwrap();
        let b3 = rx.recv_timeout(Duration::from_secs(15)).unwrap();
        assert_eq!(b3.number, 3);
        assert!(svc.current_view() > view_after_first);
        svc.shutdown();
    }

    #[test]
    fn no_transaction_lost_or_duplicated_across_failover() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 4;
        cfg.block_timeout = Duration::from_millis(60);
        let svc = OrderingService::start(cfg, &certs);
        let rx = svc.subscribe_to(1);

        let total: u64 = 20;
        for i in 0..total / 2 {
            svc.submit(tx(&key, i)).unwrap();
        }
        // Kill the leader mid-stream, then keep submitting.
        std::thread::sleep(Duration::from_millis(30));
        svc.stop_orderer(0).unwrap();
        for i in total / 2..total {
            svc.submit(tx(&key, i)).unwrap();
        }

        let mut seen: Vec<u64> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut expected_number = 1;
        while (seen.len() as u64) < total && Instant::now() < deadline {
            if let Ok(b) = rx.recv_timeout(Duration::from_millis(200)) {
                assert_eq!(b.number, expected_number, "delivery is gapless");
                expected_number += 1;
                for t in &b.txs {
                    let n = t.payload.args[0].clone();
                    if let Value::Int(n) = n {
                        seen.push(n as u64);
                    }
                }
            }
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            seen.len(),
            "no transaction ordered twice: {seen:?}"
        );
        assert_eq!(
            sorted,
            (0..total).collect::<Vec<u64>>(),
            "every submitted transaction was ordered exactly once"
        );
        svc.shutdown();
    }

    #[test]
    fn deep_lag_fast_forwards_past_pruned_history() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 1;
        cfg.bft_msg_cost = Duration::ZERO;
        let svc = OrderingService::start(cfg, &certs);
        let rx3 = svc.subscribe_to(3);
        svc.submit(tx(&key, 0)).unwrap();
        assert_eq!(rx3.recv_timeout(Duration::from_secs(5)).unwrap().number, 1);

        // Cut replica 3 off (messages dropped, not queued) and run the
        // network far past DELIVERED_LOG_CAP, so on heal its next block
        // is pruned from every peer's log.
        svc.partition_orderer(3, true).unwrap();
        let total = (DELIVERED_LOG_CAP as u64) + 13;
        for i in 1..=total {
            svc.submit(tx(&key, i)).unwrap();
        }
        wait_until(30, "network to run ahead", || svc.stats().0 >= total);

        svc.partition_orderer(3, false).unwrap();
        // Trickle fresh traffic: each new block gives the lagging replica
        // stuck commit quorums (and timer probes) that trigger fetches.
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut extra = 0u64;
        let caught_up = loop {
            assert!(Instant::now() < deadline, "replica 3 never fast-forwarded");
            svc.submit(tx(&key, 10_000 + extra)).unwrap();
            extra += 1;
            match rx3.recv_timeout(Duration::from_millis(300)) {
                // The first post-heal delivery must have jumped past the
                // pruned range — block 2 is gone from every peer.
                Ok(b) => break b,
                Err(_) => continue,
            }
        };
        assert!(
            caught_up.number > 2,
            "fast-forward must skip pruned history, got block {}",
            caught_up.number
        );
        // And from there delivery is sequential again up to live traffic.
        let mut expected = caught_up.number + 1;
        let deadline = Instant::now() + Duration::from_secs(30);
        while expected <= total && Instant::now() < deadline {
            if let Ok(b) = rx3.recv_timeout(Duration::from_millis(300)) {
                assert_eq!(b.number, expected, "post-fast-forward delivery is gapless");
                expected += 1;
            } else {
                svc.submit(tx(&key, 20_000 + extra)).unwrap();
                extra += 1;
            }
        }
        assert!(expected > total, "replica 3 reached live height");
        svc.shutdown();
    }

    #[test]
    fn idle_network_does_not_rotate_views() {
        let (_key, certs) = client();
        let svc = OrderingService::start(bft_config(4), &certs);
        let _rx = svc.subscribe();
        // Several timeout periods with no traffic: nothing to suspect the
        // leader over, so the view must stay put.
        std::thread::sleep(Duration::from_millis(900));
        assert_eq!(svc.current_view(), 0);
        assert_eq!(svc.stats_snapshot().view_changes, 0);
        svc.shutdown();
    }

    #[test]
    fn subscribers_of_a_dead_orderer_are_rehomed() {
        let (key, certs) = client();
        let mut cfg = bft_config(4);
        cfg.block_size = 1;
        let svc = OrderingService::start(cfg, &certs);
        // Subscribed to replica 0 — the leader we are about to kill.
        let rx = svc.subscribe_to(0);
        svc.submit(tx(&key, 0)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().number, 1);

        svc.stop_orderer(0).unwrap();
        svc.submit(tx(&key, 1)).unwrap();
        // The subscription now feeds from a live replica; block 2 still
        // arrives (possibly after a duplicate of an earlier block, which
        // downstream consumers drop by height).
        wait_until(
            15,
            "re-homed delivery",
            || matches!(rx.recv_timeout(Duration::from_millis(200)), Ok(b) if b.number == 2),
        );
        svc.shutdown();
    }

    #[test]
    fn throughput_degrades_with_replica_count() {
        // A miniature Fig 8(b): identical offered load, 2 vs 8 replicas
        // with a non-trivial per-message cost. More replicas → more
        // messages per round → lower delivered throughput.
        let (key, _certs2) = client();
        let run = |n: usize| -> u64 {
            let certs = CertificateRegistry::new();
            let mut cfg = OrderingConfig::bft(n, 5, Duration::from_millis(20));
            cfg.bft_msg_cost = Duration::from_millis(2);
            cfg.net_profile = NetProfile::instant();
            let svc = OrderingService::start(cfg, &certs);
            let _rx = svc.subscribe();
            let deadline = Instant::now() + Duration::from_millis(600);
            let mut i = 0u64;
            while Instant::now() < deadline {
                let _ = svc.submit(tx(&key, i));
                i += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            std::thread::sleep(Duration::from_millis(300));
            let (_, txs) = svc.stats();
            svc.shutdown();
            txs
        };
        let small = run(2);
        let large = run(8);
        assert!(small > 0);
        assert!(
            large < small,
            "8 replicas ({large} txs) should order fewer than 2 replicas ({small} txs)"
        );
    }
}
