#![warn(missing_docs)]
//! # bcrdb-ordering
//!
//! The pluggable ordering service (§3.1, §4.4): consensus over *blocks of
//! transactions*, decoupled from transaction execution.
//!
//! Three backends are provided, mirroring the paper's setup:
//!
//! * **solo** — a single orderer node (development/testing);
//! * **kafka** — a crash-fault-tolerant service in the style of the
//!   paper's Apache Kafka + ZooKeeper deployment: every orderer publishes
//!   to a totally ordered topic (here a sequencer thread) and each orderer
//!   independently delivers the identical block stream. Capacity is flat
//!   in the number of orderer nodes (Fig 8b, "Kafka Throughput");
//! * **bft** — a byzantine-fault-tolerant service in the style of
//!   BFT-SMaRt: the current view's leader proposes each block, replicas
//!   run PRE-PREPARE/PREPARE/COMMIT rounds over the simulated network
//!   with quadratic message complexity, so throughput degrades as
//!   orderer count grows (Fig 8b, "BFT Throughput"). PBFT view changes
//!   rotate the leader when it crashes or stalls
//!   ([`OrderingService::stop_orderer`] /
//!   [`OrderingService::stall_orderer`] inject those faults), so block
//!   production survives leader failure — see [`bft`].
//!
//! All backends produce the **same canonical block content** for a given
//! input sequence — the block hash covers number, transactions, consensus
//! metadata and checkpoint votes but *not* signatures, so each orderer can
//! deliver the canonical block under its own signature and every peer
//! still assembles an identical hash chain.
//!
//! Blocks are cut by size or timeout (§4.4: "block size, the maximum
//! number of transactions in a block, and block timeout, the maximum time
//! since the first transaction to appear in a block was received").

pub mod bft;
pub mod config;
pub mod cutter;
pub mod service;
pub mod tcp;
pub mod wire;

pub use config::{OrderingConfig, OrderingKind};
pub use service::{OrderingService, OrderingStats, OrderingStatsSnapshot};
pub use wire::OrdererWire;
