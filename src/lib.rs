#![warn(missing_docs)]
//! # bcrdb — a blockchain relational database
//!
//! A from-scratch Rust implementation of *"Blockchain Meets Database:
//! Design and Implementation of a Blockchain Relational Database"*
//! (Nathan et al., VLDB 2019): a decentralized replicated relational
//! database where mutually distrustful organizations each run a database
//! node, transactions are deterministic SQL smart contracts ordered by a
//! pluggable consensus service, and a novel block-height variant of
//! serializable snapshot isolation guarantees that every replica commits
//! the same transactions in the same serializable order.
//!
//! This facade re-exports the public API ([`Network`], [`Client`] and
//! the typed session surface) plus every substrate crate for direct
//! use. See `README.md` for a tour and `DESIGN.md` for the architecture
//! and the paper-experiment index.

pub use bcrdb_core::{
    Call, CallBuilder, Client, ClusterSpec, InProcess, Network, NetworkConfig, NodeTransport,
    PendingBatch, PendingTx, Prepared, PreparedRun, QueryBuilder, Simulated, TcpCluster,
    TcpTransport, TransportKind,
};

pub use bcrdb_chain as chain;
pub use bcrdb_common as common;
pub use bcrdb_core as core;
pub use bcrdb_crypto as crypto;
pub use bcrdb_engine as engine;
pub use bcrdb_network as network;
pub use bcrdb_node as node;
pub use bcrdb_ordering as ordering;
pub use bcrdb_sql as sql;
pub use bcrdb_storage as storage;
pub use bcrdb_txn as txn;

/// Commonly used items for applications.
pub mod prelude {
    pub use bcrdb_chain::ledger::TxStatus;
    pub use bcrdb_common::value::{FromValue, IntoValue, Value};
    pub use bcrdb_common::{Error, Result};
    pub use bcrdb_core::{
        Call, Client, Network, NetworkConfig, NodeTransport, PendingBatch, PendingTx, Prepared,
        TransportKind,
    };
    pub use bcrdb_engine::result::{FromRow, QueryResult, RowRef};
    pub use bcrdb_node::TxNotification;
    pub use bcrdb_txn::ssi::Flow;
}
