//! `bcrdb-node` — run one process of a TCP deployment.
//!
//! Two roles share the binary:
//!
//! * `--role node` runs one organization's database node: it serves the
//!   client plane (typed RPC frontend) and the peer plane on two TCP
//!   listeners, dials the other organizations' peers and its orderer
//!   replica, and commits blocks to `--data-dir`.
//! * `--role ordering` runs the ordering service with one orderer
//!   replica listener per organization.
//!
//! Every process of one deployment must be started with the same
//! cluster-wide flags (`--orgs`, `--flow`, `--block-size`,
//! `--block-timeout-ms`, `--bench-clients`, `--genesis`): all identities
//! derive deterministically from them, so the processes agree on the
//! certificate registry without exchanging keys.
//!
//! The process runs until SIGINT/SIGTERM, then shuts down gracefully.
//!
//! ```text
//! bcrdb-node --role ordering --orgs org1,org2 --flow eo \
//!     --listen-orderer 127.0.0.1:7301 --listen-orderer 127.0.0.1:7302
//! bcrdb-node --role node --org org1 --orgs org1,org2 --flow eo \
//!     --listen-client 127.0.0.1:7101 --listen-peer 127.0.0.1:7201 \
//!     --peer org2=127.0.0.1:7202 --orderer-addr 127.0.0.1:7301 \
//!     --data-dir /tmp/bcrdb/org1
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

use bcrdb_core::{install_stop_signals, run_node_process, run_ordering_process, ClusterSpec};
use bcrdb_core::{NodeSpec, DEFAULT_GENESIS_SQL};
use bcrdb_network::tcp::bind_reuse;
use bcrdb_network::PeerAddr;
use bcrdb_txn::ssi::Flow;

const USAGE: &str = "\
Usage: bcrdb-node --role node|ordering [options]

Cluster-wide options (must match on every process of a deployment):
  --orgs a,b,c           comma-separated organizations (required)
  --flow oe|eo           transaction flow: order-then-execute (oe) or
                         execute-order-in-parallel (eo) [default: eo]
  --block-size N         max transactions per block [default: 64]
  --block-timeout-ms N   block cut timeout in milliseconds [default: 100]
  --bench-clients N      pre-registered bench users per org [default: 64]
  --genesis FILE|none    genesis SQL file, or `none` for an empty chain
                         [default: built-in bench_simple schema]

Role `node`:
  --org NAME             this node's organization (required)
  --listen-client ADDR   client-plane listen address (required)
  --listen-peer ADDR     peer-plane listen address (required)
  --peer ORG=ADDR        peer-plane address of another org's node
                         (repeatable; one per other org)
  --orderer-addr ADDR    this node's orderer replica (required)
  --data-dir DIR         block store / snapshot directory
  --fsync                fsync the block store on append
  --paged                disk-backed paged table storage: spill cold
                         heap segments to page files under
                         <data-dir>/pages (requires --data-dir)
  --pool-frames N        buffer-pool capacity in 8 KB frames with
                         --paged [default: $BCRDB_POOL_FRAMES or 1024]
  --rejoin               catch up from peers before serving clients
                         (restart / late join)

Role `ordering`:
  --listen-orderer ADDR  listen address of one orderer replica
                         (repeatable; exactly one per org, in org order)
";

struct Opts {
    role: String,
    orgs: Vec<String>,
    flow: Flow,
    block_size: usize,
    block_timeout_ms: u64,
    bench_clients: usize,
    genesis: Option<String>,
    fsync: bool,
    org: Option<String>,
    listen_client: Option<String>,
    listen_peer: Option<String>,
    peers: Vec<String>,
    orderer_addr: Option<String>,
    data_dir: Option<PathBuf>,
    paged: bool,
    pool_frames: usize,
    rejoin: bool,
    listen_orderer: Vec<String>,
}

fn fail(msg: &str) -> ! {
    eprintln!("bcrdb-node: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        role: String::new(),
        orgs: Vec::new(),
        flow: Flow::ExecuteOrderParallel,
        block_size: 64,
        block_timeout_ms: 100,
        bench_clients: 64,
        genesis: None,
        fsync: false,
        org: None,
        listen_client: None,
        listen_peer: None,
        peers: Vec::new(),
        orderer_addr: None,
        data_dir: None,
        paged: false,
        pool_frames: bcrdb_core::pool_frames_by_env(),
        rejoin: false,
        listen_orderer: Vec::new(),
    };
    let mut genesis_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
                .clone()
        };
        match flag.as_str() {
            "--role" => o.role = val("--role"),
            "--orgs" => {
                o.orgs = val("--orgs")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--flow" => {
                o.flow = match val("--flow").as_str() {
                    "oe" | "order-execute" => Flow::OrderThenExecute,
                    "eo" | "eop" | "execute-order" => Flow::ExecuteOrderParallel,
                    other => fail(&format!("unknown flow `{other}` (expected oe|eo)")),
                };
            }
            "--block-size" => o.block_size = parse_num(&val("--block-size"), "--block-size"),
            "--block-timeout-ms" => {
                o.block_timeout_ms = parse_num(&val("--block-timeout-ms"), "--block-timeout-ms");
            }
            "--bench-clients" => {
                o.bench_clients = parse_num(&val("--bench-clients"), "--bench-clients");
            }
            "--genesis" => genesis_file = Some(val("--genesis")),
            "--fsync" => o.fsync = true,
            "--org" => o.org = Some(val("--org")),
            "--listen-client" => o.listen_client = Some(val("--listen-client")),
            "--listen-peer" => o.listen_peer = Some(val("--listen-peer")),
            "--peer" => o.peers.push(val("--peer")),
            "--orderer-addr" => o.orderer_addr = Some(val("--orderer-addr")),
            "--data-dir" => o.data_dir = Some(PathBuf::from(val("--data-dir"))),
            "--paged" => o.paged = true,
            "--pool-frames" => o.pool_frames = parse_num(&val("--pool-frames"), "--pool-frames"),
            "--rejoin" => o.rejoin = true,
            "--listen-orderer" => o.listen_orderer.push(val("--listen-orderer")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    o.genesis = match genesis_file.as_deref() {
        None => Some(DEFAULT_GENESIS_SQL.to_string()),
        Some("none") => None,
        Some(path) => Some(
            std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read genesis file {path}: {e}"))),
        ),
    };
    if o.orgs.is_empty() {
        fail("--orgs is required");
    }
    o
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: invalid number `{s}`")))
}

fn cluster_spec(o: &Opts) -> ClusterSpec {
    let org_refs: Vec<&str> = o.orgs.iter().map(String::as_str).collect();
    let mut spec = ClusterSpec::new(&org_refs, o.flow);
    spec.genesis_sql = o.genesis.clone();
    spec.block_size = o.block_size;
    spec.block_timeout = Duration::from_millis(o.block_timeout_ms);
    spec.bench_clients = o.bench_clients;
    spec.fsync = o.fsync;
    spec
}

fn main() {
    let stop = install_stop_signals();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail("no arguments");
    }
    let opts = parse_opts(&args);
    let spec = cluster_spec(&opts);

    match opts.role.as_str() {
        "node" => {
            let org = opts
                .org
                .clone()
                .unwrap_or_else(|| fail("--org is required"));
            let listen_client = opts
                .listen_client
                .clone()
                .unwrap_or_else(|| fail("--listen-client is required"));
            let listen_peer = opts
                .listen_peer
                .clone()
                .unwrap_or_else(|| fail("--listen-peer is required"));
            let orderer_addr = opts
                .orderer_addr
                .clone()
                .unwrap_or_else(|| fail("--orderer-addr is required"));
            let client_listener = bind_reuse(&listen_client)
                .unwrap_or_else(|e| fail(&format!("bind {listen_client}: {e}")));
            let peer_listener = bind_reuse(&listen_peer)
                .unwrap_or_else(|e| fail(&format!("bind {listen_peer}: {e}")));
            let peers: Vec<PeerAddr> = opts
                .peers
                .iter()
                .map(|s| PeerAddr::parse(s).unwrap_or_else(|e| fail(&format!("--peer {s}: {e}"))))
                .collect();
            let proc = run_node_process(
                &spec,
                NodeSpec {
                    org: org.clone(),
                    client_listener,
                    peer_listener,
                    peers,
                    orderer_addr,
                    data_dir: opts.data_dir.clone(),
                    paged: opts.paged,
                    pool_frames: opts.pool_frames.max(1),
                    rejoin: opts.rejoin,
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("bcrdb-node: start failed for {org}: {e}");
                std::process::exit(1);
            });
            println!(
                "bcrdb-node: ready role=node org={org} client={listen_client} peer={listen_peer}"
            );
            let _ = std::io::stdout().flush();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(50));
            }
            proc.shutdown();
            println!("bcrdb-node: stopped org={org}");
        }
        "ordering" => {
            let listeners: Vec<_> = opts
                .listen_orderer
                .iter()
                .map(|a| bind_reuse(a).unwrap_or_else(|e| fail(&format!("bind {a}: {e}"))))
                .collect();
            let proc = run_ordering_process(&spec, listeners).unwrap_or_else(|e| {
                eprintln!("bcrdb-node: ordering start failed: {e}");
                std::process::exit(1);
            });
            println!(
                "bcrdb-node: ready role=ordering replicas={}",
                opts.listen_orderer.len()
            );
            let _ = std::io::stdout().flush();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(50));
            }
            proc.shutdown();
            println!("bcrdb-node: stopped role=ordering");
        }
        "" => fail("--role is required"),
        other => fail(&format!("unknown role `{other}` (expected node|ordering)")),
    }
}
