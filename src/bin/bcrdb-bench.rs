//! `bcrdb-bench` — open-loop TCP load generator.
//!
//! Drives a deployed cluster (see `bcrdb-node`) over real sockets: it
//! opens `--connections` client connections fanned across the nodes,
//! submits `bench_tx` invocations at a fixed offered rate on an
//! absolute schedule (open loop: submission never waits for commits),
//! mixes in point `SELECT`s, and reports committed throughput and
//! client-observed commit latency as one JSON object on stdout.
//!
//! Every connection authenticates as a distinct pre-registered bench
//! user (`ClusterSpec::bench_user`), because each TCP client mints
//! nonces locally: two connections for the same user would collide.
//! Connection `i` maps to org `i % orgs` and user `bench{i / orgs}`,
//! so up to `orgs * bench-clients` connections are possible.
//!
//! ```text
//! bcrdb-bench --orgs org1,org2 --flow eo \
//!     --addrs 127.0.0.1:7101,127.0.0.1:7102 \
//!     --connections 32 --tps 400 --duration-secs 5
//! ```

use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcrdb_chain::ledger::TxStatus;
use bcrdb_core::{install_stop_signals, tcp_client, ClusterSpec, PendingTx};
use bcrdb_txn::ssi::Flow;

const USAGE: &str = "\
Usage: bcrdb-bench [options]

  --orgs a,b,c         organizations, in cluster order (required)
  --addrs A1,A2,A3     client-plane address of each org's node, aligned
                       with --orgs (required)
  --flow oe|eo         transaction flow of the cluster [default: eo]
  --bench-clients N    bench users per org the cluster pre-registered
                       [default: 64]
  --connections N      concurrent client connections [default: 32]
  --tps N              total offered transactions per second [default: 400]
  --duration-secs N    offered-load window in seconds [default: 5]
  --query-every N      every N-th operation is a SELECT instead of a
                       submit; 0 disables queries [default: 8]
  --id-offset N        first primary key to insert (repeat runs against
                       one cluster need disjoint key ranges) [default: 0]
";

fn fail(msg: &str) -> ! {
    eprintln!("bcrdb-bench: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: invalid number `{s}`")))
}

#[derive(Default)]
struct Stats {
    submitted: u64,
    committed: u64,
    in_window: u64,
    aborted: u64,
    unresolved: u64,
    submit_errors: u64,
    queries: u64,
    query_errors: u64,
    latencies_ms: Vec<f64>,
    query_ms: Vec<f64>,
}

impl Stats {
    fn merge(&mut self, other: Stats) {
        self.submitted += other.submitted;
        self.committed += other.committed;
        self.in_window += other.in_window;
        self.aborted += other.aborted;
        self.unresolved += other.unresolved;
        self.submit_errors += other.submit_errors;
        self.queries += other.queries;
        self.query_errors += other.query_errors;
        self.latencies_ms.extend(other.latencies_ms);
        self.query_ms.extend(other.query_ms);
    }
}

fn percentile(sorted: &[f64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn connection_worker(
    spec: Arc<ClusterSpec>,
    index: usize,
    addr: String,
    tps_per_conn: f64,
    duration: Duration,
    query_every: u64,
    id_offset: i64,
    connections: usize,
    stop: &'static std::sync::atomic::AtomicBool,
) -> Result<Stats, String> {
    let norgs = spec.orgs.len();
    let org = spec.orgs[index % norgs].clone();
    let user = ClusterSpec::bench_user(index / norgs);
    let client = tcp_client(&spec, &org, &user, &addr)
        .map_err(|e| format!("connect {org}/{user} -> {addr}: {e}"))?;

    let start = Instant::now();
    let window_end = start + duration;
    let drain_deadline = window_end + Duration::from_secs(15);
    let interval = Duration::from_secs_f64(1.0 / tps_per_conn.max(0.001));

    // Commit notifications are collected on a dedicated thread so the
    // observed latency is the arrival time, not the next poll of an
    // open-loop submitter.
    let (pending_tx, pending_rx) = std::sync::mpsc::channel::<(Instant, PendingTx)>();
    let collector = std::thread::spawn(move || {
        let mut s = Stats::default();
        for (submitted_at, pending) in pending_rx.iter() {
            let now = Instant::now();
            let left = if now >= drain_deadline {
                Duration::from_millis(1)
            } else {
                drain_deadline - now
            };
            match pending.wait(left) {
                Ok(n) => match n.status {
                    TxStatus::Committed => {
                        s.committed += 1;
                        if Instant::now() <= window_end {
                            s.in_window += 1;
                        }
                        s.latencies_ms
                            .push(submitted_at.elapsed().as_secs_f64() * 1e3);
                    }
                    TxStatus::Aborted(_) => s.aborted += 1,
                },
                Err(_) => s.unresolved += 1,
            }
        }
        s
    });

    let mut s = Stats::default();
    let mut ops: u64 = 0;
    let mut last_id: i64 = id_offset;
    while Instant::now() < window_end && !stop.load(Ordering::Relaxed) {
        ops += 1;
        if query_every > 0 && ops.is_multiple_of(query_every) {
            let t0 = Instant::now();
            match client
                .select("SELECT f1 FROM bench_simple WHERE id = $1")
                .bind(last_id)
                .fetch()
            {
                Ok(_) => {
                    s.queries += 1;
                    s.query_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                Err(_) => s.query_errors += 1,
            }
        } else {
            // Key space partitioned by connection: connection i owns
            // offset + i, offset + i + C, offset + i + 2C, ...
            let id = id_offset + index as i64 + (s.submitted as i64) * connections as i64;
            last_id = id;
            let call = client
                .call("bench_tx")
                .arg(id)
                .arg(id % 1000)
                .arg(id % 77)
                .arg(format!("payload-{id}"))
                .arg(id as f64 * 0.5);
            match call.submit() {
                Ok(p) => {
                    s.submitted += 1;
                    let _ = pending_tx.send((Instant::now(), p));
                }
                Err(_) => s.submit_errors += 1,
            }
        }
        let next = start + interval.mul_f64(ops as f64);
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
    }

    drop(pending_tx);
    let collected = collector.join().map_err(|_| "collector panicked")?;
    s.merge(collected);
    Ok(s)
}

fn main() {
    let stop = install_stop_signals();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut orgs: Vec<String> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    let mut flow = Flow::ExecuteOrderParallel;
    let mut bench_clients: usize = 64;
    let mut connections: usize = 32;
    let mut tps: f64 = 400.0;
    let mut duration_secs: f64 = 5.0;
    let mut query_every: u64 = 8;
    let mut id_offset: i64 = 0;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
                .clone()
        };
        match flag.as_str() {
            "--orgs" => {
                orgs = val("--orgs")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--addrs" => {
                addrs = val("--addrs")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--flow" => {
                flow = match val("--flow").as_str() {
                    "oe" | "order-execute" => Flow::OrderThenExecute,
                    "eo" | "eop" | "execute-order" => Flow::ExecuteOrderParallel,
                    other => fail(&format!("unknown flow `{other}` (expected oe|eo)")),
                };
            }
            "--bench-clients" => {
                bench_clients = parse_num(&val("--bench-clients"), "--bench-clients")
            }
            "--connections" => connections = parse_num(&val("--connections"), "--connections"),
            "--tps" => tps = parse_num(&val("--tps"), "--tps"),
            "--duration-secs" => {
                duration_secs = parse_num(&val("--duration-secs"), "--duration-secs")
            }
            "--query-every" => query_every = parse_num(&val("--query-every"), "--query-every"),
            "--id-offset" => id_offset = parse_num(&val("--id-offset"), "--id-offset"),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if orgs.is_empty() {
        fail("--orgs is required");
    }
    if addrs.len() != orgs.len() {
        fail("--addrs must list exactly one client-plane address per org");
    }
    if connections == 0 {
        fail("--connections must be at least 1");
    }
    if connections > orgs.len() * bench_clients {
        fail(&format!(
            "{connections} connections need more than the {} pre-registered bench users \
             ({} orgs x {bench_clients}); raise --bench-clients on the whole cluster",
            orgs.len() * bench_clients,
            orgs.len(),
        ));
    }

    let org_refs: Vec<&str> = orgs.iter().map(String::as_str).collect();
    let mut spec = ClusterSpec::new(&org_refs, flow);
    spec.bench_clients = bench_clients;
    let spec = Arc::new(spec);

    let duration = Duration::from_secs_f64(duration_secs);
    let tps_per_conn = tps / connections as f64;
    eprintln!(
        "bcrdb-bench: {connections} connections x {tps_per_conn:.1} tps for {duration_secs}s \
         against {} nodes",
        orgs.len()
    );

    let workers: Vec<_> = (0..connections)
        .map(|i| {
            let spec = Arc::clone(&spec);
            let addr = addrs[i % addrs.len()].clone();
            std::thread::spawn(move || {
                connection_worker(
                    spec,
                    i,
                    addr,
                    tps_per_conn,
                    duration,
                    query_every,
                    id_offset,
                    connections,
                    stop,
                )
            })
        })
        .collect();

    let mut total = Stats::default();
    let mut errors: Vec<String> = Vec::new();
    for w in workers {
        match w.join() {
            Ok(Ok(s)) => total.merge(s),
            Ok(Err(e)) => errors.push(e),
            Err(_) => errors.push("worker panicked".into()),
        }
    }
    for e in &errors {
        eprintln!("bcrdb-bench: worker failed: {e}");
    }

    total.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    total.query_ms.sort_by(|a, b| a.total_cmp(b));
    let measured_tps = total.in_window as f64 / duration_secs;
    let avg_ms = if total.latencies_ms.is_empty() {
        0.0
    } else {
        total.latencies_ms.iter().sum::<f64>() / total.latencies_ms.len() as f64
    };
    println!(
        "{{\"schema\":\"bcrdb-bench-v1\",\"connections\":{},\"offered_tps\":{:.1},\
         \"duration_s\":{:.1},\"submitted\":{},\"committed\":{},\"aborted\":{},\
         \"unresolved\":{},\"submit_errors\":{},\"queries\":{},\"query_errors\":{},\
         \"tps\":{:.2},\"avg_latency_ms\":{:.3},\"p95_latency_ms\":{:.3},\
         \"query_p95_ms\":{:.3},\"worker_errors\":{}}}",
        connections,
        tps,
        duration_secs,
        total.submitted,
        total.committed,
        total.aborted,
        total.unresolved,
        total.submit_errors,
        total.queries,
        total.query_errors,
        measured_tps,
        avg_ms,
        percentile(&total.latencies_ms, 95),
        percentile(&total.query_ms, 95),
        errors.len(),
    );
    let _ = std::io::stdout().flush();
    if !errors.is_empty() || total.committed == 0 {
        std::process::exit(1);
    }
}
