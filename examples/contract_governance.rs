//! Contract governance: the §3.7 deployment workflow with per-organization
//! approvals, rejections and on-chain user management.
//!
//! Demonstrates that schema evolution itself is decentralized: no single
//! organization can change the shared contracts; every deployment is an
//! immutable, queryable audit trail.
//!
//! Run with: `cargo run --example contract_governance`

use std::sync::Arc;
use std::time::Duration;

use bcrdb::crypto::identity::{KeyPair, Scheme};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(10);

fn main() -> Result<()> {
    let net = Network::build(NetworkConfig::quick(
        &["org1", "org2", "org3"],
        Flow::OrderThenExecute,
    ))?;
    net.bootstrap_sql("CREATE TABLE parts (id INT PRIMARY KEY, name TEXT NOT NULL)")?;

    let admin1 = net.admin("org1")?;
    let admin2 = net.admin("org2")?;
    let admin3 = net.admin("org3")?;

    // ── Proposal: org1 stages a new smart contract.
    println!("org1 stages deployment #1 (add_part contract)");
    admin1
        .call("create_deploytx")
        .arg(1)
        .arg(
            "CREATE FUNCTION add_part(id INT, name TEXT) AS $$ \
               INSERT INTO parts VALUES ($1, $2) $$",
        )
        .submit_wait(WAIT)?;

    // ── Early submission fails: not everyone approved yet. The typed
    // error taxonomy makes the rejection a structured `TxAborted`.
    match admin1.call("submit_deploytx").arg(1).submit_wait(WAIT) {
        Err(Error::TxAborted { reason, .. }) => {
            println!("premature submit rejected: {reason}");
        }
        other => panic!("expected TxAborted, got {other:?}"),
    }

    // ── Review: org3 comments, everyone approves.
    admin3
        .call("comment_deploytx")
        .arg(1)
        .arg("looks good; ship it")
        .submit_wait(WAIT)?;
    for admin in [&admin1, &admin2, &admin3] {
        admin.call("approve_deploytx").arg(1).submit_wait(WAIT)?;
    }

    // ── Execution: the staged DDL applies on every node atomically.
    admin1.call("submit_deploytx").arg(1).submit_wait(WAIT)?;
    println!("deployment #1 applied");

    // ── A rejected proposal never executes.
    admin2
        .call("create_deploytx")
        .arg(2)
        .arg("DROP TABLE parts")
        .submit_wait(WAIT)?;
    admin3
        .call("reject_deploytx")
        .arg(2)
        .arg("dropping parts would destroy history")
        .submit_wait(WAIT)?;
    match admin2.call("submit_deploytx").arg(2).submit_wait(WAIT) {
        Err(Error::TxAborted { reason, .. }) => {
            println!("vetoed deployment blocked: {reason}");
        }
        other => panic!("expected veto, got {other:?}"),
    }

    // ── On-chain user onboarding: org2's admin registers a new client.
    let dana_key = Arc::new(KeyPair::generate("org2/dana", b"dana-seed", Scheme::Sim));
    admin2
        .call("create_usertx")
        .arg("org2/dana")
        .arg("org2")
        .arg("client")
        .arg(dana_key.public_key().to_bytes())
        .submit_wait(WAIT)?;
    let dana = net.attach_client("org2", "dana", dana_key)?;
    dana.call("add_part")
        .arg(1)
        .arg("flux capacitor")
        .submit_wait(WAIT)?;
    println!("newly onboarded user invoked the newly deployed contract");

    // ── The whole governance story is plain SQL with typed rows.
    println!("\ndeployment audit trail:");
    let votes: Vec<(i64, String, String, String, Option<String>)> = dana
        .select(
            "SELECT d.id, d.status, v.org, v.vote, v.detail \
             FROM deployments d JOIN deployment_votes v ON d.id = v.deploy_id \
             ORDER BY d.id, v.org, v.vote",
        )
        .fetch_as()?;
    for (id, status, org, vote, detail) in &votes {
        let detail = detail.as_deref().unwrap_or("");
        println!("  deploy {id} [{status}] {org}: {vote} {detail}");
    }

    println!("network users:");
    let users: Vec<(String, String, String)> = dana
        .select("SELECT name, role, status FROM network_users ORDER BY name")
        .fetch_as()?;
    for (name, role, status) in &users {
        println!("  {name} ({role}): {status}");
    }

    net.shutdown();
    Ok(())
}
