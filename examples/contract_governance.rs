//! Contract governance: the §3.7 deployment workflow with per-organization
//! approvals, rejections and on-chain user management.
//!
//! Demonstrates that schema evolution itself is decentralized: no single
//! organization can change the shared contracts; every deployment is an
//! immutable, queryable audit trail.
//!
//! Run with: `cargo run --example contract_governance`

use std::sync::Arc;
use std::time::Duration;

use bcrdb::crypto::identity::{KeyPair, Scheme};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(10);

fn main() -> Result<()> {
    let net = Network::build(NetworkConfig::quick(
        &["org1", "org2", "org3"],
        Flow::OrderThenExecute,
    ))?;
    net.bootstrap_sql("CREATE TABLE parts (id INT PRIMARY KEY, name TEXT NOT NULL)")?;

    let admin1 = net.admin("org1")?;
    let admin2 = net.admin("org2")?;
    let admin3 = net.admin("org3")?;

    // ── Proposal: org1 stages a new smart contract.
    println!("org1 stages deployment #1 (add_part contract)");
    admin1.invoke_wait(
        "create_deploytx",
        vec![
            Value::Int(1),
            Value::Text(
                "CREATE FUNCTION add_part(id INT, name TEXT) AS $$ \
                   INSERT INTO parts VALUES ($1, $2) $$"
                    .into(),
            ),
        ],
        WAIT,
    )?;

    // ── Early submission fails: not everyone approved yet.
    let premature = admin1.invoke("submit_deploytx", vec![Value::Int(1)])?;
    match premature.wait(WAIT)?.status {
        TxStatus::Aborted(reason) => println!("premature submit rejected: {reason}"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // ── Review: org3 comments, everyone approves.
    admin3.invoke_wait(
        "comment_deploytx",
        vec![Value::Int(1), Value::Text("looks good; ship it".into())],
        WAIT,
    )?;
    for admin in [&admin1, &admin2, &admin3] {
        admin.invoke_wait("approve_deploytx", vec![Value::Int(1)], WAIT)?;
    }

    // ── Execution: the staged DDL applies on every node atomically.
    admin1.invoke_wait("submit_deploytx", vec![Value::Int(1)], WAIT)?;
    println!("deployment #1 applied");

    // ── A rejected proposal never executes.
    admin2.invoke_wait(
        "create_deploytx",
        vec![Value::Int(2), Value::Text("DROP TABLE parts".into())],
        WAIT,
    )?;
    admin3.invoke_wait(
        "reject_deploytx",
        vec![Value::Int(2), Value::Text("dropping parts would destroy history".into())],
        WAIT,
    )?;
    let veto = admin2.invoke("submit_deploytx", vec![Value::Int(2)])?;
    match veto.wait(WAIT)?.status {
        TxStatus::Aborted(reason) => println!("vetoed deployment blocked: {reason}"),
        other => panic!("expected veto, got {other:?}"),
    }

    // ── On-chain user onboarding: org2's admin registers a new client.
    let dana_key = Arc::new(KeyPair::generate("org2/dana", b"dana-seed", Scheme::Sim));
    admin2.invoke_wait(
        "create_usertx",
        vec![
            Value::Text("org2/dana".into()),
            Value::Text("org2".into()),
            Value::Text("client".into()),
            Value::Bytes(dana_key.public_key().to_bytes()),
        ],
        WAIT,
    )?;
    let dana = net.attach_client("org2", "dana", dana_key)?;
    dana.invoke_wait(
        "add_part",
        vec![Value::Int(1), Value::Text("flux capacitor".into())],
        WAIT,
    )?;
    println!("newly onboarded user invoked the newly deployed contract");

    // ── The whole governance story is plain SQL.
    println!("\ndeployment audit trail:");
    let r = dana.query(
        "SELECT d.id, d.status, v.org, v.vote, v.detail \
         FROM deployments d JOIN deployment_votes v ON d.id = v.deploy_id \
         ORDER BY d.id, v.org, v.vote",
        &[],
    )?;
    println!("{}", r.to_table_string());

    println!("network users:");
    let r = dana.query("SELECT name, role, status FROM network_users ORDER BY name", &[])?;
    println!("{}", r.to_table_string());

    net.shutdown();
    Ok(())
}
