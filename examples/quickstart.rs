//! Quickstart: a three-organization blockchain relational database.
//!
//! Builds a permissioned network, bootstraps a schema and a smart
//! contract, invokes it from two organizations' clients, and shows that
//! every node independently committed the same state.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use bcrdb::prelude::*;

fn main() -> Result<()> {
    // Three mutually distrustful organizations, each running a database
    // node; the execute-order-in-parallel flow of the paper (§3.4).
    let net = Network::build(NetworkConfig::quick(
        &["org1", "org2", "org3"],
        Flow::ExecuteOrderParallel,
    ))?;

    // Genesis schema + smart contracts (§3.7 network bootstrap).
    net.bootstrap_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT NOT NULL, balance FLOAT NOT NULL); \
         CREATE FUNCTION open_account(id INT, owner TEXT, balance FLOAT) AS $$ \
           INSERT INTO accounts VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION transfer(src INT, dst INT, amount FLOAT) AS $$ \
           UPDATE accounts SET balance = balance - $3 WHERE id = $1; \
           UPDATE accounts SET balance = balance + $3 WHERE id = $2 $$",
    )?;

    // Clients of different organizations.
    let alice = net.client("org1", "alice")?;
    let bob = net.client("org2", "bob")?;
    let wait = Duration::from_secs(10);

    // Signed blockchain transactions: ordered by consensus, executed and
    // committed independently on every node.
    alice.invoke_wait(
        "open_account",
        vec![Value::Int(1), Value::Text("alice".into()), Value::Float(100.0)],
        wait,
    )?;
    bob.invoke_wait(
        "open_account",
        vec![Value::Int(2), Value::Text("bob".into()), Value::Float(25.0)],
        wait,
    )?;
    alice.invoke_wait(
        "transfer",
        vec![Value::Int(1), Value::Int(2), Value::Float(40.0)],
        wait,
    )?;

    // Query any node — reads are local and instantaneous.
    println!("accounts (asked org2's node):");
    let r = bob.query("SELECT id, owner, balance FROM accounts ORDER BY id", &[])?;
    println!("{}", r.to_table_string());

    // Every replica holds the identical state.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, wait)?;
    println!("state hashes at height {height}:");
    for (name, hash) in net.state_hashes() {
        println!("  {name}: {}", hex(&hash[..8]));
    }

    // The ledger is ordinary SQL too.
    let r = alice.query(
        "SELECT block, username, contract, status FROM ledger ORDER BY block, tx_index",
        &[],
    )?;
    println!("ledger:\n{}", r.to_table_string());

    net.shutdown();
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
