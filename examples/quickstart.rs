//! Quickstart: a three-organization blockchain relational database.
//!
//! Builds a permissioned network, bootstraps a schema and a smart
//! contract, invokes it from two organizations' clients through the
//! typed session API, and shows that every node independently committed
//! the same state.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use bcrdb::prelude::*;

fn main() -> Result<()> {
    // Three mutually distrustful organizations, each running a database
    // node; the execute-order-in-parallel flow of the paper (§3.4).
    let net = Network::build(NetworkConfig::quick(
        &["org1", "org2", "org3"],
        Flow::ExecuteOrderParallel,
    ))?;

    // Genesis schema + smart contracts (§3.7 network bootstrap).
    net.bootstrap_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT NOT NULL, balance FLOAT NOT NULL); \
         CREATE FUNCTION open_account(id INT, owner TEXT, balance FLOAT) AS $$ \
           INSERT INTO accounts VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION transfer(src INT, dst INT, amount FLOAT) AS $$ \
           UPDATE accounts SET balance = balance - $3 WHERE id = $1; \
           UPDATE accounts SET balance = balance + $3 WHERE id = $2 $$",
    )?;

    // Clients of different organizations.
    let alice = net.client("org1", "alice")?;
    let bob = net.client("org2", "bob")?;
    let wait = Duration::from_secs(10);

    // Signed blockchain transactions, built fluently: ordered by
    // consensus, executed and committed independently on every node.
    // The retrying variant transparently resubmits on retriable SSI
    // aborts (the §3.4.1 client protocol for the EO flow).
    alice
        .call("open_account")
        .arg(1)
        .arg("alice")
        .arg(100.0)
        .submit_wait_retrying(wait)?;
    bob.call("open_account")
        .arg(2)
        .arg("bob")
        .arg(25.0)
        .submit_wait_retrying(wait)?;
    alice
        .call("transfer")
        .arg(1)
        .arg(2)
        .arg(40.0)
        .submit_wait_retrying(wait)?;

    // Query any node — reads are local and instantaneous, and rows
    // decode straight into Rust types.
    println!("accounts (asked org2's node):");
    let accounts: Vec<(i64, String, f64)> = bob
        .select("SELECT id, owner, balance FROM accounts ORDER BY id")
        .fetch_as()?;
    for (id, owner, balance) in &accounts {
        println!("  account {id}: {owner} has {balance}");
    }

    // Every replica holds the identical state.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, wait)?;
    println!("state hashes at height {height}:");
    for (name, hash) in net.state_hashes() {
        println!("  {name}: {}", hex(&hash[..8]));
    }

    // The ledger is ordinary SQL too.
    let r = alice
        .select("SELECT block, username, contract, status FROM ledger ORDER BY block, tx_index")
        .fetch()?;
    println!("ledger:\n{}", r.to_table_string());

    net.shutdown();
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
