//! Financial services with rich analytics — the paper's §1 motivation:
//! "applications that have strong compliance and audit requirements and
//! need for rich analytical queries such as in financial services".
//!
//! Two banks settle interbank transfers on a shared blockchain database.
//! The settlement contract is a *complex* smart contract (joins and
//! aggregates — impossible to express efficiently on key-value blockchain
//! platforms, §5 "complex-join contract"), and the regulator runs
//! analytical SQL directly against its own replica through prepared
//! statements and typed rows.
//!
//! Run with: `cargo run --example financial_audit`

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(10);

fn main() -> Result<()> {
    let net = Network::build(NetworkConfig::quick(
        &["bank_a", "bank_b", "regulator"],
        Flow::OrderThenExecute,
    ))?;
    net.bootstrap_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, bank TEXT NOT NULL, balance FLOAT NOT NULL); \
         CREATE TABLE transfers (id INT PRIMARY KEY, src INT NOT NULL, dst INT NOT NULL, \
                                 amount FLOAT NOT NULL); \
         CREATE INDEX idx_transfers_src ON transfers (src); \
         CREATE TABLE exposure (bank TEXT PRIMARY KEY, total FLOAT); \
         CREATE FUNCTION open_account(id INT, bank TEXT, balance FLOAT) AS $$ \
           INSERT INTO accounts VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION transfer(tid INT, src INT, dst INT, amount FLOAT) AS $$ \
           UPDATE accounts SET balance = balance - $4 WHERE id = $2; \
           UPDATE accounts SET balance = balance + $4 WHERE id = $3; \
           INSERT INTO transfers VALUES ($1, $2, $3, $4) $$; \
         CREATE FUNCTION compute_exposure() AS $$ \
           DELETE FROM exposure; \
           INSERT INTO exposure \
             SELECT a.bank, SUM(t.amount) FROM transfers t \
             JOIN accounts a ON t.src = a.id GROUP BY a.bank $$",
    )?;

    let teller_a = net.client("bank_a", "teller")?;
    let teller_b = net.client("bank_b", "teller")?;
    let regulator = net.client("regulator", "examiner")?;

    // Customer accounts at both banks, opened as one batch: signed
    // up front, submitted together, notifications fanned in.
    let batch = teller_a.submit_all([
        Call::new("open_account").arg(1).arg("bank_a").arg(1_000.0),
        Call::new("open_account").arg(2).arg("bank_a").arg(750.0),
        Call::new("open_account").arg(3).arg("bank_b").arg(2_000.0),
        Call::new("open_account").arg(4).arg("bank_b").arg(50.0),
    ])?;
    batch.wait_committed_all(WAIT)?;

    // A day of settlement traffic from both banks.
    let transfers = [
        (1, 1, 3, 120.0),
        (2, 3, 2, 300.0),
        (3, 2, 4, 45.0),
        (4, 1, 4, 80.0),
        (5, 3, 1, 60.0),
        (6, 4, 2, 10.0),
    ];
    for (tid, src, dst, amt) in transfers {
        let teller = if src <= 2 { &teller_a } else { &teller_b };
        teller
            .call("transfer")
            .arg(tid)
            .arg(src)
            .arg(dst)
            .arg(amt)
            .submit_wait(WAIT)?;
    }

    // The exposure report is *itself* a smart contract: the complex-join
    // shape from the paper's evaluation, recomputed on every node.
    regulator.call("compute_exposure").submit_wait(WAIT)?;

    println!("closing balances:");
    let balances: Vec<(i64, String, f64)> = regulator
        .select("SELECT id, bank, balance FROM accounts ORDER BY id")
        .fetch_as()?;
    for (id, bank, balance) in &balances {
        println!("  account {id} at {bank}: {balance:.2}");
    }

    println!("per-bank outgoing exposure (computed on-chain):");
    let exposures: Vec<(String, f64)> = regulator
        .select("SELECT bank, total FROM exposure ORDER BY bank")
        .fetch_as()?;
    for (bank, total) in &exposures {
        println!("  {bank}: {total:.2}");
    }

    // Regulator-side analytics: arbitrary SQL against its own replica —
    // group-by/having/order-by over the shared tables, rows decoded by
    // column name.
    println!("largest net senders (ad-hoc analytical query):");
    let r = regulator
        .select(
            "SELECT t.src, COUNT(*) AS n, SUM(t.amount) AS sent \
             FROM transfers t GROUP BY t.src HAVING SUM(t.amount) > 50 \
             ORDER BY sent DESC LIMIT 3",
        )
        .fetch()?;
    for row in r.iter_rows() {
        let src: i64 = row.get("src")?;
        let n: i64 = row.get("n")?;
        let sent: f64 = row.get("sent")?;
        println!("  account {src}: {n} transfers, {sent:.2} sent");
    }

    // Compliance check: money is conserved at every block height. The
    // conservation query is *prepared once* and executed per height.
    let tip = regulator.chain_height()?;
    let conservation = regulator.prepare("SELECT SUM(balance) FROM accounts")?;
    for h in 1..=tip {
        let total: Option<f64> = conservation.run().at_height(h).fetch_scalar()?;
        if let Some(total) = total {
            assert!(
                (total - 3_800.0).abs() < 1e-6 || total == 0.0 || total < 3_800.0,
                "conservation check at height {h}: {total}"
            );
        }
    }
    println!("conservation verified at every height up to {tip}");

    // Every bank's replica agrees.
    net.await_height(tip, WAIT)?;
    let hashes = net.state_hashes();
    assert!(hashes.windows(2).all(|w| w[0].1 == w[1].1));
    println!("all replicas agree: {}", hex(&hashes[0].1[..8]));

    net.shutdown();
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
