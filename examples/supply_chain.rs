//! Supply-chain provenance: the motivating use case of the paper's §2(8)
//! and the audit queries of Table 3.
//!
//! A supplier, a manufacturer and an auditor share an invoice table.
//! Invoices are created and updated through smart contracts; the auditor
//! then reconstructs *who changed what, and when* purely with SQL over the
//! `HISTORY()` table function joined against the ledger — no external
//! tooling, no log scraping.
//!
//! Run with: `cargo run --example supply_chain`

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(10);

fn main() -> Result<()> {
    let net = Network::build(NetworkConfig::quick(
        &["supplier", "manufacturer", "auditor"],
        Flow::OrderThenExecute,
    ))?;
    net.bootstrap_sql(
        "CREATE TABLE invoices (invoice_id INT PRIMARY KEY, supplier TEXT NOT NULL, \
                                amount FLOAT NOT NULL, status TEXT NOT NULL); \
         CREATE INDEX idx_invoice_status ON invoices (status); \
         CREATE FUNCTION create_invoice(id INT, supplier TEXT, amount FLOAT) AS $$ \
           INSERT INTO invoices VALUES ($1, $2, $3, 'issued') $$; \
         CREATE FUNCTION revise_amount(id INT, amount FLOAT) AS $$ \
           UPDATE invoices SET amount = $2 WHERE invoice_id = $1 $$; \
         CREATE FUNCTION pay_invoice(id INT) AS $$ \
           UPDATE invoices SET status = 'paid' WHERE invoice_id = $1 $$",
    )?;

    let supplier = net.client("supplier", "sally")?;
    let manufacturer = net.client("manufacturer", "mike")?;
    let auditor = net.client("auditor", "ana")?;

    // Lifecycle of two invoices, touched by different parties.
    supplier
        .call("create_invoice")
        .arg(1001)
        .arg("sally")
        .arg(500.0)
        .submit_wait(WAIT)?;
    supplier
        .call("create_invoice")
        .arg(1002)
        .arg("sally")
        .arg(80.0)
        .submit_wait(WAIT)?;
    // The supplier revises invoice 1001 upward...
    supplier
        .call("revise_amount")
        .arg(1001)
        .arg(550.0)
        .submit_wait(WAIT)?;
    // ...and the manufacturer pays both, as one batch.
    manufacturer
        .submit_all([
            Call::new("pay_invoice").arg(1001),
            Call::new("pay_invoice").arg(1002),
        ])?
        .wait_committed_all(WAIT)?;

    // Let the auditor's replica catch up to the latest block before
    // auditing (commits propagate asynchronously, §2(7)).
    let tip = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(tip, WAIT)?;

    println!("current invoices:");
    let invoices: Vec<(i64, f64, String)> = auditor
        .select("SELECT invoice_id, amount, status FROM invoices ORDER BY invoice_id")
        .fetch_as()?;
    for (id, amount, status) in &invoices {
        println!("  invoice {id}: {amount:.2} [{status}]");
    }

    // ── Table 3, query 1 (adapted): every historical version of invoice
    // 1001 with the block that created it and the user who wrote it.
    println!("full history of invoice 1001 (who wrote each version):");
    let r = auditor
        .select(
            "SELECT h.amount, h.status, h._creator_block, l.username, l.contract \
             FROM HISTORY(invoices) h, ledger l \
             WHERE h.invoice_id = $1 AND h.xmin = l.txid \
             ORDER BY h._creator_block",
        )
        .bind(1001)
        .fetch()?;
    println!("{}", r.to_table_string());

    // ── Table 3, query 2 (adapted): versions of any invoice updated by
    // the supplier between two block heights.
    println!("versions written by supplier sally between blocks 1 and 3:");
    let r = auditor
        .select(
            "SELECT h.invoice_id, h.amount, l.block \
             FROM HISTORY(invoices) h, ledger l \
             WHERE h.xmin = l.txid AND l.username = $1 \
               AND l.block BETWEEN $2 AND $3 \
             ORDER BY l.block, h.invoice_id",
        )
        .bind("supplier/sally")
        .bind(1)
        .bind(3)
        .fetch()?;
    println!("{}", r.to_table_string());

    // Time travel: the state as of the height where 1001 was still unpaid.
    let paid_block: i64 = auditor
        .select(
            "SELECT h._creator_block FROM HISTORY(invoices) h \
             WHERE h.invoice_id = $1 AND h.status = 'paid' ORDER BY h._creator_block LIMIT 1",
        )
        .bind(1001)
        .fetch_scalar()?;
    let before_payment = (paid_block as u64) - 1;
    let state: Vec<(i64, f64, String)> = auditor
        .select("SELECT invoice_id, amount, status FROM invoices ORDER BY invoice_id")
        .at_height(before_payment)
        .fetch_as()?;
    println!("state one block before payment (height {before_payment}):");
    for (id, amount, status) in &state {
        println!("  invoice {id}: {amount:.2} [{status}]");
    }

    net.shutdown();
    Ok(())
}
