//! Orderer leader failure under load: PBFT view change in the BFT
//! ordering backend (§4.4 + DESIGN.md "Ordering fault tolerance").
//!
//! Kills (or stalls) the ordering leader while clients are committing,
//! and asserts the tentpole guarantees end to end:
//!
//! * block production resumes under the rotated leader (no lost or
//!   duplicated transactions — every submitted call commits exactly
//!   once);
//! * every database node converges to an identical, gapless,
//!   byte-identical chain (block hashes *and* checkpoint write-set
//!   hashes agree at every height, no divergence reports);
//! * the ordering layer's state (current view, view-change count) is
//!   observable from an ordinary client through the Metrics RPC;
//! * node-level peer catch-up still works for a node that rejoins after
//!   the view changed.

use std::collections::HashSet;
use std::time::Duration;

use bcrdb_chain::ledger::TxStatus;
use bcrdb_core::{Call, Network, NetworkConfig};
use bcrdb_network::NetProfile;
use bcrdb_ordering::OrderingConfig;
use bcrdb_txn::ssi::Flow;

const ORGS: [&str; 3] = ["org1", "org2", "org3"];

/// Three organizations over a four-replica BFT ordering service (f = 1),
/// with timers tightened so failover happens in test time.
fn failover_config() -> NetworkConfig {
    let mut cfg = NetworkConfig::quick(&ORGS, Flow::OrderThenExecute);
    let mut ord = OrderingConfig::bft(4, 4, Duration::from_millis(60));
    ord.bft_msg_cost = Duration::from_micros(50);
    ord.net_profile = NetProfile::instant();
    ord.view_change_timeout = Duration::from_millis(300);
    cfg.ordering = ord;
    // org1's node is subscribed to orderer 0 — after that replica is
    // killed its delivery stream splices onto a live orderer, and any
    // hole at the splice point must be healed by peer catch-up quickly.
    cfg.gap_timeout = Duration::from_millis(300);
    cfg.genesis_sql = Some(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
         CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$"
            .into(),
    );
    cfg
}

/// Commit `count` distinct rows through `org`'s node, waiting for each.
fn pump(net: &Network, org: &str, start: i64, count: i64) {
    let client = net.client(org, "pump").expect("client");
    for k in start..start + count {
        client
            .call("put")
            .arg(k)
            .arg(k)
            .submit_wait_retrying(Duration::from_secs(30))
            .expect("commit");
    }
}

/// Every node holds the same gapless chain: identical block hashes at
/// every height, matching checkpoint write-set hashes where still
/// retained, equal state hashes, and no divergence reports.
fn assert_converged_identical(net: &Network) {
    let nodes = net.nodes();
    let head = nodes.iter().map(|n| n.height()).max().expect("nodes");
    net.await_height(head, Duration::from_secs(30))
        .expect("all nodes reach the head");

    let reference = &nodes[0];
    for h in 1..=head {
        let rb = reference
            .blockstore
            .get(h)
            .unwrap_or_else(|| panic!("{}: missing block {h}", reference.config.name));
        for node in &nodes[1..] {
            let b = node
                .blockstore
                .get(h)
                .unwrap_or_else(|| panic!("{}: missing block {h}", node.config.name));
            assert_eq!(
                rb.hash, b.hash,
                "block {h} differs between {} and {}",
                reference.config.name, node.config.name
            );
        }
        // Checkpoint write-set hashes are byte-identical wherever both
        // nodes still retain them (the tracker prunes old heights).
        if let Some(rh) = reference.checkpoints.local_hash(h) {
            for node in &nodes[1..] {
                if let Some(nh) = node.checkpoints.local_hash(h) {
                    assert_eq!(rh, nh, "checkpoint hash for block {h} differs");
                }
            }
        }
    }
    let hashes = net.state_hashes();
    for (name, hash) in &hashes[1..] {
        assert_eq!(hashes[0].1, *hash, "state hash differs at {name}");
    }
    for node in &nodes {
        assert!(
            node.divergences().is_empty(),
            "{}: unexpected divergence reports {:?}",
            node.config.name,
            node.divergences()
        );
    }
}

#[test]
fn leader_crash_under_load_rotates_and_converges() {
    let net = Network::build(failover_config()).expect("network");

    // Warm traffic in view 0.
    pump(&net, "org2", 1, 5);

    // Fire a batch and kill the leader while it is in flight.
    let client = net.client("org3", "burst").expect("client");
    let calls: Vec<Call> = (100..112).map(|k| Call::new("put").arg(k).arg(k)).collect();
    let batch = client.submit_all(calls).expect("batch accepted");
    net.stop_orderer(0).expect("stop leader");

    // Every in-flight transaction still commits, exactly once, under the
    // rotated leader.
    let outcomes = batch
        .wait_all(Duration::from_secs(60))
        .expect("batch resolves across the failover");
    let mut committed = HashSet::new();
    for n in &outcomes {
        assert!(
            matches!(n.status, TxStatus::Committed),
            "transaction aborted across failover: {:?}",
            n.status
        );
        assert!(committed.insert(n.id), "duplicate commit for {:?}", n.id);
    }
    assert_eq!(committed.len(), 12);

    // And fresh post-failover traffic flows normally.
    pump(&net, "org2", 200, 5);

    // The ordering layer's failover is visible through the client
    // Metrics RPC: the view rotated at least once.
    let metrics = client.node_metrics().expect("metrics rpc");
    assert!(
        metrics.ordering.current_view >= 1,
        "view should have rotated: {:?}",
        metrics.ordering
    );
    assert!(metrics.ordering.view_changes >= 1);
    assert!(metrics.ordering.delivered >= 3);
    assert!(metrics.ordering.forwarded >= 22);
    assert!(metrics.ordering.cut >= metrics.ordering.delivered);

    assert_converged_identical(&net);

    // Exactly the 22 distinct rows, visible on every node.
    for org in ORGS {
        let c = net.client(org, "check").expect("client");
        let count: i64 = c
            .select("SELECT COUNT(*) FROM kv")
            .fetch_scalar()
            .expect("count");
        assert_eq!(count, 22, "row count on {org}");
    }
    net.shutdown();
}

#[test]
fn stalled_leader_is_replaced_and_resumes_as_backup() {
    let net = Network::build(failover_config()).expect("network");
    pump(&net, "org1", 1, 3);
    assert_eq!(net.ordering().current_view(), 0);

    // Hang the leader (process alive, no progress). Pending work must
    // force a rotation.
    net.stall_orderer(0).expect("stall leader");
    pump(&net, "org2", 10, 4);
    assert!(
        net.ordering().current_view() >= 1,
        "stalled leader was not voted out"
    );

    // The old leader wakes up, adopts the new view from its queued
    // backlog, and the network keeps committing.
    net.unstall_orderer(0).expect("unstall");
    pump(&net, "org3", 20, 4);
    assert_converged_identical(&net);
    net.shutdown();
}

#[test]
fn node_rejoin_catches_up_after_view_change() {
    let net = Network::build(failover_config()).expect("network");
    pump(&net, "org3", 1, 3);

    // org3's node misses the whole failover era...
    net.stop_node("org3").expect("stop node");
    net.stop_orderer(0).expect("stop leader");
    pump(&net, "org1", 50, 6);
    assert!(net.ordering().current_view() >= 1);

    // ...and must still catch up from peers: the fetched blocks were cut
    // by two different leaders, and verification (hash chain + orderer
    // signatures) passes across the view boundary.
    let node = net.rejoin_node("org3").expect("rejoin");
    let stats = node.last_sync_stats().expect("catch-up ran");
    assert!(stats.fetched >= 1, "rejoin fetched blocks: {stats:?}");
    pump(&net, "org2", 100, 3);
    assert_converged_identical(&net);
    net.shutdown();
}
