//! Randomized-property tests over core invariants: codec round trips, SQL
//! render/parse round trips, Merkle proofs, value ordering laws, index
//! scans vs full scans, and MVCC visibility.
//!
//! The offline build cannot fetch `proptest`, so these use a small
//! deterministic xorshift generator: every run explores the same ~64
//! cases per property, and a failing case is reproducible from its seed.

use bcrdb::common::codec::{Decoder, Encoder};
use bcrdb::common::schema::{Column, DataType, TableSchema};
use bcrdb::common::value::Value;
use bcrdb::crypto::merkle::MerkleTree;
use bcrdb::storage::index::KeyRange;
use bcrdb::storage::snapshot::ScanMode;
use bcrdb::storage::table::Table;
use bcrdb::txn::context::TxnCtx;
use bcrdb::txn::ssi::{Flow, SsiManager};
use std::sync::Arc;

const CASES: u64 = 64;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform in `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo) as u64) as i64)
    }

    fn value(&mut self) -> Value {
        match self.below(7) {
            0 => Value::Null,
            1 => Value::Bool(self.below(2) == 1),
            2 => Value::Int(self.next_u64() as i64),
            // Finite floats only: NaN breaks equality round trips by design.
            3 => Value::Float((self.range_i64(-1_000_000_000, 1_000_000_000) as f64) / 831.0),
            4 => {
                let len = self.below(24) as usize;
                let s: String = (0..len)
                    .map(|_| {
                        let chars = b"abcdefghijklmnopqrstuvwxyz 0123456789_'-";
                        chars[self.below(chars.len() as u64) as usize] as char
                    })
                    .collect();
                Value::Text(s)
            }
            5 => {
                let len = self.below(32) as usize;
                Value::Bytes((0..len).map(|_| self.next_u64() as u8).collect())
            }
            _ => Value::Timestamp(self.next_u64() as i64),
        }
    }
}

#[test]
fn codec_roundtrips_any_row() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let row: Vec<Value> = (0..rng.below(8)).map(|_| rng.value()).collect();
        let mut enc = Encoder::new();
        enc.put_row(&row);
        let bytes = enc.finish();
        let back = Decoder::new(&bytes).get_row().unwrap();
        assert_eq!(row, back, "seed {seed}");
    }
}

#[test]
fn value_ordering_is_total_and_antisymmetric() {
    use std::cmp::Ordering;
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let (a, b, c) = (rng.value(), rng.value(), rng.value());
        // Antisymmetry.
        assert_eq!(a.cmp_total(&b), b.cmp_total(&a).reverse(), "seed {seed}");
        // Transitivity (on a sorted triple).
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        assert!(v[0].cmp_total(&v[1]) != Ordering::Greater, "seed {seed}");
        assert!(v[1].cmp_total(&v[2]) != Ordering::Greater, "seed {seed}");
        assert!(v[0].cmp_total(&v[2]) != Ordering::Greater, "seed {seed}");
    }
}

#[test]
fn merkle_proofs_verify_for_every_leaf() {
    for seed in 0..CASES / 4 {
        let mut rng = Rng::new(seed);
        let n_leaves = 1 + rng.below(23) as usize;
        let leaves: Vec<Vec<u8>> = (0..n_leaves)
            .map(|_| {
                let len = rng.below(16) as usize;
                (0..len).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();
        let tree = MerkleTree::build(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            assert!(
                MerkleTree::verify(&tree.root(), leaf, &proof),
                "seed {seed} leaf {i}"
            );
        }
    }
}

#[test]
fn sql_expression_render_parse_roundtrip() {
    use bcrdb::sql::ast::{BinaryOp, Expr, SelectItem, SelectStmt, Statement};
    use bcrdb::sql::{display, parse_expression};
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        // Non-negative literals: `-1` re-parses as unary negation of `1`,
        // which is semantically equal but structurally different.
        let a = rng.range_i64(0, 1000);
        let b = rng.range_i64(0, 1000);
        // `c_` prefix keeps the generated identifier out of keyword space.
        let t: String = {
            let len = 1 + rng.below(5) as usize;
            let body: String = (0..len)
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect();
            format!("c_{body}")
        };
        let expr = Expr::binary(
            BinaryOp::Add,
            Expr::binary(
                BinaryOp::Mul,
                Expr::Literal(Value::Int(a)),
                Expr::column(t.clone()),
            ),
            Expr::Literal(Value::Int(b)),
        );
        let stmt = Statement::Select(SelectStmt {
            projections: vec![SelectItem::Expr {
                expr: expr.clone(),
                alias: None,
            }],
            from: None,
            predicate: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        });
        let sql = display::statement_to_sql(&stmt);
        let reparsed = bcrdb::sql::parse_statement(&sql).unwrap();
        assert_eq!(stmt, reparsed, "seed {seed}: {sql}");
        // Expression fragment too.
        let fragment = &sql["SELECT ".len()..];
        let e = parse_expression(fragment).unwrap();
        assert_eq!(e, expr, "seed {seed}: {fragment}");
    }
}

#[test]
fn index_scan_equals_full_scan_filter() {
    for seed in 0..CASES / 2 {
        let mut rng = Rng::new(seed);
        let keys: Vec<i64> = (0..1 + rng.below(39))
            .map(|_| rng.range_i64(-50, 50))
            .collect();
        let lo = rng.range_i64(-60, 60);
        let width = rng.range_i64(0, 40);

        let mut schema = TableSchema::new(
            "t",
            vec![
                Column::new("k", DataType::Int),
                Column::new("seq", DataType::Int),
            ],
            vec![1], // pk on seq so duplicate k values are allowed
        )
        .unwrap();
        schema.add_index("idx_k", "k").unwrap();
        let table = Arc::new(Table::new(schema));
        let mgr = Arc::new(SsiManager::new());

        // Commit all rows in one transaction at block 1.
        let ctx = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        for (i, k) in keys.iter().enumerate() {
            ctx.insert(&table, vec![Value::Int(*k), Value::Int(i as i64)])
                .unwrap();
        }
        assert!(ctx
            .apply_commit(1, 0, Flow::OrderThenExecute)
            .is_committed());

        let hi = lo + width;
        let range = KeyRange::between(Value::Int(lo), Value::Int(hi));
        let reader = TxnCtx::read_only(&mgr, 1);
        let via_index: Vec<i64> = reader
            .scan(&table, Some((0, &range)))
            .unwrap()
            .iter()
            .map(|r| r.data[1].as_i64().unwrap())
            .collect();
        let via_scan: Vec<i64> = reader
            .scan(&table, None)
            .unwrap()
            .iter()
            .filter(|r| {
                let k = r.data[0].as_i64().unwrap();
                k >= lo && k <= hi
            })
            .map(|r| r.data[1].as_i64().unwrap())
            .collect();
        assert_eq!(via_index, via_scan, "seed {seed}");
    }
}

#[test]
fn snapshot_visibility_is_monotone_per_version() {
    for seed in 0..CASES / 2 {
        let mut rng = Rng::new(seed);
        // Insert one row per "creator block" and check that a reader at
        // height h sees exactly the rows committed at blocks ≤ h.
        let creators: Vec<u64> = (0..1 + rng.below(19)).map(|_| 1 + rng.below(9)).collect();
        let query_height = rng.below(12);

        let schema =
            TableSchema::new("t", vec![Column::new("id", DataType::Int)], vec![0]).unwrap();
        let table = Arc::new(Table::new(schema));
        let mgr = Arc::new(SsiManager::new());
        let mut sorted = creators.clone();
        sorted.sort_unstable();
        for (i, block) in sorted.iter().enumerate() {
            let ctx = TxnCtx::begin(&mgr, block - 1, ScanMode::Relaxed);
            ctx.insert(&table, vec![Value::Int(i as i64)]).unwrap();
            assert!(ctx
                .apply_commit(*block, i as u32, Flow::OrderThenExecute)
                .is_committed());
        }
        let reader = TxnCtx::read_only(&mgr, query_height);
        let visible = reader.scan(&table, None).unwrap().len();
        let expected = sorted.iter().filter(|b| **b <= query_height).count();
        assert_eq!(visible, expected, "seed {seed}");
    }
}

#[test]
fn writeset_hash_injective_on_content() {
    use bcrdb::chain::checkpoint::WriteSetHasher;
    use bcrdb::common::ids::RowId;
    let hash = |rows: &[(u8, i64)]| {
        let mut h = WriteSetHasher::new();
        for (i, (kind, v)) in rows.iter().enumerate() {
            h.add("t", kind % 3, RowId(i as u64), &[Value::Int(*v)]);
        }
        h.finish()
    };
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let gen = |rng: &mut Rng| -> Vec<(u8, i64)> {
            (0..1 + rng.below(9))
                .map(|_| (rng.next_u64() as u8, rng.range_i64(-100, 100)))
                .collect()
        };
        let rows_a = gen(&mut rng);
        let rows_b = gen(&mut rng);
        if rows_a == rows_b {
            assert_eq!(hash(&rows_a), hash(&rows_b), "seed {seed}");
        } else {
            assert_ne!(hash(&rows_a), hash(&rows_b), "seed {seed}");
        }
        // And always equal to itself.
        assert_eq!(hash(&rows_a), hash(&rows_a), "seed {seed}");
    }
}
