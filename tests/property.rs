//! Property-based tests over core invariants: codec round trips, SQL
//! render/parse round trips, Merkle proofs, value ordering laws, index
//! scans vs full scans, and MVCC visibility.

use proptest::prelude::*;

use bcrdb::common::codec::{Decoder, Encoder};
use bcrdb::common::schema::{Column, DataType, TableSchema};
use bcrdb::common::value::Value;
use bcrdb::crypto::merkle::MerkleTree;
use bcrdb::storage::index::KeyRange;
use bcrdb::storage::snapshot::ScanMode;
use bcrdb::storage::table::Table;
use bcrdb::txn::context::TxnCtx;
use bcrdb::txn::ssi::{Flow, SsiManager};
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks equality round trips by design.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 _'-]{0,24}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrips_any_row(row in proptest::collection::vec(arb_value(), 0..8)) {
        let mut enc = Encoder::new();
        enc.put_row(&row);
        let bytes = enc.finish();
        let back = Decoder::new(&bytes).get_row().unwrap();
        prop_assert_eq!(row, back);
    }

    #[test]
    fn value_ordering_is_total_and_antisymmetric(
        a in arb_value(),
        b in arb_value(),
        c in arb_value(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Transitivity (on a sorted triple).
        let mut v = vec![a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v[0].cmp_total(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].cmp_total(&v[2]) != Ordering::Greater);
        prop_assert!(v[0].cmp_total(&v[2]) != Ordering::Greater);
    }

    #[test]
    fn merkle_proofs_verify_for_every_leaf(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..24)
    ) {
        let tree = MerkleTree::build(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            prop_assert!(MerkleTree::verify(&tree.root(), leaf, &proof));
        }
    }

    #[test]
    fn sql_expression_render_parse_roundtrip(
        // Non-negative literals: `-1` re-parses as unary negation of `1`,
        // which is semantically equal but structurally different.
        a in 0i64..1000,
        b in 0i64..1000,
        // `c_` prefix keeps the generated identifier out of keyword space.
        t in "c_[a-z]{1,5}",
    ) {
        use bcrdb::sql::{parse_expression, display};
        use bcrdb::sql::ast::{Expr, BinaryOp, Statement, SelectStmt, SelectItem};
        let expr = Expr::binary(
            BinaryOp::Add,
            Expr::binary(BinaryOp::Mul, Expr::Literal(Value::Int(a)), Expr::column(t.clone())),
            Expr::Literal(Value::Int(b)),
        );
        let stmt = Statement::Select(SelectStmt {
            projections: vec![SelectItem::Expr { expr: expr.clone(), alias: None }],
            from: None,
            predicate: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        });
        let sql = display::statement_to_sql(&stmt);
        let reparsed = bcrdb::sql::parse_statement(&sql).unwrap();
        prop_assert_eq!(&stmt, &reparsed);
        // Expression fragment too.
        let fragment = {
            let mut s = String::new();
            s.push_str(&sql["SELECT ".len()..]);
            s
        };
        let e = parse_expression(&fragment).unwrap();
        prop_assert_eq!(e, expr);
    }

    #[test]
    fn index_scan_equals_full_scan_filter(
        keys in proptest::collection::vec(-50i64..50, 1..40),
        lo in -60i64..60,
        width in 0i64..40,
    ) {
        let schema = TableSchema::new(
            "t",
            vec![Column::new("k", DataType::Int), Column::new("seq", DataType::Int)],
            vec![1], // pk on seq so duplicate k values are allowed
        ).unwrap();
        let mut schema = schema;
        schema.add_index("idx_k", "k").unwrap();
        let table = Arc::new(Table::new(schema));
        let mgr = Arc::new(SsiManager::new());

        // Commit all rows in one transaction at block 1.
        let ctx = TxnCtx::begin(&mgr, 0, ScanMode::Relaxed);
        for (i, k) in keys.iter().enumerate() {
            ctx.insert(&table, vec![Value::Int(*k), Value::Int(i as i64)]).unwrap();
        }
        prop_assert!(ctx.apply_commit(1, 0, Flow::OrderThenExecute).is_committed());

        let hi = lo + width;
        let range = KeyRange::between(Value::Int(lo), Value::Int(hi));
        let reader = TxnCtx::read_only(&mgr, 1);
        let via_index: Vec<i64> = reader
            .scan(&table, Some((0, &range)))
            .unwrap()
            .iter()
            .map(|r| r.data[1].as_i64().unwrap())
            .collect();
        let via_scan: Vec<i64> = reader
            .scan(&table, None)
            .unwrap()
            .iter()
            .filter(|r| {
                let k = r.data[0].as_i64().unwrap();
                k >= lo && k <= hi
            })
            .map(|r| r.data[1].as_i64().unwrap())
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn snapshot_visibility_is_monotone_per_version(
        creators in proptest::collection::vec(1u64..10, 1..20),
        query_height in 0u64..12,
    ) {
        // Insert one row per "creator block" and check that a reader at
        // height h sees exactly the rows committed at blocks ≤ h.
        let schema = TableSchema::new(
            "t",
            vec![Column::new("id", DataType::Int)],
            vec![0],
        ).unwrap();
        let table = Arc::new(Table::new(schema));
        let mgr = Arc::new(SsiManager::new());
        let mut sorted = creators.clone();
        sorted.sort_unstable();
        for (i, block) in sorted.iter().enumerate() {
            let ctx = TxnCtx::begin(&mgr, block - 1, ScanMode::Relaxed);
            ctx.insert(&table, vec![Value::Int(i as i64)]).unwrap();
            prop_assert!(ctx.apply_commit(*block, i as u32, Flow::OrderThenExecute).is_committed());
        }
        let reader = TxnCtx::read_only(&mgr, query_height);
        let visible = reader.scan(&table, None).unwrap().len();
        let expected = sorted.iter().filter(|b| **b <= query_height).count();
        prop_assert_eq!(visible, expected);
    }

    #[test]
    fn writeset_hash_injective_on_content(
        rows_a in proptest::collection::vec((any::<u8>(), -100i64..100), 1..10),
        rows_b in proptest::collection::vec((any::<u8>(), -100i64..100), 1..10),
    ) {
        use bcrdb::chain::checkpoint::WriteSetHasher;
        use bcrdb::common::ids::RowId;
        let hash = |rows: &[(u8, i64)]| {
            let mut h = WriteSetHasher::new();
            for (i, (kind, v)) in rows.iter().enumerate() {
                h.add("t", kind % 3, RowId(i as u64), &[Value::Int(*v)]);
            }
            h.finish()
        };
        if rows_a == rows_b {
            prop_assert_eq!(hash(&rows_a), hash(&rows_b));
        } else {
            prop_assert_ne!(hash(&rows_a), hash(&rows_b));
        }
    }
}
