//! Serializability semantics at the network level: block-height snapshot
//! reads (§3.4.1), stale/phantom detection for the execute-order-in-
//! parallel flow, and write-skew prevention under both flows.

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build(flow: Flow) -> Network {
    let net = Network::build(NetworkConfig::quick(&["org1", "org2"], flow)).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT NOT NULL); \
         CREATE TABLE audit_log (entry_id INT PRIMARY KEY, acct INT NOT NULL, balance INT NOT NULL); \
         CREATE FUNCTION open_acct(id INT, bal INT) AS $$ INSERT INTO accounts VALUES ($1, $2) $$; \
         CREATE FUNCTION set_balance(id INT, bal INT) AS $$ \
           UPDATE accounts SET balance = $2 WHERE id = $1 $$; \
         CREATE FUNCTION audit_then_set(entry INT, read_id INT, write_id INT) AS $$ \
           INSERT INTO audit_log SELECT $1, id, balance FROM accounts WHERE id = $2; \
           UPDATE accounts SET balance = 0 WHERE id = $3 $$",
    )
    .unwrap();
    net
}

#[test]
fn eo_stale_snapshot_read_aborts() {
    let net = build(Flow::ExecuteOrderParallel);
    let alice = net.client("org1", "alice").unwrap();
    alice
        .call("open_acct")
        .arg(1)
        .arg(100)
        .submit_wait(WAIT)
        .unwrap();
    let old_height = alice.chain_height().unwrap();
    // The row is updated twice by later blocks.
    alice
        .call("set_balance")
        .arg(1)
        .arg(50)
        .submit_wait(WAIT)
        .unwrap();

    // A transaction pinned to the old snapshot height reads row 1, which a
    // later committed block has since rewritten → stale read, aborted on
    // every node (§3.4.1 rule 2). The abort surfaces as the structured
    // `TxAborted` (and classifies as retriable).
    match alice
        .call("set_balance")
        .arg(1)
        .arg(77)
        .at_height(old_height)
        .submit_wait(WAIT)
    {
        Err(e @ Error::TxAborted { .. }) => {
            let msg = e.to_string();
            assert!(
                msg.contains("stale") || msg.contains("serialization"),
                "{msg}"
            );
            assert!(e.is_retriable(), "stale reads are retriable: {msg}");
        }
        other => panic!("expected stale-read abort, got {other:?}"),
    }
    // State unchanged by the aborted transaction, identical across nodes.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, WAIT).unwrap();
    for node in net.nodes() {
        let r = node
            .query("SELECT balance FROM accounts WHERE id = 1", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(50), "{}", node.config.name);
    }
    net.shutdown();
}

#[test]
fn eo_current_snapshot_commits_fine() {
    let net = build(Flow::ExecuteOrderParallel);
    let alice = net.client("org1", "alice").unwrap();
    alice
        .call("open_acct")
        .arg(1)
        .arg(100)
        .submit_wait(WAIT)
        .unwrap();
    // Same contract at the *current* height: commits.
    alice
        .call("set_balance")
        .arg(1)
        .arg(42)
        .submit_wait(WAIT)
        .unwrap();
    let balance: i64 = alice
        .select("SELECT balance FROM accounts WHERE id = $1")
        .bind(1)
        .fetch_scalar()
        .unwrap();
    assert_eq!(balance, 42);
    net.shutdown();
}

#[test]
fn write_skew_is_prevented() {
    // Classic write skew: T1 reads account A and zeroes account B; T2 reads
    // B and zeroes A. Under plain SI both commit (each saw the other's
    // pre-state); under SSI at least one must abort.
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        let net = build(flow);
        let alice = net.client("org1", "alice").unwrap();
        let bob = net.client("org2", "bob").unwrap();
        alice
            .call("open_acct")
            .arg(1)
            .arg(100)
            .submit_wait(WAIT)
            .unwrap();
        alice
            .call("open_acct")
            .arg(2)
            .arg(100)
            .submit_wait(WAIT)
            .unwrap();

        // Fire both without waiting so they land in the same block and are
        // concurrent.
        let p1 = alice
            .call("audit_then_set")
            .arg(10)
            .arg(1)
            .arg(2)
            .submit()
            .unwrap();
        let p2 = bob
            .call("audit_then_set")
            .arg(20)
            .arg(2)
            .arg(1)
            .submit()
            .unwrap();
        let s1 = p1.wait(WAIT).unwrap().status;
        let s2 = p2.wait(WAIT).unwrap().status;
        let committed = [&s1, &s2]
            .iter()
            .filter(|s| matches!(s, TxStatus::Committed))
            .count();
        assert!(
            committed <= 1,
            "{flow:?}: write skew! both committed: {s1:?} / {s2:?}"
        );

        // Serializability invariant: any audit row must record the balance
        // that existed *before* the other transaction's zeroing — and since
        // at most one committed, no audit row can show a zeroed account
        // alongside its own zeroing of the other.
        let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(height, WAIT).unwrap();
        let mut hashes = Vec::new();
        for node in net.nodes() {
            hashes.push(node.state_hash());
        }
        assert_eq!(hashes[0], hashes[1], "{flow:?}: nodes diverged");
        net.shutdown();
    }
}

#[test]
fn serializable_history_is_acyclic() {
    // Build a random-ish workload and verify the committed history is
    // serializable by checking the multi-version serialization graph
    // (§3.2 / Adya et al.): wr and ww edges follow block order by
    // construction, so it suffices that every committed reader of a row
    // version serializes before that version's (committed) overwriter.
    let net = build(Flow::OrderThenExecute);
    let alice = net.client("org1", "alice").unwrap();
    let bob = net.client("org2", "bob").unwrap();
    for id in 0..4 {
        alice
            .call("open_acct")
            .arg(id)
            .arg(100)
            .submit_wait(WAIT)
            .unwrap();
    }
    let mut pendings = Vec::new();
    for round in 0..10i64 {
        for (i, c) in [&alice, &bob].iter().enumerate() {
            let i = i as i64;
            let read_id = (round + i) % 4;
            let write_id = (round + i + 1) % 4;
            pendings.push(
                c.call("audit_then_set")
                    .arg(100 + round * 10 + i * 1000)
                    .arg(read_id)
                    .arg(write_id)
                    .submit()
                    .unwrap(),
            );
        }
    }
    let mut any_committed = false;
    for p in pendings {
        if matches!(p.wait(WAIT).unwrap().status, TxStatus::Committed) {
            any_committed = true;
        }
    }
    assert!(any_committed);

    // Cross-node agreement is the end-to-end proxy for the acyclicity
    // argument: both nodes applied the same commit/abort decisions in the
    // same order.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, WAIT).unwrap();
    let hashes: Vec<_> = net.nodes().iter().map(|n| n.state_hash()).collect();
    assert_eq!(hashes[0], hashes[1]);

    // And the audit log is consistent with some serial order: every entry
    // recorded a balance that the account actually had at some committed
    // height ≤ the entry's creation block. The per-height probe is a
    // prepared statement executed once per entry.
    let client = net.client("org1", "verifier").unwrap();
    let entries = client
        .select(
            "SELECT a.entry_id, a.acct, a.balance, h._creator_block \
             FROM audit_log a JOIN HISTORY(audit_log) h ON a.entry_id = h.entry_id",
        )
        .fetch()
        .unwrap();
    let probe = client
        .prepare("SELECT balance FROM accounts WHERE id = $1")
        .unwrap();
    for row in entries.iter_rows() {
        let acct: i64 = row.get("acct").unwrap();
        let recorded: i64 = row.get("balance").unwrap();
        let created: i64 = row.get("_creator_block").unwrap();
        // The recorded balance must match the account state at the height
        // just before the entry committed (reads run at block-1 in OE).
        let at_snapshot: i64 = probe
            .run()
            .bind(acct)
            .at_height((created as u64) - 1)
            .fetch_scalar()
            .unwrap();
        assert_eq!(
            at_snapshot, recorded,
            "audit entry saw a balance the account never had at its snapshot"
        );
    }
    net.shutdown();
}
