//! Serializability semantics at the network level: block-height snapshot
//! reads (§3.4.1), stale/phantom detection for the execute-order-in-
//! parallel flow, and write-skew prevention under both flows.

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build(flow: Flow) -> Network {
    let net = Network::build(NetworkConfig::quick(&["org1", "org2"], flow)).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT NOT NULL); \
         CREATE TABLE audit_log (entry_id INT PRIMARY KEY, acct INT NOT NULL, balance INT NOT NULL); \
         CREATE FUNCTION open_acct(id INT, bal INT) AS $$ INSERT INTO accounts VALUES ($1, $2) $$; \
         CREATE FUNCTION set_balance(id INT, bal INT) AS $$ \
           UPDATE accounts SET balance = $2 WHERE id = $1 $$; \
         CREATE FUNCTION audit_then_set(entry INT, read_id INT, write_id INT) AS $$ \
           INSERT INTO audit_log SELECT $1, id, balance FROM accounts WHERE id = $2; \
           UPDATE accounts SET balance = 0 WHERE id = $3 $$",
    )
    .unwrap();
    net
}

#[test]
fn eo_stale_snapshot_read_aborts() {
    let net = build(Flow::ExecuteOrderParallel);
    let alice = net.client("org1", "alice").unwrap();
    alice
        .invoke_wait("open_acct", vec![Value::Int(1), Value::Int(100)], WAIT)
        .unwrap();
    let old_height = alice.chain_height();
    // The row is updated twice by later blocks.
    alice
        .invoke_wait("set_balance", vec![Value::Int(1), Value::Int(50)], WAIT)
        .unwrap();

    // A transaction pinned to the old snapshot height reads row 1, which a
    // later committed block has since rewritten → stale read, aborted on
    // every node (§3.4.1 rule 2).
    let pending = alice
        .invoke_at("set_balance", vec![Value::Int(1), Value::Int(77)], old_height)
        .unwrap();
    match pending.wait(WAIT).unwrap().status {
        TxStatus::Aborted(reason) => {
            assert!(
                reason.contains("stale") || reason.contains("serialization"),
                "{reason}"
            );
        }
        other => panic!("expected stale-read abort, got {other:?}"),
    }
    // State unchanged by the aborted transaction, identical across nodes.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, WAIT).unwrap();
    for node in net.nodes() {
        let r = node.query("SELECT balance FROM accounts WHERE id = 1", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(50), "{}", node.config.name);
    }
    net.shutdown();
}

#[test]
fn eo_current_snapshot_commits_fine() {
    let net = build(Flow::ExecuteOrderParallel);
    let alice = net.client("org1", "alice").unwrap();
    alice
        .invoke_wait("open_acct", vec![Value::Int(1), Value::Int(100)], WAIT)
        .unwrap();
    // Same contract at the *current* height: commits.
    alice
        .invoke_wait("set_balance", vec![Value::Int(1), Value::Int(42)], WAIT)
        .unwrap();
    let r = alice.query("SELECT balance FROM accounts WHERE id = 1", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(42));
    net.shutdown();
}

#[test]
fn write_skew_is_prevented() {
    // Classic write skew: T1 reads account A and zeroes account B; T2 reads
    // B and zeroes A. Under plain SI both commit (each saw the other's
    // pre-state); under SSI at least one must abort.
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        let net = build(flow);
        let alice = net.client("org1", "alice").unwrap();
        let bob = net.client("org2", "bob").unwrap();
        alice
            .invoke_wait("open_acct", vec![Value::Int(1), Value::Int(100)], WAIT)
            .unwrap();
        alice
            .invoke_wait("open_acct", vec![Value::Int(2), Value::Int(100)], WAIT)
            .unwrap();

        // Fire both without waiting so they land in the same block and are
        // concurrent.
        let p1 = alice
            .invoke("audit_then_set", vec![Value::Int(10), Value::Int(1), Value::Int(2)])
            .unwrap();
        let p2 = bob
            .invoke("audit_then_set", vec![Value::Int(20), Value::Int(2), Value::Int(1)])
            .unwrap();
        let s1 = p1.wait(WAIT).unwrap().status;
        let s2 = p2.wait(WAIT).unwrap().status;
        let committed = [&s1, &s2]
            .iter()
            .filter(|s| matches!(s, TxStatus::Committed))
            .count();
        assert!(
            committed <= 1,
            "{flow:?}: write skew! both committed: {s1:?} / {s2:?}"
        );

        // Serializability invariant: any audit row must record the balance
        // that existed *before* the other transaction's zeroing — and since
        // at most one committed, no audit row can show a zeroed account
        // alongside its own zeroing of the other.
        let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(height, WAIT).unwrap();
        let mut hashes = Vec::new();
        for node in net.nodes() {
            hashes.push(node.state_hash());
        }
        assert_eq!(hashes[0], hashes[1], "{flow:?}: nodes diverged");
        net.shutdown();
    }
}

#[test]
fn serializable_history_is_acyclic() {
    // Build a random-ish workload and verify the committed history is
    // serializable by checking the multi-version serialization graph
    // (§3.2 / Adya et al.): wr and ww edges follow block order by
    // construction, so it suffices that every committed reader of a row
    // version serializes before that version's (committed) overwriter.
    let net = build(Flow::OrderThenExecute);
    let alice = net.client("org1", "alice").unwrap();
    let bob = net.client("org2", "bob").unwrap();
    for id in 0..4 {
        alice
            .invoke_wait("open_acct", vec![Value::Int(id), Value::Int(100)], WAIT)
            .unwrap();
    }
    let mut pendings = Vec::new();
    for round in 0..10i64 {
        for (i, c) in [&alice, &bob].iter().enumerate() {
            let i = i as i64;
            let read_id = (round + i) % 4;
            let write_id = (round + i + 1) % 4;
            pendings.push(
                c.invoke(
                    "audit_then_set",
                    vec![
                        Value::Int(100 + round * 10 + i * 1000),
                        Value::Int(read_id),
                        Value::Int(write_id),
                    ],
                )
                .unwrap(),
            );
        }
    }
    let mut any_committed = false;
    for p in pendings {
        if matches!(p.wait(WAIT).unwrap().status, TxStatus::Committed) {
            any_committed = true;
        }
    }
    assert!(any_committed);

    // Cross-node agreement is the end-to-end proxy for the acyclicity
    // argument: both nodes applied the same commit/abort decisions in the
    // same order.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, WAIT).unwrap();
    let hashes: Vec<_> = net.nodes().iter().map(|n| n.state_hash()).collect();
    assert_eq!(hashes[0], hashes[1]);

    // And the audit log is consistent with some serial order: every entry
    // recorded a balance that the account actually had at some committed
    // height ≤ the entry's creation block.
    let node = net.node("org1").unwrap();
    let entries = node
        .query(
            "SELECT a.entry_id, a.acct, a.balance, h._creator_block \
             FROM audit_log a JOIN HISTORY(audit_log) h ON a.entry_id = h.entry_id",
            &[],
        )
        .unwrap();
    for row in &entries.rows {
        let acct = row[1].as_i64().unwrap();
        let recorded = row[2].as_i64().unwrap();
        let created = row[3].as_i64().unwrap() as u64;
        // The recorded balance must match the account state at the height
        // just before the entry committed (reads run at block-1 in OE).
        let r = node
            .query_at(
                "SELECT balance FROM accounts WHERE id = $1",
                &[Value::Int(acct)],
                created - 1,
            )
            .unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Int(recorded),
            "audit entry saw a balance the account never had at its snapshot"
        );
    }
    net.shutdown();
}
