//! The typed session API end-to-end: fluent calls, prepared statements,
//! typed rows, batch submission, time-travel reads and the error
//! taxonomy (`Timeout` vs `TxAborted` vs `Decode` vs `Busy`) — all
//! exercised over **both** `NodeTransport` backends, plus the transport
//! semantics themselves (disconnect cleanup, admission control,
//! statement-cache eviction).

use std::time::{Duration, Instant};

use bcrdb::common::ids::GlobalTxId;
use bcrdb::node::{ClientRequest, ClientResponse};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);
const TRANSPORTS: [TransportKind; 2] = [TransportKind::InProcess, TransportKind::Simulated];

const SCHEMA: &str = "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL, label TEXT); \
     CREATE FUNCTION put(k INT, v INT, label TEXT) AS $$ \
       INSERT INTO kv VALUES ($1, $2, $3) $$; \
     CREATE FUNCTION bump(k INT) AS $$ UPDATE kv SET v = v + 1 WHERE k = $1 $$; \
     CREATE FUNCTION fail_div(k INT) AS $$ \
       UPDATE kv SET v = v / 0 WHERE k = $1 $$";

fn build(flow: Flow, transport: TransportKind) -> Network {
    build_with(flow, transport, |_| {})
}

fn build_with(
    flow: Flow,
    transport: TransportKind,
    tweak: impl FnOnce(&mut NetworkConfig),
) -> Network {
    let mut cfg = NetworkConfig::quick(&["org1", "org2"], flow);
    cfg.client_transport = transport;
    tweak(&mut cfg);
    let net = Network::build(cfg).unwrap();
    net.bootstrap_sql(SCHEMA).unwrap();
    net
}

// ---------------------------------------------------------- time travel

#[test]
fn query_at_returns_each_historical_snapshot() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(1)
            .arg(0)
            .arg("x")
            .submit_wait(WAIT)
            .unwrap();
        let h0 = c.chain_height().unwrap();
        // Record the height after each bump; each height is its own snapshot.
        let mut heights = vec![h0];
        for _ in 0..3 {
            c.call("bump").arg(1).submit_wait(WAIT).unwrap();
            heights.push(c.chain_height().unwrap());
        }
        // The value at each recorded height is exactly the bump count then.
        let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
        for (expect, h) in heights.iter().enumerate() {
            let v: i64 = probe.run().bind(1).at_height(*h).fetch_scalar().unwrap();
            assert_eq!(v, expect as i64, "height {h}");
        }
        // Height 0 (genesis): the row does not exist yet.
        let r = probe.query_at(&[Value::Int(1)], 0).unwrap();
        assert!(r.is_empty(), "row visible at genesis: {r:?}");
        net.shutdown();
    }
}

#[test]
fn query_at_future_height_errors_cleanly() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(1)
            .arg(7)
            .arg("x")
            .submit_wait(WAIT)
            .unwrap();
        let tip = c.chain_height().unwrap();
        // A snapshot beyond the committed tip cannot be served: its blocks
        // have not committed on this node. The error names both heights
        // and survives the transport with its variant intact.
        let err = c
            .select("SELECT v FROM kv WHERE k = $1")
            .bind(1)
            .at_height(tip + 10)
            .fetch()
            .unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, Error::Analysis(_)), "{msg}");
        assert!(msg.contains(&format!("{}", tip + 10)), "{msg}");
        assert!(msg.contains("committed height"), "{msg}");
        // Prepared statements hit the same guard.
        let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
        assert!(probe.query_at(&[Value::Int(1)], tip + 1).is_err());
        net.shutdown();
    }
}

// --------------------------------------------------------- error paths

#[test]
fn submit_wait_surfaces_tx_aborted_with_reason() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(1)
            .arg(1)
            .arg("x")
            .submit_wait(WAIT)
            .unwrap();
        // A contract error (division by zero) is a terminal abort: the typed
        // error carries the transaction id and the ledger's reason string.
        let pending = c.call("fail_div").arg(1).submit().unwrap();
        let id = pending.id;
        match pending.wait_committed(WAIT) {
            Err(e @ Error::TxAborted { .. }) => {
                let Error::TxAborted { id: got, reason } = &e else {
                    unreachable!()
                };
                assert_eq!(*got, id);
                assert!(reason.contains("division by zero"), "{reason}");
                assert!(!e.is_retriable(), "contract errors are not retriable");
            }
            other => panic!("expected TxAborted, got {other:?}"),
        }
        // submit_wait is the same path.
        match c.call("fail_div").arg(1).submit_wait(WAIT) {
            Err(Error::TxAborted { reason, .. }) => {
                assert!(reason.contains("division by zero"), "{reason}")
            }
            other => panic!("expected TxAborted, got {other:?}"),
        }
        net.shutdown();
    }
}

#[test]
fn wait_timeout_is_a_timeout_not_an_abort() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        let pending = c.call("put").arg(1).arg(1).arg("x").submit().unwrap();
        // A zero timeout cannot have a final status yet.
        match pending.wait(Duration::ZERO) {
            Err(e @ Error::Timeout(_)) => assert!(!e.is_retriable()),
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The transaction still commits afterwards — Timeout is not final.
        pending.wait_committed(WAIT).unwrap();
        net.shutdown();
    }
}

// ----------------------------------------------------- typed decoding

#[test]
fn typed_rows_and_decode_errors() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(1)
            .arg(10)
            .arg("a")
            .submit_wait(WAIT)
            .unwrap();
        c.call("put")
            .arg(2)
            .arg(20)
            .arg(None::<String>)
            .submit_wait(WAIT)
            .unwrap();

        let rows: Vec<(i64, i64, Option<String>)> = c
            .select("SELECT k, v, label FROM kv ORDER BY k")
            .fetch_as()
            .unwrap();
        assert_eq!(rows, vec![(1, 10, Some("a".into())), (2, 20, None)]);

        // By-name access through RowRef.
        let r = c
            .select("SELECT k, v, label FROM kv ORDER BY k")
            .fetch()
            .unwrap();
        assert_eq!(r.row(0).unwrap().get::<i64>("v").unwrap(), 10);
        assert_eq!(
            r.row(1).unwrap().get::<Option<String>>("label").unwrap(),
            None
        );

        // Wrong target type → Decode, not a panic or engine error.
        match c
            .select("SELECT label FROM kv WHERE k = 1")
            .fetch_scalar::<i64>()
        {
            Err(Error::Decode(msg)) => assert!(msg.contains("expected Int"), "{msg}"),
            other => panic!("expected Decode, got {other:?}"),
        }
        // fetch_one on a two-row result → Decode.
        assert!(matches!(
            c.select("SELECT k FROM kv ORDER BY k")
                .fetch_one::<(i64,)>(),
            Err(Error::Decode(_))
        ));
        net.shutdown();
    }
}

// ------------------------------------------------- prepared statements

#[test]
fn prepared_statements_reuse_one_parse() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        for k in 0..10 {
            c.call("put")
                .arg(k)
                .arg(k * 100)
                .arg("x")
                .submit_wait(WAIT)
                .unwrap();
        }
        let node = net.node("org1").unwrap();
        let baseline = node.prepared_statement_count();

        let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
        assert_eq!(probe.param_count(), 1);
        assert_eq!(node.prepared_statement_count(), baseline + 1);

        // Many executions with fresh params; no cache growth.
        for k in 0..10i64 {
            let v: i64 = probe.run().bind(k).fetch_scalar().unwrap();
            assert_eq!(v, k * 100);
        }
        assert_eq!(node.prepared_statement_count(), baseline + 1);

        // The same SQL text prepared again (or run via select()) shares the
        // cached parse — and the same server-side handle.
        let again = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
        assert_eq!(again.sql(), probe.sql());
        assert_eq!(again.handle(), probe.handle());
        let _ = c
            .select("SELECT v FROM kv WHERE k = $1")
            .bind(3)
            .fetch()
            .unwrap();
        assert_eq!(node.prepared_statement_count(), baseline + 1);

        // Writes cannot be prepared.
        assert!(c.prepare("DELETE FROM kv").is_err());
        // Missing parameters fail cleanly.
        assert!(probe.query(&[]).is_err());
        net.shutdown();
    }
}

#[test]
fn statement_cache_evicts_lru_and_reprepares_transparently() {
    for transport in TRANSPORTS {
        let net = build_with(Flow::OrderThenExecute, transport, |cfg| {
            cfg.statement_cache_cap = 4;
        });
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(1)
            .arg(10)
            .arg("x")
            .submit_wait(WAIT)
            .unwrap();
        let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
        let first_handle = probe.handle();
        assert_eq!(probe.run().bind(1).fetch_scalar::<i64>().unwrap(), 10);

        // Flood the node with distinct statements: the cache stays
        // bounded instead of growing with every new SQL text.
        for i in 0..20 {
            c.prepare(&format!("SELECT v FROM kv WHERE k = {i}"))
                .unwrap();
        }
        let node = net.node("org1").unwrap();
        assert!(
            node.prepared_statement_count() <= 4,
            "cache grew to {}",
            node.prepared_statement_count()
        );

        // The probe's handle was evicted server-side; execution
        // re-prepares transparently under a fresh handle.
        assert_eq!(probe.run().bind(1).fetch_scalar::<i64>().unwrap(), 10);
        assert_ne!(
            probe.handle(),
            first_handle,
            "expected a re-prepared handle"
        );
        net.shutdown();
    }
}

// -------------------------------------------------- batch submission

#[test]
fn batch_submission_fans_in_notifications() {
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        for transport in TRANSPORTS {
            let net = build(flow, transport);
            let c = net.client("org1", "alice").unwrap();
            let batch = c
                .submit_all((0..25).map(|k| Call::new("put").arg(k).arg(k).arg("b")))
                .unwrap();
            assert_eq!(batch.len(), 25);
            let outcomes = batch.wait_all(WAIT).unwrap();
            assert_eq!(outcomes.len(), 25);
            // Results come back in submission order regardless of commit order.
            for (i, (n, id)) in outcomes.iter().zip(batch.ids()).enumerate() {
                assert_eq!(n.id, *id, "position {i}");
                assert!(
                    matches!(n.status, TxStatus::Committed),
                    "{flow:?} position {i}"
                );
            }
            let count: i64 = c.select("SELECT COUNT(*) FROM kv").fetch_scalar().unwrap();
            assert_eq!(count, 25, "{flow:?}");
            net.shutdown();
        }
    }
}

#[test]
fn failed_submission_does_not_leak_waiters() {
    // A submission that fails at the node (here: resubmitting an
    // already-processed EO transaction id) must deregister its
    // notification waiter — otherwise retry loops grow the hub forever.
    for transport in TRANSPORTS {
        let net = build(Flow::ExecuteOrderParallel, transport);
        let c = net.client("org1", "alice").unwrap();
        let h = c.chain_height().unwrap();
        c.call("put")
            .arg(1)
            .arg(1)
            .arg("x")
            .at_height(h)
            .submit_wait(WAIT)
            .unwrap();
        let node = net.node("org1").unwrap();
        let baseline = node.pending_notification_waiters();
        for _ in 0..5 {
            // Same contract, args and pinned height → same global id → the
            // node rejects the duplicate at submission time.
            let res = c.call("put").arg(1).arg(1).arg("x").at_height(h).submit();
            assert!(res.is_err(), "duplicate pinned resubmission must fail");
        }
        assert_eq!(
            node.pending_notification_waiters(),
            baseline,
            "failed submits leaked notification waiters ({transport:?})"
        );
        net.shutdown();
    }
}

#[test]
fn batch_wait_committed_all_reports_first_abort_in_order() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(0)
            .arg(0)
            .arg("seed")
            .submit_wait(WAIT)
            .unwrap();
        // Middle call fails (duplicate key 0); the rest commit.
        let batch = c
            .submit_all([
                Call::new("put").arg(1).arg(1).arg("ok"),
                Call::new("put").arg(0).arg(9).arg("dup"),
                Call::new("put").arg(2).arg(2).arg("ok"),
            ])
            .unwrap();
        let failing_id = batch.ids()[1];
        match batch.wait_committed_all(WAIT) {
            Err(Error::TxAborted { id, reason }) => {
                assert_eq!(id, failing_id);
                assert!(reason.contains("duplicate"), "{reason}");
            }
            other => panic!("expected TxAborted, got {other:?}"),
        }
        // Non-failing members still committed.
        let count: i64 = c.select("SELECT COUNT(*) FROM kv").fetch_scalar().unwrap();
        assert_eq!(count, 3); // seed + two ok
        net.shutdown();
    }
}

// ------------------------------------------------- transport semantics

#[test]
fn dropped_client_leaves_no_pending_waiters() {
    // A wait registered through the transport lives at most as long as
    // the connection: dropping the client (and every handle keeping its
    // connection alive) must cancel outstanding registrations in the
    // node's hub — over both backends, including the simulated wire
    // where the disconnect itself travels the network.
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let node = net.node("org1").unwrap();
        let c = net.client("org1", "alice").unwrap();
        assert_eq!(node.pending_notification_waiters(), 0);

        // A wait that can never fire: a fabricated transaction id,
        // registered through the raw RPC surface.
        let rx = c.transport().wait_for(GlobalTxId([7u8; 32])).unwrap();
        assert_eq!(node.pending_notification_waiters(), 1);

        // Plus a real transaction dropped mid-wait: submit, then abandon
        // the PendingTx before its notification arrives.
        let pending = c.call("put").arg(1).arg(1).arg("x").submit().unwrap();
        drop(pending);
        drop(rx);
        drop(c);

        // The simulated disconnect crosses the wire asynchronously.
        let deadline = Instant::now() + WAIT;
        while node.pending_notification_waiters() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            node.pending_notification_waiters(),
            0,
            "disconnect leaked waiters ({transport:?})"
        );
        net.shutdown();
    }
}

#[test]
fn cancel_wait_preserves_live_registrations() {
    // Cancelling an abandoned wait (e.g. after a failed resubmission)
    // must not disturb a *live* wait on the same transaction id — on
    // either backend.
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let node = net.node("org1").unwrap();
        let c = net.client("org1", "alice").unwrap();
        let id = GlobalTxId([9u8; 32]);
        let live = c.transport().wait_for(id).unwrap();
        let abandoned = c.transport().wait_for(id).unwrap();
        drop(abandoned);
        c.transport().cancel_wait(&id).unwrap();
        assert_eq!(node.pending_notification_waiters(), 1);
        // The surviving registration still delivers.
        node.notifications().notify(TxNotification {
            id,
            block: 1,
            status: TxStatus::Committed,
        });
        let n = live.recv_timeout(WAIT).expect("live wait cancelled");
        assert_eq!(n.id, id);
        net.shutdown();
    }
}

#[test]
fn admission_window_bounds_in_flight_transactions() {
    for transport in TRANSPORTS {
        let net = build_with(Flow::OrderThenExecute, transport, |cfg| {
            cfg.client_window = 2;
        });
        let c = net.client("org1", "alice").unwrap();
        let p1 = c.call("put").arg(1).arg(1).arg("a").submit().unwrap();
        let p2 = c.call("put").arg(2).arg(2).arg("b").submit().unwrap();
        assert_eq!(c.in_flight(), 2);
        // The window is full: nothing is signed or submitted.
        match c.call("put").arg(3).arg(3).arg("c").submit() {
            Err(Error::Busy(msg)) => assert!(msg.contains("window full"), "{msg}"),
            other => panic!("expected Busy, got {other:?}"),
        }
        // Releasing a handle frees its slot.
        p1.wait_committed(WAIT).unwrap();
        drop(p1);
        assert_eq!(c.in_flight(), 1);
        let p3 = c.call("put").arg(3).arg(3).arg("c").submit().unwrap();
        p3.wait_committed(WAIT).unwrap();
        p2.wait_committed(WAIT).unwrap();
        // A batch larger than the whole window is rejected up front.
        match c.submit_all((10..20).map(|k| Call::new("put").arg(k).arg(k).arg("x"))) {
            Err(Error::Busy(msg)) => assert!(msg.contains("exceeds"), "{msg}"),
            other => panic!("expected Busy, got {other:?}"),
        }
        net.shutdown();
    }
}

#[test]
fn raw_rpc_surface_round_trips() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c = net.client("org1", "alice").unwrap();
        c.call("put")
            .arg(1)
            .arg(5)
            .arg("x")
            .submit_wait(WAIT)
            .unwrap();
        assert!(c.chain_height().unwrap() >= 1);
        let m = c.node_metrics().unwrap();
        assert!(m.committed >= 1, "{transport:?}: {m:?}");
        // The typed request enum is usable directly for custom drivers.
        match c
            .transport()
            .call(ClientRequest::Query {
                sql: "SELECT v FROM kv".into(),
                params: vec![],
            })
            .unwrap()
        {
            ClientResponse::Rows(r) => assert_eq!(r.rows.len(), 1),
            other => panic!("expected Rows, got {other:?}"),
        }
        net.shutdown();
    }
}

// --------------------------------------------------------------- EXPLAIN

/// Tentpole acceptance: `EXPLAIN` rides the ordinary row-result path
/// through both simulated transports, and — because plans are a pure
/// function of the catalog and the commit-sealed statistics — every
/// node renders byte-identical plan text for the same statement.
#[test]
fn explain_round_trips_identically_on_every_node() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let c1 = net.client("org1", "alice").unwrap();
        for k in 0..8 {
            c1.call("put")
                .arg(k)
                .arg(k * 10)
                .arg("x")
                .submit_wait(WAIT)
                .unwrap();
        }
        let h = c1.chain_height().unwrap();
        net.await_height(h, WAIT).unwrap();
        let c2 = net.client("org2", "bob").unwrap();

        // Client::explain adds the EXPLAIN prefix when missing; both
        // spellings reach the same planner.
        let sql = "SELECT v FROM kv WHERE k = 1 OR k = 2";
        let p1 = c1.explain(sql).unwrap();
        let p2 = c2.explain(&format!("EXPLAIN {sql}")).unwrap();
        assert!(!p1.is_empty(), "empty plan ({transport:?})");
        assert!(
            p1.iter()
                .any(|l| l.contains("est=") && l.contains("actual=")),
            "no estimated/actual counts in {p1:?}"
        );
        assert!(
            p1.iter().any(|l| l.contains("IndexUnion kv")),
            "OR over the key should plan as an index union with stats: {p1:?}"
        );
        assert_eq!(p1, p2, "plan text diverged across nodes ({transport:?})");

        // EXPLAIN of a write is rejected like any non-SELECT read.
        assert!(c1.explain("DELETE FROM kv").is_err());
        net.shutdown();
    }
}
