//! The typed session API end-to-end: fluent calls, prepared statements,
//! typed rows, batch submission, time-travel reads and the error
//! taxonomy (`Timeout` vs `TxAborted` vs `Decode`).

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build(flow: Flow) -> Network {
    let net = Network::build(NetworkConfig::quick(&["org1", "org2"], flow)).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL, label TEXT); \
         CREATE FUNCTION put(k INT, v INT, label TEXT) AS $$ \
           INSERT INTO kv VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION bump(k INT) AS $$ UPDATE kv SET v = v + 1 WHERE k = $1 $$; \
         CREATE FUNCTION fail_div(k INT) AS $$ \
           UPDATE kv SET v = v / 0 WHERE k = $1 $$",
    )
    .unwrap();
    net
}

// ---------------------------------------------------------- time travel

#[test]
fn query_at_returns_each_historical_snapshot() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    c.call("put")
        .arg(1)
        .arg(0)
        .arg("x")
        .submit_wait(WAIT)
        .unwrap();
    let h0 = c.chain_height();
    // Record the height after each bump; each height is its own snapshot.
    let mut heights = vec![h0];
    for _ in 0..3 {
        c.call("bump").arg(1).submit_wait(WAIT).unwrap();
        heights.push(c.chain_height());
    }
    // The value at each recorded height is exactly the bump count then.
    let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
    for (expect, h) in heights.iter().enumerate() {
        let v: i64 = probe.run().bind(1).at_height(*h).fetch_scalar().unwrap();
        assert_eq!(v, expect as i64, "height {h}");
    }
    // Height 0 (genesis): the row does not exist yet.
    let r = probe.query_at(&[Value::Int(1)], 0).unwrap();
    assert!(r.is_empty(), "row visible at genesis: {r:?}");
    net.shutdown();
}

#[test]
fn query_at_future_height_errors_cleanly() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    c.call("put")
        .arg(1)
        .arg(7)
        .arg("x")
        .submit_wait(WAIT)
        .unwrap();
    let tip = c.chain_height();
    // A snapshot beyond the committed tip cannot be served: its blocks
    // have not committed on this node. The error names both heights.
    let err = c
        .select("SELECT v FROM kv WHERE k = $1")
        .bind(1)
        .at_height(tip + 10)
        .fetch()
        .unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, Error::Analysis(_)), "{msg}");
    assert!(msg.contains(&format!("{}", tip + 10)), "{msg}");
    assert!(msg.contains("committed height"), "{msg}");
    // Prepared statements hit the same guard.
    let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
    assert!(probe.query_at(&[Value::Int(1)], tip + 1).is_err());
    net.shutdown();
}

// --------------------------------------------------------- error paths

#[test]
fn submit_wait_surfaces_tx_aborted_with_reason() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    c.call("put")
        .arg(1)
        .arg(1)
        .arg("x")
        .submit_wait(WAIT)
        .unwrap();
    // A contract error (division by zero) is a terminal abort: the typed
    // error carries the transaction id and the ledger's reason string.
    let pending = c.call("fail_div").arg(1).submit().unwrap();
    let id = pending.id;
    match pending.wait_committed(WAIT) {
        Err(e @ Error::TxAborted { .. }) => {
            let Error::TxAborted { id: got, reason } = &e else {
                unreachable!()
            };
            assert_eq!(*got, id);
            assert!(reason.contains("division by zero"), "{reason}");
            assert!(!e.is_retriable(), "contract errors are not retriable");
        }
        other => panic!("expected TxAborted, got {other:?}"),
    }
    // submit_wait is the same path.
    match c.call("fail_div").arg(1).submit_wait(WAIT) {
        Err(Error::TxAborted { reason, .. }) => {
            assert!(reason.contains("division by zero"), "{reason}")
        }
        other => panic!("expected TxAborted, got {other:?}"),
    }
    net.shutdown();
}

#[test]
fn wait_timeout_is_a_timeout_not_an_abort() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    let pending = c.call("put").arg(1).arg(1).arg("x").submit().unwrap();
    // A zero timeout cannot have a final status yet.
    match pending.wait(Duration::ZERO) {
        Err(e @ Error::Timeout(_)) => assert!(!e.is_retriable()),
        other => panic!("expected Timeout, got {other:?}"),
    }
    // The transaction still commits afterwards — Timeout is not final.
    pending.wait_committed(WAIT).unwrap();
    net.shutdown();
}

// ----------------------------------------------------- typed decoding

#[test]
fn typed_rows_and_decode_errors() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    c.call("put")
        .arg(1)
        .arg(10)
        .arg("a")
        .submit_wait(WAIT)
        .unwrap();
    c.call("put")
        .arg(2)
        .arg(20)
        .arg(None::<String>)
        .submit_wait(WAIT)
        .unwrap();

    let rows: Vec<(i64, i64, Option<String>)> = c
        .select("SELECT k, v, label FROM kv ORDER BY k")
        .fetch_as()
        .unwrap();
    assert_eq!(rows, vec![(1, 10, Some("a".into())), (2, 20, None)]);

    // By-name access through RowRef.
    let r = c
        .select("SELECT k, v, label FROM kv ORDER BY k")
        .fetch()
        .unwrap();
    assert_eq!(r.row(0).unwrap().get::<i64>("v").unwrap(), 10);
    assert_eq!(
        r.row(1).unwrap().get::<Option<String>>("label").unwrap(),
        None
    );

    // Wrong target type → Decode, not a panic or engine error.
    match c
        .select("SELECT label FROM kv WHERE k = 1")
        .fetch_scalar::<i64>()
    {
        Err(Error::Decode(msg)) => assert!(msg.contains("expected Int"), "{msg}"),
        other => panic!("expected Decode, got {other:?}"),
    }
    // fetch_one on a two-row result → Decode.
    assert!(matches!(
        c.select("SELECT k FROM kv ORDER BY k")
            .fetch_one::<(i64,)>(),
        Err(Error::Decode(_))
    ));
    net.shutdown();
}

// ------------------------------------------------- prepared statements

#[test]
fn prepared_statements_reuse_one_parse() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    for k in 0..10 {
        c.call("put")
            .arg(k)
            .arg(k * 100)
            .arg("x")
            .submit_wait(WAIT)
            .unwrap();
    }
    let node = net.node("org1").unwrap();
    let baseline = node.prepared_statement_count();

    let probe = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
    assert_eq!(probe.param_count(), 1);
    assert_eq!(node.prepared_statement_count(), baseline + 1);

    // Many executions with fresh params; no cache growth.
    for k in 0..10i64 {
        let v: i64 = probe.run().bind(k).fetch_scalar().unwrap();
        assert_eq!(v, k * 100);
    }
    assert_eq!(node.prepared_statement_count(), baseline + 1);

    // The same SQL text prepared again (or run via select()) shares the
    // cached parse.
    let again = c.prepare("SELECT v FROM kv WHERE k = $1").unwrap();
    assert_eq!(again.sql(), probe.sql());
    let _ = c
        .select("SELECT v FROM kv WHERE k = $1")
        .bind(3)
        .fetch()
        .unwrap();
    assert_eq!(node.prepared_statement_count(), baseline + 1);

    // Writes cannot be prepared.
    assert!(c.prepare("DELETE FROM kv").is_err());
    // Missing parameters fail cleanly.
    assert!(probe.query(&[]).is_err());
    net.shutdown();
}

// -------------------------------------------------- batch submission

#[test]
fn batch_submission_fans_in_notifications() {
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        let net = build(flow);
        let c = net.client("org1", "alice").unwrap();
        let batch = c
            .submit_all((0..25).map(|k| Call::new("put").arg(k).arg(k).arg("b")))
            .unwrap();
        assert_eq!(batch.len(), 25);
        let outcomes = batch.wait_all(WAIT).unwrap();
        assert_eq!(outcomes.len(), 25);
        // Results come back in submission order regardless of commit order.
        for (i, (n, id)) in outcomes.iter().zip(batch.ids()).enumerate() {
            assert_eq!(n.id, *id, "position {i}");
            assert!(
                matches!(n.status, TxStatus::Committed),
                "{flow:?} position {i}"
            );
        }
        let count: i64 = c.select("SELECT COUNT(*) FROM kv").fetch_scalar().unwrap();
        assert_eq!(count, 25, "{flow:?}");
        net.shutdown();
    }
}

#[test]
fn failed_submission_does_not_leak_waiters() {
    // A submission that fails at the node (here: resubmitting an
    // already-processed EO transaction id) must deregister its
    // notification waiter — otherwise retry loops grow the hub forever.
    let net = build(Flow::ExecuteOrderParallel);
    let c = net.client("org1", "alice").unwrap();
    let h = c.chain_height();
    c.call("put")
        .arg(1)
        .arg(1)
        .arg("x")
        .at_height(h)
        .submit_wait(WAIT)
        .unwrap();
    let node = net.node("org1").unwrap();
    let baseline = node.pending_notification_waiters();
    for _ in 0..5 {
        // Same contract, args and pinned height → same global id → the
        // node rejects the duplicate at submission time.
        let res = c.call("put").arg(1).arg(1).arg("x").at_height(h).submit();
        assert!(res.is_err(), "duplicate pinned resubmission must fail");
    }
    assert_eq!(
        node.pending_notification_waiters(),
        baseline,
        "failed submits leaked notification waiters"
    );
    net.shutdown();
}

#[test]
fn batch_wait_committed_all_reports_first_abort_in_order() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    c.call("put")
        .arg(0)
        .arg(0)
        .arg("seed")
        .submit_wait(WAIT)
        .unwrap();
    // Middle call fails (duplicate key 0); the rest commit.
    let batch = c
        .submit_all([
            Call::new("put").arg(1).arg(1).arg("ok"),
            Call::new("put").arg(0).arg(9).arg("dup"),
            Call::new("put").arg(2).arg(2).arg("ok"),
        ])
        .unwrap();
    let failing_id = batch.ids()[1];
    match batch.wait_committed_all(WAIT) {
        Err(Error::TxAborted { id, reason }) => {
            assert_eq!(id, failing_id);
            assert!(reason.contains("duplicate"), "{reason}");
        }
        other => panic!("expected TxAborted, got {other:?}"),
    }
    // Non-failing members still committed.
    let count: i64 = c.select("SELECT COUNT(*) FROM kv").fetch_scalar().unwrap();
    assert_eq!(count, 3); // seed + two ok
    net.shutdown();
}
