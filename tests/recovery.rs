//! Crash-recovery tests (§3.6 of the paper): a node restarted from its
//! block store (plus an optional state snapshot) must converge to exactly
//! the state it had before the crash, and resume processing new blocks.

use std::sync::Arc;
use std::time::Duration;

use bcrdb::chain::block::{genesis_prev_hash, Block};
use bcrdb::chain::tx::{Payload, Transaction};
use bcrdb::crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb::node::{Node, NodeConfig};
use bcrdb::prelude::*;
use bcrdb::sql::ast::Statement;

struct Rig {
    certs: Arc<CertificateRegistry>,
    client: KeyPair,
    orderer: KeyPair,
}

impl Rig {
    fn new() -> Rig {
        let client = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let orderer = KeyPair::generate("ordering/orderer0", b"ord", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: client.public_key(),
        });
        certs.register(Certificate {
            name: "ordering/orderer0".into(),
            org: "ordering".into(),
            role: Role::Orderer,
            public_key: orderer.public_key(),
        });
        Rig {
            certs,
            client,
            orderer,
        }
    }

    fn node(&self, dir: &std::path::Path, snapshot_interval: u64) -> Arc<Node> {
        let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
        cfg.data_dir = Some(dir.to_path_buf());
        cfg.snapshot_interval = snapshot_interval;
        let node = Node::new(cfg, Arc::clone(&self.certs), vec!["org1".into()]).unwrap();
        // Bootstrap schema + contract identically on every (re)start.
        if !node.catalog().contains("kv") {
            node.catalog()
                .create_table(
                    bcrdb::common::schema::TableSchema::new(
                        "kv",
                        vec![
                            bcrdb::common::schema::Column::new(
                                "k",
                                bcrdb::common::schema::DataType::Int,
                            ),
                            bcrdb::common::schema::Column::new(
                                "v",
                                bcrdb::common::schema::DataType::Int,
                            ),
                        ],
                        vec![0],
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        if node.contracts().get("put").is_none() {
            if let Statement::CreateFunction(def) = bcrdb::sql::parse_statement(
                "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
            )
            .unwrap()
            {
                node.contracts().install(def).unwrap();
            }
        }
        node.recover().unwrap();
        node
    }

    fn tx(&self, n: u64) -> Transaction {
        Transaction::new_order_execute(
            "org1/alice",
            Payload::new(
                "put",
                vec![Value::Int(n as i64), Value::Int((n * 10) as i64)],
            ),
            n,
            &self.client,
        )
        .unwrap()
    }

    fn blocks(&self, count: u64, per_block: u64) -> Vec<Arc<Block>> {
        let mut out = Vec::new();
        let mut prev = genesis_prev_hash();
        let mut n = 0;
        for b in 1..=count {
            let txs: Vec<Transaction> = (0..per_block)
                .map(|_| {
                    n += 1;
                    self.tx(n)
                })
                .collect();
            let mut block = Block::build(b, prev, txs, "solo", vec![]);
            block.sign(&self.orderer).unwrap();
            prev = block.hash;
            out.push(Arc::new(block));
        }
        out
    }
}

fn deliver_all(node: &Arc<Node>, blocks: &[Arc<Block>]) {
    let (tx, rx) = crossbeam_channel::unbounded();
    node.start(rx);
    for b in blocks {
        tx.send(Arc::clone(b)).unwrap();
    }
    let want = blocks.last().map(|b| b.number).unwrap_or(0);
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while node.height() < want {
        assert!(
            std::time::Instant::now() < deadline,
            "node stuck at {}",
            node.height()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bcrdb-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn restart_replays_blockstore_to_identical_state() {
    let rig = Rig::new();
    let dir = temp_dir("replay");
    let blocks = rig.blocks(4, 5);

    let hash_before = {
        let node = rig.node(&dir, 0);
        deliver_all(&node, &blocks);
        assert_eq!(node.height(), 4);
        let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(20));
        let h = node.state_hash();
        node.shutdown();
        h
    };

    // Reopen: full replay from the block store (no snapshot).
    let node = rig.node(&dir, 0);
    assert_eq!(node.height(), 4, "recovery replayed all blocks");
    assert_eq!(
        node.state_hash(),
        hash_before,
        "state identical after recovery"
    );
    // Ledger records recovered too (rebuilt by replay).
    assert_eq!(node.ledger_records(2).len(), 5);
    node.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_with_snapshot_replays_only_the_tail() {
    let rig = Rig::new();
    let dir = temp_dir("snapshot");
    let blocks = rig.blocks(5, 4);

    let hash_before = {
        // Snapshot every 2 blocks → snapshot at height 4, blocks 5 replayed.
        let node = rig.node(&dir, 2);
        deliver_all(&node, &blocks);
        let h = node.state_hash();
        node.shutdown();
        h
    };
    assert!(dir.join("state.snapshot").exists(), "snapshot written");

    let node = rig.node(&dir, 2);
    assert_eq!(node.height(), 5);
    assert_eq!(node.state_hash(), hash_before);
    let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(20));
    node.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_mid_chain_resumes_with_remaining_blocks() {
    let rig = Rig::new();
    let dir = temp_dir("midchain");
    let blocks = rig.blocks(4, 3);

    {
        // "Crash" after two blocks.
        let node = rig.node(&dir, 0);
        deliver_all(&node, &blocks[..2]);
        node.shutdown();
    }
    {
        // Restart: replays blocks 1–2, then receives 3–4 (plus duplicate
        // deliveries of 1–2, which must be ignored).
        let node = rig.node(&dir, 0);
        assert_eq!(node.height(), 2);
        deliver_all(&node, &blocks); // includes duplicates of 1 and 2
        assert_eq!(node.height(), 4);
        let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(12));
        node.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_node_matches_never_crashed_node() {
    let rig = Rig::new();
    let blocks = rig.blocks(3, 4);

    // Reference node: never crashes, all in memory.
    let reference = {
        let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
        cfg.data_dir = None;
        let node = Node::new(cfg, Arc::clone(&rig.certs), vec!["org1".into()]).unwrap();
        node.catalog()
            .create_table(
                bcrdb::common::schema::TableSchema::new(
                    "kv",
                    vec![
                        bcrdb::common::schema::Column::new(
                            "k",
                            bcrdb::common::schema::DataType::Int,
                        ),
                        bcrdb::common::schema::Column::new(
                            "v",
                            bcrdb::common::schema::DataType::Int,
                        ),
                    ],
                    vec![0],
                )
                .unwrap(),
            )
            .unwrap();
        if let Statement::CreateFunction(def) = bcrdb::sql::parse_statement(
            "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
        )
        .unwrap()
        {
            reference_install(&node, def);
        }
        deliver_all(&node, &blocks);
        node
    };

    // Crashing node: restart after every single block.
    let dir = temp_dir("thrash");
    for end in 1..=3 {
        let node = rig.node(&dir, 1); // snapshot every block
        deliver_all(&node, &blocks[..end]);
        node.shutdown();
    }
    let node = rig.node(&dir, 1);
    assert_eq!(node.height(), reference.height());
    assert_eq!(
        node.state_hash(),
        reference.state_hash(),
        "crash-looped node must equal the never-crashed node"
    );
    node.shutdown();
    reference.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

fn reference_install(node: &Arc<Node>, def: bcrdb::sql::ast::FunctionDef) {
    node.contracts().install(def).unwrap();
}

#[test]
fn tampered_blockstore_refuses_to_start() {
    let rig = Rig::new();
    let dir = temp_dir("tamper");
    let blocks = rig.blocks(2, 3);
    {
        let node = rig.node(&dir, 0);
        deliver_all(&node, &blocks);
        node.shutdown();
    }
    // Corrupt a byte inside the first block's transactions.
    let path = dir.join("blocks.dat");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[60] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
    cfg.data_dir = Some(dir.clone());
    let err = Node::new(cfg, Arc::clone(&rig.certs), vec!["org1".into()]);
    assert!(err.is_err(), "tampered block store must fail verification");
    std::fs::remove_dir_all(&dir).unwrap();
}
