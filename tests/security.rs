//! Security-property tests mirroring §3.5 of the paper: forged and
//! tampered transactions, byzantine orderers, checkpoint divergence
//! detection, and access control.

use std::sync::Arc;
use std::time::Duration;

use bcrdb::chain::block::{genesis_prev_hash, Block, CheckpointVote};
use bcrdb::chain::tx::{Payload, Transaction};
use bcrdb::crypto::identity::{KeyPair, Scheme};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build() -> Network {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    // Real hash-based signatures for the security suite.
    cfg.scheme = Scheme::HashBased { height: 6 };
    let net = Network::build(cfg).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT); \
         CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
    )
    .unwrap();
    net
}

#[test]
fn forged_signature_rejected_on_every_node() {
    let net = build();
    let alice = net.client("org1", "alice").unwrap();
    // Mallory holds her own (unregistered-as-alice) key and tries to sign
    // a transaction claiming to be alice.
    let mallory = KeyPair::generate("org1/alice", b"mallory", Scheme::HashBased { height: 4 });
    let tx = Transaction::new_order_execute(
        "org1/alice",
        Payload::new("put", vec![Value::Int(1), Value::Int(666)]),
        999,
        &mallory,
    )
    .unwrap();
    let rx = net.node("org1").unwrap().wait_for(tx.id);
    net.ordering().submit(tx).unwrap();
    let n = rx.recv_timeout(WAIT).unwrap();
    match n.status {
        TxStatus::Aborted(reason) => assert!(reason.contains("authentication"), "{reason}"),
        other => panic!("forged tx must abort, got {other:?}"),
    }
    // Nothing was written anywhere.
    for node in net.nodes() {
        let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0), "{}", node.config.name);
    }
    // And honest traffic still works.
    alice.call("put").arg(1).arg(1).submit_wait(WAIT).unwrap();
    net.shutdown();
}

#[test]
fn tampered_transaction_in_flight_rejected() {
    let net = build();
    let alice = net.client("org1", "alice").unwrap();
    alice.call("put").arg(1).arg(10).submit_wait(WAIT).unwrap();
    // Grab the committed transaction from a block store, tamper with an
    // argument and try to replay it under the original signature.
    let node = net.node("org1").unwrap();
    let block = node.blockstore.get(node.blockstore.height()).unwrap();
    let mut tampered = block.txs[0].clone();
    tampered.payload.args = vec![Value::Int(2), Value::Int(31337)];
    let rx = node.wait_for(tampered.id);
    net.ordering().submit(tampered).unwrap();
    let n = rx.recv_timeout(WAIT).unwrap();
    assert!(matches!(n.status, TxStatus::Aborted(_)));
    let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    net.shutdown();
}

#[test]
fn byzantine_orderer_block_rejected() {
    // A block not signed by a registered orderer must be rejected by the
    // block processor (§3.5 property 4) and must not advance the chain.
    let net = build();
    let alice = net.client("org1", "alice").unwrap();
    alice.call("put").arg(1).arg(1).submit_wait(WAIT).unwrap();
    let node = net.node("org1").unwrap();
    let h = node.height();

    // Craft a rogue block extending the chain with a bogus transaction.
    let rogue_orderer = KeyPair::generate("evil/orderer", b"evil", Scheme::Sim);
    let rogue_client = KeyPair::generate("evil/client", b"ec", Scheme::Sim);
    let tx = Transaction::new_order_execute(
        "evil/client",
        Payload::new("put", vec![Value::Int(9), Value::Int(9)]),
        1,
        &rogue_client,
    )
    .unwrap();
    let mut block = Block::build(h + 1, node.blockstore.tip_hash(), vec![tx], "solo", vec![]);
    block.sign(&rogue_orderer).unwrap();

    let result = bcrdb::node::processor::on_block(&node, &Arc::new(block));
    assert!(
        result.is_err(),
        "unsigned-by-known-orderer block must be rejected"
    );
    assert_eq!(node.height(), h, "chain did not advance");
    // A block with a broken prev-hash is rejected too.
    let mut forked = Block::build(h + 1, genesis_prev_hash(), vec![], "solo", vec![]);
    forked.sign(&rogue_orderer).unwrap();
    assert!(bcrdb::node::processor::on_block(&node, &Arc::new(forked)).is_err());
    net.shutdown();
}

#[test]
fn checkpoint_divergence_detected() {
    let net = build();
    let alice = net.client("org1", "alice").unwrap();
    alice.call("put").arg(1).arg(1).submit_wait(WAIT).unwrap();
    let block_done = net.node("org1").unwrap().height();

    // A "malicious node" submits a checkpoint vote with a wrong state hash
    // for the committed block; it arrives in a later block's metadata.
    net.ordering()
        .submit_checkpoint(CheckpointVote {
            node: "orgx/peer".into(),
            block: block_done,
            state_hash: [0xde; 32],
        })
        .unwrap();
    // Another transaction forces the next block to be cut.
    alice.call("put").arg(2).arg(2).submit_wait(WAIT).unwrap();

    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let divergences = net.node("org1").unwrap().divergences();
        if divergences
            .iter()
            .any(|d| d.block == block_done && d.divergent_nodes.contains(&"orgx/peer".to_string()))
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "divergence not detected: {divergences:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Honest nodes' own votes agree with each other: no divergence entry
    // ever names a real peer.
    for node in net.nodes() {
        for d in node.divergences() {
            for name in &d.divergent_nodes {
                assert_eq!(name, "orgx/peer");
            }
        }
    }
    net.shutdown();
}

#[test]
fn access_control_blocks_non_admins() {
    let net = build();
    let alice = net.client("org1", "alice").unwrap();
    // A plain client may not stage deployments (AdminOnly policy).
    match alice
        .call("create_deploytx")
        .arg(1)
        .arg("DROP TABLE kv")
        .submit_wait(WAIT)
    {
        Err(Error::TxAborted { reason, .. }) => {
            assert!(reason.contains("access denied"), "{reason}")
        }
        other => panic!("expected access-denied abort, got {other:?}"),
    }
    // The admin may.
    let admin = net.admin("org1").unwrap();
    admin
        .call("create_deploytx")
        .arg(1)
        .arg("CREATE TABLE extra (id INT PRIMARY KEY)")
        .submit_wait(WAIT)
        .unwrap();
    net.shutdown();
}

#[test]
fn signing_key_exhaustion_is_explicit() {
    // Hash-based keys sign a bounded number of messages (2^height); the
    // client gets a hard error instead of a silent forgery-prone fallback.
    let key = KeyPair::generate("x", b"x", Scheme::HashBased { height: 1 });
    assert!(key.sign(b"1").is_some());
    assert!(key.sign(b"2").is_some());
    assert!(key.sign(b"3").is_none());
}
