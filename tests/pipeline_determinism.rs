//! Pipelined-vs-serial determinism suite for the staged block commit.
//!
//! The pipeline overlaps execution, serial commit and post-commit work
//! across blocks, and the commit stage itself splits into a serial
//! validation gate plus a parallel write-set apply
//! (`NodeConfig::apply_workers`); these tests prove both are *only*
//! scheduling changes: the same workload must produce byte-identical
//! chains, checkpoint hashes, state hashes and ledger content with the
//! pipeline on and off and with any apply-worker count, on every node of
//! a 4-organization network — and a crash that loses unflushed
//! post-commit state (ledger records of blocks the store already holds)
//! must be fully healed by replay.

use std::sync::Arc;
use std::time::Duration;

use bcrdb::chain::block::Block;
use bcrdb::chain::tx::{Payload, Transaction};
use bcrdb::crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb::crypto::sha256::Digest;
use bcrdb::node::processor;
use bcrdb::node::{Node, NodeConfig};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(30);
const ORGS: [&str; 4] = ["org1", "org2", "org3", "org4"];

fn build(flow: Flow, pipeline: bool) -> Network {
    build_with(flow, pipeline, None)
}

fn build_with(flow: Flow, pipeline: bool, apply_workers: Option<usize>) -> Network {
    let mut cfg = NetworkConfig::quick(&ORGS, flow);
    cfg.pipeline = pipeline;
    if let Some(w) = apply_workers {
        cfg.apply_workers = w;
    }
    // BCRDB_PAGED=1 re-runs the whole suite on disk-backed paged
    // storage (pool size from BCRDB_POOL_FRAMES, spilling as eagerly as
    // possible): the byte-identical-replicas claim must survive cold
    // segments living in page files behind a small buffer pool. The CI
    // small-pool job drives this leg with BCRDB_POOL_FRAMES=64.
    if std::env::var("BCRDB_PAGED").is_ok_and(|v| v == "1") {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NET_SEQ: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "bcrdb-determinism-paged-{}-{}",
            std::process::id(),
            NET_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        cfg.data_root = Some(root);
        cfg.paged = true;
        cfg.spill_retention = 1;
    }
    let net = Network::build(cfg).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL, note TEXT); \
         CREATE FUNCTION put(k INT, v INT, note TEXT) AS $$ \
           INSERT INTO kv VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION bump(k INT, v INT) AS $$ \
           UPDATE kv SET v = v + $2 WHERE k = $1 $$",
    )
    .unwrap();
    net
}

/// A deterministic sequential workload: with one client submitting and
/// awaiting each transaction in turn, block contents and boundaries are
/// identical across runs, so whole chains can be compared byte for byte.
fn run_sequential_workload(net: &Network) {
    let client = net.client("org1", "alice").unwrap();
    for k in 1..=12i64 {
        client
            .call("put")
            .arg(k)
            .arg(k * 10)
            .arg(format!("row-{k}"))
            .submit_wait_retrying(WAIT)
            .unwrap();
    }
    for k in 1..=6i64 {
        client
            .call("bump")
            .arg(k)
            .arg(1)
            .submit_wait_retrying(WAIT)
            .unwrap();
    }
    let head = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(head, WAIT).unwrap();
}

/// Everything determinism-relevant a run leaves behind, per node.
struct RunFingerprint {
    /// (height, block hash) for the whole chain. Byte-identical across
    /// the nodes of one run; across *separate runs* only `content` can
    /// be compared, because the votes embedded in block metadata arrive
    /// over asynchronous gossip and land in timing-dependent blocks.
    chain: Vec<(u64, [u8; 32])>,
    /// (height, ordered transaction ids) — the commit-relevant chain
    /// content, stable across runs of the same sequential workload.
    content: Vec<(u64, Vec<String>)>,
    /// Local checkpoint (write-set) hash per block.
    checkpoints: Vec<Option<Digest>>,
    /// Full committed state hash at the tip.
    state: Digest,
    /// Ledger content: (block, tx_index, global id, user, contract,
    /// committed?) — commit timestamps and local txids are node-local by
    /// design and excluded.
    ledger: Vec<(u64, u32, String, String, String, bool)>,
}

fn fingerprint(node: &Arc<Node>) -> RunFingerprint {
    let tip = node.height();
    assert_eq!(node.postcommit_height(), tip, "pipeline fully drained");
    let chain = (1..=tip)
        .map(|h| (h, node.blockstore.get(h).unwrap().hash))
        .collect();
    let content = (1..=tip)
        .map(|h| {
            let b = node.blockstore.get(h).unwrap();
            (h, b.txs.iter().map(|t| t.id.short()).collect())
        })
        .collect();
    let checkpoints = (1..=tip).map(|h| node.checkpoints.local_hash(h)).collect();
    let mut ledger = Vec::new();
    for h in 1..=tip {
        for r in node.ledger_records(h) {
            ledger.push((
                r.block,
                r.tx_index,
                r.global_id.short(),
                r.user.clone(),
                r.contract.clone(),
                matches!(r.status, TxStatus::Committed),
            ));
        }
    }
    RunFingerprint {
        chain,
        content,
        checkpoints,
        state: node.state_hash(),
        ledger,
    }
}

#[test]
fn pipelined_and_serial_runs_are_byte_identical() {
    let serial = {
        let net = build(Flow::OrderThenExecute, false);
        run_sequential_workload(&net);
        let fp = fingerprint(&net.node("org1").unwrap());
        net.shutdown();
        fp
    };
    let pipelined = {
        let net = build(Flow::OrderThenExecute, true);
        run_sequential_workload(&net);
        // Every node of the pipelined network agrees with org1.
        let fps: Vec<RunFingerprint> = net.nodes().iter().map(fingerprint).collect();
        for (i, fp) in fps.iter().enumerate().skip(1) {
            assert_eq!(fp.chain, fps[0].chain, "node {} chain diverged", ORGS[i]);
            assert_eq!(
                fp.checkpoints, fps[0].checkpoints,
                "node {} checkpoints diverged",
                ORGS[i]
            );
            assert_eq!(fp.state, fps[0].state, "node {} state diverged", ORGS[i]);
            assert_eq!(fp.ledger, fps[0].ledger, "node {} ledger diverged", ORGS[i]);
        }
        for node in net.nodes() {
            assert!(node.divergences().is_empty());
        }
        let fp = fingerprint(&net.node("org1").unwrap());
        net.shutdown();
        fp
    };

    // The two modes produced identical chains (same transactions in the
    // same blocks), checkpoint hashes, state and ledger content.
    assert_eq!(
        serial.content, pipelined.content,
        "chain content differs across modes"
    );
    assert_eq!(
        serial.checkpoints, pipelined.checkpoints,
        "checkpoint hashes differ across modes"
    );
    assert_eq!(serial.state, pipelined.state, "state hashes differ");
    assert_eq!(serial.ledger, pipelined.ledger, "ledger content differs");
    assert!(
        serial.checkpoints.iter().all(Option::is_some),
        "every block has a checkpoint hash"
    );
}

/// The parallel write-set apply is invisible: for both pipeline modes,
/// a run with the serial apply (`apply_workers = 1`) and a run with a
/// 4-worker pool produce identical chain content, checkpoint hashes,
/// state hashes and ledger content.
#[test]
fn apply_worker_count_changes_no_byte() {
    for pipeline in [false, true] {
        let runs: Vec<RunFingerprint> = [1usize, 4]
            .iter()
            .map(|&workers| {
                let net = build_with(Flow::OrderThenExecute, pipeline, Some(workers));
                run_sequential_workload(&net);
                let fp = fingerprint(&net.node("org1").unwrap());
                net.shutdown();
                fp
            })
            .collect();
        assert_eq!(
            runs[0].content, runs[1].content,
            "pipeline={pipeline}: chain content differs across apply_workers"
        );
        assert_eq!(
            runs[0].checkpoints, runs[1].checkpoints,
            "pipeline={pipeline}: checkpoint hashes differ across apply_workers"
        );
        assert_eq!(
            runs[0].state, runs[1].state,
            "pipeline={pipeline}: state hashes differ across apply_workers"
        );
        assert_eq!(
            runs[0].ledger, runs[1].ledger,
            "pipeline={pipeline}: ledger content differs across apply_workers"
        );
        assert!(runs[0].checkpoints.iter().all(Option::is_some));
    }
}

/// Concurrent load on the pipelined 4-node network: block boundaries are
/// timing-dependent across runs, so the assertion is within-run — all
/// four nodes converge to identical chains, checkpoints and state, with
/// no divergence reports.
#[test]
fn pipelined_network_converges_under_concurrent_load() {
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        let net = build(flow, true);
        let mut batches = Vec::new();
        for (i, org) in ORGS.iter().enumerate() {
            let client = net.client(org, "loadgen").unwrap();
            let calls: Vec<Call> = (0..40i64)
                .map(|n| {
                    let k = (i as i64) * 1000 + n;
                    Call::new("put").arg(k).arg(k).arg(format!("c-{k}"))
                })
                .collect();
            batches.push((client, calls));
        }
        let pending: Vec<_> = batches
            .iter()
            .map(|(c, calls)| c.submit_all(calls.clone()).unwrap())
            .collect();
        for batch in pending {
            for n in batch.wait_all(WAIT).unwrap() {
                assert!(
                    matches!(n.status, TxStatus::Committed),
                    "{flow:?}: unexpected abort {:?}",
                    n.status
                );
            }
        }
        let head = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(head, WAIT).unwrap();

        let fps: Vec<RunFingerprint> = net.nodes().iter().map(fingerprint).collect();
        for (i, fp) in fps.iter().enumerate().skip(1) {
            assert_eq!(fp.chain, fps[0].chain, "{flow:?}: {} chain", ORGS[i]);
            assert_eq!(
                fp.checkpoints, fps[0].checkpoints,
                "{flow:?}: {} checkpoints",
                ORGS[i]
            );
            assert_eq!(fp.state, fps[0].state, "{flow:?}: {} state", ORGS[i]);
        }
        for node in net.nodes() {
            assert!(node.divergences().is_empty(), "{flow:?}: divergence seen");
        }
        net.shutdown();
    }
}

// ----------------------------------------------------------- crash test

/// Direct-node rig (no network): a deterministic block feeder.
struct Rig {
    certs: Arc<CertificateRegistry>,
    client: KeyPair,
    orderer: KeyPair,
}

impl Rig {
    fn new() -> Rig {
        let client = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let orderer = KeyPair::generate("ordering/orderer0", b"ord", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: client.public_key(),
        });
        certs.register(Certificate {
            name: "ordering/orderer0".into(),
            org: "ordering".into(),
            role: Role::Orderer,
            public_key: orderer.public_key(),
        });
        Rig {
            certs,
            client,
            orderer,
        }
    }

    fn node(&self, data_dir: Option<std::path::PathBuf>) -> Arc<Node> {
        self.node_with(|cfg| cfg.data_dir = data_dir)
    }

    fn node_with(&self, tweak: impl FnOnce(&mut NodeConfig)) -> Arc<Node> {
        let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
        cfg.fsync = true;
        tweak(&mut cfg);
        let node = Node::new(cfg, Arc::clone(&self.certs), vec!["org1".into()]).unwrap();
        bootstrap(&node);
        node
    }

    /// One block invoking arbitrary (contract, args) payloads.
    fn block_of(
        &self,
        node: &Arc<Node>,
        number: u64,
        calls: &[(&str, Vec<Value>)],
        nonce_base: u64,
    ) -> Arc<Block> {
        let txs: Vec<Transaction> = calls
            .iter()
            .enumerate()
            .map(|(i, (contract, args))| {
                Transaction::new_order_execute(
                    "org1/alice",
                    Payload::new(*contract, args.clone()),
                    nonce_base + i as u64,
                    &self.client,
                )
                .unwrap()
            })
            .collect();
        let mut block = Block::build(number, node.blockstore.tip_hash(), txs, "solo", vec![]);
        block.sign(&self.orderer).unwrap();
        Arc::new(block)
    }

    fn block(&self, node: &Arc<Node>, number: u64, keys: std::ops::Range<i64>) -> Arc<Block> {
        let txs: Vec<Transaction> = keys
            .map(|k| {
                Transaction::new_order_execute(
                    "org1/alice",
                    Payload::new("put", vec![Value::Int(k), Value::Int(k * 10)]),
                    k as u64,
                    &self.client,
                )
                .unwrap()
            })
            .collect();
        let mut block = Block::build(number, node.blockstore.tip_hash(), txs, "solo", vec![]);
        block.sign(&self.orderer).unwrap();
        Arc::new(block)
    }
}

fn bootstrap(node: &Arc<Node>) {
    node.catalog()
        .create_table(
            bcrdb::common::schema::TableSchema::new(
                "kv",
                vec![
                    bcrdb::common::schema::Column::new("k", bcrdb::common::schema::DataType::Int),
                    bcrdb::common::schema::Column::new("v", bcrdb::common::schema::DataType::Int),
                ],
                vec![0],
            )
            .unwrap(),
        )
        .unwrap();
    for sql in [
        "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
        "CREATE FUNCTION del(k INT) AS $$ DELETE FROM kv WHERE k = $1 $$",
        "CREATE FUNCTION setv(k INT, v INT) AS $$ UPDATE kv SET v = $2 WHERE k = $1 $$",
    ] {
        if let bcrdb::sql::ast::Statement::CreateFunction(def) =
            bcrdb::sql::parse_statement(sql).unwrap()
        {
            node.contracts().install(def).unwrap();
        }
    }
}

/// The pipelined failure window unique to stage 3: a block is durable in
/// the store (stage 0 append + group fsync) and serially committed, but
/// the node dies before the post-commit worker writes its ledger records.
/// Recovery replays the stored chain through the synchronous path and
/// must rebuild the unflushed ledger records and checkpoint hashes.
#[test]
fn crash_during_post_commit_replay_rebuilds_ledger() {
    let dir = std::env::temp_dir().join(format!("bcrdb-pipe-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let rig = Rig::new();

    // Reference node: processes every block fully (what the crashed node
    // must converge back to).
    let reference = rig.node(None);
    // Victim: blocks 1–2 fully processed; blocks 3–4 appended to the
    // durable store only — the crash ate their post-commit output.
    let victim_dir = dir.join("victim");
    std::fs::create_dir_all(&victim_dir).unwrap();
    let victim = rig.node(Some(victim_dir.clone()));

    for n in 1..=4u64 {
        let keys = (n as i64 - 1) * 5..(n as i64) * 5;
        let block = rig.block(&reference, n, keys);
        reference.blockstore.append((*block).clone()).unwrap();
        processor::process_block(&reference, &block).unwrap();
        if n <= 2 {
            victim.blockstore.append((*block).clone()).unwrap();
            processor::process_block(&victim, &block).unwrap();
        } else {
            // Stage 0 only: durable append, no commit, no ledger.
            victim.blockstore.append((*block).clone()).unwrap();
        }
    }
    assert_eq!(victim.height(), 2);
    assert!(victim.ledger_records(3).is_empty(), "pre-crash: no ledger");
    victim.shutdown();
    drop(victim);

    // Restart from disk and recover: local replay through process_block.
    let revived = rig.node(Some(victim_dir));
    let recovered = revived.recover().unwrap();
    assert_eq!(recovered, 4, "replay reached the stored tip");
    assert_eq!(revived.postcommit_height(), 4);
    for h in 1..=4u64 {
        assert_eq!(
            revived.checkpoints.local_hash(h),
            reference.checkpoints.local_hash(h),
            "checkpoint mismatch at block {h}"
        );
        let got = revived.ledger_records(h);
        let want = reference.ledger_records(h);
        assert_eq!(got.len(), want.len(), "ledger row count at block {h}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.global_id, w.global_id);
            assert_eq!(g.tx_index, w.tx_index);
            assert_eq!(g.status, w.status);
        }
    }
    assert_eq!(revived.state_hash(), reference.state_hash());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Direct-node parallel-apply determinism on blocks that exercise every
/// gate decision at once: wide insert batches, updates, deletes, and a
/// same-block duplicate-key pair whose loser must abort with the exact
/// same reason string under every worker count (the per-block PK overlay
/// mirrors the storage check byte for byte).
#[test]
fn mixed_blocks_are_identical_across_apply_worker_counts() {
    let fps: Vec<_> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let rig = Rig::new();
            let node = rig.node_with(|cfg| {
                cfg.fsync = false;
                cfg.apply_workers = workers;
            });
            // Block 1: a wide insert batch.
            let calls: Vec<(&str, Vec<Value>)> = (0..40i64)
                .map(|k| ("put", vec![Value::Int(k), Value::Int(k * 10)]))
                .collect();
            let b1 = rig.block_of(&node, 1, &calls, 1_000);
            node.blockstore.append((*b1).clone()).unwrap();
            processor::process_block(&node, &b1).unwrap();
            // Block 2: interleaved updates, deletes, fresh inserts and an
            // in-block duplicate key (the second `put 50` must lose).
            let calls: Vec<(&str, Vec<Value>)> = vec![
                ("setv", vec![Value::Int(0), Value::Int(500)]),
                ("del", vec![Value::Int(1)]),
                ("put", vec![Value::Int(50), Value::Int(50)]),
                ("put", vec![Value::Int(50), Value::Int(51)]),
                ("setv", vec![Value::Int(2), Value::Int(700)]),
                ("del", vec![Value::Int(3)]),
                ("put", vec![Value::Int(51), Value::Int(51)]),
                ("setv", vec![Value::Int(39), Value::Int(999)]),
            ];
            let b2 = rig.block_of(&node, 2, &calls, 2_000);
            node.blockstore.append((*b2).clone()).unwrap();
            processor::process_block(&node, &b2).unwrap();

            let ledger: Vec<_> = (1..=2u64)
                .flat_map(|h| node.ledger_records(h))
                .map(|r| (r.block, r.tx_index, r.status))
                .collect();
            let dup = ledger
                .iter()
                .find(|(b, i, _)| *b == 2 && *i == 3)
                .cloned()
                .unwrap();
            assert!(
                matches!(&dup.2, TxStatus::Aborted(m) if m.contains("duplicate key")),
                "workers={workers}: in-block duplicate did not abort: {:?}",
                dup.2
            );
            let checkpoints: Vec<_> = (1..=2u64).map(|h| node.checkpoints.local_hash(h)).collect();
            (node.state_hash(), checkpoints, ledger)
        })
        .collect();
    assert_eq!(
        fps[0].0, fps[1].0,
        "state hash differs across worker counts"
    );
    assert_eq!(
        fps[0].1, fps[1].1,
        "checkpoints differ across worker counts"
    );
    assert_eq!(fps[0].2, fps[1].2, "ledger differs across worker counts");
}

/// The maintenance vacuum tick (`NodeConfig::vacuum_interval`): every N
/// blocks the node reclaims row versions deleted at or before the
/// checkpoint-retention horizon (64 blocks), counting runs and reclaimed
/// versions in the metrics. Queries above the horizon are unaffected.
#[test]
fn vacuum_tick_reclaims_old_deletes() {
    let rig = Rig::new();
    let node = rig.node_with(|cfg| {
        cfg.fsync = false;
        cfg.vacuum_interval = 10;
    });
    // Each block k inserts row k and deletes row k-1, so by block 80 the
    // rows deleted in blocks ≤ 16 are past the 64-block horizon.
    for k in 1..=80u64 {
        let mut calls: Vec<(&str, Vec<Value>)> =
            vec![("put", vec![Value::Int(k as i64), Value::Int(k as i64)])];
        if k > 1 {
            calls.push(("del", vec![Value::Int(k as i64 - 1)]));
        }
        let block = rig.block_of(&node, k, &calls, k * 10);
        node.blockstore.append((*block).clone()).unwrap();
        processor::process_block(&node, &block).unwrap();
    }
    let m = node.metrics();
    assert_eq!(m.vacuum_runs(), 8, "tick fired every 10 blocks");
    assert!(
        m.versions_reclaimed() > 0,
        "old deleted versions were reclaimed"
    );
    let snap = node.metrics_report();
    assert_eq!(snap.vacuum_runs, 8);
    assert!(snap.versions_reclaimed > 0);
    // Only row 80 is live; recent history (above the horizon) survives.
    let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let kv = node.catalog().get("kv").unwrap();
    assert!(
        kv.version_count() < 2 * 80,
        "heap shrank below the no-vacuum total"
    );
    // Time travel above the horizon still sees the pre-delete row.
    let r = node
        .query_at("SELECT v FROM kv WHERE k = $1", &[Value::Int(79)], 79)
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

/// A rejected block halts the pipelined processor: the `halted` health
/// flag is recorded (and surfaces through the Metrics RPC snapshot), and
/// `Node::shutdown` returns promptly instead of hanging on the dead
/// processor.
#[test]
fn halted_processor_reports_health_and_shuts_down() {
    let rig = Rig::new();
    let node = rig.node(None);
    let (tx, rx) = crossbeam_channel::unbounded::<Arc<Block>>();
    node.start(rx);

    // A healthy block commits.
    let good = rig.block(&node, 1, 0..3);
    tx.send(Arc::clone(&good)).unwrap();
    let deadline = std::time::Instant::now() + WAIT;
    while node.postcommit_height() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "block 1 never committed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(!node.is_halted());

    // A block signed by a rogue orderer is rejected and halts processing.
    let rogue = KeyPair::generate("evil/orderer", b"evil", Scheme::Sim);
    let mut bad = Block::build(2, node.blockstore.tip_hash(), vec![], "solo", vec![]);
    bad.sign(&rogue).unwrap();
    tx.send(Arc::new(bad)).unwrap();
    let deadline = std::time::Instant::now() + WAIT;
    while !node.is_halted() {
        assert!(std::time::Instant::now() < deadline, "halt never recorded");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(node.height(), 1, "chain did not advance past the bad block");
    let snap = node.metrics_report();
    assert!(snap.halted, "Metrics RPC snapshot exposes the health flag");
    assert_eq!(snap.committed_height, 1);
    assert_eq!(snap.postcommit_height, 1);
    assert!(node
        .metrics()
        .halt_reason()
        .is_some_and(|r| r.contains("halted at block 2")));

    // Shutdown of a halted node returns promptly.
    let t0 = std::time::Instant::now();
    node.shutdown();
    assert!(t0.elapsed() < Duration::from_secs(1));

    // Chains keep their integrity: a healthy node fed the same blocks
    // still refuses the rogue one via the synchronous path.
    let clean = rig.node(None);
    clean.blockstore.append((*good).clone()).unwrap();
    processor::process_block(&clean, &good).unwrap();
    assert_eq!(clean.height(), 1);
}

/// Planner statistics ride the deterministic commit path (folded and
/// sealed by the serial gate's thread, in block order), so the plans
/// they drive — estimates included — are byte-identical on every
/// replica, with the pipeline on or off and for any apply-worker count.
/// The chosen index ranges double as SSI predicate locks, so this is a
/// consensus property, not a cosmetic one.
#[test]
fn stats_driven_plans_are_identical_across_replicas_and_workers() {
    let mut per_config: Vec<Vec<String>> = Vec::new();
    for (pipeline, workers) in [(false, Some(1)), (true, Some(1)), (true, Some(4))] {
        let net = build_with(Flow::OrderThenExecute, pipeline, workers);
        run_sequential_workload(&net);
        let plans: Vec<Vec<String>> = net
            .nodes()
            .iter()
            .map(|n| {
                let r = n
                    .query_at(
                        "EXPLAIN SELECT v FROM kv WHERE k = 2 OR k = 5",
                        &[],
                        n.height(),
                    )
                    .unwrap();
                r.rows
                    .iter()
                    .map(|row| match &row[0] {
                        Value::Text(s) => s.clone(),
                        other => panic!("plan line is not text: {other:?}"),
                    })
                    .collect()
            })
            .collect();
        for (i, p) in plans.iter().enumerate().skip(1) {
            assert_eq!(
                &plans[0], p,
                "node {i} diverged (pipeline={pipeline}, workers={workers:?})"
            );
        }
        per_config.push(plans.into_iter().next().unwrap());
        net.shutdown();
    }
    for p in &per_config[1..] {
        assert_eq!(
            &per_config[0], p,
            "plan text depends on pipeline/apply_workers"
        );
    }
    // And the sealed statistics actually drove the choice: the OR over
    // the key planned as an index union, not a full scan.
    assert!(
        per_config[0].iter().any(|l| l.contains("IndexUnion kv")),
        "expected an index-union plan, got {:?}",
        per_config[0]
    );
}
