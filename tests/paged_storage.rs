//! Disk-backed paged storage determinism and recovery suite.
//!
//! A node with `page_dir` set spills cold heap segments to 8 KB
//! slotted-page files through a bounded buffer pool; these tests prove
//! the paging layer is *only* a residency change. A workload whose
//! committed state far exceeds the pool must leave byte-identical
//! checkpoint hashes, state hashes and ledger content behind, a restart
//! must recover the same state from the page files plus the chain, and
//! losing the snapshot must degrade to a clean wipe-and-replay from
//! genesis — never to divergence.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use bcrdb::chain::block::Block;
use bcrdb::chain::tx::{Payload, Transaction};
use bcrdb::crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
use bcrdb::node::processor;
use bcrdb::node::{Node, NodeConfig};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(30);

/// Rows per block: wide blocks fill the 1024-slot heap segments fast
/// enough that several spill within a short chain.
const ROWS_PER_BLOCK: i64 = 128;
const BLOCKS: u64 = 40;

/// A deliberately tiny pool — the ~40 × 128-row state needs well over
/// eight 8 KB frames, so faults and evictions are guaranteed.
const TINY_POOL: usize = 8;

struct Rig {
    certs: Arc<CertificateRegistry>,
    client: KeyPair,
    orderer: KeyPair,
}

impl Rig {
    fn new() -> Rig {
        let client = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
        let orderer = KeyPair::generate("ordering/orderer0", b"ord", Scheme::Sim);
        let certs = CertificateRegistry::new();
        certs.register(Certificate {
            name: "org1/alice".into(),
            org: "org1".into(),
            role: Role::Client,
            public_key: client.public_key(),
        });
        certs.register(Certificate {
            name: "ordering/orderer0".into(),
            org: "ordering".into(),
            role: Role::Orderer,
            public_key: orderer.public_key(),
        });
        Rig {
            certs,
            client,
            orderer,
        }
    }

    /// Maintenance cadence shared by every node of one comparison: the
    /// vacuum horizon depends on `snapshot_interval`, so reference and
    /// paged nodes must agree on it for their states to match.
    fn node_with(&self, tweak: impl FnOnce(&mut NodeConfig)) -> Arc<Node> {
        let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
        cfg.gc_interval = 4;
        cfg.vacuum_interval = 8;
        cfg.snapshot_interval = 16;
        tweak(&mut cfg);
        let node = Node::new(cfg, Arc::clone(&self.certs), vec!["org1".into()]).unwrap();
        bootstrap(&node);
        node
    }

    fn memory_node(&self) -> Arc<Node> {
        self.node_with(|_| {})
    }

    fn paged_node(&self, data_dir: &Path, frames: usize) -> Arc<Node> {
        let data_dir = data_dir.to_path_buf();
        self.node_with(move |cfg| {
            cfg.page_dir = Some(data_dir.join("pages"));
            cfg.data_dir = Some(data_dir);
            cfg.buffer_pool_frames = frames;
            cfg.spill_retention = 4;
        })
    }

    fn block_of(
        &self,
        node: &Arc<Node>,
        number: u64,
        calls: &[(&str, Vec<Value>)],
        nonce_base: u64,
    ) -> Arc<Block> {
        let txs: Vec<Transaction> = calls
            .iter()
            .enumerate()
            .map(|(i, (contract, args))| {
                Transaction::new_order_execute(
                    "org1/alice",
                    Payload::new(*contract, args.clone()),
                    nonce_base + i as u64,
                    &self.client,
                )
                .unwrap()
            })
            .collect();
        let mut block = Block::build(number, node.blockstore.tip_hash(), txs, "solo", vec![]);
        block.sign(&self.orderer).unwrap();
        Arc::new(block)
    }
}

/// Idempotent bootstrap: a node revived over a state snapshot already
/// holds the table and contracts.
fn bootstrap(node: &Arc<Node>) {
    if node.catalog().get("kv").is_err() {
        node.catalog()
            .create_table(
                bcrdb::common::schema::TableSchema::new(
                    "kv",
                    vec![
                        bcrdb::common::schema::Column::new(
                            "k",
                            bcrdb::common::schema::DataType::Int,
                        ),
                        bcrdb::common::schema::Column::new(
                            "v",
                            bcrdb::common::schema::DataType::Int,
                        ),
                    ],
                    vec![0],
                )
                .unwrap(),
            )
            .unwrap();
    }
    for sql in [
        "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
        "CREATE FUNCTION del(k INT) AS $$ DELETE FROM kv WHERE k = $1 $$",
    ] {
        if let bcrdb::sql::ast::Statement::CreateFunction(def) =
            bcrdb::sql::parse_statement(sql).unwrap()
        {
            if node.contracts().get(&def.name).is_none() {
                node.contracts().install(def).unwrap();
            }
        }
    }
}

/// The calls for block `n`: a wide insert batch plus a handful of
/// deletes against rows from two blocks earlier, so vacuum and the
/// spill-time `min_deleter` gate both see real work.
fn block_calls(n: u64) -> Vec<(&'static str, Vec<Value>)> {
    let base = (n as i64 - 1) * ROWS_PER_BLOCK;
    let mut calls: Vec<(&str, Vec<Value>)> = (base..base + ROWS_PER_BLOCK)
        .map(|k| ("put", vec![Value::Int(k), Value::Int(k * 10)]))
        .collect();
    if n > 2 {
        let old = (n as i64 - 3) * ROWS_PER_BLOCK;
        for k in old..old + 4 {
            calls.push(("del", vec![Value::Int(k)]));
        }
    }
    calls
}

fn feed(rig: &Rig, node: &Arc<Node>, blocks: std::ops::RangeInclusive<u64>) {
    for n in blocks {
        let block = rig.block_of(node, n, &block_calls(n), n * 1_000);
        node.blockstore.append((*block).clone()).unwrap();
        processor::process_block(node, &block).unwrap();
    }
}

type Fingerprint = (
    Vec<Option<bcrdb::crypto::sha256::Digest>>,
    bcrdb::crypto::sha256::Digest,
);

fn fingerprint(node: &Arc<Node>) -> Fingerprint {
    let tip = node.height();
    let checkpoints = (1..=tip).map(|h| node.checkpoints.local_hash(h)).collect();
    (checkpoints, node.state_hash())
}

/// Committed state several times the pool size: the paged node spills,
/// evicts and faults continuously, yet every checkpoint hash, the final
/// state hash and the query results match the unbounded-memory node
/// byte for byte.
#[test]
fn paged_state_exceeding_pool_matches_memory_node() {
    let dir = std::env::temp_dir().join(format!("bcrdb-paged-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let rig = Rig::new();

    let reference = rig.memory_node();
    let paged = rig.paged_node(&dir, TINY_POOL);
    feed(&rig, &reference, 1..=BLOCKS);
    feed(&rig, &paged, 1..=BLOCKS);

    // The paging layer actually engaged: segments went cold, pages hit
    // disk, and the working set exceeded the pool.
    let kv = paged.catalog().get("kv").unwrap();
    assert!(
        !kv.paged_segments().is_empty(),
        "no segment ever spilled — the workload is too small"
    );
    let store = paged.paged_store().unwrap();
    assert!(store.pages_written() > 0);
    assert!(
        store.pages_written() > TINY_POOL as u64,
        "state never exceeded the pool"
    );
    let snap = paged.metrics_report();
    assert_eq!(snap.pages_written, store.pages_written());
    assert!(snap.pool_hit_rate >= 0.0 && snap.pool_hit_rate <= 1.0);

    // Byte-identical outcomes. `state_hash` walks *every* version, so
    // it faults the whole heap back through the tiny pool.
    assert_eq!(fingerprint(&reference), fingerprint(&paged));
    assert!(store.pages_read() > 0, "state_hash faulted pages back in");

    // Point queries against spilled history agree too.
    for k in [0i64, 777, 2048, (BLOCKS as i64 - 1) * ROWS_PER_BLOCK] {
        let q = "SELECT v FROM kv WHERE k = $1";
        let a = reference.query(q, &[Value::Int(k)]).unwrap();
        let b = paged.query(q, &[Value::Int(k)]).unwrap();
        assert_eq!(a.rows, b.rows, "row {k} diverged");
    }

    reference.shutdown();
    paged.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restart: a paged node relaunched over its data directory restores
/// from the external snapshot (which references the page-file chains
/// checkpointed at the same barrier), replays the remaining blocks, and
/// converges to the reference state.
#[test]
fn paged_node_restart_recovers_snapshot_and_chains() {
    let dir = std::env::temp_dir().join(format!("bcrdb-paged-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let rig = Rig::new();

    let reference = rig.memory_node();
    feed(&rig, &reference, 1..=BLOCKS);

    let paged = rig.paged_node(&dir, TINY_POOL);
    feed(&rig, &paged, 1..=BLOCKS);
    let kv = paged.catalog().get("kv").unwrap();
    assert!(!kv.paged_segments().is_empty());
    paged.shutdown();
    drop(kv);
    drop(paged);

    // BLOCKS = 40 with snapshot_interval = 16: the revived node loads
    // the barrier-32 snapshot and replays blocks 33..=40 locally.
    let revived = rig.paged_node(&dir, TINY_POOL);
    assert_eq!(revived.height(), 32, "restored from the last barrier");
    let recovered = revived.recover().unwrap();
    assert_eq!(recovered, BLOCKS, "replay reached the stored tip");
    // Blocks skipped over by the snapshot have no *local* checkpoint
    // hash (they were never processed here — standard snapshot-restore
    // behavior); every replayed block and the full state must match.
    let (ref_cp, ref_state) = fingerprint(&reference);
    let (rev_cp, rev_state) = fingerprint(&revived);
    assert_eq!(ref_state, rev_state, "state diverged after restart");
    assert_eq!(ref_cp[32..], rev_cp[32..], "replayed checkpoints diverged");

    // The revived node keeps working: more blocks, still converging.
    feed(&rig, &reference, BLOCKS + 1..=BLOCKS + 8);
    feed(&rig, &revived, BLOCKS + 1..=BLOCKS + 8);
    let (ref_cp, ref_state) = fingerprint(&reference);
    let (rev_cp, rev_state) = fingerprint(&revived);
    assert_eq!(ref_state, rev_state, "state diverged after new blocks");
    assert_eq!(ref_cp[32..], rev_cp[32..]);

    reference.shutdown();
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Losing the state snapshot (the torn-checkpoint window, or plain
/// deletion) must not strand the page files: the node wipes them and
/// replays the full chain from genesis back to the identical state.
#[test]
fn missing_snapshot_wipes_pages_and_replays_from_genesis() {
    let dir = std::env::temp_dir().join(format!("bcrdb-paged-wipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let rig = Rig::new();

    let reference = rig.memory_node();
    feed(&rig, &reference, 1..=BLOCKS);

    let paged = rig.paged_node(&dir, TINY_POOL);
    feed(&rig, &paged, 1..=BLOCKS);
    paged.shutdown();
    drop(paged);

    // Simulate the crash window: the page files survive but the
    // snapshot that binds them to a barrier is gone.
    std::fs::remove_file(dir.join("state.snapshot")).unwrap();

    let revived = rig.paged_node(&dir, TINY_POOL);
    assert_eq!(revived.height(), 0, "no snapshot: start from genesis");
    let recovered = revived.recover().unwrap();
    assert_eq!(recovered, BLOCKS);
    assert_eq!(fingerprint(&reference), fingerprint(&revived));

    reference.shutdown();
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `Network`-level wiring (`NetworkConfig::paged`): a 4-org network
/// with tiny pools stays live under sequential load and all nodes agree
/// with each other and with an unpaged control network.
#[test]
fn paged_network_converges_with_unpaged_network() {
    let dir = std::env::temp_dir().join(format!("bcrdb-paged-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let orgs = ["org1", "org2", "org3", "org4"];

    let run = |paged: bool| {
        let mut cfg = NetworkConfig::quick(&orgs, Flow::OrderThenExecute);
        if paged {
            cfg.data_root = Some(dir.clone());
            cfg.paged = true;
            cfg.buffer_pool_frames = 16;
            cfg.spill_retention = 4;
        }
        let net = Network::build(cfg).unwrap();
        net.bootstrap_sql(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
             CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
        )
        .unwrap();
        let client = net.client("org1", "alice").unwrap();
        for k in 1..=60i64 {
            client
                .call("put")
                .arg(k)
                .arg(k * 10)
                .submit_wait_retrying(WAIT)
                .unwrap();
        }
        let head = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(head, WAIT).unwrap();
        let states: Vec<_> = net.nodes().iter().map(|n| n.state_hash()).collect();
        for s in &states {
            assert_eq!(*s, states[0], "paged={paged}: node state diverged");
        }
        for node in net.nodes() {
            assert!(node.divergences().is_empty());
        }
        net.shutdown();
        states[0]
    };

    let unpaged_state = run(false);
    let paged_state = run(true);
    assert_eq!(unpaged_state, paged_state, "paging changed committed state");
    let _ = std::fs::remove_dir_all(&dir);
}
