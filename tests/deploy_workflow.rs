//! The §3.7 contract-deployment workflow: staging, per-organization
//! approvals, rejection, execution, and on-chain user management.

use std::sync::Arc;
use std::time::Duration;

use bcrdb::crypto::identity::{KeyPair, Scheme};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build(flow: Flow) -> Network {
    let net = Network::build(NetworkConfig::quick(&["org1", "org2", "org3"], flow)).unwrap();
    net.bootstrap_sql("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        .unwrap();
    net
}

#[test]
fn full_deploy_workflow_installs_contract_everywhere() {
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        let net = build(flow);
        net.deploy_contract(
            1,
            "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
        )
        .unwrap();
        // All nodes catch up to the deploy block before we inspect them.
        let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(height, WAIT).unwrap();
        // The contract exists on every node and is invokable.
        for node in net.nodes() {
            assert!(
                node.contracts().get("put").is_some(),
                "{}",
                node.config.name
            );
        }
        let alice = net.client("org2", "alice").unwrap();
        alice.call("put").arg(1).arg(7).submit_wait(WAIT).unwrap();
        // Deployment audit trail is queryable SQL (status applied, votes
        // from all three orgs).
        let status: String = alice
            .select("SELECT status FROM deployments WHERE id = $1")
            .bind(1)
            .fetch_scalar()
            .unwrap();
        assert_eq!(status, "applied");
        let votes: i64 = alice
            .select("SELECT COUNT(*) FROM deployment_votes WHERE deploy_id = $1")
            .bind(1)
            .fetch_scalar()
            .unwrap();
        assert_eq!(votes, 3);
        net.shutdown();
    }
}

#[test]
fn submit_without_all_approvals_aborts() {
    let net = build(Flow::OrderThenExecute);
    let admin1 = net.admin("org1").unwrap();
    admin1
        .call("create_deploytx")
        .arg(5)
        .arg("CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$")
        .submit_wait(WAIT)
        .unwrap();
    // Only two of three orgs approve.
    for org in ["org1", "org2"] {
        net.admin(org)
            .unwrap()
            .call("approve_deploytx")
            .arg(5)
            .submit_wait(WAIT)
            .unwrap();
    }
    match admin1.call("submit_deploytx").arg(5).submit_wait(WAIT) {
        Err(Error::TxAborted { reason, .. }) => {
            assert!(reason.contains("lacks approvals"), "{reason}");
            assert!(reason.contains("org3"), "{reason}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
    for node in net.nodes() {
        assert!(node.contracts().get("put").is_none());
    }
    net.shutdown();
}

#[test]
fn double_approval_by_same_org_rejected() {
    let net = build(Flow::OrderThenExecute);
    let admin1 = net.admin("org1").unwrap();
    admin1
        .call("create_deploytx")
        .arg(9)
        .arg("DROP TABLE IF EXISTS nothing")
        .submit_wait(WAIT)
        .unwrap();
    admin1
        .call("approve_deploytx")
        .arg(9)
        .submit_wait(WAIT)
        .unwrap();
    // The vote row's primary key (deploy/org) makes a second approval a
    // duplicate-key abort.
    match admin1.call("approve_deploytx").arg(9).submit_wait(WAIT) {
        Err(Error::TxAborted { reason, .. }) => {
            assert!(reason.contains("duplicate"), "{reason}")
        }
        other => panic!("expected duplicate-vote abort, got {other:?}"),
    }
    net.shutdown();
}

#[test]
fn rejected_deployment_cannot_be_submitted() {
    let net = build(Flow::OrderThenExecute);
    let admin1 = net.admin("org1").unwrap();
    admin1
        .call("create_deploytx")
        .arg(2)
        .arg("DROP TABLE kv")
        .submit_wait(WAIT)
        .unwrap();
    for org in ["org1", "org2", "org3"] {
        net.admin(org)
            .unwrap()
            .call("approve_deploytx")
            .arg(2)
            .submit_wait(WAIT)
            .unwrap();
    }
    // org3 changes its mind with a rejection (recorded with a reason).
    // A fresh deployment id is used for the rejection vote row, so use
    // comment + reject paths.
    net.admin("org3")
        .unwrap()
        .call("comment_deploytx")
        .arg(2)
        .arg("dropping kv loses audit data")
        .submit_wait(WAIT)
        .unwrap();
    // Rejection flips the status even after approvals.
    // (org3 already approved, so its rejection vote needs the comment path
    // exercised above; rejection itself is voted by org2 here.)
    net.admin("org2")
        .unwrap()
        .call("reject_deploytx")
        .arg(2)
        .arg("veto")
        .submit_wait(WAIT)
        .unwrap_err(); // org2 already approved → duplicate vote key aborts
                       // Stage a clean rejection from scratch on a new deployment.
    admin1
        .call("create_deploytx")
        .arg(3)
        .arg("DROP TABLE kv")
        .submit_wait(WAIT)
        .unwrap();
    net.admin("org2")
        .unwrap()
        .call("reject_deploytx")
        .arg(3)
        .arg("veto")
        .submit_wait(WAIT)
        .unwrap();
    match admin1.call("submit_deploytx").arg(3).submit_wait(WAIT) {
        Err(Error::TxAborted { reason, .. }) => {
            assert!(reason.contains("rejected"), "{reason}")
        }
        other => panic!("expected rejected-status abort, got {other:?}"),
    }
    // kv survived both attempts.
    for node in net.nodes() {
        assert!(node.catalog().contains("kv"));
    }
    net.shutdown();
}

#[test]
fn on_chain_user_management() {
    let net = build(Flow::OrderThenExecute);
    net.deploy_contract(
        1,
        "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
    )
    .unwrap();

    // org1's admin onboards a new client via create_usertx.
    let carol_key = Arc::new(KeyPair::generate("org1/carol", b"carol", Scheme::Sim));
    let admin = net.admin("org1").unwrap();
    admin
        .call("create_usertx")
        .arg("org1/carol")
        .arg("org1")
        .arg("client")
        .arg(carol_key.public_key().to_bytes())
        .submit_wait(WAIT)
        .unwrap();

    // Carol can now transact with her own key.
    let carol = net
        .attach_client("org1", "carol", Arc::clone(&carol_key))
        .unwrap();
    carol.call("put").arg(42).arg(1).submit_wait(WAIT).unwrap();
    // The registration is on-chain, queryable SQL with typed rows.
    let (org, _role, status): (String, String, String) = carol
        .select("SELECT org, role, status FROM network_users WHERE name = $1")
        .bind("org1/carol")
        .fetch_one()
        .unwrap();
    assert_eq!(org, "org1");
    assert_eq!(status, "active");

    // Deletion revokes the certificate: further transactions abort.
    admin
        .call("delete_usertx")
        .arg("org1/carol")
        .submit_wait(WAIT)
        .unwrap();
    let pending = carol.call("put").arg(43).arg(1).submit().unwrap();
    assert!(matches!(
        pending.wait(WAIT).unwrap().status,
        TxStatus::Aborted(_)
    ));

    // Cross-org onboarding is denied.
    let mallory_key = KeyPair::generate("org2/mallory", b"m", Scheme::Sim);
    match admin
        .call("create_usertx")
        .arg("org2/mallory")
        .arg("org2")
        .arg("client")
        .arg(mallory_key.public_key().to_bytes())
        .submit_wait(WAIT)
    {
        Err(Error::TxAborted { reason, .. }) => {
            assert!(reason.contains("cannot create"), "{reason}")
        }
        other => panic!("expected cross-org denial, got {other:?}"),
    }
    net.shutdown();
}
