//! The §3.7 contract-deployment workflow: staging, per-organization
//! approvals, rejection, execution, and on-chain user management.

use std::sync::Arc;
use std::time::Duration;

use bcrdb::crypto::identity::{KeyPair, Scheme};
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build(flow: Flow) -> Network {
    let net = Network::build(NetworkConfig::quick(&["org1", "org2", "org3"], flow)).unwrap();
    net.bootstrap_sql("CREATE TABLE kv (k INT PRIMARY KEY, v INT)").unwrap();
    net
}

#[test]
fn full_deploy_workflow_installs_contract_everywhere() {
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        let net = build(flow);
        net.deploy_contract(
            1,
            "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
        )
        .unwrap();
        // All nodes catch up to the deploy block before we inspect them.
        let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(height, WAIT).unwrap();
        // The contract exists on every node and is invokable.
        for node in net.nodes() {
            assert!(node.contracts().get("put").is_some(), "{}", node.config.name);
        }
        let alice = net.client("org2", "alice").unwrap();
        alice
            .invoke_wait("put", vec![Value::Int(1), Value::Int(7)], WAIT)
            .unwrap();
        // Deployment audit trail is queryable SQL (status applied, votes
        // from all three orgs).
        let r = alice
            .query("SELECT status FROM deployments WHERE id = 1", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Text("applied".into()));
        let r = alice
            .query(
                "SELECT COUNT(*) FROM deployment_votes WHERE deploy_id = 1",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        net.shutdown();
    }
}

#[test]
fn submit_without_all_approvals_aborts() {
    let net = build(Flow::OrderThenExecute);
    let admin1 = net.admin("org1").unwrap();
    admin1
        .invoke_wait(
            "create_deploytx",
            vec![
                Value::Int(5),
                Value::Text(
                    "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$"
                        .into(),
                ),
            ],
            WAIT,
        )
        .unwrap();
    // Only two of three orgs approve.
    for org in ["org1", "org2"] {
        net.admin(org)
            .unwrap()
            .invoke_wait("approve_deploytx", vec![Value::Int(5)], WAIT)
            .unwrap();
    }
    let pending = admin1.invoke("submit_deploytx", vec![Value::Int(5)]).unwrap();
    match pending.wait(WAIT).unwrap().status {
        TxStatus::Aborted(reason) => {
            assert!(reason.contains("lacks approvals"), "{reason}");
            assert!(reason.contains("org3"), "{reason}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
    for node in net.nodes() {
        assert!(node.contracts().get("put").is_none());
    }
    net.shutdown();
}

#[test]
fn double_approval_by_same_org_rejected() {
    let net = build(Flow::OrderThenExecute);
    let admin1 = net.admin("org1").unwrap();
    admin1
        .invoke_wait(
            "create_deploytx",
            vec![Value::Int(9), Value::Text("DROP TABLE IF EXISTS nothing".into())],
            WAIT,
        )
        .unwrap();
    admin1
        .invoke_wait("approve_deploytx", vec![Value::Int(9)], WAIT)
        .unwrap();
    // The vote row's primary key (deploy/org) makes a second approval a
    // duplicate-key abort.
    let pending = admin1.invoke("approve_deploytx", vec![Value::Int(9)]).unwrap();
    match pending.wait(WAIT).unwrap().status {
        TxStatus::Aborted(reason) => assert!(reason.contains("duplicate"), "{reason}"),
        other => panic!("expected duplicate-vote abort, got {other:?}"),
    }
    net.shutdown();
}

#[test]
fn rejected_deployment_cannot_be_submitted() {
    let net = build(Flow::OrderThenExecute);
    let admin1 = net.admin("org1").unwrap();
    admin1
        .invoke_wait(
            "create_deploytx",
            vec![Value::Int(2), Value::Text("DROP TABLE kv".into())],
            WAIT,
        )
        .unwrap();
    for org in ["org1", "org2", "org3"] {
        net.admin(org)
            .unwrap()
            .invoke_wait("approve_deploytx", vec![Value::Int(2)], WAIT)
            .unwrap();
    }
    // org3 changes its mind with a rejection (recorded with a reason).
    // A fresh deployment id is used for the rejection vote row, so use
    // comment + reject paths.
    net.admin("org3")
        .unwrap()
        .invoke_wait(
            "comment_deploytx",
            vec![Value::Int(2), Value::Text("dropping kv loses audit data".into())],
            WAIT,
        )
        .unwrap();
    // Rejection flips the status even after approvals.
    // (org3 already approved, so its rejection vote needs the comment path
    // exercised above; rejection itself is voted by org2 here.)
    net.admin("org2")
        .unwrap()
        .invoke_wait(
            "reject_deploytx",
            vec![Value::Int(2), Value::Text("veto".into())],
            WAIT,
        )
        .unwrap_err(); // org2 already approved → duplicate vote key aborts
    // Stage a clean rejection from scratch on a new deployment.
    admin1
        .invoke_wait(
            "create_deploytx",
            vec![Value::Int(3), Value::Text("DROP TABLE kv".into())],
            WAIT,
        )
        .unwrap();
    net.admin("org2")
        .unwrap()
        .invoke_wait(
            "reject_deploytx",
            vec![Value::Int(3), Value::Text("veto".into())],
            WAIT,
        )
        .unwrap();
    let pending = admin1.invoke("submit_deploytx", vec![Value::Int(3)]).unwrap();
    match pending.wait(WAIT).unwrap().status {
        TxStatus::Aborted(reason) => assert!(reason.contains("rejected"), "{reason}"),
        other => panic!("expected rejected-status abort, got {other:?}"),
    }
    // kv survived both attempts.
    for node in net.nodes() {
        assert!(node.catalog().contains("kv"));
    }
    net.shutdown();
}

#[test]
fn on_chain_user_management() {
    let net = build(Flow::OrderThenExecute);
    net.deploy_contract(
        1,
        "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
    )
    .unwrap();

    // org1's admin onboards a new client via create_usertx.
    let carol_key = Arc::new(KeyPair::generate("org1/carol", b"carol", Scheme::Sim));
    let admin = net.admin("org1").unwrap();
    admin
        .invoke_wait(
            "create_usertx",
            vec![
                Value::Text("org1/carol".into()),
                Value::Text("org1".into()),
                Value::Text("client".into()),
                Value::Bytes(carol_key.public_key().to_bytes()),
            ],
            WAIT,
        )
        .unwrap();

    // Carol can now transact with her own key.
    let carol = net.attach_client("org1", "carol", Arc::clone(&carol_key)).unwrap();
    carol
        .invoke_wait("put", vec![Value::Int(42), Value::Int(1)], WAIT)
        .unwrap();
    // The registration is on-chain, queryable SQL.
    let r = carol
        .query("SELECT org, role, status FROM network_users WHERE name = 'org1/carol'", &[])
        .unwrap();
    assert_eq!(r.rows[0][2], Value::Text("active".into()));

    // Deletion revokes the certificate: further transactions abort.
    admin
        .invoke_wait("delete_usertx", vec![Value::Text("org1/carol".into())], WAIT)
        .unwrap();
    let pending = carol.invoke("put", vec![Value::Int(43), Value::Int(1)]).unwrap();
    assert!(matches!(pending.wait(WAIT).unwrap().status, TxStatus::Aborted(_)));

    // Cross-org onboarding is denied.
    let mallory_key = KeyPair::generate("org2/mallory", b"m", Scheme::Sim);
    let pending = admin
        .invoke(
            "create_usertx",
            vec![
                Value::Text("org2/mallory".into()),
                Value::Text("org2".into()),
                Value::Text("client".into()),
                Value::Bytes(mallory_key.public_key().to_bytes()),
            ],
        )
        .unwrap();
    match pending.wait(WAIT).unwrap().status {
        TxStatus::Aborted(reason) => assert!(reason.contains("cannot create"), "{reason}"),
        other => panic!("expected cross-org denial, got {other:?}"),
    }
    net.shutdown();
}
