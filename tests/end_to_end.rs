//! End-to-end integration tests: multi-organization networks running both
//! transaction flows, checking the paper's core guarantee — every honest
//! node commits the same transactions in the same order and converges to
//! an identical state.
//!
//! Every scenario runs over **both** client transports: `InProcess`
//! (direct dispatch) and `Simulated` (client↔node RPCs travel the
//! simulated network). The observable behavior must be identical — only
//! the cost of the client hop differs.

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);
const TRANSPORTS: [TransportKind; 2] = [TransportKind::InProcess, TransportKind::Simulated];

fn build(flow: Flow, transport: TransportKind) -> Network {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], flow);
    cfg.client_transport = transport;
    let net = Network::build(cfg).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT NOT NULL, balance FLOAT NOT NULL); \
         CREATE FUNCTION open_account(id INT, owner TEXT, balance FLOAT) AS $$ \
           INSERT INTO accounts VALUES ($1, $2, $3) $$; \
         CREATE FUNCTION transfer(src INT, dst INT, amount FLOAT) AS $$ \
           UPDATE accounts SET balance = balance - $3 WHERE id = $1; \
           UPDATE accounts SET balance = balance + $3 WHERE id = $2 $$",
    )
    .unwrap();
    net
}

fn assert_converged(net: &Network) {
    let hashes = net.state_hashes();
    let (first_name, first_hash) = &hashes[0];
    for (name, hash) in &hashes[1..] {
        assert_eq!(hash, first_hash, "node {name} diverged from {first_name}");
    }
    for node in net.nodes() {
        assert!(
            node.divergences().is_empty(),
            "{} saw divergence",
            node.config.name
        );
    }
}

fn run_banking_scenario(flow: Flow, transport: TransportKind) {
    let net = build(flow, transport);
    let alice = net.client("org1", "alice").unwrap();
    let bob = net.client("org2", "bob").unwrap();

    // Open accounts and wait for commitment. In the EO flow a fresh
    // transaction can race a neighbour's block and see a retriable
    // phantom abort (§3.4.1); the retrying variant re-pins and retries.
    alice
        .call("open_account")
        .arg(1)
        .arg("alice")
        .arg(100.0)
        .submit_wait_retrying(WAIT)
        .unwrap();
    bob.call("open_account")
        .arg(2)
        .arg("bob")
        .arg(50.0)
        .submit_wait_retrying(WAIT)
        .unwrap();

    // A transfer.
    alice
        .call("transfer")
        .arg(1)
        .arg(2)
        .arg(30.0)
        .submit_wait_retrying(WAIT)
        .unwrap();

    // Every node answers the same query identically.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, WAIT).unwrap();
    for node in net.nodes() {
        let r = node
            .query("SELECT id, balance FROM accounts ORDER BY id", &[])
            .unwrap();
        assert_eq!(r.rows.len(), 2, "{}", node.config.name);
        assert_eq!(r.rows[0][1], Value::Float(70.0));
        assert_eq!(r.rows[1][1], Value::Float(80.0));
    }
    assert_converged(&net);
    net.shutdown();
}

#[test]
fn banking_order_then_execute() {
    for transport in TRANSPORTS {
        run_banking_scenario(Flow::OrderThenExecute, transport);
    }
}

#[test]
fn banking_execute_order_parallel() {
    for transport in TRANSPORTS {
        run_banking_scenario(Flow::ExecuteOrderParallel, transport);
    }
}

#[test]
fn contract_errors_abort_deterministically() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let alice = net.client("org1", "alice").unwrap();
        alice
            .call("open_account")
            .arg(1)
            .arg("a")
            .arg(10.0)
            .submit_wait(WAIT)
            .unwrap();
        // Duplicate primary key → aborted on every node (as a structured
        // TxAborted), network stays alive.
        match alice
            .call("open_account")
            .arg(1)
            .arg("dup")
            .arg(1.0)
            .submit_wait(WAIT)
        {
            Err(Error::TxAborted { reason, .. }) => {
                assert!(reason.contains("duplicate key"), "{reason}")
            }
            other => panic!("expected TxAborted, got {other:?}"),
        }
        // Unknown contract → aborted too.
        let pending = alice.call("no_such_contract").submit().unwrap();
        assert!(matches!(
            pending.wait(WAIT).unwrap().status,
            TxStatus::Aborted(_)
        ));

        // The system still works afterwards.
        alice
            .call("open_account")
            .arg(2)
            .arg("b")
            .arg(5.0)
            .submit_wait(WAIT)
            .unwrap();
        let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(height, WAIT).unwrap();
        assert_converged(&net);
        net.shutdown();
    }
}

#[test]
fn concurrent_clients_converge() {
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        for transport in TRANSPORTS {
            let net = build(flow, transport);
            // One signed batch per organization, notifications fanned in.
            let mut batches = Vec::new();
            for (i, org) in ["org1", "org2", "org3"].iter().enumerate() {
                let client = net.client(org, "load").unwrap();
                let calls: Vec<Call> = (0..20)
                    .map(|k| {
                        let id = (i * 100 + k) as i64;
                        Call::new("open_account")
                            .arg(id)
                            .arg(format!("acct-{id}"))
                            .arg(10.0)
                    })
                    .collect();
                batches.push(client.submit_all(calls).unwrap());
            }
            let mut committed = 0;
            for batch in batches {
                assert_eq!(batch.len(), 20);
                for n in batch.wait_all(WAIT).unwrap() {
                    if matches!(n.status, TxStatus::Committed) {
                        committed += 1;
                    }
                }
            }
            assert_eq!(
                committed, 60,
                "{flow:?}/{transport:?}: all unique-key inserts commit"
            );
            let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
            net.await_height(height, WAIT).unwrap();
            for node in net.nodes() {
                let r = node.query("SELECT COUNT(*) FROM accounts", &[]).unwrap();
                assert_eq!(r.rows[0][0], Value::Int(60), "{}", node.config.name);
            }
            assert_converged(&net);
            net.shutdown();
        }
    }
}

#[test]
fn ww_conflicts_resolve_identically_across_nodes() {
    // Concurrent transfers touching the same account: SSI and the ww rules
    // abort some, but every node must agree on which.
    for flow in [Flow::OrderThenExecute, Flow::ExecuteOrderParallel] {
        for transport in TRANSPORTS {
            let net = build(flow, transport);
            let setup = net.client("org1", "setup").unwrap();
            setup
                .call("open_account")
                .arg(1)
                .arg("hot")
                .arg(1000.0)
                .submit_wait(WAIT)
                .unwrap();
            setup
                .call("open_account")
                .arg(2)
                .arg("cold")
                .arg(0.0)
                .submit_wait(WAIT)
                .unwrap();

            // Fire conflicting transfers from all three orgs without waiting.
            let mut pendings = Vec::new();
            for (i, org) in ["org1", "org2", "org3"].iter().enumerate() {
                let c = net.client(org, "contender").unwrap();
                for k in 0..5 {
                    let amount = 1.0 + (i * 5 + k) as f64; // unique payloads
                    pendings.push(
                        c.call("transfer")
                            .arg(1)
                            .arg(2)
                            .arg(amount)
                            .submit()
                            .unwrap(),
                    );
                }
                // `c` is dropped here while its transactions are still in
                // flight: the PendingTx handles keep the transport
                // connection alive, so every notification still arrives.
            }
            let mut committed_sum = 0.0;
            let mut aborted = 0;
            for p in pendings {
                match p.wait(WAIT).unwrap() {
                    n if matches!(n.status, TxStatus::Committed) => {}
                    _ => {
                        aborted += 1;
                        continue;
                    }
                }
            }
            // Derive the committed sum from any node's state.
            let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
            net.await_height(height, WAIT).unwrap();
            let r = net
                .node("org1")
                .unwrap()
                .query("SELECT balance FROM accounts WHERE id = 2", &[])
                .unwrap();
            if let Value::Float(f) = r.rows[0][0] {
                committed_sum = f;
            }
            // Conservation: id1 + id2 == 1000 on every node.
            for node in net.nodes() {
                let r = node
                    .query("SELECT SUM(balance) FROM accounts", &[])
                    .unwrap();
                assert_eq!(r.rows[0][0], Value::Float(1000.0), "{}", node.config.name);
            }
            assert!(committed_sum >= 0.0);
            assert!(aborted < 15, "at least one transfer should commit");
            assert_converged(&net);
            net.shutdown();
        }
    }
}

#[test]
fn provenance_and_time_travel_queries() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let alice = net.client("org1", "alice").unwrap();
        alice
            .call("open_account")
            .arg(1)
            .arg("alice")
            .arg(100.0)
            .submit_wait(WAIT)
            .unwrap();
        let h_open = alice.chain_height().unwrap();
        alice
            .call("transfer")
            .arg(1)
            .arg(1)
            .arg(0.0)
            .submit_wait(WAIT)
            .unwrap();
        alice
            .call("open_account")
            .arg(2)
            .arg("bob")
            .arg(1.0)
            .submit_wait(WAIT)
            .unwrap();

        // HISTORY exposes all versions of account 1 (self-transfer created
        // two extra versions).
        let r = alice
            .select(
                "SELECT h.balance, h._creator_block FROM HISTORY(accounts) h WHERE h.id = 1 \
                 ORDER BY h._creator_block",
            )
            .fetch()
            .unwrap();
        assert!(
            r.rows.len() >= 3,
            "expected version history, got {:?}",
            r.rows
        );

        // Ledger join: who wrote versions of account 1 (Table 3 style), with
        // typed row decoding by column name.
        let r = alice
            .select(
                "SELECT l.username, l.contract FROM HISTORY(accounts) h, ledger l \
                 WHERE h.id = 1 AND h.xmin = l.txid ORDER BY l.block",
            )
            .fetch()
            .unwrap();
        assert!(!r.rows.is_empty());
        let who: String = r.row(0).unwrap().get("username").unwrap();
        assert_eq!(who, "org1/alice");

        // Time travel: at the height of the first open, balance was 100 and
        // account 2 did not exist.
        let balance: f64 = alice
            .select("SELECT balance FROM accounts WHERE id = 1")
            .at_height(h_open)
            .fetch_scalar()
            .unwrap();
        assert_eq!(balance, 100.0);
        let count: i64 = alice
            .select("SELECT COUNT(*) FROM accounts")
            .at_height(h_open)
            .fetch_scalar()
            .unwrap();
        assert_eq!(count, 1);
        net.shutdown();
    }
}

#[test]
fn blocks_chain_and_verify_on_every_node() {
    for transport in TRANSPORTS {
        let net = build(Flow::OrderThenExecute, transport);
        let alice = net.client("org1", "alice").unwrap();
        for i in 0..5 {
            alice
                .call("open_account")
                .arg(i)
                .arg(format!("a{i}"))
                .arg(1.0)
                .submit_wait(WAIT)
                .unwrap();
        }
        let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
        net.await_height(height, WAIT).unwrap();
        for node in net.nodes() {
            let mut prev = bcrdb::chain::block::genesis_prev_hash();
            for h in 1..=node.blockstore.height() {
                let block = node.blockstore.get(h).unwrap();
                block.verify(&prev, net.certs()).unwrap();
                prev = block.hash;
            }
        }
        net.shutdown();
    }
}
