//! Node-level behaviours: vacuum (the §7 pruning tool), deterministic
//! rejection of future snapshot heights, and the serial-execution baseline
//! producing the same state as SSI-parallel execution.

use std::time::Duration;

use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn build(flow: Flow) -> Network {
    let net = Network::build(NetworkConfig::quick(&["org1", "org2"], flow)).unwrap();
    net.bootstrap_sql(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
         CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$; \
         CREATE FUNCTION bump(k INT) AS $$ UPDATE kv SET v = v + 1 WHERE k = $1 $$",
    )
    .unwrap();
    net
}

#[test]
fn vacuum_prunes_history_but_preserves_live_state() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    c.call("put").arg(1).arg(0).submit_wait(WAIT).unwrap();
    for _ in 0..3 {
        c.call("bump").arg(1).submit_wait(WAIT).unwrap();
    }
    let node = net.node("org1").unwrap();
    let height = node.height();

    // Full history visible before vacuum.
    let r = node
        .query("SELECT COUNT(*) FROM HISTORY(kv) h WHERE h.k = 1", &[])
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4)); // insert + 3 bumps

    // Vacuum everything deleted at or before the tip.
    let reclaimed = node.vacuum(height);
    assert!(
        reclaimed >= 3,
        "three superseded versions reclaimed, got {reclaimed}"
    );

    // Live state untouched; history shrunk to the live version.
    let r = node.query("SELECT v FROM kv WHERE k = 1", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    let r = node
        .query("SELECT COUNT(*) FROM HISTORY(kv) h WHERE h.k = 1", &[])
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));

    // The node keeps working after vacuum (indexes were rebuilt).
    c.call("bump").arg(1).submit_wait(WAIT).unwrap();
    let r = node.query("SELECT v FROM kv WHERE k = 1", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
    net.shutdown();
}

#[test]
fn future_snapshot_height_aborts_deterministically() {
    let net = build(Flow::ExecuteOrderParallel);
    let c = net.client("org1", "alice").unwrap();
    c.call("put").arg(1).arg(0).submit_wait(WAIT).unwrap();

    // A snapshot height far beyond the chain tip: the transaction is
    // ordered but cannot legally execute before its own block — aborted
    // identically on every node (§3.4.1 / processor rule).
    let pending = c
        .call("bump")
        .arg(1)
        .at_height(c.chain_height().unwrap() + 50)
        .submit()
        .unwrap();
    match pending.wait(WAIT).unwrap().status {
        TxStatus::Aborted(reason) => assert!(reason.contains("snapshot height"), "{reason}"),
        other => panic!("expected future-height abort, got {other:?}"),
    }
    // Nodes agree afterwards.
    let height = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(height, WAIT).unwrap();
    let hashes: Vec<_> = net.nodes().iter().map(|n| n.state_hash()).collect();
    assert_eq!(hashes[0], hashes[1]);
    net.shutdown();
}

#[test]
fn serial_baseline_produces_identical_state_to_parallel() {
    // The §5.1 Ethereum-style baseline is slower but must be functionally
    // identical: same inputs → same committed state hash.
    let run = |serial: bool| {
        let mut cfg = NetworkConfig::quick(&["org1", "org2"], Flow::OrderThenExecute);
        cfg.serial_execution = serial;
        let net = Network::build(cfg).unwrap();
        net.bootstrap_sql(
            "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
             CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$; \
             CREATE FUNCTION bump(k INT) AS $$ UPDATE kv SET v = v + 1 WHERE k = $1 $$",
        )
        .unwrap();
        let c = net.client("org1", "alice").unwrap();
        for k in 0..10 {
            c.call("put").arg(k).arg(k).submit_wait(WAIT).unwrap();
        }
        for k in 0..10 {
            c.call("bump").arg(k % 5).submit_wait(WAIT).unwrap();
        }
        let node = net.node("org1").unwrap();
        let hash = node.state_hash();
        let rows = node.query("SELECT k, v FROM kv ORDER BY k", &[]).unwrap();
        net.shutdown();
        (hash, rows)
    };
    let (h_serial, rows_serial) = run(true);
    let (h_parallel, rows_parallel) = run(false);
    assert_eq!(rows_serial, rows_parallel);
    assert_eq!(h_serial, h_parallel);
}

#[test]
fn metrics_reflect_traffic() {
    let net = build(Flow::OrderThenExecute);
    let c = net.client("org1", "alice").unwrap();
    let node = net.node("org1").unwrap();
    let _ = node.metrics().take(); // reset
    for k in 0..5 {
        c.call("put").arg(k).arg(0).submit_wait(WAIT).unwrap();
    }
    let snap = node.metrics().take();
    assert_eq!(snap.committed, 5);
    assert_eq!(snap.aborted, 0);
    assert!(snap.brr > 0.0);
    assert!(snap.bpt_ms >= snap.bet_ms);
    net.shutdown();
}
