//! Real-process TCP deployment: boots a 4-node / 4-orderer cluster from
//! the `bcrdb-node` binary, drives a mixed workload through the
//! `bcrdb-bench` load generator, kills and rejoins a node (catch-up over
//! TCP), shuts everything down gracefully, and then verifies the chains
//! the processes left on disk: gapless, byte-identical blocks and
//! agreeing checkpoint state hashes.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bcrdb::chain::block::Block;
use bcrdb::chain::blockstore::BlockStore;
use bcrdb::common::codec::Encode;
use bcrdb::txn::ssi::Flow;

const NODE_BIN: &str = env!("CARGO_BIN_EXE_bcrdb-node");
const BENCH_BIN: &str = env!("CARGO_BIN_EXE_bcrdb-bench");
const ORGS: [&str; 4] = ["org1", "org2", "org3", "org4"];
const BOOT: Duration = Duration::from_secs(30);

/// Kills the child on drop so a failing test never leaks processes.
struct Proc {
    name: String,
    child: Child,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Proc {
    fn spawn(name: &str, log_dir: &Path, args: &[String]) -> Proc {
        let log = std::fs::File::create(log_dir.join(format!("{name}.log"))).unwrap();
        let child = Command::new(NODE_BIN)
            .args(args)
            .stdout(Stdio::from(log.try_clone().unwrap()))
            .stderr(Stdio::from(log))
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        Proc {
            name: name.to_string(),
            child,
        }
    }

    fn terminate(mut self) {
        let pid = self.child.id().to_string();
        let _ = Command::new("kill").args(["-TERM", &pid]).status();
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => {
                    assert!(status.success(), "{} exited with {status}", self.name);
                    return;
                }
                None if Instant::now() > deadline => {
                    panic!("{} ignored SIGTERM", self.name);
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

fn reserve_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn await_listening(addr: &str) {
    let deadline = Instant::now() + BOOT;
    loop {
        match TcpStream::connect(addr) {
            Ok(_) => return,
            Err(_) if Instant::now() > deadline => panic!("{addr} never came up"),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Minimal extractor for the flat JSON object `bcrdb-bench` prints.
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {json}"))
}

struct Ports {
    orderer: Vec<u16>,
    client: Vec<u16>,
    peer: Vec<u16>,
}

fn node_args(ports: &Ports, i: usize, data_root: &Path, rejoin: bool) -> Vec<String> {
    let org = ORGS[i];
    let mut args = vec![
        "--role".into(),
        "node".into(),
        "--org".into(),
        org.into(),
        "--orgs".into(),
        ORGS.join(","),
        "--flow".into(),
        "eo".into(),
        "--listen-client".into(),
        format!("127.0.0.1:{}", ports.client[i]),
        "--listen-peer".into(),
        format!("127.0.0.1:{}", ports.peer[i]),
        "--orderer-addr".into(),
        format!("127.0.0.1:{}", ports.orderer[i]),
        "--data-dir".into(),
        data_root.join(org).to_string_lossy().into_owned(),
        // Disk-backed paged storage with a deliberately small pool: the
        // SIGKILL below lands mid-write-back for the page files too, and
        // the rejoin exercises paged crash recovery (journal replay or
        // wipe-and-replay) before the on-disk chain verification.
        "--paged".into(),
        "--pool-frames".into(),
        "64".into(),
    ];
    for (j, other) in ORGS.iter().enumerate() {
        if j != i {
            args.push("--peer".into());
            args.push(format!("{other}=127.0.0.1:{}", ports.peer[j]));
        }
    }
    if rejoin {
        args.push("--rejoin".into());
    }
    args
}

fn run_bench(orgs: &[&str], addrs: &[String], id_offset: i64, secs: u32) -> String {
    let out = Command::new(BENCH_BIN)
        .args([
            "--orgs",
            &orgs.join(","),
            "--addrs",
            &addrs.join(","),
            "--flow",
            "eo",
            "--connections",
            "8",
            "--tps",
            "200",
            "--duration-secs",
            &secs.to_string(),
            "--id-offset",
            &id_offset.to_string(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "bcrdb-bench failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

#[test]
fn four_node_cluster_survives_kill_and_rejoin() {
    let data_root = std::env::temp_dir().join(format!("bcrdb-tcp-deploy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_root);
    std::fs::create_dir_all(&data_root).unwrap();

    let ports = Ports {
        orderer: (0..4).map(|_| reserve_port()).collect(),
        client: (0..4).map(|_| reserve_port()).collect(),
        peer: (0..4).map(|_| reserve_port()).collect(),
    };
    let client_addrs: Vec<String> = ports
        .client
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect();

    // Ordering service first, then the four nodes.
    let mut ordering_args = vec![
        "--role".to_string(),
        "ordering".to_string(),
        "--orgs".to_string(),
        ORGS.join(","),
        "--flow".to_string(),
        "eo".to_string(),
    ];
    for p in &ports.orderer {
        ordering_args.push("--listen-orderer".into());
        ordering_args.push(format!("127.0.0.1:{p}"));
    }
    let ordering = Proc::spawn("ordering", &data_root, &ordering_args);
    for p in &ports.orderer {
        await_listening(&format!("127.0.0.1:{p}"));
    }

    let mut nodes: Vec<Option<Proc>> = (0..4)
        .map(|i| {
            Some(Proc::spawn(
                ORGS[i],
                &data_root,
                &node_args(&ports, i, &data_root, false),
            ))
        })
        .collect();
    for addr in &client_addrs {
        await_listening(addr); // the client plane serves once the node is up
    }

    // Phase 1: mixed workload across all four nodes.
    let report = run_bench(&ORGS, &client_addrs, 0, 3);
    assert!(json_u64(&report, "committed") > 0, "no commits: {report}");
    assert_eq!(json_u64(&report, "unresolved"), 0, "{report}");
    assert_eq!(json_u64(&report, "worker_errors"), 0, "{report}");

    // Kill org4 outright (SIGKILL via Child::kill) and keep committing
    // through the survivors.
    {
        let mut victim = nodes[3].take().unwrap();
        victim.child.kill().unwrap();
        victim.child.wait().unwrap();
        std::mem::forget(victim); // already reaped
    }
    let survivors = &ORGS[..3];
    let report = run_bench(survivors, &client_addrs[..3], 10_000_000, 3);
    assert!(
        json_u64(&report, "committed") > 0,
        "no commits with a node down: {report}"
    );
    assert_eq!(json_u64(&report, "unresolved"), 0, "{report}");

    // Rejoin: restart org4 against the same data dir; it catches up from
    // its peers over TCP before serving clients again.
    nodes[3] = Some(Proc::spawn(
        "org4-rejoin",
        &data_root,
        &node_args(&ports, 3, &data_root, true),
    ));
    await_listening(&client_addrs[3]);

    // The rejoined node must reach the height the survivors are at.
    let spec = bcrdb::core::ClusterSpec::new(&ORGS, Flow::ExecuteOrderParallel);
    let live: Vec<_> = (0..3)
        .map(|i| {
            bcrdb::core::tcp_client(
                &spec,
                ORGS[i],
                &bcrdb::core::ClusterSpec::bench_user(60 + i),
                &client_addrs[i],
            )
            .unwrap()
        })
        .collect();
    let target = live
        .iter()
        .map(|c| c.chain_height().unwrap())
        .max()
        .unwrap();
    assert!(target > 0);
    let rejoined = bcrdb::core::tcp_client(
        &spec,
        "org4",
        &bcrdb::core::ClusterSpec::bench_user(63),
        &client_addrs[3],
    )
    .unwrap();
    bcrdb::core::await_height_tcp(
        std::slice::from_ref(&rejoined),
        target,
        Duration::from_secs(30),
    )
    .expect("rejoined node never caught up");
    drop(rejoined);
    drop(live);

    // Graceful shutdown, nodes before ordering.
    for proc in nodes.into_iter().flatten() {
        proc.terminate();
    }
    ordering.terminate();

    verify_chains_on_disk(&data_root, target);
    let _ = std::fs::remove_dir_all(&data_root);
}

/// Open each node's block store from disk and assert the replicas wrote
/// the same chain: gapless hash-linked heights, byte-identical canonical
/// encodings over the common prefix (signatures excluded — each replica
/// stores the copy signed by *its* orderer, by design), and checkpoint
/// votes whose state hashes agree across nodes for every voted block.
fn verify_chains_on_disk(data_root: &Path, min_expected: u64) {
    let stores: Vec<(String, BlockStore)> = ORGS
        .iter()
        .map(|org| {
            let path: PathBuf = data_root.join(org).join("blocks.dat");
            (org.to_string(), BlockStore::open(&path).unwrap())
        })
        .collect();
    let min_height = stores.iter().map(|(_, s)| s.height()).min().unwrap();
    assert!(
        min_height >= min_expected,
        "shortest chain ({min_height}) below the converged height {min_expected}"
    );

    fn canonical_bytes(block: &Block) -> Vec<u8> {
        let mut unsigned = block.clone();
        unsigned.signatures.clear();
        unsigned.encode_to_vec()
    }

    let mut checkpoint_votes: HashMap<u64, HashMap<String, [u8; 32]>> = HashMap::new();
    let mut prev_hash = bcrdb::chain::block::genesis_prev_hash();
    for number in 1..=min_height {
        let reference: std::sync::Arc<Block> = stores[0].1.get(number).unwrap_or_else(|| {
            panic!("{}: gap at block {number}", stores[0].0);
        });
        assert_eq!(reference.number, number, "height mismatch in store");
        assert_eq!(
            reference.prev_hash, prev_hash,
            "chain broken at block {number}"
        );
        prev_hash = reference.hash;
        let reference_bytes = canonical_bytes(&reference);
        for (org, store) in &stores[1..] {
            let block = store
                .get(number)
                .unwrap_or_else(|| panic!("{org}: gap at block {number}"));
            assert_eq!(
                canonical_bytes(&block),
                reference_bytes,
                "{org}: block {number} differs from {}",
                stores[0].0
            );
            assert!(
                !block.signatures.is_empty(),
                "{org}: block {number} stored unsigned"
            );
        }
        for vote in &reference.checkpoints {
            let by_node = checkpoint_votes.entry(vote.block).or_default();
            if let Some(prev) = by_node.insert(vote.node.clone(), vote.state_hash) {
                assert_eq!(
                    prev, vote.state_hash,
                    "{} voted twice with different hashes for block {}",
                    vote.node, vote.block
                );
            }
        }
    }

    // Replicas disagreeing on a block's state hash would be a §3.5
    // divergence; every multi-voter block must be unanimous.
    let mut multi_voter = 0;
    for (block, by_node) in &checkpoint_votes {
        let mut hashes: Vec<&[u8; 32]> = by_node.values().collect();
        hashes.sort();
        hashes.dedup();
        assert!(
            hashes.len() == 1,
            "checkpoint divergence at block {block}: {by_node:?}"
        );
        if by_node.len() > 1 {
            multi_voter += 1;
        }
    }
    assert!(
        multi_voter > 0,
        "no block collected checkpoint votes from more than one node"
    );
}

/// Satellite: a TCP client that disconnects mid-`WaitFor` must leave no
/// notification waiters registered on the node — the socket close is
/// the cancellation (the sim-transport twin lives in `session_api.rs`).
#[test]
fn tcp_disconnect_cancels_pending_waiters() {
    use bcrdb::common::ids::GlobalTxId;

    let spec = bcrdb::core::ClusterSpec::new(&["org1"], Flow::OrderThenExecute);
    let cluster = bcrdb::core::TcpCluster::launch(spec, None).unwrap();
    let node = cluster.nodes().remove(0);
    let client = cluster.client("org1", "bench0").unwrap();
    assert_eq!(node.pending_notification_waiters(), 0);

    // A wait that can never fire, registered over the socket...
    let rx = client.transport().wait_for(GlobalTxId([7u8; 32])).unwrap();
    assert_eq!(node.pending_notification_waiters(), 1);

    // ...plus a real in-flight transaction abandoned mid-wait.
    let pending = client
        .call("bench_tx")
        .arg(1)
        .arg(1)
        .arg(1)
        .arg("x")
        .arg(0.5)
        .submit()
        .unwrap();
    drop(pending);
    drop(rx);
    drop(client); // closes the socket: the disconnect IS the cancellation

    let deadline = Instant::now() + Duration::from_secs(10);
    while node.pending_notification_waiters() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        node.pending_notification_waiters(),
        0,
        "TCP disconnect leaked waiters"
    );
    cluster.shutdown();
}

/// Satellite: EXPLAIN over the real TCP wire — the plan text travels as
/// ordinary rows, and two nodes at the same height render byte-identical
/// plans (the sim-transport twin lives in `session_api.rs`).
#[test]
fn tcp_explain_round_trips_identically_on_every_node() {
    let spec = bcrdb::core::ClusterSpec::new(&["org1", "org2"], Flow::OrderThenExecute);
    let cluster = bcrdb::core::TcpCluster::launch(spec, None).unwrap();
    let wait = Duration::from_secs(20);
    let c1 = cluster.client("org1", "bench0").unwrap();
    for id in 0..8 {
        c1.call("bench_tx")
            .arg(id)
            .arg(id)
            .arg(id)
            .arg("x")
            .arg(0.5)
            .submit_wait(wait)
            .unwrap();
    }
    let h = c1.chain_height().unwrap();
    cluster.await_height(h, wait).unwrap();
    let c2 = cluster.client("org2", "bench0").unwrap();

    let sql = "SELECT f1 FROM bench_simple WHERE id = 1 OR id = 5";
    let p1 = c1.explain(sql).unwrap();
    let p2 = c2.explain(sql).unwrap();
    assert!(
        p1.iter().any(|l| l.contains("IndexUnion bench_simple")),
        "OR over the key should plan as an index union with stats: {p1:?}"
    );
    assert_eq!(p1, p2, "plan text diverged across TCP nodes");
    cluster.shutdown();
}
